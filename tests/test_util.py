"""Tests for shared utilities (Deferred, table formatting) and ids."""

import pytest

from repro.errors import ReproError
from repro.ids import BroadcastId, GlobalPid, SessionId
from repro.util import Deferred, format_table


class TestDeferred:
    def test_resolve_then_then(self):
        deferred = Deferred()
        assert not deferred.resolved
        assert deferred.resolve(42)
        values = []
        deferred.then(values.append)
        assert values == [42]
        assert deferred.value == 42

    def test_then_before_resolve(self):
        deferred = Deferred()
        values = []
        deferred.then(values.append)
        deferred.then(values.append)
        deferred.resolve("x")
        assert values == ["x", "x"]

    def test_first_resolution_wins(self):
        deferred = Deferred()
        assert deferred.resolve(1)
        assert not deferred.resolve(2)
        assert deferred.value == 1

    def test_chaining_returns_self(self):
        deferred = Deferred()
        assert deferred.then(lambda value: None) is deferred


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(["name", "n"], [["alpha", 1], ["b", 22]],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("name")
        assert "-----" in lines[2]
        assert len(lines) == 5

    def test_no_title(self):
        text = format_table(["x"], [["1"]])
        assert text.splitlines()[0] == "x"


class TestIds:
    def test_global_pid_ordering_and_str(self):
        a = GlobalPid("alpha", 2)
        b = GlobalPid("alpha", 10)
        assert a < b
        assert str(a) == "<alpha,2>"

    def test_parse_errors(self):
        with pytest.raises(ReproError):
            GlobalPid.parse("alpha,2")
        with pytest.raises(ReproError):
            GlobalPid.parse("<alpha>")
        with pytest.raises(ReproError):
            GlobalPid.parse("<alpha,xyz>")
        with pytest.raises(ReproError):
            GlobalPid.parse("<,5>")

    def test_parse_host_with_comma(self):
        gpid = GlobalPid("odd,name", 3)
        assert GlobalPid.parse(str(gpid)) == gpid

    def test_broadcast_id_keys_distinct(self):
        a = BroadcastId.make("h", 1.0, 1, "s")
        b = BroadcastId.make("h", 1.0, 2, "s")
        assert a.key() != b.key()

    def test_session_id_str(self):
        session = SessionId("lfc", "ucbvax", 1234.0)
        assert "lfc@ucbvax" in str(session)


class TestConfig:
    def test_invalid_values_rejected(self):
        from repro import PPMConfig
        from repro.errors import ConfigError
        for kwargs in ({"lpm_time_to_live_ms": 0},
                       {"time_to_die_ms": -1},
                       {"broadcast_dedup_window_ms": -5},
                       {"handler_pool_max": 0},
                       {"topology_policy": "ring"},
                       {"transport": "carrier-pigeon"},
                       {"request_timeout_ms": 0},
                       {"ccs_probe_interval_ms": 0},
                       {"recovery_retry_interval_ms": 0}):
            with pytest.raises(ConfigError):
                PPMConfig(**kwargs)

    def test_with_overrides(self):
        from repro import DEFAULT_CONFIG
        config = DEFAULT_CONFIG.with_overrides(handler_pool_max=3)
        assert config.handler_pool_max == 3
        assert DEFAULT_CONFIG.handler_pool_max != 3 or True
        assert config.lpm_time_to_live_ms == \
            DEFAULT_CONFIG.lpm_time_to_live_ms
