"""The continuous watch loop: edge detection, the incident journal,
the netsim driver, and the read-only sweep contract."""

import json

import pytest

from repro import HostClass, PersonalProcessManager, World, install
from repro.ops import (EXIT_CODES, IncidentJournal, Watcher, WorldView,
                       install_ops_triggers, mttr_by_check, read_journal,
                       render_incidents, run_checks, watch_world)
from repro.ops.checks import HostHealth
from repro.ops.watch import RUNBOOK_ANCHORS
from repro.perf import PERF, MetricsSampler
from repro.tracing import TraceEventType, TraceRecorder, TriggerEngine

HOSTS = ["alpha", "beta", "gamma"]


@pytest.fixture(autouse=True)
def clean_counters():
    PERF.reset()
    yield
    PERF.reset()


def make_view(down=()):
    hosts = {name: HostHealth(name, up=name not in down,
                              daemon=name not in down)
             for name in HOSTS}
    return WorldView(backend="netsim", expected_hosts=tuple(HOSTS),
                     hosts=hosts)


def report_at(t_ms, down=()):
    return run_checks(make_view(down=down)), t_ms


class TestWatcherEdges:
    def test_healthy_sweeps_produce_no_edges(self):
        watcher = Watcher(checks=("daemon-liveness",))
        for t_ms in (0.0, 100.0, 200.0):
            report, _ = report_at(t_ms)
            assert watcher.feed(report, t_ms) == []
        assert watcher.sweeps == 3
        assert PERF.watch_sweeps == 3
        assert PERF.watch_edges == 0

    def test_onset_fires_once_while_condition_persists(self):
        watcher = Watcher(checks=("daemon-liveness",))
        watcher.feed(run_checks(make_view()), 0.0)
        edges = watcher.feed(run_checks(make_view(down=("gamma",))),
                             100.0)
        assert [e.edge for e in edges] == ["onset"]
        onset = edges[0]
        assert onset.check == "daemon-liveness"
        assert onset.entities == ("gamma",)
        assert onset.exit_code == EXIT_CODES["daemon-liveness"]
        assert onset.runbook == RUNBOOK_ANCHORS["daemon-liveness"]
        # Ten more failing sweeps: still the one onset.
        for t_ms in range(200, 1200, 100):
            assert watcher.feed(
                run_checks(make_view(down=("gamma",))),
                float(t_ms)) == []
        assert watcher.open_incidents() == {"daemon-liveness": 100.0}
        assert PERF.watch_edges == 1

    def test_clear_carries_duration_and_onset_entities(self):
        watcher = Watcher(checks=("daemon-liveness",))
        watcher.feed(run_checks(make_view()), 0.0)
        watcher.feed(run_checks(make_view(down=("gamma",))), 100.0)
        edges = watcher.feed(run_checks(make_view()), 450.0)
        assert [e.edge for e in edges] == ["clear"]
        clear = edges[0]
        assert clear.exit_code == 0
        assert clear.duration_ms == pytest.approx(350.0)
        assert clear.entities == ("gamma",)
        assert watcher.open_incidents() == {}

    def test_failing_on_first_sweep_is_an_onset(self):
        watcher = Watcher(checks=("daemon-liveness",))
        edges = watcher.feed(run_checks(make_view(down=("beta",))), 5.0)
        assert [e.edge for e in edges] == ["onset"]

    def test_checks_filter_hides_other_transitions(self):
        watcher = Watcher(checks=("lpm-liveness",))
        watcher.feed(run_checks(make_view()), 0.0)
        assert watcher.feed(
            run_checks(make_view(down=("gamma",))), 100.0) == []

    def test_edges_feed_recorder_and_watch_onset_trigger(self):
        clock = {"now": 0.0}
        recorder = TraceRecorder(lambda: clock["now"])
        engine = TriggerEngine(recorder)
        alerts = install_ops_triggers(engine)
        watcher = Watcher(checks=("daemon-liveness",),
                          recorder=recorder)
        watcher.feed(run_checks(make_view()), 0.0)
        clock["now"] = 100.0
        watcher.feed(run_checks(make_view(down=("gamma",))), 100.0)
        clock["now"] = 200.0
        watcher.feed(run_checks(make_view(down=("gamma",))), 200.0)
        onsets = [a for a in alerts if a.name == "ops:watch-onset"]
        assert len(onsets) == 1, "one onset edge -> one latched alert"
        assert "daemon-liveness" in onsets[0].detail
        assert "gamma" in onsets[0].detail
        events = recorder.select(event_type=TraceEventType.WATCH_EDGE)
        assert len(events) == 1
        assert events[0].details["edge"] == "onset"
        # The clear is an edge event too, but latches no alert.
        clock["now"] = 300.0
        watcher.feed(run_checks(make_view()), 300.0)
        assert len([a for a in alerts
                    if a.name == "ops:watch-onset"]) == 1
        assert recorder.count(TraceEventType.WATCH_EDGE) == 2

    def test_sampler_ticks_once_per_sweep(self):
        sampler = MetricsSampler(counters=("events_run",))
        watcher = Watcher(checks=("daemon-liveness",), sampler=sampler)
        for t_ms in (0.0, 100.0, 200.0):
            watcher.feed(run_checks(make_view()), t_ms)
        assert PERF.watch_samples == 3
        assert len(sampler.series["events_run"]) == 3


class TestIncidentJournal:
    def drill_records(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = IncidentJournal(str(path))
        journal.start("netsim", 100.0, ("daemon-liveness",), t_ms=0.0)
        watcher = Watcher(checks=("daemon-liveness",), journal=journal)
        watcher.feed(run_checks(make_view()), 0.0)
        watcher.feed(run_checks(make_view(down=("gamma",))), 100.0)
        watcher.feed(run_checks(make_view(down=("gamma",))), 200.0)
        watcher.feed(run_checks(make_view()), 300.0)
        return path, journal

    def test_jsonl_schema_and_monotonic_seq(self, tmp_path):
        path, journal = self.drill_records(tmp_path)
        records = read_journal(str(path))
        assert records == journal.records
        assert [r["seq"] for r in records] == [0, 1, 2]
        header, onset, clear = records
        assert header["kind"] == "watch-start"
        assert header["backend"] == "netsim"
        assert header["checks"] == ["daemon-liveness"]
        assert onset == {"kind": "incident", "seq": 1, "t_ms": 100.0,
                         "check": "daemon-liveness", "edge": "onset",
                         "entities": ["gamma"], "exit_code": 10,
                         "detail": "down: gamma",
                         "runbook": RUNBOOK_ANCHORS["daemon-liveness"]}
        assert clear["edge"] == "clear"
        assert clear["duration_ms"] == pytest.approx(200.0)
        # Incident records carry no backend: the header does, so the
        # same drill journals identically on netsim and realnet.
        assert "backend" not in onset and "backend" not in clear

    def test_append_only_tolerates_torn_tail(self, tmp_path):
        path, _ = self.drill_records(tmp_path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "incident", "tru')  # crash mid-write
        records = read_journal(str(path))
        assert len(records) == 3

    def test_mttr_by_check(self, tmp_path):
        path, _ = self.drill_records(tmp_path)
        stats = mttr_by_check(read_journal(str(path)))
        entry = stats["daemon-liveness"]
        assert entry["onsets"] == 1
        assert entry["clears"] == 1
        assert entry["open"] is False
        assert entry["mttr_ms"] == pytest.approx(200.0)

    def test_render_incidents_timeline_and_mttr(self, tmp_path):
        path, _ = self.drill_records(tmp_path)
        text = render_incidents(read_journal(str(path)))
        assert "incident timeline" in text
        assert "ONSET" in text and "CLEAR" in text
        assert "mean time to recovery" in text
        assert "200.0 ms" in text

    def test_empty_journal_renders(self):
        assert "no incidents" in render_incidents([])


def build_world(seed=11):
    world = World(seed=seed)
    for name, host_class in zip(HOSTS, (HostClass.VAX_780,
                                        HostClass.VAX_750,
                                        HostClass.SUN_2)):
        world.add_host(name, host_class)
    world.ethernet()
    world.add_user("lfc", 1001)
    install(world)
    PersonalProcessManager(world, "lfc", HOSTS[0],
                           recovery_hosts=HOSTS[:2]).start()
    world.run_for(1_000.0)
    return world


class TestWatchWorld:
    def drill(self, world, journal=None):
        def act(watcher, report, edges):
            if watcher.sweeps == 2:
                world.host("gamma").crash()
            elif watcher.sweeps == 5:
                world.host("gamma").reboot()
        return watch_world(world, interval_ms=500.0, max_sweeps=8,
                           journal=journal,
                           checks=("daemon-liveness",), on_sweep=act)

    def test_dead_host_drill_one_onset_one_clear(self):
        journal = IncidentJournal()
        self.drill(build_world(), journal=journal)
        incidents = [r for r in journal.records
                     if r["kind"] == "incident"]
        assert [(r["check"], r["edge"]) for r in incidents] == [
            ("daemon-liveness", "onset"), ("daemon-liveness", "clear")]
        assert incidents[0]["entities"] == ["gamma"]
        # Virtual time: crash seen on sweep 3, clear on sweep 6.
        assert incidents[1]["t_ms"] - incidents[0]["t_ms"] == \
            pytest.approx(1_500.0)

    def test_watch_is_deterministic(self, tmp_path):
        paths = []
        for run in ("a", "b"):
            path = tmp_path / ("journal-%s.jsonl" % run)
            self.drill(build_world(),
                       journal=IncidentJournal(str(path)))
            paths.append(path.read_bytes())
        assert paths[0] == paths[1]

    def test_probe_and_feed_schedule_nothing(self):
        from repro.ops import probe_world, run_doctor
        world = build_world()
        watcher = Watcher(checks=("daemon-liveness",))
        before_clock = world.sim.now_ms
        before = PERF.snapshot()
        view = probe_world(world)
        watcher.feed(run_doctor(view), view.probed_at_ms)
        delta = PERF.delta_since(before)
        assert world.sim.now_ms == before_clock
        assert delta["events_scheduled"] == 0
        assert delta["events_run"] == 0
        assert delta["watch_sweeps"] == 1
