"""Cross-backend watch conformance: the dead-host drill produces the
*same* incident journal — record for record, modulo timestamps — on
the netsim and realnet backends.

The netsim half crashes and reboots a simulated host mid-watch; the
realnet half SIGKILLs a serve process and relaunches it.  Both watch
only ``daemon-liveness`` (the realnet kill also trips
``registry-staleness``, which has no netsim counterpart for this
failure class), journal to JSONL, and must emit exactly one onset and
one clear with identical backend-free content.
"""

import signal

import pytest

from repro import HostClass, PersonalProcessManager, World, install
from repro.ops import IncidentJournal, watch_fleet, watch_world
from repro.perf import PERF

from .test_doctor_realnet import HOSTS, launch, needs_real

TIMELESS = ("t_ms", "duration_ms")


@pytest.fixture(autouse=True)
def clean_counters():
    PERF.reset()
    yield
    PERF.reset()


def normalize(records):
    """The journal minus its clocks (virtual vs wall)."""
    return [{key: value for key, value in record.items()
             if key not in TIMELESS} for record in records]


def netsim_drill_journal(tmp_path):
    world = World(seed=11)
    for name, host_class in zip(HOSTS, (HostClass.VAX_780,
                                        HostClass.VAX_750,
                                        HostClass.SUN_2)):
        world.add_host(name, host_class)
    world.ethernet()
    world.add_user("lfc", 1001)
    install(world)
    PersonalProcessManager(world, "lfc", HOSTS[0],
                           recovery_hosts=HOSTS[:2]).start()
    world.run_for(1_000.0)

    journal = IncidentJournal(str(tmp_path / "netsim.jsonl"))

    def act(watcher, report, edges):
        if watcher.sweeps == 2:
            world.host("gamma").crash()
        elif watcher.sweeps == 5:
            world.host("gamma").reboot()

    watch_world(world, interval_ms=500.0, max_sweeps=8,
                journal=journal, checks=("daemon-liveness",),
                on_sweep=act)
    return journal.records


def incident_pairs(records):
    return [(r["check"], r["edge"]) for r in records
            if r["kind"] == "incident"]


class TestNetsimDrill:
    def test_exactly_one_onset_and_one_clear(self, tmp_path):
        records = netsim_drill_journal(tmp_path)
        assert incident_pairs(records) == [("daemon-liveness", "onset"),
                                           ("daemon-liveness", "clear")]


@needs_real
class TestCrossBackendConformance:
    def realnet_drill_journal(self, tmp_path):
        from repro.realnet.session import launch_hosts

        journal = IncidentJournal(str(tmp_path / "realnet.jsonl"))
        relaunched = []
        with launch() as fleet:
            def act(watcher, report, edges):
                if watcher.sweeps == 2:
                    victim = fleet.processes[HOSTS.index("gamma")]
                    victim.send_signal(signal.SIGKILL)
                    victim.wait()
                elif watcher.sweeps == 5:
                    # launch_hosts blocks until gamma republishes, so
                    # the next sweep deterministically sees the clear.
                    relaunched.append(launch_hosts(
                        ["gamma"], registry_path=fleet.registry_path))
            try:
                watch_fleet(fleet.registry_path, interval_ms=300.0,
                            max_sweeps=8, expected_hosts=HOSTS,
                            timeout_ms=2_000.0, journal=journal,
                            checks=("daemon-liveness",), on_sweep=act)
            finally:
                for extra in relaunched:
                    extra.shutdown()
        return journal.records

    def test_same_journal_modulo_timestamps(self, tmp_path):
        sim_records = netsim_drill_journal(tmp_path)
        real_records = self.realnet_drill_journal(tmp_path)

        assert incident_pairs(real_records) == \
            incident_pairs(sim_records) == \
            [("daemon-liveness", "onset"), ("daemon-liveness", "clear")]

        sim, real = normalize(sim_records), normalize(real_records)
        # The headers differ exactly in the backend (and the realnet
        # sweep interval is wall-clock, not virtual).
        assert sim[0]["backend"] == "netsim"
        assert real[0]["backend"] == "realnet"
        assert sim[0]["checks"] == real[0]["checks"]
        # The incident records are identical, field for field: same
        # seq, check, edge, entities, exit code, detail, runbook.
        assert sim[1:] == real[1:]

    def test_clear_reports_positive_downtime(self, tmp_path):
        records = self.realnet_drill_journal(tmp_path)
        clear = [r for r in records if r.get("edge") == "clear"][0]
        assert clear["duration_ms"] > 0.0
