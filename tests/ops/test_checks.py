"""Unit tests for the backend-neutral check library.

Every check gets a healthy view and at least one broken view; the
exit-code contract (distinct codes, first-failing-in-triage-order
names the exit) is pinned here because CI scripts match on it.
"""

from repro.ops import (
    CHECK_ORDER,
    EXIT_CODES,
    DoctorConfig,
    HostHealth,
    LpmHealth,
    OpsAlert,
    OrphanRecord,
    WorldView,
    check_to_dict,
    offending_entities,
    report_to_dict,
    run_checks,
)


def healthy_view(**overrides) -> WorldView:
    """A two-host netsim view that passes every check."""
    fields = dict(
        backend="netsim",
        expected_hosts=("alpha", "beta"),
        hosts={"alpha": HostHealth("alpha", up=True, daemon=True),
               "beta": HostHealth("beta", up=True, daemon=True)},
        lpms=[LpmHealth("alpha", "lfc", alive=True, siblings=("beta",)),
              LpmHealth("beta", "lfc", alive=True, siblings=("alpha",))],
    )
    fields.update(overrides)
    return WorldView(**fields)


def result_for(report, name):
    return next(r for r in report.results if r.name == name)


class TestContract:
    def test_healthy_view_exits_zero(self):
        report = run_checks(healthy_view())
        assert report.ok
        assert report.exit_code == 0
        assert [r.name for r in report.results] == list(CHECK_ORDER)

    def test_exit_codes_distinct_and_nonzero(self):
        codes = list(EXIT_CODES.values())
        assert len(set(codes)) == len(codes)
        assert all(code != 0 for code in codes)

    def test_first_failing_check_names_the_exit(self):
        # Break both the daemon layer and the trigger layer: the exit
        # code must belong to the earlier (higher-priority) check.
        view = healthy_view(
            hosts={"alpha": HostHealth("alpha", up=False, daemon=False),
                   "beta": HostHealth("beta", up=True, daemon=True)},
            alerts=[OpsAlert("ops:host-down", "x", 1.0)])
        report = run_checks(view)
        assert not report.ok
        assert report.failing[0].name == "daemon-liveness"
        assert report.exit_code == EXIT_CODES["daemon-liveness"]

    def test_render_and_to_dict(self):
        report = run_checks(healthy_view())
        text = report.render()
        assert "doctor: healthy (exit 0)" in text
        for name in CHECK_ORDER:
            assert name in text
        as_dict = report.to_dict()
        assert as_dict["ok"] is True
        assert [c["name"] for c in as_dict["checks"]] == list(CHECK_ORDER)


class TestDaemonLiveness:
    def test_down_host(self):
        view = healthy_view(hosts={
            "alpha": HostHealth("alpha", up=True, daemon=True),
            "beta": HostHealth("beta", up=False, daemon=False)})
        report = run_checks(view)
        result = result_for(report, "daemon-liveness")
        assert not result.ok and "beta" in result.detail
        assert report.exit_code == 10

    def test_dead_daemon_on_up_host(self):
        view = healthy_view(hosts={
            "alpha": HostHealth("alpha", up=True, daemon=True),
            "beta": HostHealth("beta", up=True, daemon=False)})
        result = result_for(run_checks(view), "daemon-liveness")
        assert not result.ok and "daemon dead" in result.detail

    def test_expected_host_never_probed(self):
        view = healthy_view(expected_hosts=("alpha", "beta", "gamma"))
        result = result_for(run_checks(view), "daemon-liveness")
        assert not result.ok and "gamma" in result.detail


class TestLpmLiveness:
    def test_dead_lpm(self):
        view = healthy_view(lpms=[
            LpmHealth("alpha", "lfc", alive=True),
            LpmHealth("beta", "lfc", alive=False)])
        report = run_checks(view)
        result = result_for(report, "lpm-liveness")
        assert not result.ok and "lfc@beta" in result.detail
        assert report.exit_code == 11

    def test_idle_world_is_healthy(self):
        result = result_for(run_checks(healthy_view(lpms=[])),
                            "lpm-liveness")
        assert result.ok and "idle" in result.detail


class TestOrphans:
    def test_orphan_fails(self):
        view = healthy_view(orphans=[
            OrphanRecord("alpha", "lfc", pid=42, command="solver")])
        report = run_checks(view)
        result = result_for(report, "orphan-processes")
        assert not result.ok and "solver" in result.detail
        assert report.exit_code == 12


class TestOverlayDegree:
    def test_not_applicable_without_sparse_policy(self):
        result = result_for(run_checks(healthy_view()), "overlay-degree")
        assert result.ok and "not applicable" in result.detail

    def test_degree_over_bound_fails(self):
        peers = tuple("h%d" % i for i in range(9))
        view = healthy_view(
            sparse_degree=2, topology_policy="sparse",
            lpms=[LpmHealth("alpha", "lfc", alive=True, siblings=peers),
                  LpmHealth("beta", "lfc", alive=True,
                            siblings=("alpha",))])
        report = run_checks(view)
        result = result_for(report, "overlay-degree")
        assert not result.ok and "lfc@alpha=9" in result.detail
        assert report.exit_code == 13

    def test_degree_within_slack_passes(self):
        view = healthy_view(sparse_degree=2, topology_policy="sparse")
        assert result_for(run_checks(view), "overlay-degree").ok


class TestBroadcastCoverage:
    def test_partitioned_overlay_fails(self):
        view = healthy_view(
            sparse_degree=2, topology_policy="sparse",
            lpms=[LpmHealth("alpha", "lfc", alive=True, siblings=()),
                  LpmHealth("beta", "lfc", alive=True, siblings=())])
        report = run_checks(view)
        result = result_for(report, "broadcast-coverage")
        assert not result.ok and "partitioned" in result.detail
        assert report.exit_code == 14

    def test_edges_count_in_either_direction(self):
        # beta lists alpha but not vice versa: still connected.
        view = healthy_view(
            sparse_degree=2, topology_policy="sparse",
            lpms=[LpmHealth("alpha", "lfc", alive=True, siblings=()),
                  LpmHealth("beta", "lfc", alive=True,
                            siblings=("alpha",))])
        assert result_for(run_checks(view), "broadcast-coverage").ok

    def test_dead_lpms_do_not_partition(self):
        view = healthy_view(
            sparse_degree=2, topology_policy="sparse",
            lpms=[LpmHealth("alpha", "lfc", alive=True,
                            siblings=("beta",)),
                  LpmHealth("beta", "lfc", alive=True,
                            siblings=("alpha",)),
                  LpmHealth("gamma", "lfc", alive=False, siblings=())])
        assert result_for(run_checks(view), "broadcast-coverage").ok


class TestRpcAnomalies:
    def test_retransmission_storm_fails(self):
        view = healthy_view(counters={"requests_retransmitted": 100})
        report = run_checks(view)
        result = result_for(report, "rpc-anomalies")
        assert not result.ok and "100 retransmissions" in result.detail
        assert report.exit_code == 15

    def test_pending_request_pileup_fails(self):
        view = healthy_view(lpms=[
            LpmHealth("alpha", "lfc", alive=True, pending_requests=65)])
        result = result_for(run_checks(view), "rpc-anomalies")
        assert not result.ok and "pending" in result.detail

    def test_thresholds_come_from_config(self):
        view = healthy_view(counters={"requests_retransmitted": 3})
        config = DoctorConfig(max_retransmits=2)
        result = result_for(run_checks(view, config=config),
                            "rpc-anomalies")
        assert not result.ok


class TestLatencySlo:
    def test_skipped_without_baseline(self):
        result = result_for(run_checks(healthy_view()), "latency-slo")
        assert result.ok and "skipped" in result.detail

    def test_regression_fails(self):
        view = healthy_view(latency={
            "rpc_rtt": {"count": 20, "p99_ms": 500.0}})
        report = run_checks(view, baseline={"rpc_rtt": 100.0})
        result = result_for(report, "latency-slo")
        assert not result.ok and "rpc_rtt" in result.detail
        assert report.exit_code == 16

    def test_thin_histograms_not_judged(self):
        view = healthy_view(latency={
            "rpc_rtt": {"count": 2, "p99_ms": 500.0}})
        result = result_for(run_checks(view, baseline={"rpc_rtt": 100.0}),
                            "latency-slo")
        assert result.ok

    def test_within_budget_passes(self):
        view = healthy_view(latency={
            "rpc_rtt": {"count": 20, "p99_ms": 150.0}})
        result = result_for(run_checks(view, baseline={"rpc_rtt": 100.0}),
                            "latency-slo")
        assert result.ok


class TestRegistryStaleness:
    def test_netsim_has_no_registry(self):
        result = result_for(run_checks(healthy_view()),
                            "registry-staleness")
        assert result.ok and "netsim" in result.detail

    def test_stale_entry_fails(self):
        view = healthy_view(
            backend="realnet",
            registry_entries={"alpha": ("127.0.0.1", 1), "beta":
                              ("127.0.0.1", 2)},
            stale_entries=["beta"])
        report = run_checks(view)
        result = result_for(report, "registry-staleness")
        assert not result.ok and "beta" in result.detail
        assert report.exit_code == 17


class TestTriggerAlerts:
    def test_alert_fails(self):
        view = healthy_view(alerts=[
            OpsAlert("ops:tree-repair-storm", "11 repairs", 5.0)])
        report = run_checks(view)
        result = result_for(report, "trigger-alerts")
        assert not result.ok
        assert "ops:tree-repair-storm" in result.detail
        assert report.exit_code == 18


class TestSharedSchema:
    """report_to_dict/check_to_dict: the one serialization shared by
    ``doctor --json`` and the watch incident journal."""

    def test_report_dict_shape(self):
        view = healthy_view(probed_at_ms=1234.5)
        report = run_checks(view)
        as_dict = report_to_dict(report)
        assert as_dict["backend"] == "netsim"
        assert as_dict["ok"] is True
        assert as_dict["exit_code"] == 0
        assert as_dict["probed_at_ms"] == 1234.5
        assert [c["name"] for c in as_dict["checks"]] == list(CHECK_ORDER)
        assert as_dict == report.to_dict()

    def test_every_check_carries_duration(self):
        report = run_checks(healthy_view())
        for check in report_to_dict(report)["checks"]:
            assert check["duration_ms"] is not None
            assert check["duration_ms"] >= 0.0

    def test_check_dict_keys_stable(self):
        report = run_checks(healthy_view())
        assert set(check_to_dict(report.results[0])) == {
            "name", "ok", "detail", "exit_code", "duration_ms", "data"}


class TestOffendingEntities:
    def test_daemon_liveness_merges_all_failure_lists(self):
        view = healthy_view(
            expected_hosts=("alpha", "beta", "gamma"),
            hosts={"alpha": HostHealth("alpha", up=False, daemon=False),
                   "beta": HostHealth("beta", up=True, daemon=False)})
        result = result_for(run_checks(view), "daemon-liveness")
        assert offending_entities(result) == ("alpha", "beta", "gamma")

    def test_lpm_liveness_names_user_at_host(self):
        view = healthy_view(lpms=[
            LpmHealth("alpha", "lfc", alive=False),
            LpmHealth("beta", "lfc", alive=True, siblings=("alpha",))])
        result = result_for(run_checks(view), "lpm-liveness")
        assert offending_entities(result) == ("lfc@alpha",)

    def test_orphans_name_host_and_pid(self):
        view = healthy_view(orphans=[
            OrphanRecord("beta", "lfc", 42, "solver")])
        result = result_for(run_checks(view), "orphan-processes")
        assert offending_entities(result) == ("beta:42",)

    def test_registry_staleness_names_stale_hosts(self):
        view = healthy_view(
            backend="realnet",
            registry_entries={"alpha": ("127.0.0.1", 1),
                              "beta": ("127.0.0.1", 2)},
            stale_entries=["beta"])
        result = result_for(run_checks(view), "registry-staleness")
        assert offending_entities(result) == ("beta",)

    def test_trigger_alerts_name_the_triggers(self):
        view = healthy_view(alerts=[
            OpsAlert("ops:host-down", "x", 1.0),
            OpsAlert("ops:host-down", "y", 2.0),
            OpsAlert("ops:ccs-flap", "z", 3.0)])
        result = result_for(run_checks(view), "trigger-alerts")
        assert offending_entities(result) == ("ops:ccs-flap",
                                              "ops:host-down")

    def test_passing_check_blames_nobody(self):
        report = run_checks(healthy_view())
        for result in report.results:
            assert offending_entities(result) == ()
