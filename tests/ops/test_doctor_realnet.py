"""Doctor runs against a live ``repro serve`` fleet, and the
conformance-style assertion: both backends return the *same* verdict
(named failing check and exit code) for the same failure class."""

import signal
import socket
import sys

import pytest

from repro import HostClass, PersonalProcessManager, World, install
from repro.ops import EXIT_CODES, probe_fleet, run_doctor
from repro.perf import PERF

HOSTS = ["alpha", "beta", "gamma"]


def _real_backend_available() -> bool:
    if sys.platform.startswith("win"):
        return False
    try:
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.bind(("127.0.0.1", 0))
        probe.close()
    except OSError:
        return False
    return True


needs_real = pytest.mark.skipif(
    not _real_backend_available(),
    reason="loopback sockets unavailable; realnet cases skipped")


def launch():
    from repro.realnet.session import launch_hosts
    return launch_hosts(HOSTS, budget_s=120.0)


def doctor_netsim_with_crashed_host():
    """The netsim side of the cross-backend comparison."""
    world = World(seed=11)
    for name, host_class in zip(HOSTS, (HostClass.VAX_780,
                                        HostClass.VAX_750,
                                        HostClass.SUN_2)):
        world.add_host(name, host_class)
    world.ethernet()
    world.add_user("lfc", 1001)
    install(world)
    PersonalProcessManager(world, "lfc", HOSTS[0],
                           recovery_hosts=HOSTS[:2]).start()
    world.run_for(1_000.0)
    world.host(HOSTS[-1]).crash()
    return world.doctor()


@needs_real
class TestRealnetDoctor:
    def test_healthy_fleet_exits_zero(self):
        PERF.reset()
        with launch() as fleet:
            view = probe_fleet(fleet.registry_path,
                               expected_hosts=HOSTS)
            report = run_doctor(view)
        assert report.ok, report.render()
        assert report.exit_code == 0
        assert view.backend == "realnet"
        assert sorted(view.hosts) == sorted(HOSTS)

    def test_sigkilled_serve_matches_netsim_verdict(self):
        PERF.reset()
        with launch() as fleet:
            victim = fleet.processes[HOSTS.index("gamma")]
            victim.send_signal(signal.SIGKILL)
            victim.wait()
            view = probe_fleet(fleet.registry_path,
                               expected_hosts=HOSTS)
            real_report = run_doctor(view)
        assert not real_report.ok
        # The kill leaves both a dead daemon and a stale registry entry.
        failing = [r.name for r in real_report.failing]
        assert failing[0] == "daemon-liveness"
        assert "registry-staleness" in failing
        assert "gamma" in real_report.failing[0].detail
        assert real_report.exit_code == EXIT_CODES["daemon-liveness"]

        # Conformance: the netsim world with the same host crashed
        # reaches the identical verdict — same named check, same exit.
        sim_report = doctor_netsim_with_crashed_host()
        assert sim_report.failing[0].name == \
            real_report.failing[0].name == "daemon-liveness"
        assert sim_report.exit_code == real_report.exit_code == 10

    def test_unpublished_expected_host_is_flagged(self):
        PERF.reset()
        with launch() as fleet:
            view = probe_fleet(fleet.registry_path,
                               expected_hosts=HOSTS + ["delta"])
            report = run_doctor(view)
        assert not report.ok
        assert report.failing[0].name == "daemon-liveness"
        assert "delta" in report.failing[0].detail

    def test_half_dead_host_times_out_instead_of_hanging(self):
        # A zombie host: the listener accepts TCP (the kernel finishes
        # the handshake off the backlog) but nothing ever answers the
        # __status__ dial.  The probe must classify it as a timeout
        # within its budget — never hang the whole sweep.
        import time

        from repro.realnet.registry import HostRegistry

        PERF.reset()
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(5)
        port = listener.getsockname()[1]
        try:
            with launch() as fleet:
                HostRegistry(fleet.registry_path).publish(
                    "zombie", "127.0.0.1", port)
                started = time.monotonic()
                view = probe_fleet(fleet.registry_path,
                                   expected_hosts=HOSTS + ["zombie"],
                                   timeout_ms=500.0)
                elapsed_s = time.monotonic() - started
        finally:
            listener.close()
        assert elapsed_s < 30.0, "probe must bound its own wait"
        zombie = view.hosts["zombie"]
        assert not zombie.up
        assert zombie.detail == "status probe timed out"
        assert "zombie" in view.stale_entries
        report = run_doctor(view)
        assert report.exit_code == EXIT_CODES["daemon-liveness"]
        assert "zombie" in report.failing[0].detail
