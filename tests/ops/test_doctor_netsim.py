"""End-to-end doctor runs against in-process netsim worlds."""

import pytest

from repro import (
    HostClass,
    PersonalProcessManager,
    PPMConfig,
    World,
    install,
)
from repro.ops import EXIT_CODES, probe_world, run_doctor
from repro.perf import PERF

HOSTS = [("alpha", HostClass.VAX_780), ("beta", HostClass.VAX_750),
         ("gamma", HostClass.SUN_2)]


def build_world(seed=7, config=None):
    world = World(seed=seed, config=config or PPMConfig())
    for name, host_class in HOSTS:
        world.add_host(name, host_class)
    world.ethernet()
    world.add_user("lfc", 1001)
    install(world)
    return world


def start_session(world, home="alpha"):
    ppm = PersonalProcessManager(world, "lfc", home,
                                 recovery_hosts=["alpha", "beta"])
    ppm.start()
    return ppm


@pytest.fixture(autouse=True)
def clean_counters():
    PERF.reset()
    yield
    PERF.reset()


class TestHealthyWorld:
    def test_exits_zero(self):
        world = build_world()
        ppm = start_session(world)
        ppm.create_process("coordinator", host="beta")
        world.run_for(2_000.0)
        report = world.doctor()
        assert report.ok, report.render()
        assert report.exit_code == 0

    def test_probe_is_read_only(self):
        world = build_world()
        start_session(world)
        world.run_for(2_000.0)
        before_now = world.sim.now_ms
        before_scheduled = PERF.events_scheduled
        probe_world(world)
        assert world.sim.now_ms == before_now
        assert PERF.events_scheduled == before_scheduled


class TestFailureClasses:
    def test_crashed_host_fails_daemon_liveness(self):
        world = build_world()
        start_session(world)
        world.run_for(1_000.0)
        world.host("gamma").crash()
        report = world.doctor()
        assert not report.ok
        assert report.failing[0].name == "daemon-liveness"
        assert report.exit_code == EXIT_CODES["daemon-liveness"] == 10
        assert "gamma" in report.failing[0].detail

    def test_orphan_process_detected(self):
        world = build_world()
        start_session(world)          # LPM on alpha only
        world.run_for(1_000.0)
        # A user process on beta with no LPM administering it there.
        world.host("beta").spawn_user_process("lfc", "stray-solver")
        report = world.doctor()
        names = [r.name for r in report.failing]
        assert names == ["orphan-processes"]
        assert report.exit_code == EXIT_CODES["orphan-processes"]
        assert "stray-solver" in report.failing[0].detail

    def test_rpc_retransmission_anomaly(self):
        world = build_world()
        start_session(world)
        world.run_for(1_000.0)
        PERF.requests_retransmitted += 100
        report = world.doctor()
        assert [r.name for r in report.failing] == ["rpc-anomalies"]
        assert report.exit_code == EXIT_CODES["rpc-anomalies"]

    def test_latency_slo_regression_against_tight_baseline(self):
        world = build_world()
        ppm = start_session(world)
        ppm.enable_span_tracing()
        for _ in range(6):
            ppm.create_process("coordinator", host="beta")
        world.run_for(2_000.0)
        # An impossible baseline: any measured p99 is a regression.
        report = world.doctor(baseline={"rpc_rtt": 0.001})
        assert [r.name for r in report.failing] == ["latency-slo"]
        assert report.exit_code == EXIT_CODES["latency-slo"]


class TestSparseOverlay:
    def test_sparse_world_passes_overlay_checks(self):
        config = PPMConfig(topology_policy="sparse", sparse_degree=2)
        world = build_world(config=config)
        ppm = start_session(world)
        ppm.create_process("coordinator", host="beta")
        ppm.create_process("solver", host="gamma")
        world.run_for(2_000.0)
        report = world.doctor()
        assert report.ok, report.render()
        by_name = {r.name: r for r in report.results}
        assert "bound" in by_name["overlay-degree"].detail
        assert "reachable" in by_name["broadcast-coverage"].detail \
            or "trivially" in by_name["broadcast-coverage"].detail

    def test_on_demand_world_skips_overlay_invariants(self):
        world = build_world()
        start_session(world)
        world.run_for(1_000.0)
        view = probe_world(world)
        assert view.sparse_degree is None
        report = run_doctor(view)
        by_name = {r.name: r for r in report.results}
        assert "not applicable" in by_name["overlay-degree"].detail


class TestCounters:
    def test_doctor_counters_move_only_on_runs(self):
        world = build_world()
        start_session(world)
        world.run_for(1_000.0)
        assert PERF.doctor_runs == 0
        world.doctor()
        assert PERF.doctor_runs == 1
        assert PERF.doctor_checks_failed == 0
        world.host("gamma").crash()
        world.doctor()
        assert PERF.doctor_runs == 2
        assert PERF.doctor_checks_failed >= 1
