"""Deterministic firing tests for the prebuilt operational triggers."""

import pytest

from repro.ops import install_ops_triggers, run_checks
from repro.ops.checks import HostHealth, WorldView
from repro.perf import PERF
from repro.tracing import TraceEventType, TraceRecorder, TriggerEngine


class Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def make_engine():
    clock = Clock()
    recorder = TraceRecorder(clock)
    engine = TriggerEngine(recorder)
    return clock, recorder, engine


@pytest.fixture(autouse=True)
def clean_counters():
    PERF.reset()
    yield
    PERF.reset()


def fired(alerts):
    return sorted(alert.name for alert in alerts)


class TestStandardSet:
    def test_install_arms_at_least_four(self):
        clock, recorder, engine = make_engine()
        install_ops_triggers(engine)
        assert len(engine.triggers) >= 4
        assert all(t.name.startswith("ops:") for t in engine.triggers)

    def test_host_down_fires_on_failure_detected(self):
        clock, recorder, engine = make_engine()
        alerts = install_ops_triggers(engine)
        recorder.record(TraceEventType.FAILURE_DETECTED, host="alpha")
        assert "ops:host-down" in fired(alerts)
        assert PERF.ops_alerts_raised == 1

    def test_tree_repair_storm_fires_past_threshold(self):
        clock, recorder, engine = make_engine()
        alerts = install_ops_triggers(engine, repair_threshold=10)
        PERF.tree_repairs += 9
        recorder.record(TraceEventType.SIBLING_MESSAGE, host="alpha")
        assert "ops:tree-repair-storm" not in fired(alerts)
        PERF.tree_repairs += 2
        recorder.record(TraceEventType.SIBLING_MESSAGE, host="alpha")
        assert "ops:tree-repair-storm" in fired(alerts)

    def test_ccs_flap_fires_on_oscillation_in_window(self):
        clock, recorder, engine = make_engine()
        alerts = install_ops_triggers(engine, flap_window_ms=10_000.0,
                                      flap_threshold=3)
        recorder.record(TraceEventType.CCS_ASSUMED, host="alpha")
        clock.now = 1_000.0
        recorder.record(TraceEventType.CCS_RELINQUISHED, host="alpha")
        assert "ops:ccs-flap" not in fired(alerts)
        clock.now = 2_000.0
        recorder.record(TraceEventType.CCS_ASSUMED, host="beta")
        assert "ops:ccs-flap" in fired(alerts)

    def test_ccs_flap_ignores_changes_outside_window(self):
        clock, recorder, engine = make_engine()
        alerts = install_ops_triggers(engine, flap_window_ms=1_000.0,
                                      flap_threshold=3)
        for step in range(4):
            clock.now = step * 5_000.0
            recorder.record(TraceEventType.CCS_ASSUMED, host="alpha")
        assert "ops:ccs-flap" not in fired(alerts)

    def test_retransmission_storm_counts_delta_since_armed(self):
        PERF.requests_retransmitted = 1_000
        clock, recorder, engine = make_engine()
        alerts = install_ops_triggers(engine, retransmit_threshold=25)
        recorder.record(TraceEventType.SIBLING_MESSAGE, host="alpha")
        assert "ops:retransmission-storm" not in fired(alerts), \
            "pre-existing count must not fire a fresh trigger"
        PERF.requests_retransmitted += 25
        recorder.record(TraceEventType.SIBLING_MESSAGE, host="alpha")
        assert "ops:retransmission-storm" in fired(alerts)

    def test_dedup_blowup_fires_from_size_fn(self):
        clock, recorder, engine = make_engine()
        size = {"n": 0}
        alerts = install_ops_triggers(engine, dedup_size_fn=lambda: size["n"],
                                      dedup_threshold=100)
        recorder.record(TraceEventType.SIBLING_MESSAGE, host="alpha")
        assert "ops:dedup-cache-blowup" not in fired(alerts)
        size["n"] = 101
        recorder.record(TraceEventType.SIBLING_MESSAGE, host="alpha")
        assert "ops:dedup-cache-blowup" in fired(alerts)

    def test_p99_regression_needs_baseline_and_samples(self):
        clock, recorder, engine = make_engine()
        summary = {"rpc_rtt": {"count": 0, "p99_ms": None}}
        alerts = install_ops_triggers(engine, summary_fn=lambda: summary,
                                      baseline={"rpc_rtt": 100.0})
        recorder.record(TraceEventType.SIBLING_MESSAGE, host="alpha")
        assert "ops:p99-regression" not in fired(alerts)
        summary["rpc_rtt"] = {"count": 20, "p99_ms": 500.0}
        recorder.record(TraceEventType.SIBLING_MESSAGE, host="alpha")
        assert "ops:p99-regression" in fired(alerts)
        assert "500.0ms" in alerts[0].detail

    def test_p99_trigger_not_installed_without_baseline(self):
        clock, recorder, engine = make_engine()
        install_ops_triggers(engine, summary_fn=lambda: {})
        names = [t.name for t in engine.triggers]
        assert "ops:p99-regression" not in names


class TestIdempotentInstall:
    def test_arming_twice_does_not_double_register(self):
        clock, recorder, engine = make_engine()
        alerts = install_ops_triggers(engine)
        names_once = sorted(t.name for t in engine.triggers)
        assert install_ops_triggers(engine, alerts=alerts) is alerts
        assert sorted(t.name for t in engine.triggers) == names_once
        assert len(names_once) == len(set(names_once))

    def test_rearming_does_not_double_latch(self):
        clock, recorder, engine = make_engine()
        alerts = install_ops_triggers(engine)
        install_ops_triggers(engine, alerts=alerts)
        recorder.record(TraceEventType.FAILURE_DETECTED, host="alpha")
        assert fired(alerts).count("ops:host-down") == 1
        assert PERF.ops_alerts_raised == 1

    def test_second_install_adds_only_missing_triggers(self):
        # A first, minimal install; the second brings the dedup
        # trigger its size_fn enables — and nothing else twice.
        clock, recorder, engine = make_engine()
        alerts = install_ops_triggers(engine)
        before = sorted(t.name for t in engine.triggers)
        install_ops_triggers(engine, alerts=alerts,
                             dedup_size_fn=lambda: 0)
        after = sorted(t.name for t in engine.triggers)
        assert after == sorted(before + ["ops:dedup-cache-blowup"])


class TestWatchOnsetTrigger:
    def test_onset_edges_latch_per_incident(self):
        clock, recorder, engine = make_engine()
        alerts = install_ops_triggers(engine)
        recorder.record(TraceEventType.WATCH_EDGE, host="",
                        check="daemon-liveness", edge="onset",
                        entities=["gamma"], exit_code=10)
        recorder.record(TraceEventType.WATCH_EDGE, host="",
                        check="daemon-liveness", edge="clear",
                        entities=["gamma"], exit_code=0)
        recorder.record(TraceEventType.WATCH_EDGE, host="",
                        check="lpm-liveness", edge="onset",
                        entities=["lfc@beta"], exit_code=11)
        onsets = [a for a in alerts if a.name == "ops:watch-onset"]
        assert len(onsets) == 2, "each onset is a distinct incident"
        assert "daemon-liveness" in onsets[0].detail
        assert "gamma" in onsets[0].detail
        assert "lpm-liveness" in onsets[1].detail


class TestLatching:
    def test_alerts_latch_once(self):
        clock, recorder, engine = make_engine()
        alerts = install_ops_triggers(engine)
        for _ in range(3):
            recorder.record(TraceEventType.FAILURE_DETECTED, host="a")
        assert fired(alerts).count("ops:host-down") == 1
        assert PERF.ops_alerts_raised == 1

    def test_alerts_fail_the_doctor_check(self):
        clock, recorder, engine = make_engine()
        alerts = install_ops_triggers(engine)
        recorder.record(TraceEventType.FAILURE_DETECTED, host="alpha")
        view = WorldView(
            backend="netsim", expected_hosts=("alpha",),
            hosts={"alpha": HostHealth("alpha", up=True, daemon=True)},
            alerts=list(alerts))
        report = run_checks(view)
        assert [r.name for r in report.failing] == ["trigger-alerts"]
        assert "ops:host-down" in report.failing[0].detail


class TestLatencyRising:
    """ops:latency-rising — trend detection over the sampler rings."""

    @staticmethod
    def _sampler():
        from repro.perf import MetricsSampler
        return MetricsSampler(capacity=16)

    def test_not_installed_without_sampler(self):
        clock, recorder, engine = make_engine()
        install_ops_triggers(engine)
        assert "ops:latency-rising" not in {t.name for t in engine.triggers}

    def test_fires_on_upward_p99_trend(self):
        clock, recorder, engine = make_engine()
        sampler = self._sampler()
        alerts = install_ops_triggers(engine, sampler=sampler,
                                      rising_window_ms=60_000.0,
                                      rising_min_rate_ms_per_s=1.0)
        assert "ops:latency-rising" in {t.name for t in engine.triggers}
        sampler.sample(0.0, latency={"rpc_rtt": {"p99_ms": 100.0}})
        sampler.sample(10_000.0, latency={"rpc_rtt": {"p99_ms": 150.0}})
        clock.now = 10_000.0
        recorder.record(TraceEventType.SIBLING_MESSAGE, host="alpha")
        assert "ops:latency-rising" in fired(alerts)
        assert "rising" in alerts[0].detail

    def test_flat_or_falling_trend_stays_quiet(self):
        clock, recorder, engine = make_engine()
        sampler = self._sampler()
        alerts = install_ops_triggers(engine, sampler=sampler)
        sampler.sample(0.0, latency={"rpc_rtt": {"p99_ms": 200.0}})
        sampler.sample(10_000.0, latency={"rpc_rtt": {"p99_ms": 180.0}})
        clock.now = 10_000.0
        recorder.record(TraceEventType.SIBLING_MESSAGE, host="alpha")
        assert "ops:latency-rising" not in fired(alerts)

    def test_rate_floor_filters_wobble(self):
        clock, recorder, engine = make_engine()
        sampler = self._sampler()
        alerts = install_ops_triggers(engine, sampler=sampler,
                                      rising_min_rate_ms_per_s=5.0)
        # +20ms over 10s = 2 ms/s: rising, but under the 5 ms/s floor.
        sampler.sample(0.0, latency={"rpc_rtt": {"p99_ms": 100.0}})
        sampler.sample(10_000.0, latency={"rpc_rtt": {"p99_ms": 120.0}})
        clock.now = 10_000.0
        recorder.record(TraceEventType.SIBLING_MESSAGE, host="alpha")
        assert "ops:latency-rising" not in fired(alerts)

    def test_single_sample_is_not_a_trend(self):
        clock, recorder, engine = make_engine()
        sampler = self._sampler()
        alerts = install_ops_triggers(engine, sampler=sampler)
        sampler.sample(0.0, latency={"rpc_rtt": {"p99_ms": 500.0}})
        recorder.record(TraceEventType.SIBLING_MESSAGE, host="alpha")
        assert "ops:latency-rising" not in fired(alerts)
