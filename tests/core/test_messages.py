"""Tests for the message envelope semantics."""

from repro.core.messages import TOOL_KINDS, Message, MsgKind


def test_make_reply_reverses_route_and_targets_origin():
    request = Message(kind=MsgKind.GATHER, req_id=7, origin="a",
                      user="u", route=["a", "b", "c"], final_dest="c")
    reply = request.make_reply(MsgKind.GATHER_REPLY, "c",
                               {"ok": True})
    assert reply.route == ["c", "b", "a"]
    assert reply.final_dest == "a"
    assert reply.reply_to == 7
    assert reply.req_id == 7
    assert reply.origin == "c"
    assert reply.is_reply
    assert not request.is_reply


def test_make_reply_defaults_empty_payload():
    request = Message(kind=MsgKind.CONTROL, req_id=1, origin="a",
                      user="u")
    reply = request.make_reply(MsgKind.CONTROL_ACK, "b")
    assert reply.payload == {}


def test_tool_kinds_cover_every_tool_verb():
    tool_values = {kind for kind in MsgKind
                   if kind.value.startswith("tool_")}
    assert tool_values == set(TOOL_KINDS)


def test_str_rendering():
    message = Message(kind=MsgKind.CONTROL, req_id=3, origin="a",
                      user="u", final_dest="b")
    assert "control#3" in str(message)
    assert "a->b" in str(message)
    broadcastish = Message(kind=MsgKind.LOCATE, req_id=4, origin="a",
                           user="u")
    assert "a->*" in str(broadcastish)
