"""Tests for crash recovery and the CCS (section 5)."""

import pytest

from repro import PPMClient, PPMConfig, spinner_spec
from repro.core.recovery import RecoveryState
from repro.tracing import TraceEventType

from .conftest import build_world, lpm_of

FAST = PPMConfig(
    ccs_probe_interval_ms=5_000.0,
    recovery_retry_interval_ms=3_000.0,
    time_to_die_ms=60_000.0,
    request_timeout_ms=8_000.0,
)


def make_session(recovery=("alpha", "beta"), hosts=("beta", "gamma"),
                 config=FAST):
    """A session rooted on alpha with processes on the given hosts."""
    world = build_world(config=config, recovery=list(recovery))
    client = PPMClient(world, "lfc", "alpha").connect()
    gpids = {}
    for host in hosts:
        gpids[host] = client.create_process("job-%s" % host, host=host,
                                            program=spinner_spec(None))
    return world, client, gpids


def test_ccs_comes_from_recovery_file():
    world, _client, _g = make_session(recovery=("beta", "alpha"))
    assert lpm_of(world, "alpha").ccs_host == "beta"


def test_default_ccs_is_first_host():
    world = build_world(recovery=None)
    PPMClient(world, "lfc", "gamma").connect()
    assert lpm_of(world, "gamma").ccs_host == "gamma"


def test_ccs_passed_to_new_siblings():
    # "Upon creation of a sibling LPM, the network address of the CCS is
    # passed along."
    world, _client, _g = make_session()
    assert lpm_of(world, "beta").ccs_host == "alpha"
    assert lpm_of(world, "gamma").ccs_host == "alpha"


def test_failure_reported_to_ccs():
    world, _client, _g = make_session(hosts=("beta",))
    # Give beta its own channel to gamma so beta (a non-CCS LPM)
    # detects gamma's crash and must report it to the CCS on alpha.
    beta_client = PPMClient(world, "lfc", "beta").connect()
    beta_client.create_process("job-gamma", host="gamma",
                               program=spinner_spec(None))
    world.host("gamma").crash()
    world.run_for(20_000.0)
    lpm_beta = lpm_of(world, "beta")
    assert lpm_beta.recovery.state is RecoveryState.NORMAL
    assert lpm_beta.ccs_host == "alpha"
    reports = world.recorder.select(TraceEventType.CCS_CONTACTED,
                                    host="beta")
    assert reports  # beta reported the loss and reached the CCS


def test_ccs_crash_triggers_search_to_next_host():
    # recovery list: alpha (CCS), beta.  alpha dies; beta and gamma must
    # find beta as the stand-in CCS.
    world, _client, _g = make_session(recovery=("alpha", "beta"),
                                      hosts=("beta", "gamma"))
    world.host("alpha").crash()
    world.run_for(60_000.0)
    lpm_beta = lpm_of(world, "beta")
    lpm_gamma = lpm_of(world, "gamma")
    assert lpm_beta.ccs_host == "beta"  # assumed the role
    assert lpm_beta.recovery.state is RecoveryState.ACTING_CCS
    assert lpm_gamma.ccs_host == "beta"
    assert world.recorder.select(TraceEventType.CCS_ASSUMED, host="beta")


def test_stand_in_ccs_probes_and_relinquishes():
    world, _client, _g = make_session(recovery=("alpha", "beta"),
                                      hosts=("beta", "gamma"))
    world.host("alpha").crash()
    world.run_for(60_000.0)
    assert lpm_of(world, "beta").recovery.state is RecoveryState.ACTING_CCS
    probes_before = len(world.recorder.select(TraceEventType.CCS_PROBE))
    world.run_for(30_000.0)
    assert len(world.recorder.select(TraceEventType.CCS_PROBE)) > \
        probes_before  # low-frequency probing of the higher host
    # alpha comes back: the stand-in must relinquish to it.
    world.host("alpha").reboot()
    world.run_for(120_000.0)
    lpm_beta = lpm_of(world, "beta")
    assert lpm_beta.ccs_host == "alpha"
    assert world.recorder.select(TraceEventType.CCS_RELINQUISHED,
                                 host="beta")
    assert lpm_beta.recovery.state is RecoveryState.NORMAL


def test_isolated_lpm_arms_time_to_die_and_kills_processes():
    # gamma can reach no recovery host: its user processes must be
    # terminated when time-to-die expires.
    world, _client, gpids = make_session(recovery=("alpha", "beta"),
                                         hosts=("gamma",))
    leaf = gpids["gamma"]
    world.network.set_partition([{"gamma"}])
    world.run_for(30_000.0)
    lpm_gamma = lpm_of(world, "gamma")
    assert lpm_gamma.recovery.state in (RecoveryState.ISOLATED,
                                        RecoveryState.SEARCHING)
    assert world.recorder.select(TraceEventType.TIME_TO_DIE_ARMED,
                                 host="gamma")
    world.run_for(120_000.0)
    assert world.recorder.select(TraceEventType.TIME_TO_DIE_FIRED,
                                 host="gamma")
    proc = world.host("gamma").kernel.procs.find(leaf.pid)
    assert proc is None or not proc.alive
    assert not lpm_gamma.alive


def test_isolated_lpm_resumes_when_partition_heals_in_time():
    world, _client, gpids = make_session(recovery=("alpha", "beta"),
                                         hosts=("gamma",))
    leaf = gpids["gamma"]
    world.network.set_partition([{"gamma"}])
    world.run_for(30_000.0)
    lpm_gamma = lpm_of(world, "gamma")
    assert world.recorder.select(TraceEventType.TIME_TO_DIE_ARMED,
                                 host="gamma")
    world.network.heal_partition()
    world.run_for(30_000.0)  # retries reconnect well within time-to-die
    assert lpm_gamma.recovery.state is RecoveryState.NORMAL
    assert lpm_gamma.alive
    proc = world.host("gamma").kernel.procs.get(leaf.pid)
    assert proc.alive
    assert world.recorder.select(TraceEventType.RECOVERY_RESUMED,
                                 host="gamma")


def test_partition_yields_multiple_ccs_then_merges():
    # recovery list: alpha, beta.  Partition {alpha,...} / {beta, gamma}:
    # the minority side elects beta as stand-in CCS; healing merges back
    # to alpha.
    world, _client, _g = make_session(recovery=("alpha", "beta"),
                                      hosts=("beta", "gamma"))
    world.network.set_partition([{"alpha", "delta"}, {"beta", "gamma"}])
    world.run_for(60_000.0)
    lpm_beta = lpm_of(world, "beta")
    lpm_gamma = lpm_of(world, "gamma")
    assert lpm_beta.ccs_host == "beta"  # second CCS in the partition
    assert lpm_gamma.ccs_host == "beta"
    assert lpm_of(world, "alpha").ccs_host == "alpha"
    # "Connected components of this kind ... continue their operations
    # with no bounds in time": nobody armed time-to-die on the side with
    # a recovery host.
    assert not world.recorder.select(TraceEventType.TIME_TO_DIE_FIRED)
    world.network.heal_partition()
    world.run_for(120_000.0)
    assert lpm_beta.ccs_host == "alpha"
    assert lpm_beta.recovery.state is RecoveryState.NORMAL


def test_lpm_crash_handled_like_host_crash():
    # "LPM crashes are handled just as host crashes." — kill just the
    # LPM process on gamma; beta reports to the CCS and the session
    # continues.
    world, client, gpids = make_session(hosts=("beta", "gamma"))
    lpm_gamma = lpm_of(world, "gamma")
    world.host("gamma").kernel.exit(lpm_gamma.proc.pid)
    lpm_gamma.alive = False
    world.run_for(30_000.0)
    forest = client.snapshot()
    # gamma's information is lost; the snapshot degrades to a forest
    # or at least loses gamma's records.
    assert gpids["gamma"] not in forest
    assert gpids["beta"] in forest


def test_recovery_trace_sequence_is_ordered():
    world, _client, _g = make_session(recovery=("alpha", "beta"),
                                      hosts=("beta",))
    world.host("alpha").crash()
    world.run_for(60_000.0)
    events = [e.event_type for e in world.recorder.select(host="beta")
              if e.event_type in (TraceEventType.FAILURE_DETECTED,
                                  TraceEventType.CCS_SEARCH,
                                  TraceEventType.CCS_ASSUMED)]
    assert events[:3] == [TraceEventType.FAILURE_DETECTED,
                          TraceEventType.CCS_SEARCH,
                          TraceEventType.CCS_ASSUMED]
