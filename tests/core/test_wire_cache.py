"""Regression tests for the wire-layer encoding cache.

A message is sized/encoded at every hop it crosses; the cache must make
that free *without ever* serving bytes that predate a route extension —
the one legitimate in-flight mutation (broadcast forwarding appends the
next hop, failure replies re-aim ``route``/``final_dest``).
"""

import pytest

from repro.core.messages import Message, MsgKind
from repro.core.wire import HEADER_BYTES, decode, encode, message_size_bytes
from repro.errors import ReproError
from repro.perf import PERF


def _message(**overrides) -> Message:
    fields = dict(kind=MsgKind.GATHER, req_id=7, origin="alpha",
                  user="lfc", payload={"what": "snapshot"},
                  route=["alpha", "beta"], final_dest="beta")
    fields.update(overrides)
    return Message(**fields)


def test_repeat_encode_hits_cache_with_identical_bytes():
    message = _message()
    PERF.reset()
    first = encode(message)
    assert PERF.encodes_performed == 1
    again = encode(message)
    assert again == first
    assert PERF.encode_cache_hits == 1
    assert PERF.encodes_performed == 1
    assert message_size_bytes(message) == HEADER_BYTES + len(first)


def test_route_extension_mid_flight_invalidates_cache():
    message = _message()
    stale = encode(message)
    # The broadcast-forwarding pattern: the route grows hop by hop,
    # sometimes via in-place append on the live message.
    message.route.append("gamma")
    fresh = encode(message)
    assert fresh != stale
    assert decode(fresh).route == ["alpha", "beta", "gamma"]
    assert message_size_bytes(message) == HEADER_BYTES + len(fresh)


def test_route_reassignment_invalidates_cache():
    message = _message()
    encode(message)
    message.route = ["alpha", "beta", "gamma", "delta"]
    assert decode(encode(message)).route == message.route


def test_failure_reaim_invalidates_cache():
    # _forward's no-route reply rewrites route and final_dest on an
    # already-encoded reply; both are part of the fingerprint.
    message = _message(reply_to=7, kind=MsgKind.GATHER_REPLY)
    encode(message)
    message.route = ["beta", "alpha"]
    message.final_dest = "alpha"
    decoded = decode(encode(message))
    assert decoded.final_dest == "alpha"
    assert decoded.route == ["beta", "alpha"]


def test_encode_failure_is_not_cached():
    message = _message(payload={"bad": object()})
    with pytest.raises(ReproError):
        encode(message)
    message.payload = {"good": 1}
    message.route = list(message.route) + ["gamma"]  # new fingerprint
    assert decode(encode(message)).payload == {"good": 1}


def test_size_charged_once_per_distinct_encoding():
    message = _message()
    PERF.reset()
    for _ in range(5):
        message_size_bytes(message)
    message.route.append("gamma")
    for _ in range(5):
        message_size_bytes(message)
    assert PERF.encodes_performed == 2
    assert PERF.encode_cache_hits == 8
    assert PERF.size_calls == 10
