"""Tests for the PPM shell (the command-interpreter tool)."""

import pytest

from repro import PersonalProcessManager
from repro.core.shell import PPMShell


@pytest.fixture
def shell(world):
    ppm = PersonalProcessManager(world, "lfc", "alpha",
                                 recovery_hosts=["alpha", "beta"])
    ppm.start()
    return PPMShell(ppm), world


def test_help_lists_commands(shell):
    sh, _world = shell
    text = sh.execute("help")
    for command in ("snapshot", "create", "rstats", "files", "ipc"):
        assert command in text


def test_empty_and_unknown_lines(shell):
    sh, _world = shell
    assert sh.execute("") == ""
    assert "unknown command" in sh.execute("frobnicate")
    assert "parse error" in sh.execute('create "unterminated')


def test_create_and_snapshot(shell):
    sh, _world = shell
    out = sh.execute("create beta solver spinner")
    assert out.startswith("created <beta,")
    snap = sh.execute("snapshot")
    assert "solver" in snap


def test_create_usage_and_bad_program(shell):
    sh, _world = shell
    assert "usage" in sh.execute("create beta")
    assert "error" in sh.execute("create beta job daemon")


def test_control_verbs(shell):
    sh, world = shell
    gpid_text = sh.execute("create beta job spinner").split()[1]
    assert "ok" in sh.execute("stop %s" % gpid_text)
    assert "(stopped)" in sh.execute("snapshot")
    assert "ok" in sh.execute("cont %s" % gpid_text)
    assert "ok" in sh.execute("bg %s" % gpid_text)
    assert "ok" in sh.execute("fg %s" % gpid_text)
    assert "ok" in sh.execute("kill %s" % gpid_text)


def test_control_bad_pid_reports_error(shell):
    sh, _world = shell
    assert "error" in sh.execute("stop <beta,9999>")
    assert "error" in sh.execute("stop nonsense")


def test_computation_verbs_and_sites(shell):
    sh, _world = shell
    root = sh.execute("create alpha root spinner").split()[1]
    sh.execute("create beta leaf spinner")
    out = sh.execute("sites %s" % root)
    assert "alpha" in out
    out = sh.execute("stopall %s" % root)
    assert "1 processes signalled" in out
    assert "not found" in sh.execute("sites <alpha,9999>")


def test_worker_and_rstats(shell):
    sh, world = shell
    sh.execute("create beta batch worker:1000:3")
    world.run_for(3_000.0)
    out = sh.execute("rstats")
    assert "batch" in out


def test_files_and_fds(shell):
    sh, _world = shell
    out = sh.execute("files")
    assert "no open files" in out
    assert "error" in sh.execute("fds")  # missing argument


def test_chart(shell):
    sh, world = shell
    gpid_text = sh.execute("create beta job spinner").split()[1]
    sh.execute("stop %s" % gpid_text)
    world.run_for(2_000.0)
    sh.execute("cont %s" % gpid_text)
    world.run_for(1_000.0)
    chart = sh.execute("chart")
    assert "state chart" in chart
    assert gpid_text.replace("<", "<") in chart


def test_session_and_history(shell):
    sh, _world = shell
    sh.execute("create beta job spinner")
    session = sh.execute("session")
    assert "CCS: alpha" in session
    assert "siblings: beta" in session
    history = sh.execute("history 5")
    assert "timeline" in history


def test_ipc_views(shell):
    sh, _world = shell
    sh.execute("create beta job spinner")
    assert "alpha" in sh.execute("ipc")
    assert "message kind" in sh.execute("ipc kinds")
    assert "no user-process IPC" in sh.execute("ipc user")


def test_ipc_user_view_with_traffic(shell):
    sh, world = shell
    from repro.ids import GlobalPid
    from repro.unixsim import EchoProgram, TalkerProgram
    host = world.host("alpha")
    server = host.spawn_user_process("lfc", "srv", program=EchoProgram())
    host.spawn_user_process(
        "lfc", "cli", program=TalkerProgram(
            GlobalPid("alpha", server.pid), interval_ms=10.0, count=2))
    world.run_for(2_000.0)
    assert "srv" not in sh.execute("ipc user")  # gpids, not names
    assert "<alpha," in sh.execute("ipc user")


def test_adopt(shell):
    sh, world = shell
    proc = world.host("alpha").spawn_user_process("lfc", "wild")
    out = sh.execute("adopt %d" % proc.pid)
    assert "adopted 1" in out
    assert "error" in sh.execute("adopt 9999")
