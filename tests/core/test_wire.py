"""Tests for message serialisation."""

import pytest

from repro.errors import ReproError
from repro.ids import BroadcastId
from repro.core.messages import Message, MsgKind
from repro.core.wire import HEADER_BYTES, decode, encode, message_size_bytes


def sample_message(**overrides):
    fields = dict(kind=MsgKind.CONTROL, req_id=42, origin="alpha",
                  user="lfc", payload={"pid": 7, "action": "stop"},
                  route=["alpha", "beta"], final_dest="beta")
    fields.update(overrides)
    return Message(**fields)


def test_roundtrip_plain():
    message = sample_message()
    decoded = decode(encode(message))
    assert decoded.kind is message.kind
    assert decoded.req_id == message.req_id
    assert decoded.payload == message.payload
    assert decoded.route == message.route
    assert decoded.final_dest == message.final_dest
    assert decoded.reply_to is None


def test_roundtrip_with_broadcast_stamp():
    stamp = BroadcastId.make("alpha", 123.5, 9, "secret")
    message = sample_message(broadcast=stamp, kind=MsgKind.GATHER)
    decoded = decode(encode(message))
    assert decoded.broadcast == stamp
    assert decoded.broadcast.verify("secret")
    assert not decoded.broadcast.verify("wrong")


def test_roundtrip_reply():
    request = sample_message()
    reply = request.make_reply(MsgKind.CONTROL_ACK, "beta", {"ok": True})
    decoded = decode(encode(reply))
    assert decoded.reply_to == request.req_id
    assert decoded.route == ["beta", "alpha"]
    assert decoded.final_dest == "alpha"
    assert decoded.is_reply


def test_unserialisable_payload_rejected():
    message = sample_message(payload={"program": object()})
    with pytest.raises(ReproError):
        encode(message)


def test_size_includes_header_and_grows_with_payload():
    small = sample_message(payload={})
    big = sample_message(payload={"records": [{"pid": i} for i in range(50)]})
    assert message_size_bytes(small) > HEADER_BYTES
    assert message_size_bytes(big) > message_size_bytes(small)


def test_every_kind_value_unique():
    values = [kind.value for kind in MsgKind]
    assert len(values) == len(set(values))
