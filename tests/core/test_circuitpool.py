"""Shared inter-host circuits (``circuit_sharing=True``).

Multi-tenant mode: co-located users' sibling channels to one peer host
multiplex over a single physical circuit as per-user *lanes*
(``repro.core.circuitpool``), demultiplexed by ``Message.lane``.  The
tests pin the sharing itself, per-lane HELLO authentication, refcounted
teardown, the break fan-out regression (every lane's router must hear
about a broken shared circuit), and the wire-format guarantee that
single-tenant runs stay byte-identical.
"""

import pytest

from repro import PersonalProcessManager, PPMConfig, spinner_spec, \
    worker_spec
from repro.core.circuitpool import CircuitPool, POOL_SERVICE
from repro.core.messages import Message, MsgKind
from repro.core.wire import decode, encode, message_size_bytes
from repro.perf import PERF

from .conftest import build_world, lpm_of


def pool_of(world, host):
    return getattr(world.host(host), "_circuit_pool", None)


@pytest.fixture
def pooled():
    """Two users homed on alpha with circuit sharing on."""
    world = build_world(config=PPMConfig(circuit_sharing=True))
    lfc = PersonalProcessManager(world, "lfc", "alpha",
                                 recovery_hosts=["alpha"])
    lfc.start()
    world.write_recovery_file("ramon", ["alpha"])
    ramon = PersonalProcessManager(world, "ramon", "alpha")
    ramon.start()
    return world, lfc, ramon


class TestSharing:
    def test_colocated_users_share_one_physical_circuit(self, pooled):
        world, lfc, ramon = pooled
        shares_before = PERF.circuit_shares
        mine = lfc.create_process("mine", host="beta",
                                  program=spinner_spec(None))
        theirs = ramon.create_process("theirs", host="beta",
                                      program=spinner_spec(None))
        for host in ("alpha", "beta"):
            pool = pool_of(world, host)
            assert pool.open_circuit_count() == 1
            assert pool.lane_count() == 2
        # The second user attached to the circuit the first one opened.
        assert PERF.circuit_shares > shares_before
        # Both users' transports see an authenticated sibling link.
        assert "beta" in lpm_of(world, "alpha", "lfc").transport \
            .authenticated()
        assert "beta" in lpm_of(world, "alpha", "ramon").transport \
            .authenticated()
        # Isolation holds across the shared wire.
        lfc_forest = lfc.snapshot()
        ramon_forest = ramon.snapshot()
        assert mine in lfc_forest and theirs not in lfc_forest
        assert theirs in ramon_forest and mine not in ramon_forest

    def test_sharing_off_keeps_private_circuits(self):
        world = build_world()  # default config: circuit_sharing=False
        lfc = PersonalProcessManager(world, "lfc", "alpha",
                                     recovery_hosts=["alpha"])
        lfc.start()
        lfc.create_process("job", host="beta", program=spinner_spec(None))
        assert pool_of(world, "alpha") is None
        assert POOL_SERVICE not in world.host("alpha").node.services

    def test_lanes_counted_per_user(self, pooled):
        world, lfc, ramon = pooled
        lanes_before = PERF.circuit_lanes_attached
        lfc.create_process("a", host="beta", program=spinner_spec(None))
        ramon.create_process("b", host="beta", program=spinner_spec(None))
        # Two users x two ends of the circuit.
        assert PERF.circuit_lanes_attached - lanes_before == 4


class TestLaneAuth:
    def test_wrong_token_lane_is_refused(self, pooled):
        world, lfc, ramon = pooled
        lfc.create_process("job", host="beta", program=spinner_spec(None))
        # A pool on gamma (no LPM there) dials beta and presents a lane
        # HELLO for user lfc with a bogus token: the per-lane
        # authentication must refuse it without touching lfc's real
        # lane between alpha and beta.
        gamma = world.host("gamma")
        pool = CircuitPool.ensure(gamma, world.fabric, gamma.node, "gamma")
        lanes = []
        pool.attach("beta", "lfc", on_established=lanes.append)
        world.run_for(5_000.0)
        (lane,) = lanes
        hello = Message(kind=MsgKind.HELLO, req_id=1, origin="gamma",
                        user="lfc",
                        payload={"from_host": "gamma", "user": "lfc",
                                 "token": "forged"})
        lane.send(hello, nbytes=message_size_bytes(hello))
        world.run_for(5_000.0)
        assert not lane.open
        assert "gamma" not in lpm_of(world, "beta", "lfc").transport \
            .authenticated()
        assert "beta" in lpm_of(world, "alpha", "lfc").transport \
            .authenticated()

    def test_unknown_user_lane_is_refused(self, pooled):
        world, lfc, ramon = pooled
        lfc.create_process("job", host="beta", program=spinner_spec(None))
        pool = pool_of(world, "alpha")
        lanes = []
        pool.attach("beta", "mallory", on_established=lanes.append)
        world.run_for(1_000.0)
        (lane,) = lanes
        hello = Message(kind=MsgKind.HELLO, req_id=1, origin="alpha",
                        user="mallory",
                        payload={"from_host": "alpha", "user": "mallory",
                                 "token": "whatever"})
        lane.send(hello, nbytes=message_size_bytes(hello))
        world.run_for(5_000.0)
        assert not lane.open
        # The shared circuit itself survives for the legitimate lanes.
        assert pool.open_circuit_count() == 1
        assert "beta" in lpm_of(world, "alpha", "lfc").transport \
            .authenticated()


class TestTeardown:
    def test_last_lane_out_closes_the_circuit(self, pooled):
        world, lfc, ramon = pooled
        lfc.create_process("a", host="beta",
                           program=worker_spec(5_000.0))
        ramon.create_process("b", host="beta",
                             program=worker_spec(5_000.0))
        assert pool_of(world, "alpha").lane_count() == 2
        lfc.logout()
        ramon.logout()
        # LPMs linger for their time-to-live after logout; the circuit
        # must survive exactly as long as any lane rides it.
        world.run_for(world.config.lpm_time_to_live_ms + 100_000.0)
        for host in ("alpha", "beta"):
            pool = pool_of(world, host)
            assert pool.lane_count() == 0
            assert pool.open_circuit_count() == 0

    def test_survivor_keeps_working_while_others_detach(self, pooled):
        world, lfc, ramon = pooled
        lfc.create_process("a", host="beta", program=spinner_spec(None))
        ramon.create_process("b", host="beta",
                             program=worker_spec(5_000.0))
        ramon.logout()
        world.run_for(world.config.lpm_time_to_live_ms + 100_000.0)
        pool = pool_of(world, "alpha")
        assert pool.open_circuit_count() == 1
        assert pool.lane_count() == 1
        # The surviving user's lane still carries traffic.
        forest = lfc.snapshot()
        assert len(forest) == 1


class TestBreakFanOut:
    def test_broken_circuit_invalidates_every_lanes_routes(self, pooled):
        """Regression: when a shared circuit breaks, *each* lane's
        ``MessageRouter.invalidate_via`` must fire — a miss leaves one
        user's cached routes pointing through a dead peer."""
        world, lfc, ramon = pooled
        lfc.create_process("a", host="beta", program=spinner_spec(None))
        ramon.create_process("b", host="beta", program=spinner_spec(None))
        routers = [lpm_of(world, "alpha", user).router
                   for user in ("lfc", "ramon")]
        for router in routers:
            router.cache.learn(["alpha", "beta", "delta"])
            assert router.cache.route_to("delta") is not None
        world.host("beta").crash()
        world.run_for(60_000.0)
        for user in ("lfc", "ramon"):
            transport = lpm_of(world, "alpha", user).transport
            assert "beta" not in transport.authenticated()
        for router in routers:
            assert router.cache.route_to("delta") is None
        assert pool_of(world, "alpha").open_circuit_count() == 0


class TestWireFormat:
    def test_lane_absent_from_wire_when_unshared(self):
        message = Message(kind=MsgKind.TOOL_PING, req_id=1,
                          origin="alpha", user="lfc", payload={})
        assert b'"lane"' not in encode(message)

    def test_lane_round_trips_when_set(self):
        message = Message(kind=MsgKind.GATHER, req_id=2,
                          origin="alpha", user="lfc", payload={"x": 1},
                          lane="lfc")
        again = decode(encode(message))
        assert again.lane == "lfc"
        assert decode(encode(Message(kind=MsgKind.TOOL_PING, req_id=3,
                                     origin="alpha", user="lfc",
                                     payload={}))).lane is None

    def test_lane_change_invalidates_encode_cache(self):
        message = Message(kind=MsgKind.GATHER, req_id=4,
                          origin="alpha", user="lfc", payload={})
        unshared = encode(message)
        message.lane = "lfc"
        shared = encode(message)
        assert unshared != shared
        assert message_size_bytes(message) > 0
