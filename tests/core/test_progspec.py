"""Tests for declarative program specifications."""

import json

import pytest

from repro.errors import ReproError
from repro.core.progspec import (
    build_program,
    fork_tree_spec,
    sleeper_spec,
    spinner_spec,
    worker_spec,
)
from repro.unixsim.programs import (
    ForkTreeProgram,
    SleeperProgram,
    SpinnerProgram,
    WorkerProgram,
)


def test_specs_are_json_serialisable():
    spec = fork_tree_spec(
        [("child", 10.0, spinner_spec(100.0)),
         ("other", 20.0, None)],
        duration_ms=500.0)
    assert json.loads(json.dumps(spec)) == spec


def test_build_spinner():
    program = build_program(spinner_spec(123.0))
    assert isinstance(program, SpinnerProgram)
    assert program.duration_ms == 123.0
    assert build_program(spinner_spec()).duration_ms is None


def test_build_sleeper_and_worker():
    assert isinstance(build_program(sleeper_spec(5.0)), SleeperProgram)
    worker = build_program(worker_spec(9.0, exit_status=3))
    assert isinstance(worker, WorkerProgram)
    assert worker.exit_status == 3


def test_build_fork_tree_recursive():
    spec = fork_tree_spec(
        [("a", 1.0, fork_tree_spec([("b", 2.0, worker_spec(5.0))]))])
    program = build_program(spec)
    assert isinstance(program, ForkTreeProgram)
    (command, delay, child), = program.children_spec
    assert command == "a"
    assert isinstance(child, ForkTreeProgram)


def test_none_spec_builds_nothing():
    assert build_program(None) is None


def test_fork_tree_default_child_is_forever_spinner():
    program = build_program(fork_tree_spec([("c", 0.0, None)]))
    (_, _, child), = program.children_spec
    assert isinstance(child, SpinnerProgram)
    assert child.duration_ms is None


def test_unknown_spec_rejected():
    with pytest.raises(ReproError):
        build_program({"type": "daemon"})
