"""Regression tests for the exactly-once request layer.

Datagram transports retransmit side-effecting requests at the LPM level
(at-least-once); the receiving LPM's (origin, req_id) cache must turn
that into exactly-once: duplicates of an executed request re-send the
cached reply, duplicates of an in-flight request are dropped, and the
side effect runs exactly once either way.
"""

from repro import PPMClient, PPMConfig, spinner_spec
from repro.core.messages import Message, MsgKind
from repro.perf import PERF

from .conftest import build_world, lpm_of

DGRAM = PPMConfig(transport="datagram", datagram_rto_ms=150.0,
                  datagram_max_retries=4)


def _session(world):
    client = PPMClient(world, "lfc", "alpha").connect()
    gpid = client.create_process("job", host="beta",
                                 program=spinner_spec(None))
    return client, gpid


def test_duplicate_control_applies_signal_once():
    world = build_world(config=DGRAM)
    _client, gpid = _session(world)
    beta = lpm_of(world, "beta")
    request = Message(kind=MsgKind.CONTROL, req_id=4242, origin="alpha",
                      user="lfc",
                      payload={"pid": gpid.pid, "action": "stop"},
                      route=["alpha", "beta"], final_dest="beta")
    PERF.reset()
    # The client's retransmission delivers the same request repeatedly.
    beta._handle_control(request)
    beta._handle_control(request)
    world.run_for(5_000.0)
    beta._handle_control(request)
    world.run_for(5_000.0)
    proc = world.host("beta").kernel.procs.get(gpid.pid)
    assert proc.rusage.signals_received == 1
    assert PERF.requests_deduplicated == 2


def test_duplicate_create_forks_once():
    world = build_world(config=DGRAM)
    _session(world)
    beta = lpm_of(world, "beta")
    request = Message(kind=MsgKind.CREATE, req_id=777, origin="alpha",
                      user="lfc",
                      payload={"command": "dup-job",
                               "program": spinner_spec(None)},
                      route=["alpha", "beta"], final_dest="beta")
    beta._handle_create(request)
    world.run_for(2_000.0)
    beta._handle_create(request)
    world.run_for(2_000.0)
    created = [r for r in beta.records.values() if r.command == "dup-job"]
    assert len(created) == 1


def test_colliding_req_id_with_new_payload_is_not_deduplicated():
    # A fresh request that happens to reuse an old (origin, req_id) —
    # e.g. after the origin restarts its counter — must execute, not be
    # answered from the cache.
    world = build_world(config=DGRAM)
    _session(world)
    beta = lpm_of(world, "beta")

    def create(command):
        return Message(kind=MsgKind.CREATE, req_id=9, origin="alpha",
                       user="lfc",
                       payload={"command": command,
                                "program": spinner_spec(None)},
                       route=["alpha", "beta"], final_dest="beta")

    beta._handle_create(create("first"))
    world.run_for(2_000.0)
    beta._handle_create(create("second"))
    world.run_for(2_000.0)
    commands = {r.command for r in beta.records.values()}
    assert {"first", "second"} <= commands


def test_lossy_control_round_trip_is_exactly_once():
    # Deterministic end-to-end check (the Hypothesis property explores
    # the space; this pins one heavy-loss case forever).
    world = build_world(seed=1234, config=DGRAM)
    client, gpid = _session(world)
    world.datagrams.loss_rate = 0.4
    proc = world.host("beta").kernel.procs.get(gpid.pid)
    for _ in range(3):
        client.stop(gpid)
        assert proc.state.value == "stopped"
        client.cont(gpid)
        assert proc.state.value == "running"
    assert proc.rusage.signals_received == 6
