"""Tests for the broadcast engine: signed timestamps and the retention
window (section 4)."""

from repro.core.broadcast import MAX_BROADCAST_HOPS, BroadcastEngine
from repro.ids import BroadcastId


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def engine(window_ms=1000.0, secret="s3cret", clock=None):
    clock = clock or FakeClock()
    return BroadcastEngine("alpha", window_ms, clock, lambda: secret), clock


def test_stamp_is_signed_and_self_seen():
    eng, _clock = engine()
    stamp = eng.stamp()
    assert stamp.origin == "alpha"
    assert stamp.verify("s3cret")
    # Our own stamp reflected back is a duplicate.
    assert not eng.should_accept(stamp)
    assert eng.duplicates_dropped == 1


def test_fresh_stamp_accepted_once():
    eng, _clock = engine()
    foreign = BroadcastId.make("beta", 5.0, 1, "s3cret")
    assert eng.should_accept(foreign)
    assert not eng.should_accept(foreign)
    assert eng.duplicates_dropped == 1


def test_bad_signature_rejected():
    eng, _clock = engine()
    forged = BroadcastId.make("beta", 5.0, 1, "wrong-secret")
    assert not eng.should_accept(forged)
    assert eng.rejected_signatures == 1


def test_none_stamp_rejected():
    eng, _clock = engine()
    assert not eng.should_accept(None)


def test_window_expiry_allows_retransmission():
    # The ablation's failure mode: a too-short window forgets old
    # requests and accepts them again.
    eng, clock = engine(window_ms=100.0)
    foreign = BroadcastId.make("beta", 0.0, 1, "s3cret")
    assert eng.should_accept(foreign)
    clock.now = 50.0
    assert not eng.should_accept(foreign)
    clock.now = 200.0  # past the retention window
    assert eng.should_accept(foreign)


def test_long_window_keeps_suppressing():
    eng, clock = engine(window_ms=1_000_000.0)
    foreign = BroadcastId.make("beta", 0.0, 1, "s3cret")
    assert eng.should_accept(foreign)
    clock.now = 500_000.0
    assert not eng.should_accept(foreign)


def test_hop_limit():
    eng, _clock = engine()
    foreign = BroadcastId.make("beta", 0.0, 1, "s3cret")
    assert not eng.should_accept(foreign, hops=MAX_BROADCAST_HOPS + 1)
    assert eng.hop_limited == 1


def test_distinct_stamps_from_same_origin_all_accepted():
    eng, _clock = engine()
    for seq in range(10):
        stamp = BroadcastId.make("beta", 1.0, seq, "s3cret")
        assert eng.should_accept(stamp)
    assert eng.seen_count() >= 10


def test_seen_count_shrinks_after_purge():
    eng, clock = engine(window_ms=10.0)
    for seq in range(5):
        eng.should_accept(BroadcastId.make("beta", 1.0, seq, "s3cret"))
    assert eng.seen_count() == 5
    clock.now = 100.0
    assert eng.seen_count() == 0
