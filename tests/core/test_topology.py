"""Unit tests for the sparse topology layer (repro.core.topology)."""

import pytest

from repro import PPMClient, PPMConfig, spinner_spec
from repro.core.topology import chord_offsets, sparse_neighbors

from .conftest import build_world, lpm_of

SPARSE = {"topology_policy": "sparse", "sparse_degree": 4}


def graph_of(hosts, degree):
    return {host: sparse_neighbors(host, hosts, degree)
            for host in hosts}


def is_connected(graph):
    if not graph:
        return True
    seen = set()
    stack = [next(iter(graph))]
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        stack.extend(graph[node] - seen)
    return len(seen) == len(graph)


class TestChordOffsets:
    def test_tiny_sessions(self):
        assert chord_offsets(0, 6) == []
        assert chord_offsets(1, 6) == []
        assert chord_offsets(2, 6) == [1]

    def test_ring_offset_always_first(self):
        for n in (2, 5, 24, 100, 200, 1000):
            assert chord_offsets(n, 6)[0] == 1

    def test_half_degree_bound(self):
        for n in (2, 7, 24, 100, 200, 1000):
            for degree in (2, 4, 6, 8):
                offsets = chord_offsets(n, degree)
                assert len(offsets) <= max(1, degree // 2)
                assert len(offsets) == len(set(offsets))

    def test_offsets_capped_at_half_ring(self):
        for n in (10, 24, 200):
            assert all(o <= n // 2 for o in chord_offsets(n, 6))

    def test_diameter_under_broadcast_hop_limit(self):
        # The chords must keep overlay depth well under the flood's
        # hop bound, or a broadcast would be hop-limited before it
        # covers the session.
        from repro.core.broadcast import MAX_BROADCAST_HOPS
        for n in (24, 100, 200, 500):
            hosts = ["h%03d" % i for i in range(n)]
            graph = graph_of(hosts, 6)
            # BFS from one host; by symmetry of the offset pattern the
            # eccentricity of any host matches up to rotation.
            dist = {hosts[0]: 0}
            frontier = [hosts[0]]
            while frontier:
                nxt = []
                for node in frontier:
                    for peer in graph[node]:
                        if peer not in dist:
                            dist[peer] = dist[node] + 1
                            nxt.append(peer)
                frontier = nxt
            assert len(dist) == n
            assert max(dist.values()) <= MAX_BROADCAST_HOPS // 2


class TestSparseNeighbors:
    def test_degree_bound(self):
        hosts = ["h%03d" % i for i in range(200)]
        for host in hosts[::17]:
            assert len(sparse_neighbors(host, hosts, 6)) <= 6

    def test_symmetry(self):
        hosts = ["h%03d" % i for i in range(57)]
        graph = graph_of(hosts, 6)
        for host, neighbors in graph.items():
            for peer in neighbors:
                assert host in graph[peer], \
                    "edge %s-%s is one-sided" % (host, peer)

    def test_connected_across_sizes(self):
        for n in (2, 3, 5, 8, 24, 63, 200):
            hosts = ["h%03d" % i for i in range(n)]
            assert is_connected(graph_of(hosts, 6)), \
                "overlay disconnected at n=%d" % n

    def test_deterministic_and_order_independent(self):
        hosts = ["h%02d" % i for i in range(31)]
        expected = sparse_neighbors("h07", hosts, 6)
        assert sparse_neighbors("h07", reversed(hosts), 6) == expected
        assert sparse_neighbors("h07", set(hosts), 6) == expected

    def test_self_and_singleton(self):
        assert sparse_neighbors("a", ["a"], 6) == set()
        assert "h01" not in sparse_neighbors("h01",
                                             ["h0%d" % i
                                              for i in range(5)], 4)


class TestTopologyManager:
    def test_inert_outside_sparse_policy(self, world):
        client = PPMClient(world, "lfc", "alpha").connect()
        client.create_process("job", host="beta",
                              program=spinner_spec(None))
        lpm = lpm_of(world, "alpha")
        assert not lpm.topology.active
        lpm.topology.note_hosts(["beta", "gamma", "delta"])
        # No timers armed, membership untouched beyond the fold-in
        # guard, and known_hosts stays the historical wire contents.
        assert lpm.topology._rewire_timer is None
        assert lpm.topology.known_hosts() == \
            lpm.transport.authenticated()

    def test_membership_gossip_converges_and_rewires(self):
        world = build_world(config=PPMConfig(**SPARSE),
                            recovery=["alpha"])
        client = PPMClient(world, "lfc", "alpha").connect()
        for host in ("beta", "gamma", "delta"):
            client.create_process("job-%s" % host, host=host,
                                  program=spinner_spec(None))
        world.run_for(10_000.0)
        names = ["alpha", "beta", "gamma", "delta"]
        for name in names:
            lpm = lpm_of(world, name)
            assert lpm.topology.membership == set(names)
            assert sorted(lpm.topology.known_hosts()) == sorted(names)
            # Every computed overlay neighbor has an open link.
            for peer in lpm.topology.neighbors():
                assert lpm.transport.link_to(peer) is not None, \
                    "%s missing overlay link to %s" % (name, peer)

    def test_gossip_skipped_when_membership_static(self):
        world = build_world(config=PPMConfig(**SPARSE),
                            recovery=["alpha"])
        client = PPMClient(world, "lfc", "alpha").connect()
        client.create_process("job", host="beta",
                              program=spinner_spec(None))
        world.run_for(10_000.0)
        lpm = lpm_of(world, "alpha")
        size = lpm.topology._gossiped_size
        # Re-noting known hosts grows nothing: no new gossip round.
        lpm.topology.note_hosts(["beta"])
        world.run_for(1_000.0)
        assert lpm.topology._gossiped_size == size
        assert lpm.topology._gossip_timer is None
