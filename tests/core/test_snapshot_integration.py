"""Integration tests for cross-host snapshots (Figure 1 scenarios)."""

from repro import GlobalPid, fork_tree_spec, spinner_spec, worker_spec
from repro.tracing import render_forest

from .conftest import lpm_of


def test_snapshot_spans_three_hosts(ppm, world):
    root = ppm.create_process("root", program=spinner_spec(None))
    child_b = ppm.create_process("child-b", host="beta", parent=root,
                                 program=spinner_spec(None))
    child_g = ppm.create_process("child-g", host="gamma", parent=root,
                                 program=spinner_spec(None))
    forest = ppm.snapshot()
    assert not forest.is_forest()
    assert forest.roots() == [root]
    assert set(forest.children(root)) == {child_b, child_g}
    assert forest.subtree_hosts(root) == {"alpha", "beta", "gamma"}


def test_snapshot_includes_kernel_forked_descendants(ppm, world):
    spec = fork_tree_spec(
        [("worker-1", 50.0, spinner_spec(None)),
         ("worker-2", 60.0, fork_tree_spec(
             [("leaf", 40.0, spinner_spec(None))]))])
    root = ppm.create_process("master", program=spec)
    world.run_for(1_000.0)
    forest = ppm.snapshot()
    commands = {forest.records[g].command for g in forest.descendants(root)}
    assert commands == {"worker-1", "worker-2", "leaf"}


def test_exited_interior_marked_not_pruned(ppm, world):
    spec = fork_tree_spec([("survivor", 10.0, spinner_spec(None))],
                          duration_ms=200.0)
    root = ppm.create_process("parent", program=spec)
    world.run_for(2_000.0)  # parent exits, survivor lives
    forest = ppm.snapshot()
    assert root in forest
    assert forest.records[root].state == "exited"
    rendered = render_forest(forest)
    assert "(exited)" in rendered
    assert "survivor" in rendered


def test_exited_leaf_pruned_but_in_unpruned_view(ppm, world):
    gpid = ppm.create_process("brief", program=worker_spec(100.0))
    world.run_for(1_000.0)
    assert gpid not in ppm.snapshot(prune=True)
    assert gpid in ppm.snapshot(prune=False)


def test_snapshot_becomes_forest_on_host_crash(ppm, world):
    root = ppm.create_process("root", program=spinner_spec(None))
    mid = ppm.create_process("mid", host="beta", parent=root,
                             program=spinner_spec(None))
    leaf = ppm.create_process("leaf", host="gamma", parent=mid,
                              program=spinner_spec(None))
    world.host("beta").crash()
    world.run_for(10_000.0)  # detection
    forest = ppm.snapshot()
    # beta's records are gone; gamma's leaf has an unknown parent.
    assert "beta" in forest.missing_hosts or mid not in forest
    assert leaf in forest
    assert forest.is_forest()


def test_snapshot_reports_stopped_state(ppm, world):
    gpid = ppm.create_process("job", host="beta",
                              program=spinner_spec(None))
    ppm.client.stop(gpid)
    forest = ppm.snapshot()
    assert forest.records[gpid].state == "stopped"


def test_snapshot_from_any_host_sees_everything(ppm, world):
    root = ppm.create_process("root", program=spinner_spec(None))
    ppm.create_process("remote", host="beta", parent=root,
                       program=spinner_spec(None))
    # A tool on beta sees the same computation.
    from repro import PPMClient
    beta_client = PPMClient(world, "lfc", "beta").connect()
    forest = beta_client.snapshot()
    assert root in forest
    assert len(forest) == 2


def test_rstats_aggregates_exited_processes(ppm, world):
    for i in range(3):
        ppm.create_process("batch", program=worker_spec(200.0 + i * 50))
    ppm.create_process("rbatch", host="beta", program=worker_spec(100.0))
    world.run_for(5_000.0)
    report = ppm.rstats_report()
    by_command = {usage.command: usage for usage in report}
    assert by_command["batch"].count == 3
    assert by_command["rbatch"].count == 1
    assert by_command["rbatch"].hosts == ("beta",)
    # Live processes are absent from rstats.
    ppm.create_process("alive", program=spinner_spec(None))
    report2 = ppm.rstats_report()
    assert "alive" not in {usage.command for usage in report2}


def test_rstats_rendering(ppm, world):
    ppm.create_process("batch", program=worker_spec(100.0))
    world.run_for(1_000.0)
    from repro.core.rstats import render_report
    text = render_report(ppm.rstats_report())
    assert "batch" in text
    assert "command" in text


def test_triangle_cycle_produces_no_duplicates(ppm, world):
    # alpha-beta, alpha-gamma, beta-gamma: the visited list carried by
    # the gather prevents re-querying around the triangle.
    ppm.create_process("j1", host="beta", program=spinner_spec(None))
    ppm.create_process("j2", host="gamma", program=spinner_spec(None))
    from repro import PPMClient
    beta_client = PPMClient(world, "lfc", "beta").connect()
    beta_client.create_process("j3", host="gamma",
                               program=spinner_spec(None))
    assert "gamma" in lpm_of(world, "beta").authenticated_siblings()
    forest = ppm.snapshot()
    assert len(forest) == 3  # no double-counted records


def test_diamond_duplicate_suppressed_by_signed_timestamp(ppm, world):
    # Diamond: alpha-beta, alpha-gamma, beta-delta, gamma-delta.  Both
    # branches reach delta concurrently; the signed-timestamp seen-set
    # drops the second request (section 4).
    from repro import PPMClient
    ppm.create_process("j1", host="beta", program=spinner_spec(None))
    ppm.create_process("j2", host="gamma", program=spinner_spec(None))
    beta_client = PPMClient(world, "lfc", "beta").connect()
    beta_client.create_process("j3", host="delta",
                               program=spinner_spec(None))
    gamma_client = PPMClient(world, "lfc", "gamma").connect()
    gamma_client.create_process("j4", host="delta",
                                program=spinner_spec(None))
    lpm_delta = lpm_of(world, "delta")
    assert {"beta", "gamma"} <= set(lpm_delta.authenticated_siblings())
    before = lpm_delta.broadcast.duplicates_dropped
    forest = ppm.snapshot()
    assert len(forest) == 4  # delta's records counted exactly once
    assert lpm_delta.broadcast.duplicates_dropped > before


def test_forest_rendering_matches_figure1_shape(ppm, world):
    root = ppm.create_process("master", program=spinner_spec(None))
    ppm.create_process("slave-1", host="beta", parent=root,
                       program=spinner_spec(None))
    ppm.create_process("slave-2", host="gamma", parent=root,
                       program=spinner_spec(None))
    text = render_forest(ppm.snapshot())
    assert "<alpha," in text
    assert "<beta," in text
    assert "<gamma," in text
    assert "master" in text
