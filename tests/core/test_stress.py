"""Stress tests: large computations, deep genealogies, wide sessions."""

import pytest

from repro import PPMClient, fork_tree_spec, sleeper_spec, spinner_spec, worker_spec

from .conftest import build_world, lpm_of


def test_hundreds_of_processes_per_host(world):
    client = PPMClient(world, "lfc", "alpha").connect()
    gpids = [client.create_process("job-%03d" % index,
                                   program=sleeper_spec(None))
             for index in range(200)]
    forest = client.snapshot()
    assert len(forest) == 200
    assert set(forest.records) == set(gpids)
    # Control still works at the tail end of the pid range.
    client.stop(gpids[-1])
    proc = world.host("alpha").kernel.procs.get(gpids[-1].pid)
    assert proc.state.value == "stopped"


def test_deep_genealogy_chain(world):
    # A 30-deep chain of forks via nested fork-tree specs.
    spec = spinner_spec(None)
    for depth in range(30):
        spec = fork_tree_spec([("level-%d" % depth, 5.0, spec)])
    client = PPMClient(world, "lfc", "alpha").connect()
    root = client.create_process("deep-root", program=spec)
    world.run_for(5_000.0)
    forest = client.snapshot()
    descendants = forest.descendants(root)
    assert len(descendants) == 30
    # The whole chain hangs off one root.
    assert forest.roots() == [root]


def test_wide_fanout_across_hosts(world):
    client = PPMClient(world, "lfc", "alpha").connect()
    root = client.create_process("root", program=spinner_spec(None))
    for host in ("beta", "gamma", "delta"):
        for index in range(40):
            client.create_process("w-%s-%d" % (host, index), host=host,
                                  parent=root,
                                  program=sleeper_spec(None))
    forest = client.snapshot()
    assert len(forest) == 121
    assert len(forest.children(root)) == 120
    assert forest.subtree_hosts(root) == {"alpha", "beta", "gamma",
                                          "delta"}


def test_churn_heavy_rstats(world):
    client = PPMClient(world, "lfc", "alpha").connect()
    for burst in range(10):
        for index in range(20):
            client.create_process(
                "burst", host=("beta" if index % 2 else "alpha"),
                program=worker_spec(100.0 + index))
        world.run_for(10_000.0)
    records = client.rstats()
    assert len(records) == 200
    from repro.core.rstats import build_report
    (usage,) = build_report(records)
    assert usage.count == 200
    assert usage.hosts == ("alpha", "beta")


def test_snapshot_cost_scales_with_record_count(world):
    # Collecting 120 records costs more than collecting 5, but the
    # snapshot stays well-behaved (one gather round either way).
    client = PPMClient(world, "lfc", "alpha").connect()
    for index in range(5):
        client.create_process("small-%d" % index, host="beta",
                              program=sleeper_spec(None))
    client.snapshot()  # warm
    start = world.now_ms
    client.snapshot()
    small_cost = world.now_ms - start
    for index in range(115):
        client.create_process("big-%d" % index, host="beta",
                              program=sleeper_spec(None))
    start = world.now_ms
    forest = client.snapshot()
    big_cost = world.now_ms - start
    assert len(forest) == 120
    assert big_cost > small_cost
    assert big_cost < 20 * small_cost  # linear-ish, not explosive
