"""End-to-end tests for event-recording granularity: the per-session
recorder level and the per-process kernel trace flags compose."""

import pytest

from repro import Granularity, PPMClient, spinner_spec, worker_spec
from repro.tracing import TraceEventType
from repro.unixsim.process import TraceFlag

from .conftest import build_world, lpm_of


def test_recorder_granularity_filters_session_wide():
    world = build_world()
    world.recorder.set_granularity(Granularity.COARSE)
    client = PPMClient(world, "lfc", "alpha").connect()
    gpid = client.create_process("job", host="beta",
                                 program=worker_spec(1_000.0))
    client.stop(gpid)
    client.cont(gpid)
    world.run_for(5_000.0)
    # Lifecycle recorded...
    assert world.recorder.count(TraceEventType.LPM_CREATED) >= 2
    assert world.recorder.count(TraceEventType.PROCESS_CREATED) == 1
    assert world.recorder.count(TraceEventType.EXIT) >= 1
    # ...communication noise not.
    assert world.recorder.count(TraceEventType.KERNEL_MESSAGE) == 0
    assert world.recorder.count(TraceEventType.SIBLING_MESSAGE) == 0
    assert world.recorder.count(TraceEventType.STOPPED) == 0


def test_medium_granularity_admits_control_but_not_traffic():
    world = build_world()
    world.recorder.set_granularity(Granularity.MEDIUM)
    client = PPMClient(world, "lfc", "alpha").connect()
    gpid = client.create_process("job", program=spinner_spec(None))
    client.stop(gpid)
    world.run_for(1_000.0)
    assert world.recorder.count(TraceEventType.STOPPED) >= 1
    assert world.recorder.count(TraceEventType.SIBLING_MESSAGE) == 0


def test_per_process_flags_limit_kernel_messages():
    # "The granularity of event tracing is user-settable" (section 8):
    # narrowing a process's flags cuts the kernel-socket traffic.
    world = build_world()
    client = PPMClient(world, "lfc", "alpha").connect()
    kernel = world.host("alpha").kernel
    noisy = client.create_process("noisy", program=spinner_spec(None))
    quiet = client.create_process("quiet", program=spinner_spec(None))
    client.set_trace_flags(["exit"], pid=quiet.pid)
    posted_before = kernel.messages_posted
    for gpid in (noisy, quiet):
        client.stop(gpid)
        client.cont(gpid)
    world.run_for(1_000.0)
    posted = kernel.messages_posted - posted_before
    suppressed = kernel.messages_suppressed
    # noisy posts SIGNAL+STOPPED and SIGNAL+CONTINUED (4); quiet posts
    # nothing for the same actions.
    assert posted == 4
    assert suppressed >= 4
    proc = kernel.procs.get(quiet.pid)
    assert proc.trace_flags == TraceFlag.EXIT


def test_session_default_flags_apply_to_new_processes():
    world = build_world()
    client = PPMClient(world, "lfc", "alpha").connect()
    client.set_trace_flags(["exit", "resource"])
    gpid = client.create_process("job", program=worker_spec(500.0))
    proc_flags = world.host("alpha").kernel.procs.get(gpid.pid).trace_flags
    assert proc_flags == TraceFlag.EXIT | TraceFlag.RESOURCE
    world.run_for(2_000.0)
    # Only the EXIT event reached the LPM's records/history.
    record = lpm_of(world, "alpha").records[gpid.pid]
    assert record.state == "exited"
    assert record.rusage  # the RESOURCE flag delivered usage at exit


def test_wire_decode_rejects_garbage():
    import json
    import pytest as _pytest
    from repro.core.wire import decode
    with _pytest.raises(Exception):
        decode(b"not json at all {{{")
    with _pytest.raises(Exception):
        decode(json.dumps({"kind": "no-such-kind"}).encode())
