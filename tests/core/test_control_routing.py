"""Tests for multi-hop control: route learning, forwarding, and the
LOCATE broadcast fallback (section 4's quick-routing machinery)."""

import pytest

from repro import GlobalPid, PPMClient, PPMError, spinner_spec

from .conftest import lpm_of


def build_chain(world):
    """alpha-beta-gamma overlay chain; returns the gpid of a process on
    gamma that alpha knows only through the chain.

    alpha creates a process on beta; a tool on beta creates the gamma
    leg, so alpha never opens a direct alpha-gamma channel.
    """
    alpha_client = PPMClient(world, "lfc", "alpha").connect()
    mid = alpha_client.create_process("mid", host="beta",
                                      program=spinner_spec(None))
    beta_client = PPMClient(world, "lfc", "beta").connect()
    leaf = beta_client.create_process("leaf", host="gamma", parent=mid,
                                      program=spinner_spec(None))
    assert "gamma" not in lpm_of(world, "alpha").authenticated_siblings()
    return alpha_client, mid, leaf


def test_snapshot_teaches_routes(world):
    alpha_client, _mid, leaf = build_chain(world)
    alpha_client.snapshot()
    routes = lpm_of(world, "alpha").routes
    assert routes.route_to("gamma") == ["alpha", "beta", "gamma"]


def test_two_hop_control_via_learned_route(world):
    alpha_client, _mid, leaf = build_chain(world)
    alpha_client.snapshot()  # learn the route
    result = alpha_client.stop(leaf)
    assert result["host"] == "gamma"
    proc = world.host("gamma").kernel.procs.get(leaf.pid)
    assert proc.state.value == "stopped"
    # Still no direct alpha-gamma channel: the action was forwarded.
    assert "gamma" not in lpm_of(world, "alpha").authenticated_siblings()


def test_control_without_route_uses_locate_broadcast(world):
    alpha_client, _mid, leaf = build_chain(world)
    # No snapshot: alpha has no route to gamma and must locate.
    result = alpha_client.stop(leaf)
    assert result["ok"]
    proc = world.host("gamma").kernel.procs.get(leaf.pid)
    assert proc.state.value == "stopped"
    # The locate reply taught the route for next time.
    assert lpm_of(world, "alpha").routes.route_to("gamma") is not None


def test_control_totally_unknown_host_opens_direct_channel(world):
    alpha_client = PPMClient(world, "lfc", "alpha").connect()
    delta_client = PPMClient(world, "lfc", "delta").connect()
    target = delta_client.create_process("lonely",
                                         program=spinner_spec(None))
    # alpha has no sibling link at all; locate cannot find it (no
    # overlay path), so a direct channel is opened as a fallback.
    result = alpha_client.stop(target)
    assert result["ok"]


def test_route_invalidated_when_intermediate_dies(world):
    alpha_client, _mid, leaf = build_chain(world)
    alpha_client.snapshot()
    world.host("beta").crash()
    world.run_for(10_000.0)  # break detection
    assert lpm_of(world, "alpha").routes.route_to("gamma") is None
    # Control still succeeds: the LPM falls back to a direct channel.
    result = alpha_client.stop(leaf)
    assert result["ok"]


def test_forwarding_does_not_open_new_channels(world):
    alpha_client, _mid, leaf = build_chain(world)
    alpha_client.snapshot()
    opened_before = world.network.stats.connections_opened
    alpha_client.stop(leaf)
    alpha_client.cont(leaf)
    assert world.network.stats.connections_opened == opened_before


def test_kill_two_hops_away(world):
    alpha_client, _mid, leaf = build_chain(world)
    alpha_client.snapshot()
    alpha_client.kill(leaf)
    proc = world.host("gamma").kernel.procs.find(leaf.pid)
    assert proc is None or not proc.alive


def test_locate_times_out_for_nonexistent_process(world):
    alpha_client, _mid, _leaf = build_chain(world)
    with pytest.raises(PPMError):
        alpha_client.stop(GlobalPid("gamma", 9999))
