"""Tests for the snapshot data model (trees, forests, exit retention)."""

from repro.core.snapshot import ProcessRecord, SnapshotForest
from repro.ids import GlobalPid


def record(host, pid, parent=None, state="running", command="job",
           **kwargs):
    parent_gpid = GlobalPid(*parent) if parent else None
    return ProcessRecord(gpid=GlobalPid(host, pid), parent=parent_gpid,
                         user="lfc", command=command, state=state,
                         start_ms=0.0, **kwargs)


def test_record_dict_roundtrip():
    original = record("alpha", 5, parent=("beta", 2), state="stopped",
                      end_ms=9.0, exit_status=1,
                      rusage={"utime_ms": 3.5})
    copy = ProcessRecord.from_dict(original.to_dict())
    assert copy == original


def test_single_tree():
    forest = SnapshotForest(0.0, records=[
        record("alpha", 1),
        record("alpha", 2, parent=("alpha", 1)),
        record("beta", 7, parent=("alpha", 1)),
    ])
    assert forest.roots() == [GlobalPid("alpha", 1)]
    assert not forest.is_forest()
    assert forest.children(GlobalPid("alpha", 1)) == [
        GlobalPid("alpha", 2), GlobalPid("beta", 7)]
    assert forest.descendants(GlobalPid("alpha", 1)) == [
        GlobalPid("alpha", 2), GlobalPid("beta", 7)]


def test_forest_when_parent_unknown():
    # A missing LPM's records vanish: "the snapshot of the genealogical
    # process structure may now become a forest" (section 5).
    forest = SnapshotForest(0.0, records=[
        record("alpha", 1),
        record("beta", 7, parent=("gamma", 3)),  # gamma's LPM is gone
    ], missing_hosts={"gamma"})
    assert forest.is_forest()
    assert len(forest.roots()) == 2
    assert forest.missing_hosts == {"gamma"}


def test_subtree_hosts():
    forest = SnapshotForest(0.0, records=[
        record("alpha", 1),
        record("beta", 2, parent=("alpha", 1)),
        record("gamma", 3, parent=("beta", 2)),
        record("alpha", 9),  # unrelated root
    ])
    assert forest.subtree_hosts(GlobalPid("alpha", 1)) == {
        "alpha", "beta", "gamma"}


def test_prune_drops_exited_leaves_keeps_exited_interior():
    # "We chose to retain exit information while there are children
    # alive ... we mark the process as exited." (section 2)
    forest = SnapshotForest(0.0, records=[
        record("alpha", 1, state="exited"),          # interior: kept
        record("alpha", 2, parent=("alpha", 1)),      # alive child
        record("alpha", 3, parent=("alpha", 1), state="exited"),  # leaf
        record("beta", 4, state="exited"),            # exited root, alone
    ])
    pruned = forest.prune_exited_leaves()
    assert GlobalPid("alpha", 1) in pruned
    assert GlobalPid("alpha", 2) in pruned
    assert GlobalPid("alpha", 3) not in pruned
    assert GlobalPid("beta", 4) not in pruned


def test_prune_transitive_chain_of_exited():
    forest = SnapshotForest(0.0, records=[
        record("alpha", 1, state="exited"),
        record("alpha", 2, parent=("alpha", 1), state="exited"),
        record("alpha", 3, parent=("alpha", 2), state="exited"),
    ])
    pruned = forest.prune_exited_leaves()
    assert len(pruned) == 0


def test_prune_keeps_deep_live_descendant():
    forest = SnapshotForest(0.0, records=[
        record("alpha", 1, state="exited"),
        record("alpha", 2, parent=("alpha", 1), state="exited"),
        record("beta", 3, parent=("alpha", 2)),  # alive grandchild
    ])
    pruned = forest.prune_exited_leaves()
    assert len(pruned) == 3


def test_by_host_and_alive():
    forest = SnapshotForest(0.0, records=[
        record("alpha", 1),
        record("alpha", 2, state="exited"),
        record("beta", 1),
    ])
    assert [r.gpid.pid for r in forest.by_host("alpha")] == [1, 2]
    assert len(forest.alive()) == 2
    assert forest.hosts() == {"alpha", "beta"}


def test_roots_sorted_deterministically():
    forest = SnapshotForest(0.0, records=[
        record("zeta", 5), record("alpha", 9), record("alpha", 2)])
    assert forest.roots() == [GlobalPid("alpha", 2), GlobalPid("alpha", 9),
                              GlobalPid("zeta", 5)]


def test_add_invalidates_child_index():
    forest = SnapshotForest(0.0, records=[record("alpha", 1)])
    assert forest.children(GlobalPid("alpha", 1)) == []
    forest.add(record("alpha", 2, parent=("alpha", 1)))
    assert forest.children(GlobalPid("alpha", 1)) == [GlobalPid("alpha", 2)]
