"""Unit tests for the routing layer (repro.core.router): ack-kind
mapping, hop-by-hop forwarding with failure reporting, reply routing,
and route learning/invalidation."""

from repro import PPMClient, spinner_spec
from repro.core.messages import Message, MsgKind
from repro.core.router import ack_kind_for
from repro.perf import PERF

from .conftest import build_world, lpm_of


def test_ack_kind_mapping():
    assert ack_kind_for(MsgKind.CONTROL) is MsgKind.CONTROL_ACK
    assert ack_kind_for(MsgKind.CREATE) is MsgKind.CREATE_ACK
    assert ack_kind_for(MsgKind.GATHER) is MsgKind.GATHER_REPLY
    assert ack_kind_for(MsgKind.LOCATE) is MsgKind.LOCATE_ACK
    assert ack_kind_for(MsgKind.CCS_REPORT) is MsgKind.CCS_ACK
    assert ack_kind_for(MsgKind.CCS_PROBE) is MsgKind.CCS_PROBE_ACK
    # Everything else is answered generically.
    assert ack_kind_for(MsgKind.HELLO) is MsgKind.TOOL_REPLY


def _chain():
    """alpha-beta overlay; beta has no link onward to gamma."""
    world = build_world()
    client = PPMClient(world, "lfc", "alpha").connect()
    client.create_process("anchor", host="beta",
                         program=spinner_spec(None))
    return world, lpm_of(world, "alpha"), lpm_of(world, "beta")


def test_forward_without_next_hop_reports_failure_to_origin():
    world, alpha, _beta = _chain()
    replies = []
    # alpha pushes a request along a stale 3-hop route; beta has no
    # gamma link, so the router must answer with a failure reply.
    alpha.send_request("gamma", MsgKind.CONTROL,
                       {"pid": 1, "action": "stop"}, replies.append,
                       route=["alpha", "beta", "gamma"])
    world.run_for(5_000.0)
    assert len(replies) == 1
    reply = replies[0]
    assert reply is not None and reply.kind is MsgKind.CONTROL_ACK
    assert not reply.payload["ok"]
    assert reply.payload["error"] == "no route at beta"


def test_outbound_route_prefers_direct_link():
    _world, alpha, _beta = _chain()
    alpha.routes.learn(["alpha", "delta", "beta"])
    # A live direct link beats any cached overlay route...
    assert alpha.router.outbound_route("beta") == ["alpha", "beta"]
    # ...and without a link the cached route is used.
    alpha.routes.learn(["alpha", "beta", "gamma"])
    assert alpha.router.outbound_route("gamma") == \
        ["alpha", "beta", "gamma"]
    assert alpha.router.outbound_route("epsilon") is None


def test_learn_from_reply_reverses_route():
    _world, alpha, _beta = _chain()
    reply = Message(kind=MsgKind.CONTROL_ACK, req_id=9, origin="gamma",
                    user="lfc", payload={"ok": True},
                    route=["gamma", "beta", "alpha"], final_dest="alpha",
                    reply_to=5)
    alpha.router.learn_from_reply(reply)
    assert alpha.routes.route_to("gamma") == ["alpha", "beta", "gamma"]
    # Two-element routes are direct links, never worth caching.
    direct = Message(kind=MsgKind.CONTROL_ACK, req_id=10, origin="beta",
                     user="lfc", payload={"ok": True},
                     route=["beta", "alpha"], final_dest="alpha",
                     reply_to=6)
    alpha.router.learn_from_reply(direct)
    assert alpha.routes.route_to("beta") is None


def test_learn_path_and_invalidate_via():
    _world, alpha, _beta = _chain()
    alpha.router.learn_path(["alpha", "beta", "gamma"])
    alpha.router.learn_path(["alpha", "beta", "delta"])
    alpha.router.learn_path(["alpha", "beta"])  # direct: not cached
    assert alpha.routes.route_to("gamma") == ["alpha", "beta", "gamma"]
    assert alpha.routes.route_to("beta") is None
    PERF.reset()
    alpha.router.invalidate_via("beta")
    assert alpha.routes.route_to("gamma") is None
    assert alpha.routes.route_to("delta") is None
    # The via-host index visits exactly the routes through the peer.
    assert PERF.route_invalidation_scans == 2


def test_route_send_follows_recorded_route():
    world, alpha, beta = _chain()
    received = []
    beta.rpc.register(41, received.append,
                      beta.sim.schedule(60_000.0, lambda: None))
    reply = Message(kind=MsgKind.CONTROL_ACK, req_id=12, origin="alpha",
                    user="lfc", payload={"ok": True},
                    route=["alpha", "beta"], final_dest="beta",
                    reply_to=41)
    alpha.router.route_send(reply)
    world.run_for(5_000.0)
    assert len(received) == 1 and received[0].payload == {"ok": True}


def test_route_send_without_link_drops_silently():
    _world, alpha, _beta = _chain()
    reply = Message(kind=MsgKind.CONTROL_ACK, req_id=13, origin="alpha",
                    user="lfc", payload={"ok": True},
                    route=["alpha", "gamma"], final_dest="gamma",
                    reply_to=1)
    alpha.router.route_send(reply)  # no gamma link: must not raise
