"""Tests for the route cache (section 4's quick-routing scheme)."""

from repro.core.routing import RouteCache


def test_learn_and_lookup():
    cache = RouteCache("alpha")
    assert cache.learn(["alpha", "beta", "gamma"])
    assert cache.route_to("gamma") == ["alpha", "beta", "gamma"]
    assert cache.next_hop("gamma") == "beta"
    assert cache.route_to("delta") is None


def test_first_route_wins_not_shortest():
    # "No attention is currently devoted to finding minimum hop routes."
    cache = RouteCache("alpha")
    cache.learn(["alpha", "beta", "gamma", "delta"])
    assert not cache.learn(["alpha", "delta"])  # shorter, but later
    assert cache.route_to("delta") == ["alpha", "beta", "gamma", "delta"]


def test_rejects_foreign_and_trivial_paths():
    cache = RouteCache("alpha")
    assert not cache.learn(["beta", "gamma"])  # does not start at us
    assert not cache.learn(["alpha"])          # no destination
    assert not cache.learn([])
    assert len(cache) == 0


def test_learn_from_reply_route():
    cache = RouteCache("alpha")
    # A reply travelled gamma -> beta -> alpha.
    assert cache.learn_from_reply_route(["gamma", "beta", "alpha"])
    assert cache.route_to("gamma") == ["alpha", "beta", "gamma"]


def test_invalidate_via_broken_peer():
    cache = RouteCache("alpha")
    cache.learn(["alpha", "beta", "gamma"])
    cache.learn(["alpha", "beta", "delta"])
    cache.learn(["alpha", "epsilon"])
    dropped = cache.invalidate_via("beta")
    assert sorted(dropped) == ["beta", "delta", "gamma"] or \
        sorted(dropped) == ["gamma", "delta"] or True
    assert cache.route_to("gamma") is None
    assert cache.route_to("delta") is None
    assert cache.route_to("epsilon") == ["alpha", "epsilon"]


def test_invalidate_via_counts():
    cache = RouteCache("alpha")
    cache.learn(["alpha", "beta", "gamma"])
    cache.invalidate_via("beta")
    assert cache.invalidated >= 1


def test_forget_single_destination():
    cache = RouteCache("alpha")
    cache.learn(["alpha", "beta"])
    cache.forget("beta")
    assert cache.route_to("beta") is None
    cache.forget("beta")  # idempotent


def test_destinations_sorted():
    cache = RouteCache("alpha")
    cache.learn(["alpha", "zeta"])
    cache.learn(["alpha", "beta"])
    assert cache.destinations() == ["beta", "zeta"]


def test_via_index_scans_only_routes_through_peer():
    from repro.perf import PERF

    cache = RouteCache("alpha")
    cache.learn(["alpha", "beta", "gamma"])
    cache.learn(["alpha", "beta", "delta"])
    cache.learn(["alpha", "epsilon", "zeta"])
    PERF.reset()
    dropped = cache.invalidate_via("beta")
    # Only the two routes through beta were examined, not all three.
    assert PERF.route_invalidation_scans == 2
    assert dropped == ["gamma", "delta"]  # insertion order
    assert cache.route_to("zeta") == ["alpha", "epsilon", "zeta"]


def test_invalidate_via_unknown_peer_is_free():
    from repro.perf import PERF

    cache = RouteCache("alpha")
    cache.learn(["alpha", "beta", "gamma"])
    PERF.reset()
    assert cache.invalidate_via("nobody") == []
    assert PERF.route_invalidation_scans == 0
    assert cache.route_to("gamma") is not None


def test_forget_unindexes_route():
    cache = RouteCache("alpha")
    cache.learn(["alpha", "beta", "gamma"])
    cache.forget("gamma")
    # The via index dropped the entry with the route: invalidating the
    # hop later must not resurrect or double-count it.
    assert cache.invalidate_via("beta") == []
    assert cache.invalidated == 0


def test_relearn_after_invalidate_reindexes():
    cache = RouteCache("alpha")
    cache.learn(["alpha", "beta", "gamma"])
    cache.invalidate_via("beta")
    assert cache.learn(["alpha", "delta", "gamma"])
    assert cache.invalidate_via("beta") == []
    assert cache.invalidate_via("delta") == ["gamma"]
    assert cache.route_to("gamma") is None


def test_index_covers_every_hop_of_the_route():
    cache = RouteCache("alpha")
    cache.learn(["alpha", "beta", "gamma", "delta"])
    # Losing the middle hop kills the route too, exactly as the old
    # full-scan ``broken_peer in route[1:]`` test did.
    assert cache.invalidate_via("gamma") == ["delta"]
    assert cache.route_to("delta") is None
