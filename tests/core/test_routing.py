"""Tests for the route cache (section 4's quick-routing scheme)."""

from repro.core.routing import RouteCache


def test_learn_and_lookup():
    cache = RouteCache("alpha")
    assert cache.learn(["alpha", "beta", "gamma"])
    assert cache.route_to("gamma") == ["alpha", "beta", "gamma"]
    assert cache.next_hop("gamma") == "beta"
    assert cache.route_to("delta") is None


def test_first_route_wins_not_shortest():
    # "No attention is currently devoted to finding minimum hop routes."
    cache = RouteCache("alpha")
    cache.learn(["alpha", "beta", "gamma", "delta"])
    assert not cache.learn(["alpha", "delta"])  # shorter, but later
    assert cache.route_to("delta") == ["alpha", "beta", "gamma", "delta"]


def test_rejects_foreign_and_trivial_paths():
    cache = RouteCache("alpha")
    assert not cache.learn(["beta", "gamma"])  # does not start at us
    assert not cache.learn(["alpha"])          # no destination
    assert not cache.learn([])
    assert len(cache) == 0


def test_learn_from_reply_route():
    cache = RouteCache("alpha")
    # A reply travelled gamma -> beta -> alpha.
    assert cache.learn_from_reply_route(["gamma", "beta", "alpha"])
    assert cache.route_to("gamma") == ["alpha", "beta", "gamma"]


def test_invalidate_via_broken_peer():
    cache = RouteCache("alpha")
    cache.learn(["alpha", "beta", "gamma"])
    cache.learn(["alpha", "beta", "delta"])
    cache.learn(["alpha", "epsilon"])
    dropped = cache.invalidate_via("beta")
    assert sorted(dropped) == ["beta", "delta", "gamma"] or \
        sorted(dropped) == ["gamma", "delta"] or True
    assert cache.route_to("gamma") is None
    assert cache.route_to("delta") is None
    assert cache.route_to("epsilon") == ["alpha", "epsilon"]


def test_invalidate_via_counts():
    cache = RouteCache("alpha")
    cache.learn(["alpha", "beta", "gamma"])
    cache.invalidate_via("beta")
    assert cache.invalidated >= 1


def test_forget_single_destination():
    cache = RouteCache("alpha")
    cache.learn(["alpha", "beta"])
    cache.forget("beta")
    assert cache.route_to("beta") is None
    cache.forget("beta")  # idempotent


def test_destinations_sorted():
    cache = RouteCache("alpha")
    cache.learn(["alpha", "zeta"])
    cache.learn(["alpha", "beta"])
    assert cache.destinations() == ["beta", "zeta"]
