"""Integration tests: tools driving LPMs through the full protocol."""

import pytest

from repro import (
    ControlAction,
    GlobalPid,
    PPMClient,
    PPMError,
    spinner_spec,
    worker_spec,
)
from repro.core.messages import MsgKind

from .conftest import lpm_of


def test_connect_creates_lpm(world):
    client = PPMClient(world, "lfc", "alpha").connect()
    assert client.connected
    assert ("alpha", "lfc") in world.lpms
    info = client.session_info()
    assert info["host"] == "alpha"
    assert info["user"] == "lfc"


def test_second_client_reuses_lpm(world):
    PPMClient(world, "lfc", "alpha").connect()
    lpm_first = lpm_of(world, "alpha")
    PPMClient(world, "lfc", "alpha").connect()
    assert lpm_of(world, "alpha") is lpm_first
    assert world.host("alpha").pmd_daemon.creations == 1


def test_ping(ppm):
    result = ppm.client.ping()
    assert result["host"] == "alpha"


def test_create_local_process(ppm, world):
    gpid = ppm.create_process("job", program=spinner_spec(None))
    assert gpid.host == "alpha"
    proc = world.host("alpha").kernel.procs.get(gpid.pid)
    assert proc.command == "job"
    assert proc.uid == 1001
    # Created by the LPM as creation server: child of the LPM process.
    assert proc.ppid == lpm_of(world, "alpha").proc.pid
    assert proc.traced


def test_create_remote_process(ppm, world):
    gpid = ppm.create_process("rjob", host="beta",
                              program=spinner_spec(None))
    assert gpid.host == "beta"
    assert ("beta", "lfc") in world.lpms
    proc = world.host("beta").kernel.procs.get(gpid.pid)
    assert proc.command == "rjob"
    # The sibling channel stays up afterwards.
    assert "beta" in lpm_of(world, "alpha").authenticated_siblings()
    assert "alpha" in lpm_of(world, "beta").authenticated_siblings()


def test_create_on_unreachable_host_fails(ppm, world):
    world.host("beta").crash()
    with pytest.raises(PPMError):
        ppm.create_process("rjob", host="beta")


def test_remote_control_stop_continue_kill(ppm, world):
    gpid = ppm.create_process("rjob", host="beta",
                              program=spinner_spec(None))
    proc = world.host("beta").kernel.procs.get(gpid.pid)
    ppm.client.stop(gpid)
    assert proc.state.value == "stopped"
    ppm.client.cont(gpid)
    assert proc.state.value == "running"
    ppm.client.kill(gpid)
    assert not proc.alive


def test_foreground_background(ppm, world):
    gpid = ppm.create_process("job", program=spinner_spec(None))
    proc = world.host("alpha").kernel.procs.get(gpid.pid)
    ppm.client.background(gpid)
    assert not proc.foreground
    ppm.client.foreground(gpid)
    assert proc.foreground


def test_terminate_delivers_sigterm(ppm, world):
    gpid = ppm.create_process("job", program=spinner_spec(None))
    ppm.client.terminate(gpid)
    proc_record = lpm_of(world, "alpha").records[gpid.pid]
    world.run_for(100.0)
    assert proc_record.state == "exited"


def test_control_missing_process_reports_error(ppm):
    with pytest.raises(PPMError):
        ppm.client.stop(GlobalPid("alpha", 4242))


def test_control_on_remote_missing_process(ppm, world):
    ppm.create_process("rjob", host="beta", program=spinner_spec(None))
    with pytest.raises(PPMError):
        ppm.client.stop(GlobalPid("beta", 4242))


def test_adopt_existing_tree(ppm, world):
    # A computation started outside the PPM ("if the user did not invoke
    # the process management services at login time", section 4).
    host = world.host("alpha")
    shell = host.spawn_user_process("lfc", "shell")
    child = host.kernel.spawn(1001, "make", ppid=shell.pid)
    grandchild = host.kernel.spawn(1001, "cc1", ppid=child.pid)
    adopted = ppm.adopt(shell.pid)
    assert set(adopted) == {shell.pid, child.pid, grandchild.pid}
    assert shell.traced and child.traced and grandchild.traced
    forest = ppm.snapshot()
    assert GlobalPid("alpha", grandchild.pid) in forest


def test_adopt_foreign_process_fails(ppm, world):
    other = world.host("alpha").spawn_user_process("ramon", "theirs")
    with pytest.raises(PPMError):
        ppm.adopt(other.pid)


def test_set_trace_flags_per_pid_and_session(ppm, world):
    gpid = ppm.create_process("job", program=spinner_spec(None))
    ppm.client.set_trace_flags(["exit"], pid=gpid.pid)
    proc = world.host("alpha").kernel.procs.get(gpid.pid)
    from repro.unixsim.process import TraceFlag
    assert proc.trace_flags == TraceFlag.EXIT
    ppm.client.set_trace_flags(["all"])
    gpid2 = ppm.create_process("job2", program=spinner_spec(None))
    proc2 = world.host("alpha").kernel.procs.get(gpid2.pid)
    assert proc2.trace_flags == TraceFlag.ALL


def test_set_trace_flags_unknown_flag(ppm):
    with pytest.raises(PPMError):
        ppm.client.set_trace_flags(["bogus"])


def test_unknown_tool_request_rejected(ppm):
    result = ppm.client.call(MsgKind.HELLO, {})
    assert not result.get("ok")


def test_tool_connection_other_user_rejected(world):
    PPMClient(world, "lfc", "alpha").connect()
    # ramon's client tries to talk to lfc's accept socket.
    lpm = lpm_of(world, "alpha")
    from repro.netsim.stream import StreamConnection
    outcomes = []
    StreamConnection.connect(
        world.network, "alpha", "alpha", lpm.accept_service,
        payload={"role": "tool", "user": "ramon", "host": "alpha"},
        on_established=lambda ep: outcomes.append(ep))
    world.run_for(5_000.0)
    # Connection is torn down immediately by the LPM.
    assert not outcomes or not outcomes[0].open


def test_session_info_reports_handler_stats(ppm):
    ppm.create_process("rjob", host="beta", program=spinner_spec(None))
    info = ppm.session_info()
    assert info["handler_stats"]["spawned"] >= 1
    assert "beta" in info["siblings"]


def test_worker_exit_reflected_in_records(ppm, world):
    gpid = ppm.create_process("short", program=worker_spec(500.0,
                                                           exit_status=2))
    world.run_for(2_000.0)
    record = lpm_of(world, "alpha").records[gpid.pid]
    assert record.state == "exited"
    assert record.exit_status == 2
