"""Tests for the handler pool and the PersonalProcessManager facade."""

import pytest

from repro import (
    ControlAction,
    PersonalProcessManager,
    PPMConfig,
    fork_tree_spec,
    spinner_spec,
)

from .conftest import build_world, lpm_of


class TestHandlerPool:
    def test_handlers_are_real_processes(self, ppm, world):
        ppm.create_process("rjob", host="beta", program=spinner_spec(None))
        lpm = lpm_of(world, "alpha")
        assert lpm.pool.spawned >= 1
        handler_procs = [p for p in world.host("alpha").kernel.procs
                         if p.command == "lpm-handler"]
        assert handler_procs
        assert all(p.ppid == lpm.proc.pid for p in handler_procs)

    def test_handlers_reused_not_respawned(self, ppm, world):
        # "processes that have handled a request may be given further
        # requests, rather than simply creating new processes"
        gpid = ppm.create_process("rjob", host="beta",
                                  program=spinner_spec(None))
        lpm = lpm_of(world, "alpha")
        spawned_after_first = lpm.pool.spawned
        for _ in range(5):
            ppm.control(gpid, ControlAction.STOP)
            ppm.control(gpid, ControlAction.CONTINUE)
        assert lpm.pool.spawned == spawned_after_first
        assert lpm.pool.reused >= 10

    def test_pool_bounded_by_config(self, world):
        config = PPMConfig(handler_pool_max=2)
        small_world = build_world(config=config)
        manager = PersonalProcessManager(small_world, "lfc", "alpha")
        manager.start()
        for host in ("beta", "gamma", "delta"):
            manager.create_process("j", host=host,
                                   program=spinner_spec(None))
        lpm = lpm_of(small_world, "alpha")
        assert lpm.pool.size() <= 3  # max + at most one in flight

    def test_shutdown_kills_handlers(self, ppm, world):
        ppm.create_process("rjob", host="beta", program=spinner_spec(None))
        lpm = lpm_of(world, "alpha")
        lpm.shutdown("test")
        handler_procs = [p for p in world.host("alpha").kernel.procs
                         if p.command == "lpm-handler" and p.alive]
        assert not handler_procs


class TestFacade:
    def test_execution_sites(self, ppm):
        root = ppm.create_process("root", program=spinner_spec(None))
        ppm.create_process("c1", host="beta", parent=root,
                           program=spinner_spec(None))
        ppm.create_process("c2", host="gamma", parent=root,
                           program=spinner_spec(None))
        assert ppm.execution_sites(root) == ["alpha", "beta", "gamma"]

    def test_execution_sites_unknown_root(self, ppm):
        from repro import GlobalPid
        assert ppm.execution_sites(GlobalPid("alpha", 999)) == []

    def test_stop_and_continue_computation(self, ppm, world):
        root = ppm.create_process("root", program=spinner_spec(None))
        child = ppm.create_process("child", host="beta", parent=root,
                                   program=spinner_spec(None))
        results = ppm.stop_computation(root)
        assert len(results) == 2
        for gpid in (root, child):
            proc = world.host(gpid.host).kernel.procs.get(gpid.pid)
            assert proc.state.value == "stopped"
        ppm.continue_computation(root)
        for gpid in (root, child):
            proc = world.host(gpid.host).kernel.procs.get(gpid.pid)
            assert proc.state.value == "running"

    def test_kill_computation_children_first(self, ppm, world):
        spec = fork_tree_spec([("kid", 10.0, spinner_spec(None))])
        root = ppm.create_process("root", program=spec)
        world.run_for(500.0)
        results = ppm.kill_computation(root)
        assert len(results) == 2
        world.run_for(500.0)
        forest = ppm.snapshot(prune=True)
        assert len(forest) == 0

    def test_signal_computation_skips_already_exited(self, ppm, world):
        from repro import worker_spec
        spec = fork_tree_spec([("kid", 10.0, spinner_spec(None))],
                              duration_ms=100.0)
        root = ppm.create_process("root", program=spec)
        world.run_for(1_000.0)  # root exits, kid lives
        results = ppm.stop_computation(root)
        assert len(results) == 1  # only the kid

    def test_facade_installs_lpm_support(self):
        world = build_world()
        world.lpm_factory = None
        manager = PersonalProcessManager(world, "lfc", "alpha")
        assert world.lpm_factory is not None
        manager.start()
        assert manager.session_info()["ok"]

    def test_logout_and_relogin_other_host(self, ppm, world):
        gpid = ppm.create_process("j", host="beta",
                                  program=spinner_spec(None))
        ppm.logout()
        assert not ppm.client.connected
        client = ppm.relogin("beta")
        assert client.host_name == "beta"
        forest = client.snapshot()
        assert gpid in forest
