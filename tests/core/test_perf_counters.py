"""Tests for the always-on perf-counter layer (`repro.perf`)."""

from repro import PersonalProcessManager, spinner_spec
from repro.perf import PERF, PerfCounters

from .conftest import build_world


def test_reset_snapshot_and_delta():
    counters = PerfCounters()
    counters.encodes_performed += 3
    counters.dedup_checks += 1
    snap = counters.snapshot()
    assert snap["encodes_performed"] == 3
    counters.encodes_performed += 2
    delta = counters.delta_since(snap)
    assert delta["encodes_performed"] == 2
    assert delta["dedup_checks"] == 0
    counters.reset()
    assert counters.snapshot()["encodes_performed"] == 0


def test_session_work_shows_up_in_perf_stats():
    world = build_world()
    manager = PersonalProcessManager(world, "lfc", "alpha",
                                     recovery_hosts=["alpha"]).start()
    PERF.reset()
    manager.create_process("job", host="beta",
                           program=spinner_spec(None))
    forest = manager.snapshot(prune=False)
    assert len(forest) == 1
    stats = manager.perf_stats()
    # The gather crossed the wire: something was encoded and sized, the
    # broadcast stamp was checked, and the simulator ran events.
    assert stats["encodes_performed"] > 0
    assert stats["size_calls"] >= stats["encodes_performed"]
    assert stats["dedup_checks"] > 0
    assert stats["events_run"] > 0
    assert stats["sim_events_run"] >= stats["events_run"]
    assert stats["sim_now_ms"] == world.sim.now_ms
    assert "sim_queue_compactions" in stats


def test_verify_cache_absorbs_repeat_stamp_checks():
    from repro.ids import BroadcastId

    stamp = BroadcastId.make("alpha", 123.0, 1, "secret")
    PERF.reset()
    assert stamp.verify("secret")
    hashed_after_first = PERF.hmac_computed
    for _ in range(10):
        assert stamp.verify("secret")
    assert PERF.hmac_computed == hashed_after_first
    assert PERF.hmac_cache_hits >= 10
    # A forged signature over the same fields must not hit a cached True.
    forged = BroadcastId("alpha", 123.0, 1, "0" * 16)
    assert not forged.verify("secret")
