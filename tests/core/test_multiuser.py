"""Multi-user isolation: "process management is a problem of
administering the processes of a particular user without regard to
machine rather than the processes of a particular machine, without
regard to user" (section 2)."""

import pytest

from repro import (
    ControlAction,
    PersonalProcessManager,
    PPMClient,
    PPMError,
    TraceEventType,
    spinner_spec,
    worker_spec,
)

from .conftest import build_world, lpm_of


@pytest.fixture
def two_users(world):
    lfc = PersonalProcessManager(world, "lfc", "alpha",
                                 recovery_hosts=["alpha"])
    lfc.start()
    world.write_recovery_file("ramon", ["beta"])
    ramon = PersonalProcessManager(world, "ramon", "beta")
    ramon.start()
    return world, lfc, ramon


def test_one_lpm_per_user_per_host(two_users):
    world, lfc, ramon = two_users
    lfc.create_process("mine", host="beta", program=spinner_spec(None))
    ramon.create_process("theirs", host="beta", program=spinner_spec(None))
    assert ("beta", "lfc") in world.lpms
    assert ("beta", "ramon") in world.lpms
    assert world.lpms[("beta", "lfc")] is not world.lpms[("beta", "ramon")]
    # Two LPM processes exist on beta, one per user.
    lpm_procs = [p for p in world.host("beta").kernel.procs
                 if p.command == "lpm" and p.alive]
    assert {p.uid for p in lpm_procs} == {1001, 1002}


def test_snapshots_are_disjoint(two_users):
    world, lfc, ramon = two_users
    mine = lfc.create_process("mine", host="gamma",
                              program=spinner_spec(None))
    theirs = ramon.create_process("theirs", host="gamma",
                                  program=spinner_spec(None))
    lfc_forest = lfc.snapshot()
    ramon_forest = ramon.snapshot()
    assert mine in lfc_forest and theirs not in lfc_forest
    assert theirs in ramon_forest and mine not in ramon_forest


def test_control_across_users_denied(two_users):
    world, lfc, ramon = two_users
    theirs = ramon.create_process("theirs", host="gamma",
                                  program=spinner_spec(None))
    # lfc's PPM cannot stop ramon's process even knowing its identity:
    # the owning LPM is ramon's; lfc's LPM cannot locate it, and a
    # direct kernel action would fail the uid check.
    with pytest.raises(PPMError):
        lfc.control(theirs, ControlAction.STOP)
    proc = world.host("gamma").kernel.procs.get(theirs.pid)
    assert proc.state.value == "running"


def test_kernel_messages_routed_to_owning_lpm(two_users):
    world, lfc, ramon = two_users
    mine = lfc.create_process("mine", host="gamma",
                              program=worker_spec(1_000.0))
    theirs = ramon.create_process("theirs", host="gamma",
                                  program=worker_spec(1_000.0))
    world.run_for(5_000.0)
    lfc_records = lpm_of(world, "gamma", "lfc").records
    ramon_records = lpm_of(world, "gamma", "ramon").records
    assert mine.pid in lfc_records and mine.pid not in ramon_records
    assert theirs.pid in ramon_records and theirs.pid not in lfc_records
    assert lfc_records[mine.pid].state == "exited"
    assert ramon_records[theirs.pid].state == "exited"


def test_sessions_have_distinct_secrets_and_ccs(two_users):
    world, lfc, ramon = two_users
    lfc.create_process("mine", host="gamma", program=spinner_spec(None))
    ramon.create_process("theirs", host="gamma",
                         program=spinner_spec(None))
    lfc_lpm = lpm_of(world, "gamma", "lfc")
    ramon_lpm = lpm_of(world, "gamma", "ramon")
    assert lfc_lpm.secret != ramon_lpm.secret
    assert lfc_lpm.ccs_host == "alpha"
    assert ramon_lpm.ccs_host == "beta"


def test_rstats_scoped_per_user(two_users):
    world, lfc, ramon = two_users
    lfc.create_process("mine-batch", host="gamma",
                       program=worker_spec(500.0))
    ramon.create_process("their-batch", host="gamma",
                         program=worker_spec(500.0))
    world.run_for(3_000.0)
    lfc_commands = {usage.command for usage in lfc.rstats_report()}
    ramon_commands = {usage.command for usage in ramon.rstats_report()}
    assert lfc_commands == {"mine-batch"}
    assert ramon_commands == {"their-batch"}


def test_scoped_trigger_fires_only_for_own_events(two_users):
    world, lfc, ramon = two_users
    fired = []
    lfc.add_trigger("my-exits", fired.append,
                    event_type=TraceEventType.EXIT)
    lfc.create_process("mine", program=worker_spec(500.0))
    ramon.create_process("theirs", host="beta",
                         program=worker_spec(500.0))
    world.run_for(3_000.0)
    assert len(fired) == 1
    assert fired[0].user == "lfc"


def test_pmd_crash_affects_both_users_equally(two_users):
    world, lfc, ramon = two_users
    lfc.create_process("mine", host="gamma", program=spinner_spec(None))
    ramon.create_process("theirs", host="gamma",
                         program=spinner_spec(None))
    gamma = world.host("gamma")
    assert gamma.pmd_daemon.knows("lfc")
    assert gamma.pmd_daemon.knows("ramon")
