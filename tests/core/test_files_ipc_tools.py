"""Integration tests for the section 7 tools: open/closed files, file
descriptors, and IPC activity analysis."""

import pytest

from repro import file_worker_spec, spinner_spec
from repro.core.files_tool import (
    file_usage_summary,
    open_files_by_process,
    render_closed_files,
    render_fd_table,
    render_open_files,
)
from repro.ids import GlobalPid
from repro.tracing.ipc import (
    hottest_links,
    ipc_by_kind,
    ipc_matrix,
    render_ipc_by_kind,
    render_ipc_matrix,
)


class TestFilesTools:
    def test_open_files_visible_across_hosts(self, ppm, world):
        local = ppm.create_process(
            "reader", program=file_worker_spec(
                60_000.0, files=["/data/local"]))
        remote = ppm.create_process(
            "writer", host="beta", program=file_worker_spec(
                60_000.0, files=["/data/remote", "/tmp/scratch"]))
        forest = ppm.snapshot(prune=False)
        by_process = open_files_by_process(forest)
        assert {e["path"] for e in by_process[local]} == {"/data/local"}
        assert {e["path"] for e in by_process[remote]} == {
            "/data/remote", "/tmp/scratch"}

    def test_closed_files_history_in_snapshot(self, ppm, world):
        gpid = ppm.create_process(
            "churner", program=file_worker_spec(
                60_000.0, files=["/a", "/b"],
                close_after_ms=[("/a", 500.0)]))
        world.run_for(2_000.0)
        forest = ppm.snapshot(prune=False)
        record = forest.records[gpid]
        assert [e["path"] for e in record.closed_files] == ["/a"]
        assert [e["path"] for e in record.open_files] == ["/b"]

    def test_render_open_and_closed_files(self, ppm, world):
        ppm.create_process("reader", host="beta",
                           program=file_worker_spec(
                               60_000.0, files=["/etc/data"],
                               close_after_ms=[("/etc/data", 100.0)]))
        world.run_for(1_000.0)
        forest = ppm.snapshot(prune=False)
        closed_text = render_closed_files(forest)
        assert "/etc/data" in closed_text
        open_text = render_open_files(forest)
        assert "no open files" in open_text  # everything closed

    def test_render_fd_table(self, ppm, world):
        gpid = ppm.create_process(
            "holder", program=file_worker_spec(60_000.0,
                                               files=["/x", "/y"]))
        forest = ppm.snapshot(prune=False)
        text = render_fd_table(forest, gpid)
        assert "/x" in text and "/y" in text
        missing = render_fd_table(forest, GlobalPid("alpha", 9999))
        assert "no such process" in missing

    def test_file_usage_summary_counts_holders(self, ppm, world):
        a = ppm.create_process("r1", program=file_worker_spec(
            60_000.0, files=["/shared"]))
        b = ppm.create_process("r2", host="beta",
                               program=file_worker_spec(
                                   60_000.0, files=["/shared"]))
        forest = ppm.snapshot(prune=False)
        summary = file_usage_summary(forest)
        assert summary["/shared"]["open_count"] == 2
        assert summary["/shared"]["holders"] == sorted([a, b])


class TestIpcAnalysis:
    def make_traffic(self, ppm, world):
        ppm.create_process("j1", host="beta", program=spinner_spec(None))
        ppm.create_process("j2", host="gamma", program=spinner_spec(None))
        ppm.snapshot()
        return world.recorder.events

    def test_matrix_counts_directed_traffic(self, ppm, world):
        events = self.make_traffic(ppm, world)
        matrix = ipc_matrix(events)
        assert matrix[("alpha", "beta")]["messages"] >= 2  # create+gather
        assert matrix[("beta", "alpha")]["messages"] >= 2  # acks+reply
        assert all(cell["bytes"] > 0 for cell in matrix.values())

    def test_by_kind_includes_protocol_kinds(self, ppm, world):
        events = self.make_traffic(ppm, world)
        kinds = ipc_by_kind(events)
        assert "create" in kinds
        assert "gather" in kinds
        assert "gather_reply" in kinds

    def test_hottest_links_sorted(self, ppm, world):
        events = self.make_traffic(ppm, world)
        links = hottest_links(events)
        loads = [count for _pair, count in links]
        assert loads == sorted(loads, reverse=True)
        assert ("alpha", "beta") in dict(links)

    def test_renderings(self, ppm, world):
        events = self.make_traffic(ppm, world)
        assert "alpha" in render_ipc_matrix(events)
        assert "gather" in render_ipc_by_kind(events)

    def test_empty_trace_renders_hint(self):
        assert "granularity FINE" in render_ipc_matrix([])
        assert "granularity FINE" in render_ipc_by_kind([])
