"""Tests for the datagram sibling transport (section 3's alternative)."""

import pytest

from repro import (
    ControlAction,
    PPMClient,
    PPMConfig,
    PersonalProcessManager,
    spinner_spec,
    worker_spec,
)
from repro.tracing import TraceEventType

from .conftest import build_world, lpm_of

DGRAM = PPMConfig(transport="datagram",
                  datagram_rto_ms=300.0,
                  recovery_retry_interval_ms=5_000.0,
                  time_to_die_ms=120_000.0)


@pytest.fixture
def dworld():
    return build_world(config=DGRAM, recovery=["alpha", "beta"])


@pytest.fixture
def dclient(dworld):
    return PPMClient(dworld, "lfc", "alpha").connect()


def test_remote_create_and_control_over_datagrams(dworld, dclient):
    gpid = dclient.create_process("rjob", host="beta",
                                  program=spinner_spec(None))
    proc = dworld.host("beta").kernel.procs.get(gpid.pid)
    assert proc.command == "rjob"
    dclient.stop(gpid)
    assert proc.state.value == "stopped"
    dclient.cont(gpid)
    assert proc.state.value == "running"


def test_no_circuits_held_open(dworld, dclient):
    dclient.create_process("rjob", host="beta",
                           program=spinner_spec(None))
    # The only connections ever opened are the transient inetd/tool
    # bootstraps; no sibling circuits exist.
    assert dworld.network.open_connection_count() <= 1  # the tool stream
    assert dworld.network.stats.datagrams_sent > 0


def test_both_sides_authenticated_siblings(dworld, dclient):
    dclient.create_process("rjob", host="beta",
                           program=spinner_spec(None))
    assert "beta" in lpm_of(dworld, "alpha").authenticated_siblings()
    assert "alpha" in lpm_of(dworld, "beta").authenticated_siblings()
    # Session secrets merged exactly as with streams.
    assert lpm_of(dworld, "alpha").secret == lpm_of(dworld, "beta").secret


def test_snapshot_gather_over_datagrams(dworld, dclient):
    root = dclient.create_process("root", program=spinner_spec(None))
    dclient.create_process("c1", host="beta", parent=root,
                           program=spinner_spec(None))
    dclient.create_process("c2", host="gamma", parent=root,
                           program=spinner_spec(None))
    forest = dclient.snapshot()
    assert len(forest) == 3
    assert forest.roots() == [root]


def test_acks_double_message_count(dworld, dclient):
    before = dworld.network.stats.datagrams_sent
    gpid = dclient.create_process("rjob", host="beta",
                                  program=spinner_spec(None))
    dclient.stop(gpid)
    sent = dworld.network.stats.datagrams_sent - before
    # Every data datagram is acknowledged: roughly half the traffic is
    # acks — the recurring cost circuits avoid.
    assert sent >= 8


def test_forged_datagram_rejected(dworld, dclient):
    dclient.create_process("rjob", host="beta",
                           program=spinner_spec(None))
    lpm_beta = lpm_of(dworld, "beta")
    rejected_before = lpm_beta.dgram.rejected
    dworld.datagrams.send(
        "gamma", "beta", "lpmdg:lfc",
        {"kind": "data", "seq": 999, "from_host": "gamma",
         "sig": "forged", "payload": None})
    dworld.run_for(1_000.0)
    assert lpm_beta.dgram.rejected == rejected_before + 1


def test_intro_with_bad_token_dropped(dworld, dclient):
    dclient.create_process("rjob", host="beta",
                           program=spinner_spec(None))
    lpm_beta = lpm_of(dworld, "beta")
    dworld.datagrams.send(
        "gamma", "beta", "lpmdg:lfc",
        {"kind": "intro", "seq": 1, "from_host": "gamma",
         "user": "lfc", "token": "wrong", "secret": "x",
         "ccs_host": "gamma"})
    dworld.run_for(1_000.0)
    assert "gamma" not in lpm_beta.authenticated_siblings()


def test_retransmission_recovers_from_transient_partition(dworld,
                                                          dclient):
    gpid = dclient.create_process("rjob", host="beta",
                                  program=spinner_spec(None))
    # Cut the network briefly: the datagram is dropped, but a
    # retransmission lands after the heal.
    dworld.network.set_partition([{"alpha"}, {"beta", "gamma", "delta"}])

    import threading
    # Heal shortly after the first (dropped) transmission.
    dworld.sim.schedule(350.0, dworld.network.heal_partition)
    result = dclient.stop(gpid)
    assert result["ok"]
    proc = dworld.host("beta").kernel.procs.get(gpid.pid)
    assert proc.state.value == "stopped"


def test_host_crash_detected_by_retry_exhaustion(dworld, dclient):
    gpid = dclient.create_process("rjob", host="beta",
                                  program=spinner_spec(None))
    dworld.host("beta").crash()
    from repro import PPMError
    with pytest.raises(PPMError):
        dclient.stop(gpid)
    # Retry exhaustion reported the loss; recovery machinery engaged.
    assert dworld.recorder.select(TraceEventType.FAILURE_DETECTED,
                                  host="alpha")
    assert "beta" not in lpm_of(dworld, "alpha").authenticated_siblings()


def test_keepalive_detects_silent_death(dworld, dclient):
    # No circuit breaks when a datagram peer dies silently; the signed
    # keepalive pings (and their retry exhaustion) are the detector.
    dclient.create_process("rjob", host="beta",
                           program=spinner_spec(None))
    lpm_alpha = lpm_of(dworld, "alpha")
    assert "beta" in lpm_alpha.authenticated_siblings()
    dworld.host("beta").crash()
    # Nothing is sent by the application; detection must come from the
    # keepalive (15 s interval + retry budget).
    dworld.run_for(60_000.0)
    assert "beta" not in lpm_alpha.authenticated_siblings()
    assert lpm_alpha.dgram.pings_sent >= 1
    assert dworld.recorder.select(TraceEventType.FAILURE_DETECTED,
                                  host="alpha")


def test_ccs_recovery_over_datagrams(dworld):
    # Section 5's machinery must work identically on the alternative
    # transport: crash the CCS, watch a stand-in emerge and relinquish.
    from repro.core.recovery import RecoveryState
    client = PPMClient(dworld, "lfc", "alpha").connect()
    client.create_process("j1", host="beta", program=spinner_spec(None))
    client.create_process("j2", host="gamma", program=spinner_spec(None))
    dworld.host("alpha").crash()
    dworld.run_for(120_000.0)
    lpm_beta = lpm_of(dworld, "beta")
    assert lpm_beta.ccs_host == "beta"
    assert lpm_beta.recovery.state is RecoveryState.ACTING_CCS
    assert lpm_of(dworld, "gamma").ccs_host == "beta"
    dworld.host("alpha").reboot()
    dworld.run_for(180_000.0)
    assert lpm_beta.ccs_host == "alpha"


def test_arq_survives_lossy_network(dworld, dclient):
    # 30% injected loss: retransmission still gets every operation
    # through, exactly once (duplicate suppression by sequence number).
    gpid = dclient.create_process("rjob", host="beta",
                                  program=spinner_spec(None))
    dworld.datagrams.loss_rate = 0.3
    proc = dworld.host("beta").kernel.procs.get(gpid.pid)
    for _ in range(5):
        dclient.stop(gpid)
        assert proc.state.value == "stopped"
        dclient.cont(gpid)
        assert proc.state.value == "running"
    assert dworld.datagrams.losses_injected > 0
    # Exactly-once: five stop/cont pairs = exactly 10 signal pairs
    # (SIGSTOP+SIGCONT each count 1) plus nothing duplicated.
    assert proc.rusage.signals_received == 10


def test_full_session_lifecycle_on_datagrams(dworld):
    ppm = PersonalProcessManager(dworld, "lfc", "alpha")
    ppm.start()
    root = ppm.create_process("root", program=spinner_spec(None))
    ppm.create_process("worker", host="beta", parent=root,
                       program=worker_spec(2_000.0))
    dworld.run_for(5_000.0)
    report = ppm.rstats_report()
    assert any(usage.command == "worker" for usage in report)
    assert ppm.execution_sites(root) == ["alpha"]  # worker exited
    ppm.kill_computation(root)
