"""Tests for LPM time-to-live and session persistence (sections 2-4)."""

import pytest

from repro import PPMClient, PPMConfig, PersonalProcessManager, spinner_spec, worker_spec

from .conftest import build_world, lpm_of


SHORT_TTL = PPMConfig(lpm_time_to_live_ms=5_000.0)


@pytest.fixture
def short_world():
    return build_world(config=SHORT_TTL)


def test_idle_lpm_expires_after_ttl(short_world):
    client = PPMClient(short_world, "lfc", "alpha").connect()
    lpm = lpm_of(short_world, "alpha")
    client.close()
    short_world.run_for(6_000.0)
    assert not lpm.alive
    assert not lpm.proc.alive
    # The pmd registry was cleaned up.
    assert not short_world.host("alpha").pmd_daemon.knows("lfc")


def test_lpm_survives_while_processes_run(short_world):
    client = PPMClient(short_world, "lfc", "alpha").connect()
    client.create_process("jobs", program=spinner_spec(None))
    lpm = lpm_of(short_world, "alpha")
    client.close()
    short_world.run_for(60_000.0)
    assert lpm.alive  # "The PPM may outlive the user login session"


def test_lpm_survives_while_tool_attached(short_world):
    client = PPMClient(short_world, "lfc", "alpha").connect()
    lpm = lpm_of(short_world, "alpha")
    short_world.run_for(60_000.0)
    assert client.connected
    assert lpm.alive


def test_ttl_rearms_after_last_process_exits(short_world):
    client = PPMClient(short_world, "lfc", "alpha").connect()
    client.create_process("brief", program=worker_spec(2_000.0))
    lpm = lpm_of(short_world, "alpha")
    client.close()
    short_world.run_for(4_000.0)  # process exited at ~2 s
    assert lpm.alive
    short_world.run_for(60_000.0)  # TTL from exit + delivery
    assert not lpm.alive


def test_relogin_yields_existing_lpm_and_state(short_world):
    # "A user's request for a LPM following a new login will yield an
    # existing one ... users regain knowledge and control of all of the
    # processes created under the PPM mechanism." (section 4)
    ppm = PersonalProcessManager(short_world, "lfc", "alpha")
    ppm.start()
    gpid = ppm.create_process("longrun", program=spinner_spec(None))
    lpm = lpm_of(short_world, "alpha")
    ppm.logout()
    short_world.run_for(3_000.0)
    client2 = ppm.relogin()
    assert lpm_of(short_world, "alpha") is lpm
    forest = client2.snapshot()
    assert gpid in forest
    client2.stop(gpid)
    proc = short_world.host("alpha").kernel.procs.get(gpid.pid)
    assert proc.state.value == "stopped"


def test_remote_lpms_expire_independently(short_world):
    client = PPMClient(short_world, "lfc", "alpha").connect()
    client.create_process("local", program=spinner_spec(None))
    client.create_process("remote", host="beta",
                          program=worker_spec(1_000.0))
    lpm_alpha = lpm_of(short_world, "alpha")
    lpm_beta = lpm_of(short_world, "beta")
    short_world.run_for(60_000.0)
    assert lpm_alpha.alive  # has a process (and a tool)
    assert not lpm_beta.alive  # its only process exited


def test_ccs_does_not_expire_while_siblings_exist(short_world):
    # "For the CCS, the time-to-live interval has a different meaning:
    # as long as there is any sibling LPM in the networked system,
    # time-to-live is not decremented." (section 5)
    short_world.write_recovery_file("lfc", ["alpha", "beta"])
    client = PPMClient(short_world, "lfc", "alpha").connect()
    client.create_process("remote", host="beta",
                          program=spinner_spec(None))
    lpm_alpha = lpm_of(short_world, "alpha")
    assert lpm_alpha.ccs_host == "alpha"
    client.close()
    short_world.run_for(120_000.0)
    # alpha is idle (no user processes) but is the CCS with a sibling.
    assert lpm_alpha.alive
    assert lpm_of(short_world, "beta").alive


def test_expired_lpm_allows_fresh_creation(short_world):
    client = PPMClient(short_world, "lfc", "alpha").connect()
    first = lpm_of(short_world, "alpha")
    client.close()
    short_world.run_for(10_000.0)
    assert not first.alive
    client2 = PPMClient(short_world, "lfc", "alpha").connect()
    second = lpm_of(short_world, "alpha")
    assert second is not first
    assert second.alive
    assert client2.ping()["ok"]
