"""Regression tests for the amortised expiring map.

The map replaces the broadcast engine's full-scan purge; its boundary
semantics must match the old dict scan exactly (``expiry < now``
forgets, ``expiry == now`` keeps) because the A2 dedup-window ablation's
numbers depend on them.
"""

import random

from repro.core.expiry import ExpiryMap


class _Clock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def test_window_boundary_matches_old_scan_semantics():
    clock = _Clock()
    seen = ExpiryMap(100.0, clock)
    seen.add("stamp")
    clock.now = 100.0   # expiry == now: still live, like the old scan
    assert "stamp" in seen
    clock.now = 100.0001  # expiry < now: forgotten
    assert "stamp" not in seen
    assert len(seen) == 0


def test_zero_window_forgets_immediately_after_any_advance():
    # The pathological A2 configuration: window 0 keeps nothing beyond
    # the exact instant of insertion.
    clock = _Clock()
    seen = ExpiryMap(0.0, clock)
    seen.add("stamp")
    assert "stamp" in seen
    clock.now = 0.001
    assert "stamp" not in seen


def test_refresh_extends_lifetime_and_purge_stays_complete():
    clock = _Clock()
    seen = ExpiryMap(100.0, clock)
    seen.add("a", 1)
    clock.now = 60.0
    seen.add("a", 2)           # refresh: now expires at 160
    seen.add("b", 3)
    clock.now = 150.0          # the stale record for "a" has expired
    assert seen.get("a") == 2
    assert seen.get("b") == 3
    clock.now = 161.0
    assert len(seen) == 0


def test_matches_naive_reference_under_random_workload():
    rng = random.Random(99)
    clock = _Clock()
    window = 50.0
    fast = ExpiryMap(window, clock)
    naive = {}  # key -> expiry, purged by full scan like the old code
    for step in range(2000):
        clock.now += rng.uniform(0.0, 10.0)
        key = rng.randrange(40)
        if rng.random() < 0.6:
            fast.add(key, step)
            naive[key] = clock.now + window
        else:
            expected = key in {k for k, exp in naive.items()
                               if not exp < clock.now}
            assert (key in fast) == expected
        for stale in [k for k, exp in naive.items() if exp < clock.now]:
            del naive[stale]
        assert len(fast) == len(naive)
