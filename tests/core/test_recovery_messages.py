"""Direct tests for the CCS message handlers and a long soak run."""

import pytest

from repro import PPMClient, PPMConfig, spinner_spec, worker_spec
from repro.core.messages import Message, MsgKind
from repro.core.recovery import RecoveryState
from repro.tracing import Granularity

from .conftest import build_world, lpm_of


def test_ccs_probe_message_answered(world):
    client = PPMClient(world, "lfc", "alpha").connect()
    client.create_process("j", host="beta", program=spinner_spec(None))
    lpm_beta = lpm_of(world, "beta")
    replies = []
    lpm_beta.send_request("alpha", MsgKind.CCS_PROBE, {},
                          replies.append)
    world.run_for(5_000.0)
    assert replies and replies[0] is not None
    assert replies[0].payload["ccs_host"] == "alpha"


def test_ccs_report_notice_updates_coordinator(world):
    client = PPMClient(world, "lfc", "alpha").connect()
    client.create_process("j", host="beta", program=spinner_spec(None))
    lpm_alpha = lpm_of(world, "alpha")
    lpm_beta = lpm_of(world, "beta")
    # alpha announces a coordinator change to beta.
    replies = []
    lpm_alpha.send_request("beta", MsgKind.CCS_REPORT,
                           {"new_ccs": "gamma"}, replies.append)
    world.run_for(5_000.0)
    assert lpm_beta.ccs_host == "gamma"
    assert replies[0].payload["ccs_host"] == "gamma"


def test_ccs_report_makes_receiver_stand_in(world):
    # A plain report addressed to a non-CCS LPM makes it serve.
    client = PPMClient(world, "lfc", "alpha").connect()
    client.create_process("j", host="beta", program=spinner_spec(None))
    lpm_alpha = lpm_of(world, "alpha")
    lpm_beta = lpm_of(world, "beta")
    assert lpm_beta.ccs_host == "alpha"
    replies = []
    lpm_alpha.send_request("beta", MsgKind.CCS_REPORT,
                           {"lost": "gamma", "reporter": "alpha"},
                           replies.append)
    world.run_for(5_000.0)
    assert lpm_beta.recovery.state is RecoveryState.ACTING_CCS


class TestSoak:
    def test_hours_of_churn_stay_bounded(self):
        """A day of simulated churn: processes created and dying,
        snapshots, a crash/reboot cycle — queues, pools, and seen-sets
        must stay bounded and the session responsive."""
        config = PPMConfig(broadcast_dedup_window_ms=30_000.0)
        world = build_world(seed=77, config=config)
        world.recorder.capacity = 5_000  # bounded history
        from repro import PPMError
        client = PPMClient(world, "lfc", "alpha").connect()
        client.create_process("anchor", program=spinner_spec(None))
        failures = 0
        for cycle in range(30):
            for host in ("beta", "gamma"):
                try:
                    client.create_process("burst-%d" % cycle, host=host,
                                          program=worker_spec(60_000.0))
                except PPMError:
                    # Expected while gamma is down (or crashed so
                    # recently the break is not yet detected).
                    failures += 1
            client.snapshot()
            world.run_for(600_000.0)  # 10 simulated minutes
            if cycle == 10:
                world.host("gamma").crash()
            if cycle == 12:
                world.host("gamma").reboot()
        assert failures <= 3  # only the down window fails
        # ~5 simulated hours later: everything bounded and alive.
        lpm = lpm_of(world, "alpha")
        assert lpm.alive
        assert lpm.pool.size() <= config.handler_pool_max + 1
        assert lpm.pool.busy_count() == 0
        assert lpm.broadcast.seen_count() <= 10  # window purges
        assert len(lpm._pending) == 0
        assert len(world.recorder.events) <= 5_000
        assert len(world.sim.queue) < 200  # no timer leaks
        assert client.ping()["ok"]
        forest = client.snapshot()
        assert any(r.command == "anchor" for r in forest.records.values())
