"""Additional crash-recovery edge scenarios."""

import pytest

from repro import PPMClient, PPMConfig, spinner_spec
from repro.core.recovery import RecoveryState
from repro.tracing import TraceEventType

from .conftest import build_world, lpm_of

FAST = PPMConfig(ccs_probe_interval_ms=5_000.0,
                 recovery_retry_interval_ms=4_000.0,
                 time_to_die_ms=90_000.0,
                 request_timeout_ms=8_000.0)


def session(recovery, hosts):
    world = build_world(config=FAST, recovery=list(recovery))
    client = PPMClient(world, "lfc", "alpha").connect()
    for host in hosts:
        client.create_process("job-%s" % host, host=host,
                              program=spinner_spec(None))
    return world, client


def test_empty_recovery_file_defaults_to_self():
    world = build_world(config=FAST, recovery=[])
    PPMClient(world, "lfc", "gamma").connect()
    lpm = lpm_of(world, "gamma")
    assert lpm.ccs_host == "gamma"
    # A failure elsewhere cannot dethrone a self-CCS with no list.
    assert lpm.recovery.recovery_list == []


def test_double_failure_ccs_then_stand_in():
    # recovery list alpha, beta, gamma: alpha dies, beta stands in,
    # then beta dies too — gamma must find itself at the list's end.
    world, _client = session(["alpha", "beta", "gamma"],
                             ["beta", "gamma"])
    world.host("alpha").crash()
    world.run_for(60_000.0)
    assert lpm_of(world, "beta").ccs_host == "beta"
    assert lpm_of(world, "gamma").ccs_host == "beta"
    world.host("beta").crash()
    world.run_for(90_000.0)
    lpm_gamma = lpm_of(world, "gamma")
    assert lpm_gamma.ccs_host == "gamma"
    assert lpm_gamma.recovery.state is RecoveryState.ACTING_CCS
    # gamma's processes never died.
    procs = [p for p in world.host("gamma").kernel.procs.by_uid(1001)
             if p.command.startswith("job") and p.alive]
    assert procs


def test_both_recovery_hosts_return_in_reverse_order():
    world, _client = session(["alpha", "beta"], ["beta", "gamma"])
    world.host("alpha").crash()
    world.run_for(60_000.0)
    assert lpm_of(world, "beta").ccs_host == "beta"
    # alpha reboots, then beta (the stand-in) crashes before probing.
    world.host("alpha").reboot()
    world.host("beta").crash()
    world.run_for(120_000.0)
    lpm_gamma = lpm_of(world, "gamma")
    # gamma found alpha (fresh LPM created on demand by the search).
    assert lpm_gamma.ccs_host == "alpha"
    assert lpm_gamma.recovery.state is RecoveryState.NORMAL
    assert ("alpha", "lfc") in world.lpms
    assert world.lpms[("alpha", "lfc")].alive


def test_ccs_itself_unaffected_by_leaf_failures():
    world, _client = session(["alpha", "beta"], ["beta", "gamma"])
    lpm_alpha = lpm_of(world, "alpha")
    world.host("gamma").crash()
    world.run_for(30_000.0)
    # The coordinator notes the loss but keeps serving.
    assert lpm_alpha.recovery.state in (RecoveryState.NORMAL,
                                        RecoveryState.ACTING_CCS)
    assert lpm_alpha.alive
    assert lpm_alpha.ccs_host == "alpha"


def test_partitioned_ccs_side_keeps_working():
    # The CCS's side of a partition needs no recovery at all.
    world, client = session(["alpha", "beta"], ["beta", "gamma"])
    world.network.set_partition([{"alpha", "beta"}, {"gamma", "delta"}])
    world.run_for(30_000.0)
    gpid = client.create_process("during-partition", host="beta",
                                 program=spinner_spec(None))
    assert gpid.host == "beta"
    forest = client.snapshot()
    assert gpid in forest
    assert "gamma" not in {g.host for g in forest.records}
    world.network.heal_partition()
    world.run_for(60_000.0)
    # After healing, gamma's records return to the snapshot.
    forest = client.snapshot()
    assert any(g.host == "gamma" for g in forest.records)


def test_recovery_events_carry_user_identity():
    world, _client = session(["alpha", "beta"], ["beta"])
    world.host("alpha").crash()
    world.run_for(60_000.0)
    for event in world.recorder.select(TraceEventType.CCS_ASSUMED):
        assert event.user == "lfc"
