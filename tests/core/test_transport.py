"""Unit tests for the sibling transport layer (repro.core.transport):
link lifecycle, channel authentication, duplicate accepts, the datagram
introduction, and teardown."""

from repro import PPMClient, PPMConfig, spinner_spec
from repro.core.messages import MsgKind
from repro.core.transport import SiblingLink

from .conftest import build_world, lpm_of


class FakeEndpoint:
    """Just enough endpoint surface for SiblingTransport."""

    def __init__(self, peer_name="zed"):
        self.peer_name = peer_name
        self.open = True
        self.sent = []
        self.on_message = None
        self.on_close = None
        self.context = None

    def send(self, message, nbytes=0, extra_delay_ms=0.0):
        self.sent.append(message)

    def close(self):
        self.open = False


def _session():
    world = build_world()
    client = PPMClient(world, "lfc", "alpha").connect()
    client.create_process("anchor", host="beta",
                         program=spinner_spec(None))
    return world, lpm_of(world, "alpha"), lpm_of(world, "beta")


def test_session_link_lifecycle():
    _world, alpha, beta = _session()
    assert alpha.transport.authenticated() == ["beta"]
    link = alpha.transport.link_to("beta")
    assert isinstance(link, SiblingLink) and link.authenticated
    assert alpha.transport.link_to("gamma") is None
    assert alpha.transport.session_established
    assert beta.transport.session_established
    # The newcomer adopted the established side's session secret.
    assert alpha.secret == beta.secret


def test_accept_rejects_bad_token():
    _world, alpha, _beta = _session()
    endpoint = FakeEndpoint("mallory")
    alpha.transport.accept_sibling(endpoint, {
        "token": "forged", "user": "lfc", "from_host": "mallory"})
    assert not endpoint.open
    assert "mallory" not in alpha.transport.links


def test_accept_rejects_wrong_user():
    _world, alpha, _beta = _session()
    endpoint = FakeEndpoint("mallory")
    alpha.transport.accept_sibling(endpoint, {
        "token": alpha.token, "user": "ramon", "from_host": "mallory"})
    assert not endpoint.open
    assert "mallory" not in alpha.transport.links


def test_duplicate_accept_replaces_link():
    _world, alpha, _beta = _session()
    old = alpha.transport.links["beta"].endpoint
    endpoint = FakeEndpoint("beta")
    alpha.transport.accept_sibling(endpoint, {
        "token": alpha.token, "user": "lfc", "from_host": "beta",
        "secret": alpha.secret, "ccs_host": alpha.ccs_host})
    assert not old.open  # the stale channel was torn down
    link = alpha.transport.links["beta"]
    assert link.endpoint is endpoint and link.authenticated
    # The new channel was answered with the session HELLO_ACK.
    ack = endpoint.sent[0]
    assert ack.kind is MsgKind.HELLO_ACK
    assert ack.payload["secret"] == alpha.secret
    assert ack.payload["ccs_host"] == alpha.ccs_host


def test_link_close_removes_link_and_drops_routes():
    _world, alpha, _beta = _session()
    alpha.routes.learn(["alpha", "beta", "gamma"])
    link = alpha.transport.links["beta"]
    alpha.transport.on_link_close("closed", link.endpoint)
    assert "beta" not in alpha.transport.links
    assert alpha.transport.authenticated() == []
    # Routes through the lost peer are invalidated with the link.
    assert alpha.routes.route_to("gamma") is None


def test_ensure_sibling_resolves_existing_link_immediately():
    _world, alpha, _beta = _session()
    results = []
    alpha.transport.ensure_sibling("beta").then(results.append)
    assert results == [alpha.transport.links["beta"]]
    # Asking for ourselves is a no-op link.
    alpha.transport.ensure_sibling("alpha").then(results.append)
    assert results[1] is None


def test_ensure_sibling_deduplicates_inflight_bootstraps():
    world = build_world()
    PPMClient(world, "lfc", "alpha").connect()
    alpha = lpm_of(world, "alpha")
    first = alpha.transport.ensure_sibling("beta")
    second = alpha.transport.ensure_sibling("beta")
    assert first is second  # one inetd/pmd bootstrap, shared waiter
    done = []
    first.then(done.append)
    world.run_for(10_000.0)
    assert done and done[0] is not None and done[0].peer == "beta"
    assert alpha.transport.authenticated() == ["beta"]
    assert "beta" not in alpha.transport._pending_links


def test_datagram_session_registers_links_both_sides():
    world = build_world(config=PPMConfig(transport="datagram"))
    client = PPMClient(world, "lfc", "alpha").connect()
    client.create_process("anchor", host="beta",
                         program=spinner_spec(None))
    alpha, beta = lpm_of(world, "alpha"), lpm_of(world, "beta")
    # The introduction handshake authenticated both directions.
    assert alpha.transport.authenticated() == ["beta"]
    assert beta.transport.authenticated() == ["alpha"]
    assert alpha.transport.links["beta"].endpoint is \
        alpha.dgram.endpoint_for("beta")


def test_shutdown_closes_links():
    _world, alpha, _beta = _session()
    endpoint = alpha.transport.links["beta"].endpoint
    alpha.shutdown("test teardown")
    assert alpha.transport.links == {}
    assert not endpoint.open
