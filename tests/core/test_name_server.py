"""Tests for the name-server CCS alternative (section 5's sketch)."""

import pytest

from repro import PPMClient, PPMConfig, spinner_spec
from repro.core.recovery import RecoveryState
from repro.tracing import TraceEventType

from .conftest import build_world, lpm_of

NS_CONFIG = PPMConfig(
    ccs_source="name_server",
    name_server_host="delta",
    ccs_probe_interval_ms=5_000.0,
    recovery_retry_interval_ms=5_000.0,
    time_to_die_ms=120_000.0,
    request_timeout_ms=8_000.0,
)


def ns_world():
    world = build_world(config=NS_CONFIG)
    server = world.install_name_server("delta")
    server.administer("lfc", ["alpha", "beta", "gamma"])
    return world, server


def make_session(world):
    client = PPMClient(world, "lfc", "alpha").connect()
    for host in ("beta", "gamma"):
        client.create_process("job-%s" % host, host=host,
                              program=spinner_spec(None))
    world.run_for(2_000.0)
    return client


def test_config_requires_server_host():
    from repro.errors import ConfigError
    with pytest.raises(ConfigError):
        PPMConfig(ccs_source="name_server")
    with pytest.raises(ConfigError):
        PPMConfig(ccs_source="dns")


def test_assignment_adopted_at_registration():
    world, server = ns_world()
    make_session(world)
    # No .recovery files anywhere; the name server coordinates.
    assert lpm_of(world, "alpha").ccs_host == "alpha"
    assert lpm_of(world, "beta").ccs_host == "alpha"
    assert lpm_of(world, "gamma").ccs_host == "alpha"
    assert server.queries + server.reports >= 0
    assert server.current_ccs("lfc") == "alpha"


def test_ccs_crash_reassigns_via_name_server():
    world, server = ns_world()
    make_session(world)
    world.host("alpha").crash()
    world.run_for(60_000.0)
    assert server.current_ccs("lfc") == "beta"
    assert lpm_of(world, "beta").ccs_host == "beta"
    assert lpm_of(world, "beta").recovery.state is \
        RecoveryState.ACTING_CCS
    assert lpm_of(world, "gamma").ccs_host == "beta"
    assert server.reports >= 1


def test_assignment_climbs_back_when_top_host_returns():
    world, server = ns_world()
    make_session(world)
    world.host("alpha").crash()
    world.run_for(60_000.0)
    assert server.current_ccs("lfc") == "beta"
    world.host("alpha").reboot()
    # A fresh login on alpha re-creates its LPM, which registers and
    # climbs the assignment back; beta's probe re-query notices.
    PPMClient(world, "lfc", "alpha").connect()
    world.run_for(60_000.0)
    assert server.current_ccs("lfc") == "alpha"
    assert lpm_of(world, "beta").ccs_host == "alpha"
    assert world.recorder.select(TraceEventType.CCS_RELINQUISHED,
                                 host="beta")


def test_name_server_down_is_single_point_of_failure():
    world, server = ns_world()
    make_session(world)
    # Both the coordinator AND the name server die.
    world.host("delta").crash()
    world.host("alpha").crash()
    world.run_for(60_000.0)
    # Nobody can learn a coordinator: survivors arm time-to-die.
    assert world.recorder.select(TraceEventType.TIME_TO_DIE_ARMED)
    beta_state = lpm_of(world, "beta").recovery.state
    assert beta_state in (RecoveryState.ISOLATED,
                          RecoveryState.SEARCHING)


def test_recovery_resumes_when_name_server_returns():
    world, server = ns_world()
    make_session(world)
    world.host("delta").crash()
    world.host("alpha").crash()
    world.run_for(30_000.0)
    world.host("delta").reboot()
    restored = world.install_name_server("delta")
    restored.administer("lfc", ["alpha", "beta", "gamma"])
    world.run_for(60_000.0)
    lpm_beta = lpm_of(world, "beta")
    assert lpm_beta.recovery.state in (RecoveryState.NORMAL,
                                       RecoveryState.ACTING_CCS)
    assert lpm_beta.ccs_host == "beta"  # next on the admin list
    # Processes survived the episode.
    proc = next(p for p in world.host("beta").kernel.procs.by_uid(1001)
                if p.command == "job-beta")
    assert proc.alive
