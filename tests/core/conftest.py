"""Shared fixtures for the core (PPM) tests."""

import pytest

from repro import (
    HostClass,
    PersonalProcessManager,
    PPMConfig,
    World,
    install,
)


def build_world(seed=7, config=None, host_specs=None, user="lfc",
                recovery=None):
    """A ready world with LPM support installed and one user account."""
    world = World(seed=seed, config=config or PPMConfig())
    specs = host_specs or [("alpha", HostClass.VAX_780),
                           ("beta", HostClass.VAX_750),
                           ("gamma", HostClass.SUN_2),
                           ("delta", HostClass.VAX_780)]
    for name, host_class in specs:
        world.add_host(name, host_class)
    world.ethernet()
    world.add_user(user, 1001)
    world.add_user("ramon", 1002)
    install(world)
    if recovery is not None:
        world.write_recovery_file(user, recovery)
    return world


@pytest.fixture
def world():
    return build_world()


@pytest.fixture
def ppm(world):
    manager = PersonalProcessManager(world, "lfc", "alpha",
                                     recovery_hosts=["alpha", "beta"])
    return manager.start()


def lpm_of(world, host, user="lfc"):
    return world.lpms[(host, user)]
