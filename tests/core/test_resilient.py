"""Tests for the resilient-computation layer (section 5's open problem,
built on top of the basic mechanism)."""

import pytest

from repro import PPMClient, ResilientComputation, UnitSpec, spinner_spec, worker_spec

from .conftest import build_world


@pytest.fixture
def session():
    world = build_world(recovery=["alpha", "beta"])
    client = PPMClient(world, "lfc", "alpha").connect()
    return world, client


def specs(max_restarts=8):
    return [
        UnitSpec(name="solver", command="solver",
                 program=spinner_spec(None),
                 candidate_hosts=["beta", "gamma", "delta"],
                 max_restarts=max_restarts),
        UnitSpec(name="logger", command="logger",
                 program=spinner_spec(None),
                 candidate_hosts=["gamma", "delta"],
                 max_restarts=max_restarts),
    ]


def test_start_places_on_preferred_hosts(session):
    world, client = session
    comp = ResilientComputation(client, specs()).start()
    status = comp.status()
    assert status["solver"]["host"] == "beta"
    assert status["logger"]["host"] == "gamma"
    assert comp.all_running()


def test_exited_unit_restarted_in_place(session):
    world, client = session
    units = [UnitSpec(name="flaky", command="flaky",
                      program=worker_spec(2_000.0, exit_status=1),
                      candidate_hosts=["beta"])]
    comp = ResilientComputation(client, units).start()
    world.run_for(5_000.0)  # the worker exits
    acted = comp.check_once()
    assert acted == ["flaky"]
    assert comp.units["flaky"].restarts == 1
    assert comp.status()["flaky"]["host"] == "beta"


def test_host_crash_transfers_control_to_next_host(session):
    # "control would have to be carefully transferred to another host"
    world, client = session
    comp = ResilientComputation(client, specs()).start()
    world.host("beta").crash()
    world.run_for(10_000.0)  # failure detection
    comp.check_once()
    status = comp.status()
    assert status["solver"]["host"] == "gamma"  # next candidate
    assert status["solver"]["restarts"] == 1
    assert status["logger"]["host"] == "gamma"  # untouched
    assert comp.all_running()


def test_cascading_failures_walk_the_candidate_list(session):
    world, client = session
    comp = ResilientComputation(client, specs()).start()
    world.host("beta").crash()
    world.run_for(10_000.0)
    comp.check_once()
    world.host("gamma").crash()
    world.run_for(10_000.0)
    comp.check_once()
    assert comp.status()["solver"]["host"] == "delta"
    assert comp.status()["logger"]["host"] == "delta"


def test_gives_up_after_max_restarts(session):
    world, client = session
    units = [UnitSpec(name="doomed", command="doomed",
                      program=worker_spec(500.0, exit_status=1),
                      candidate_hosts=["beta"], max_restarts=2)]
    comp = ResilientComputation(client, units).start()
    for _ in range(4):
        world.run_for(3_000.0)
        comp.check_once()
    state = comp.units["doomed"]
    assert state.failed_permanently
    assert state.restarts == 2
    assert not comp.all_running()


def test_run_supervised_heals_automatically(session):
    world, client = session
    comp = ResilientComputation(client, specs()).start()
    world.host("beta").crash()
    comp.run_supervised(30_000.0, check_interval_ms=5_000.0)
    assert comp.status()["solver"]["host"] == "gamma"
    assert comp.all_running()
    assert comp.checks >= 5


def test_unit_history_records_transfers(session):
    world, client = session
    comp = ResilientComputation(client, specs()).start()
    world.host("beta").crash()
    world.run_for(10_000.0)
    comp.check_once()
    history = comp.units["solver"].history
    assert any("placed on beta" in line for line in history)
    assert any("host down" in line for line in history)
    assert any("placed on gamma" in line for line in history)


def test_shutdown_kills_units(session):
    world, client = session
    comp = ResilientComputation(client, specs()).start()
    comp.shutdown()
    world.run_for(1_000.0)
    forest = client.snapshot(prune=True)
    assert len(forest) == 0
