"""Tests for the gather layer's k-way record merge (repro.core.gather):
the merged output must equal the old concatenate-then-sort result, and
the bookkeeping (paths, missing order, perf counters) must survive the
rewrite."""

import heapq

from repro import PPMClient, spinner_spec
from repro.core.gather import GatherEngine, GatherOp, _record_key
from repro.perf import PERF

from .conftest import build_world, lpm_of


def _lpm():
    world = build_world()
    PPMClient(world, "lfc", "alpha").connect()
    return world, lpm_of(world, "alpha")


def test_kway_merge_equals_sorted_concatenation():
    _world, alpha = _lpm()
    engine = GatherEngine(alpha)
    results = []
    op = GatherOp("snapshot", results.append)
    op.paths[alpha.name] = [alpha.name]
    op.local_run = [{"host": "alpha", "pid": p} for p in (3, 9, 12)]
    op.runs = [
        [{"host": "beta", "pid": p} for p in (1, 2, 50)],
        [{"host": "delta", "pid": 7}, {"host": "zeta", "pid": 1}],
        [],
        [{"host": "beta", "pid": 51}, {"host": "gamma", "pid": 4}],
    ]
    concatenated = list(op.local_run)
    for run in op.runs:
        concatenated.extend(run)
    engine._finish(op)
    (result,) = results
    assert result["ok"]
    assert result["records"] == sorted(concatenated, key=_record_key)
    # heapq.merge over sorted runs is what _finish promises.
    assert result["records"] == list(
        heapq.merge(*( [op.local_run] + op.runs ), key=_record_key))


def test_merge_counts_work_in_perf_counters():
    _world, alpha = _lpm()
    engine = GatherEngine(alpha)
    op = GatherOp("snapshot", lambda result: None)
    op.paths[alpha.name] = [alpha.name]
    op.local_run = [{"host": "alpha", "pid": 1}]
    op.runs = [[{"host": "beta", "pid": 2}, {"host": "beta", "pid": 3}]]
    PERF.reset()
    engine._finish(op)
    assert PERF.gather_merges == 1
    assert PERF.gather_records_merged == 3
    # Finishing is idempotent: a late child reply cannot double-count.
    engine._finish(op)
    assert PERF.gather_merges == 1


def test_missing_concatenation_order_preserved():
    _world, alpha = _lpm()
    engine = GatherEngine(alpha)
    results = []
    op = GatherOp("snapshot", results.append)
    op.paths[alpha.name] = [alpha.name]
    op.missing = ["timedout-1", "timedout-2"]
    op.child_missing = ["deep-1", "deep-2"]
    engine._finish(op)
    # Own timeouts first, then children's reports in merge order —
    # exactly the old accumulation order.
    assert results[0]["missing"] == \
        ["timedout-1", "timedout-2", "deep-1", "deep-2"]


def test_end_to_end_gather_is_gpid_sorted():
    world = build_world()
    client = PPMClient(world, "lfc", "alpha").connect()
    for host in ("beta", "gamma", "delta"):
        client.create_process("job-%s" % host, host=host,
                              program=spinner_spec(None))
    alpha = lpm_of(world, "alpha")
    results = []
    PERF.reset()
    alpha.start_gather("snapshot", results.append)
    world.run_until_true(lambda: bool(results), timeout_ms=60_000.0)
    result = results[0]
    assert result["ok"] and result["missing"] == []
    records = result["records"]
    assert {r["host"] for r in records} == {"beta", "gamma", "delta"}
    assert records == sorted(records, key=_record_key)
    # Every LPM in the gather tree performed exactly one merge.
    assert PERF.gather_merges == 4
    assert PERF.gather_records_merged >= len(records)
    # The assembled paths taught alpha a path entry per answering host.
    assert set(result["paths"]) == {"alpha", "beta", "gamma", "delta"}
