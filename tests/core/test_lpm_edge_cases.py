"""Edge-case tests for the LPM protocol machinery: authentication
failures, forwarding failures, timeouts, and determinism."""

import pytest

from repro import (
    GlobalPid,
    PPMClient,
    PPMConfig,
    PPMError,
    RequestTimeoutError,
    spinner_spec,
)
from repro.core.messages import Message, MsgKind
from repro.netsim.stream import StreamConnection
from repro.tracing import TraceEventType

from .conftest import build_world, lpm_of


class TestChannelAuthentication:
    def test_sibling_with_bad_token_rejected(self, world):
        PPMClient(world, "lfc", "alpha").connect()
        lpm = lpm_of(world, "alpha")
        outcomes = {"established": None, "closed": None}

        def established(endpoint):
            outcomes["established"] = endpoint
            endpoint.on_close = lambda reason, ep: outcomes.__setitem__(
                "closed", reason)

        StreamConnection.connect(
            world.network, "beta", "alpha", lpm.accept_service,
            payload={"role": "sibling", "user": "lfc",
                     "from_host": "beta", "token": "forged",
                     "secret": "x", "ccs_host": "beta"},
            on_established=established)
        world.run_for(10_000.0)
        assert outcomes["established"] is None or \
            not outcomes["established"].open
        # The refusal is visible in the trace.
        refusals = [e for e in world.recorder.select(
            TraceEventType.CONN_CLOSED, host="alpha")
            if e.details.get("reason") == "authentication failed"]
        assert refusals

    def test_sibling_with_wrong_user_rejected(self, world):
        PPMClient(world, "lfc", "alpha").connect()
        lpm = lpm_of(world, "alpha")
        results = []
        StreamConnection.connect(
            world.network, "beta", "alpha", lpm.accept_service,
            payload={"role": "sibling", "user": "ramon",
                     "from_host": "beta", "token": lpm.token,
                     "secret": "x", "ccs_host": "beta"},
            on_established=lambda ep: results.append(ep))
        world.run_for(10_000.0)
        assert not results or not results[0].open

    def test_unknown_role_rejected(self, world):
        PPMClient(world, "lfc", "alpha").connect()
        lpm = lpm_of(world, "alpha")
        results = []
        StreamConnection.connect(
            world.network, "alpha", "alpha", lpm.accept_service,
            payload={"role": "spy"},
            on_established=lambda ep: results.append(ep))
        world.run_for(5_000.0)
        assert not results or not results[0].open

    def test_forged_broadcast_stamp_ignored(self, world):
        client = PPMClient(world, "lfc", "alpha").connect()
        client.create_process("j", host="beta",
                              program=spinner_spec(None))
        lpm_beta = lpm_of(world, "beta")
        from repro.ids import BroadcastId
        forged = BroadcastId.make("alpha", world.now_ms, 99,
                                  "not-the-session-secret")
        assert not lpm_beta.broadcast.should_accept(forged)
        assert lpm_beta.broadcast.rejected_signatures == 1


class TestRequestFailurePaths:
    def test_request_timeout_returns_failure(self, world):
        # "If responses are never received by a handler, they inform the
        # dispatcher of the failure, which returns a failure message to
        # the originator of the request." (section 6)
        config = PPMConfig(request_timeout_ms=3_000.0,
                           connection_detect_ms=60_000.0)
        slow_world = build_world(config=config)
        client = PPMClient(slow_world, "lfc", "alpha").connect()
        gpid = client.create_process("j", host="beta",
                                     program=spinner_spec(None))
        # Freeze beta's LPM by halting its kernel without breaking the
        # network link detection quickly.
        lpm_beta = lpm_of(slow_world, "beta")
        lpm_beta.alive = False  # it will ignore all requests
        with pytest.raises(PPMError):
            client.stop(gpid)
        # The handler was released after the timeout.
        lpm_alpha = lpm_of(slow_world, "alpha")
        assert lpm_alpha.pool.busy_count() == 0

    def test_tool_request_timeout_raises(self, world):
        client = PPMClient(world, "lfc", "alpha").connect()
        lpm = lpm_of(world, "alpha")
        lpm.alive = False  # LPM ignores the tool too
        with pytest.raises(RequestTimeoutError):
            client.call(MsgKind.TOOL_PING, timeout_ms=2_000.0)

    def test_forward_without_next_hop_reports_failure(self, world):
        # Build the chain, learn the route, then cut beta-gamma: the
        # intermediate cannot relay and reports back.
        from .test_control_routing import build_chain
        alpha_client, _mid, leaf = build_chain(world)
        alpha_client.snapshot()
        lpm_beta = lpm_of(world, "beta")
        lpm_beta.siblings["gamma"].endpoint.close()
        world.run_for(1_000.0)
        # The route cache at alpha still points through beta; the
        # control fails over (locate/direct) or reports an error, but
        # must not hang.
        result = alpha_client.stop(leaf)
        assert result["ok"]

    def test_send_request_without_route_fails_fast(self, world):
        PPMClient(world, "lfc", "alpha").connect()
        lpm = lpm_of(world, "alpha")
        replies = []
        lpm.send_request("nowhere", MsgKind.CONTROL,
                         {"pid": 1, "action": "stop"}, replies.append)
        assert replies == [None]

    def test_locate_without_siblings_fails_fast(self, world):
        PPMClient(world, "lfc", "alpha").connect()
        lpm = lpm_of(world, "alpha")
        replies = []
        lpm.locate("beta", 42, replies.append)
        assert replies == [None]


class TestDeterminism:
    def build_and_run(self, seed):
        world = build_world(seed=seed)
        client = PPMClient(world, "lfc", "alpha").connect()
        client.create_process("a", host="beta",
                              program=spinner_spec(None))
        client.create_process("b", host="gamma",
                              program=spinner_spec(None))
        client.snapshot()
        world.host("beta").crash()
        world.run_for(30_000.0)
        client.snapshot()
        return [(e.time_ms, e.event_type.value, e.host)
                for e in world.recorder.events]

    def test_identical_seeds_identical_traces(self):
        assert self.build_and_run(99) == self.build_and_run(99)

    def test_different_seeds_differ(self):
        # Tokens and stamps draw from the seeded RNG, so traces differ
        # at least in timing of something; compare lengths defensively.
        a = self.build_and_run(1)
        b = self.build_and_run(2)
        assert a == a and b == b  # self-consistent
        # (identical traces across different seeds would be suspicious
        # but not wrong; the real guarantee is same-seed determinism)


class TestMessageHygiene:
    def test_reply_to_unknown_request_ignored(self, world):
        client = PPMClient(world, "lfc", "alpha").connect()
        client.create_process("j", host="beta",
                              program=spinner_spec(None))
        lpm_alpha = lpm_of(world, "alpha")
        lpm_beta = lpm_of(world, "beta")
        rogue = Message(kind=MsgKind.CONTROL_ACK, req_id=424242,
                        origin="beta", user="lfc",
                        payload={"ok": True}, reply_to=424242,
                        route=["beta", "alpha"], final_dest="alpha")
        lpm_beta._send_on_link(lpm_beta.siblings["alpha"], rogue)
        world.run_for(1_000.0)  # no crash, nothing pending
        assert 424242 not in lpm_alpha._pending

    def test_duplicate_gather_reply_is_harmless(self, world):
        client = PPMClient(world, "lfc", "alpha").connect()
        client.create_process("j", host="beta",
                              program=spinner_spec(None))
        forest = client.snapshot()
        assert len(forest) == 1
