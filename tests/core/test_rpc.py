"""Unit tests for the request/reply layer (repro.core.rpc): reply
correlation, handler accounting, retransmission arming, and the
server-side exactly-once cache."""

from repro import PPMClient, PPMConfig, spinner_spec
from repro.core.messages import Message, MsgKind
from repro.core.rpc import REQUEST_PENDING, RETRIED_KINDS
from repro.perf import PERF

from .conftest import build_world, lpm_of

DGRAM = PPMConfig(transport="datagram", datagram_rto_ms=150.0,
                  datagram_max_retries=4)


def _session(config=None):
    world = build_world(config=config)
    client = PPMClient(world, "lfc", "alpha").connect()
    gpid = client.create_process("anchor", host="beta",
                                 program=spinner_spec(None))
    return world, lpm_of(world, "alpha"), lpm_of(world, "beta"), gpid


def test_reply_correlation_and_handler_release():
    world, alpha, _beta, gpid = _session()
    busy_before = alpha.pool.busy_count()
    replies = []
    alpha.send_request("beta", MsgKind.CONTROL,
                       {"pid": gpid.pid, "action": "stop"},
                       replies.append)
    assert len(alpha.rpc.pending) == 1
    assert alpha.pool.busy_count() == busy_before + 1
    world.run_for(5_000.0)
    assert len(replies) == 1
    reply = replies[0]
    assert reply.kind is MsgKind.CONTROL_ACK
    assert reply.payload["ok"]
    # The conversation is closed and the handler returned to the pool.
    assert alpha.rpc.pending == {}
    assert alpha.pool.busy_count() == busy_before


def test_unroutable_destination_fails_synchronously():
    _world, alpha, _beta, _gpid = _session()
    replies = []
    alpha.send_request("nowhere", MsgKind.CONTROL, {},
                       replies.append)
    assert replies == [None]
    assert alpha.rpc.pending == {}


def test_timeout_fires_on_reply_none_and_releases_handler():
    world, alpha, _beta, gpid = _session()
    busy_before = alpha.pool.busy_count()
    # Partition the network after the link exists: the request leaves
    # the pending table only via its timeout.
    world.network.set_partition([{"alpha"}])
    replies = []
    alpha.send_request("beta", MsgKind.CONTROL,
                       {"pid": gpid.pid, "action": "stop"},
                       replies.append, timeout_ms=2_000.0)
    world.run_for(10_000.0)
    world.network.heal_partition()
    assert replies == [None]
    assert alpha.rpc.pending == {}
    assert alpha.pool.busy_count() == busy_before


def test_retry_timer_armed_only_for_datagram_side_effects():
    world, alpha, _beta, gpid = _session(config=DGRAM)
    assert RETRIED_KINDS == {MsgKind.CONTROL, MsgKind.CREATE}
    alpha.send_request("beta", MsgKind.CONTROL,
                       {"pid": gpid.pid, "action": "stop"},
                       lambda reply: None)
    (pending,) = alpha.rpc.pending.values()
    assert pending.retry_timer is not None
    world.run_for(5_000.0)

    # Broadcast-stamped gathers must never be LPM-retried (the dedup
    # seen-set would swallow the retry as a duplicate).
    alpha.send_request("beta", MsgKind.GATHER,
                       {"what": "snapshot", "visited": ["alpha", "beta"]},
                       lambda reply: None,
                       broadcast=alpha.broadcast.stamp())
    (pending,) = alpha.rpc.pending.values()
    assert pending.retry_timer is None
    world.run_for(5_000.0)


def test_stream_transport_never_arms_retry():
    world, alpha, _beta, gpid = _session()
    alpha.send_request("beta", MsgKind.CONTROL,
                       {"pid": gpid.pid, "action": "stop"},
                       lambda reply: None)
    (pending,) = alpha.rpc.pending.values()
    assert pending.retry_timer is None
    world.run_for(5_000.0)


def test_exactly_once_cache_drops_inflight_duplicates():
    _world, _alpha, beta, _gpid = _session(config=DGRAM)
    request = Message(kind=MsgKind.CONTROL, req_id=99, origin="alpha",
                      user="lfc", payload={"pid": 1, "action": "stop"},
                      route=["alpha", "beta"], final_dest="beta")
    PERF.reset()
    assert beta.rpc.note_request_started(request) is False
    # A retransmission arriving while the original still executes is
    # absorbed without re-sending anything.
    assert beta.rpc.note_request_started(request) is True
    assert PERF.requests_deduplicated == 1
    key = ("alpha", "lfc", 99)
    assert beta.rpc._done_requests.get(key)[2] is REQUEST_PENDING


def test_exactly_once_cache_resends_cached_reply():
    world, alpha, beta, _gpid = _session(config=DGRAM)
    request = Message(kind=MsgKind.CONTROL, req_id=77, origin="alpha",
                      user="lfc", payload={"pid": 2, "action": "stop"},
                      route=["alpha", "beta"], final_dest="beta")
    assert beta.rpc.note_request_started(request) is False
    beta.rpc.note_request_done(request, {"ok": True, "cached": True})
    received = []
    alpha.rpc.register(77, received.append,
                       alpha.sim.schedule(60_000.0, lambda: None))
    PERF.reset()
    assert beta.rpc.note_request_started(request) is True
    assert PERF.requests_deduplicated == 1
    world.run_for(5_000.0)
    assert len(received) == 1
    assert received[0].payload == {"ok": True, "cached": True}


def test_exactly_once_cache_is_payload_sensitive():
    _world, _alpha, beta, _gpid = _session(config=DGRAM)
    request = Message(kind=MsgKind.CONTROL, req_id=55, origin="alpha",
                      user="lfc", payload={"pid": 3, "action": "stop"},
                      route=["alpha", "beta"], final_dest="beta")
    assert beta.rpc.note_request_started(request) is False
    beta.rpc.note_request_done(request, {"ok": True})
    # Same (origin, req_id) but a different request — e.g. after an
    # origin restart — must execute, not answer from the cache.
    fresh = Message(kind=MsgKind.CONTROL, req_id=55, origin="alpha",
                    user="lfc", payload={"pid": 4, "action": "kill"},
                    route=["alpha", "beta"], final_dest="beta")
    assert beta.rpc.note_request_started(fresh) is False


def test_cancel_all_clears_pending():
    world, alpha, _beta, gpid = _session()
    alpha.send_request("beta", MsgKind.CONTROL,
                       {"pid": gpid.pid, "action": "stop"},
                       lambda reply: None)
    assert alpha.rpc.pending
    alpha.rpc.cancel_all()
    assert alpha.rpc.pending == {}
    world.run_for(60_000.0)  # cancelled timers must never fire
