"""Unit and end-to-end tests for per-source broadcast trees
(repro.core.spantree)."""

import pytest

from repro import PPMClient, PPMConfig, HostClass, spinner_spec
from repro.core.spantree import SpanTreeTable
from repro.perf import PERF

from .conftest import build_world, lpm_of

SPARSE = PPMConfig(topology_policy="sparse", sparse_degree=4)


class TestSpanTreeTable:
    def test_flood_builds_entry(self):
        table = SpanTreeTable("me")
        table.on_flood("src", "parent", 3, ["a", "b", "c"])
        assert table.has_tree("src")
        assert table.parent("src") == "parent"
        assert table.children("src") == {"a", "b", "c"}
        assert len(table) == 1

    def test_source_entry_has_no_parent(self):
        table = SpanTreeTable("src")
        table.on_flood("src", None, 1, ["a"])
        assert table.parent("src") is None

    def test_prune_epoch_rules(self):
        table = SpanTreeTable("me")
        table.on_flood("src", "p", 5, ["a", "b"])
        assert not table.on_prune("src", 4, "a"), "stale epoch honoured"
        assert table.children("src") == {"a", "b"}
        assert table.on_prune("src", 5, "a"), "same-epoch prune refused"
        assert table.on_prune("src", 9, "b"), "newer-epoch prune refused"
        assert table.children("src") == set()

    def test_prune_unknown_source_or_child(self):
        table = SpanTreeTable("me")
        table.on_flood("src", "p", 5, ["a"])
        assert not table.on_prune("other", 5, "a")
        assert not table.on_prune("src", 5, "zz")

    def test_reflood_resets_children_and_epoch(self):
        table = SpanTreeTable("me")
        table.on_flood("src", "p", 1, ["a", "b"])
        table.on_prune("src", 1, "a")
        table.on_flood("src", "q", 2, ["a", "c"])
        assert table.parent("src") == "q"
        assert table.children("src") == {"a", "c"}
        assert not table.on_prune("src", 1, "c"), \
            "prune from the superseded flood must be ignored"

    def test_link_lost_orphans_and_severs(self):
        table = SpanTreeTable("me")
        table.on_flood("s1", "peer", 1, ["a"])      # parent lost
        table.on_flood("s2", "other", 1, ["peer"])  # child lost
        table.on_flood("s3", "other", 1, ["a"])     # untouched
        orphaned, severed = table.on_link_lost("peer")
        assert orphaned == ["s1"]
        assert severed == ["s2"]
        assert not table.has_tree("s1")
        assert table.children("s2") == set()
        assert table.children("s3") == {"a"}

    def test_drop(self):
        table = SpanTreeTable("me")
        table.on_flood("src", "p", 1, ["a"])
        table.drop("src")
        assert not table.has_tree("src")
        table.drop("src")  # idempotent


EIGHT = [("h%02d" % i, HostClass.VAX_780) for i in range(8)]


def build_sparse_session():
    world = build_world(seed=19, config=SPARSE, host_specs=EIGHT,
                        recovery=["h00"])
    client = PPMClient(world, "lfc", "h00").connect()
    gpids = {}
    for name, _ in EIGHT[1:]:
        gpids[name] = client.create_process("job-%s" % name, host=name,
                                            program=spinner_spec(None))
    world.run_for(30_000.0)  # membership gossip + rewiring settle
    # (trailing-edge debounce: the wave fires REWIRE_DEBOUNCE_MS after
    # the last membership growth, then links still need handshakes)
    return world, gpids


def run_locate(world, lpm, host, pid, timeout_ms=30_000.0):
    results = []
    lpm.locate(host, pid, results.append)
    world.run_until_true(lambda: bool(results), timeout_ms=timeout_ms)
    return results[0]


class TestTreeBroadcastEndToEnd:
    def test_first_flood_builds_tree_repeats_ride_it(self):
        world, gpids = build_sparse_session()
        names = [name for name, _ in EIGHT]
        source = lpm_of(world, "h01")
        target = gpids["h07"]
        PERF.reset()
        assert run_locate(world, source, target.host,
                          target.pid) is not None
        # The reply races the flood: duplicate arrivals and their prune
        # feedback are still in flight when the lookup resolves.
        world.run_for(5_000.0)
        # The flood built a tree rooted at h01 on every reached host,
        # and duplicate-drop feedback pruned the non-tree edges.
        assert source.treecast.table.has_tree("h01")
        assert PERF.tree_prunes > 0
        assert PERF.tree_forwards == 0, "first flood must not be treed"
        built = [name for name in names
                 if lpm_of(world, name).treecast.table.has_tree("h01")]
        assert built == names

        # An unknown-pid lookup on a routeless host re-broadcasts from
        # the same source: tree mode, about n − 1 forwards.
        before = PERF.tree_forwards
        assert run_locate(world, source, "nowhere", 99_999) is None
        grown = PERF.tree_forwards - before
        assert 0 < grown <= 2 * (len(names) - 1)
        assert PERF.tree_repairs == 0

    def test_found_host_keeps_leaf_state(self):
        world, gpids = build_sparse_session()
        source = lpm_of(world, "h01")
        target = gpids["h07"]
        PERF.reset()
        assert run_locate(world, source, target.host,
                          target.pid) is not None
        world.run_for(5_000.0)  # drain the flood behind the reply
        # The answering host never forwards, so it must record a leaf
        # entry — otherwise the next tree broadcast reads its silence
        # as a severed tree and tears the whole thing down.
        leaf = lpm_of(world, "h07").treecast.table
        assert leaf.has_tree("h01")
        assert leaf.children("h01") == set()
        assert run_locate(world, source, "nowhere", 99_999) is None
        assert PERF.tree_repairs == 0
        assert source.treecast.table.has_tree("h01")

    def test_severed_link_falls_back_to_flood(self):
        world, gpids = build_sparse_session()
        source = lpm_of(world, "h01")
        target = gpids["h07"]
        PERF.reset()
        assert run_locate(world, source, target.host,
                          target.pid) is not None
        world.run_for(5_000.0)  # drain the flood behind the reply
        assert run_locate(world, source, target.host,
                          target.pid) is not None  # cached probe
        hits = PERF.locate_cache_hits
        assert hits >= 1
        # Sever the link the probe rides (first hop of the route) from
        # the far side: the initiator of a close gets no on_close, so a
        # remote-initiated close is what "link loss" looks like here.
        route = source.router.outbound_route(target.host)
        assert route is not None
        lpm_of(world, route[1]).siblings["h01"].endpoint.close()
        world.run_for(1_000.0)
        # Tree state through the dead link is gone everywhere.
        assert not source.treecast.table.has_tree("h01") or \
            route[1] not in source.treecast.table.children("h01")
        # The lookup still succeeds: stale probe or no route, then the
        # flood fallback re-covers the graph and rebuilds the tree.
        assert run_locate(world, source, target.host,
                          target.pid) is not None
        assert source.treecast.table.has_tree("h01")

    def test_negative_cache_answers_locally(self):
        world, gpids = build_sparse_session()
        source = lpm_of(world, "h01")
        PERF.reset()
        assert run_locate(world, source, "nowhere", 4_242) is None
        hits = PERF.locate_cache_hits
        sent_before = source.broadcast.forwards
        assert run_locate(world, source, "nowhere", 4_242) is None
        assert PERF.locate_cache_hits == hits + 1
        assert source.broadcast.forwards == sent_before, \
            "negative-cached lookup still broadcast"

    def test_counters_stay_zero_outside_sparse(self, world):
        client = PPMClient(world, "lfc", "alpha").connect()
        client.create_process("job", host="beta",
                              program=spinner_spec(None))
        lpm = lpm_of(world, "alpha")
        PERF.reset()
        assert run_locate(world, lpm, "beta", 99_999) is None
        assert PERF.tree_forwards == 0
        assert PERF.tree_prunes == 0
        assert PERF.locate_cache_hits == 0
        assert not lpm.treecast.table.has_tree("alpha")
