"""Unit-level tests for the datagram transport internals."""

import pytest

from repro import PPMClient, PPMConfig, spinner_spec
from repro.errors import ConnectionClosedError

from .conftest import build_world, lpm_of

DGRAM = PPMConfig(transport="datagram", datagram_rto_ms=200.0,
                  datagram_max_retries=3)


@pytest.fixture
def pair():
    world = build_world(config=DGRAM)
    client = PPMClient(world, "lfc", "alpha").connect()
    client.create_process("anchor", host="beta",
                          program=spinner_spec(None))
    return world, lpm_of(world, "alpha"), lpm_of(world, "beta")


def test_seen_window_suppresses_redelivery(pair):
    world, alpha, beta = pair
    endpoint_b = beta.dgram.endpoint_for("alpha")
    delivered = []
    saved = endpoint_b.on_message
    endpoint_b.on_message = lambda payload, ep: delivered.append(payload)
    datagram = {"kind": "data", "seq": 777, "from_host": "alpha",
                "user": "lfc", "payload": "hello"}
    from repro.core.dgram import _sign
    datagram["sig"] = _sign(beta.secret, "alpha", 777)
    endpoint_b.deliver(datagram)
    endpoint_b.deliver(datagram)  # a retransmission
    assert delivered == ["hello"]
    endpoint_b.on_message = saved


def test_retry_exhaustion_closes_endpoint(pair):
    world, alpha, beta = pair
    endpoint = alpha.dgram.endpoint_for("beta")
    closes = []
    saved = endpoint.on_close
    endpoint.on_close = lambda reason, ep: closes.append(reason)
    # Silence the network so nothing is ever acked.
    world.network.set_partition([{"alpha"}])
    endpoint.send("doomed", nbytes=64)
    # Linear backoff: 200 + 400 + 600 then failure.
    world.run_for(5_000.0)
    assert closes == ["datagram timeout"]
    assert not endpoint.open
    endpoint.on_close = saved
    world.network.heal_partition()


def test_send_on_closed_endpoint_raises(pair):
    world, alpha, beta = pair
    endpoint = alpha.dgram.endpoint_for("beta")
    endpoint.close()
    with pytest.raises(ConnectionClosedError):
        endpoint.send("late")


def test_close_cancels_retransmission_timers(pair):
    world, alpha, beta = pair
    endpoint = alpha.dgram.endpoint_for("beta")
    world.network.set_partition([{"alpha"}])
    endpoint.send("pending", nbytes=64)
    assert endpoint._unacked
    endpoint.close()
    assert not endpoint._unacked
    world.run_for(10_000.0)  # no timer fires on a corpse
    world.network.heal_partition()


def test_keepalive_skips_busy_endpoints(pair):
    world, alpha, beta = pair
    endpoint = alpha.dgram.endpoint_for("beta")
    world.network.set_partition([{"alpha"}])
    endpoint.send("inflight", nbytes=64)
    pings_before = alpha.dgram.pings_sent
    # While a message is unacked, the keepalive tick must not pile on.
    alpha.dgram._keepalive_tick()
    assert alpha.dgram.pings_sent == pings_before
    world.network.heal_partition()
    world.run_for(10_000.0)


def test_unintroduced_data_rejected(pair):
    world, alpha, beta = pair
    from repro.core.dgram import _sign
    rejected_before = beta.dgram.rejected
    world.datagrams.send(
        "gamma", "beta", "lpmdg:lfc",
        {"kind": "data", "seq": 1, "from_host": "gamma", "user": "lfc",
         "sig": _sign(beta.secret, "gamma", 1), "payload": "sneaky"})
    world.run_for(1_000.0)
    assert beta.dgram.rejected == rejected_before + 1


def test_keepalive_offsets_are_deterministic_and_bounded(pair):
    world, alpha, beta = pair
    offset = alpha.dgram._keepalive_offset_ms("beta")
    assert 0.0 <= offset < alpha.config.datagram_keepalive_ms
    # Pure function of stable session identifiers: stable across calls.
    assert alpha.dgram._keepalive_offset_ms("beta") == offset
    # The two directions of one link hash differently (different
    # name/peer order), so their pings do not burst together.
    assert beta.dgram._keepalive_offset_ms("alpha") != offset


def test_keepalive_offsets_spread_across_peers(pair):
    world, alpha, beta = pair
    offsets = {alpha.dgram._keepalive_offset_ms("h%02d" % i)
               for i in range(16)}
    assert len(offsets) == 16  # distinct per endpoint


def test_jittered_keepalive_still_pings_idle_links(pair):
    world, alpha, beta = pair
    before = alpha.dgram.pings_sent
    # One full keepalive period plus the worst-case jitter window.
    world.run_for(2 * alpha.config.datagram_keepalive_ms)
    assert alpha.dgram.pings_sent > before
