"""Tests for the csh and rexec baselines, including the control-coverage
gap the PPM closes."""

import pytest

from repro import PPMClient, fork_tree_spec, spinner_spec
from repro.baselines import CshJobControl, RexecClient, install_rexecd
from repro.unixsim import ProcState, SpinnerProgram
from repro.unixsim.signals import Signal

from ..core.conftest import build_world


@pytest.fixture
def world():
    return build_world()


class TestCsh:
    def test_pipeline_control(self, world):
        shell = CshJobControl(world.host("alpha"), "lfc")
        job = shell.run_pipeline([("cat", SpinnerProgram(None)),
                                  ("grep", SpinnerProgram(None)),
                                  ("wc", SpinnerProgram(None))])
        stopped = shell.stop(job)
        assert len(stopped) == 3
        procs = shell.visible_processes()
        assert all(p.state is ProcState.STOPPED for p in procs)
        shell.cont(job)
        assert all(p.state is ProcState.RUNNING
                   for p in shell.visible_processes())
        shell.kill(job)
        assert not shell.visible_processes()

    def test_grandchildren_unreachable(self, world):
        # The pipeline paradigm breaks on arbitrary genealogies.
        host = world.host("alpha")
        shell = CshJobControl(host, "lfc")
        job = shell.run_pipeline([("master", SpinnerProgram(None))])
        (master_pid,) = shell.jobs[job]
        grandchild = host.kernel.spawn(1001, "worker", ppid=master_pid,
                                       program=SpinnerProgram(None))
        shell.kill(job)
        world.run_for(100.0)
        assert grandchild.alive  # csh never touched it

    def test_coverage_metric(self, world):
        host = world.host("alpha")
        shell = CshJobControl(host, "lfc")
        job = shell.run_pipeline([("a", SpinnerProgram(None))])
        (pid,) = shell.jobs[job]
        grandchild = host.kernel.spawn(1001, "b", ppid=pid,
                                       program=SpinnerProgram(None))
        computation = [("alpha", pid), ("alpha", grandchild.pid),
                       ("beta", 42)]
        assert shell.coverage_of(computation) == pytest.approx(1 / 3)
        assert shell.coverage_of([]) == 1.0


class TestRexec:
    @pytest.fixture
    def rexec_world(self, world):
        install_rexecd(world)
        return world

    def test_remote_execution(self, rexec_world):
        client = RexecClient(rexec_world, "lfc", "secret", "alpha")
        gpid = client.rexec("beta", "job", spinner_spec(None))
        proc = rexec_world.host("beta").kernel.procs.get(gpid.pid)
        assert proc.command == "job"
        assert proc.uid == 1001

    def test_bad_password_rejected(self, rexec_world):
        from repro import PPMError
        client = RexecClient(rexec_world, "lfc", "wrong", "alpha")
        with pytest.raises(PPMError):
            client.rexec("beta", "job", spinner_spec(None))

    def test_signal_created_process(self, rexec_world):
        client = RexecClient(rexec_world, "lfc", "secret", "alpha")
        gpid = client.rexec("beta", "job", spinner_spec(None))
        assert client.signal(gpid, Signal.SIGSTOP)
        proc = rexec_world.host("beta").kernel.procs.get(gpid.pid)
        assert proc.state is ProcState.STOPPED

    def test_children_of_remote_process_unreachable(self, rexec_world):
        # "no provision ... for separately signalling any children of
        # the remote process"
        client = RexecClient(rexec_world, "lfc", "secret", "alpha")
        spec = fork_tree_spec([("child", 50.0, spinner_spec(None))])
        root = client.rexec("beta", "forker", spec)
        rexec_world.run_for(500.0)
        killed = client.kill_everything_i_know()
        rexec_world.run_for(100.0)
        assert killed == [root]
        children = [p for p in rexec_world.host("beta").kernel.procs
                    if p.command == "child" and p.alive]
        assert children  # the orphan survives the hunt

    def test_every_call_opens_a_fresh_connection(self, rexec_world):
        client = RexecClient(rexec_world, "lfc", "secret", "alpha")
        gpid = client.rexec("beta", "job", spinner_spec(None))
        opened_before = rexec_world.network.stats.connections_opened
        client.signal(gpid, Signal.SIGSTOP)
        client.signal(gpid, Signal.SIGCONT)
        assert rexec_world.network.stats.connections_opened == \
            opened_before + 2
        assert rexec_world.network.open_connection_count() == 0

    def test_signal_dead_process_reports_failure(self, rexec_world):
        client = RexecClient(rexec_world, "lfc", "secret", "alpha")
        gpid = client.rexec("beta", "job", spinner_spec(None))
        client.signal(gpid, Signal.SIGKILL)
        rexec_world.run_for(100.0)
        assert not client.signal(gpid, Signal.SIGSTOP)


class TestCoverageGap:
    def test_ppm_reaches_what_baselines_cannot(self, world):
        # One distributed computation; three mechanisms try to stop it.
        install_rexecd(world)
        ppm_client = PPMClient(world, "lfc", "alpha").connect()
        spec = fork_tree_spec([("grandchild", 50.0, spinner_spec(None))])
        root = ppm_client.create_process("root", program=spec)
        remote = ppm_client.create_process("remote", host="beta",
                                           parent=root, program=spec)
        world.run_for(1_000.0)
        forest = ppm_client.snapshot(prune=False)
        all_procs = [(g.host, g.pid) for g in
                     [root] + forest.descendants(root)]
        assert len(all_procs) == 4  # root, grandchild, remote, its child

        shell = CshJobControl(world.host("alpha"), "lfc")
        assert shell.coverage_of(all_procs) == 0.0  # not its children

        rexec = RexecClient(world, "lfc", "secret", "alpha")
        rexec.created.append(remote)  # it "knows" the remote root only
        reachable = {(g.host, g.pid) for g in rexec.created}
        assert len(reachable & set(all_procs)) / len(all_procs) == 0.25

        # The PPM stops everything.
        from repro import ControlAction
        results = [ppm_client.control(g, ControlAction.STOP)
                   for g in [root] + forest.descendants(root)]
        assert all(r["ok"] for r in results)
