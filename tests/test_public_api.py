"""Public-API integrity: exports resolve, are documented, and the
package's layering holds."""

import importlib
import inspect

import pytest

import repro


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), "repro.%s missing" % (name,)


def test_all_public_classes_and_functions_documented():
    undocumented = []
    for name in repro.__all__:
        obj = getattr(repro, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not (obj.__doc__ or "").strip():
                undocumented.append(name)
    assert not undocumented, "undocumented exports: %s" % (undocumented,)


@pytest.mark.parametrize("module_name", [
    "repro.netsim", "repro.unixsim", "repro.core", "repro.tracing",
    "repro.localos", "repro.baselines", "repro.bench",
])
def test_subpackage_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), "%s.%s missing" % (module_name,
                                                         name)


def test_every_module_has_a_docstring():
    import os
    root = os.path.dirname(repro.__file__)
    missing = []
    for dirpath, _dirs, files in os.walk(root):
        for filename in files:
            if not filename.endswith(".py"):
                continue
            relative = os.path.relpath(os.path.join(dirpath, filename),
                                       root)
            module_name = "repro." + relative[:-3].replace(os.sep, ".")
            module_name = module_name.replace(".__init__", "")
            module = importlib.import_module(module_name)
            if not (module.__doc__ or "").strip():
                missing.append(module_name)
    assert not missing, "modules without docstrings: %s" % (missing,)


def test_layering_netsim_does_not_import_upper_layers():
    # The substrate must not depend on the PPM built on top of it.
    import os
    import re
    root = os.path.dirname(repro.__file__)
    violations = []
    forbidden = {
        "netsim": ("unixsim", "core", "tracing", "localos", "baselines"),
        "unixsim": ("core", "localos", "baselines"),
        "tracing": ("core", "unixsim", "netsim", "localos"),
    }
    for package, banned in forbidden.items():
        package_dir = os.path.join(root, package)
        for filename in os.listdir(package_dir):
            if not filename.endswith(".py"):
                continue
            with open(os.path.join(package_dir, filename)) as handle:
                text = handle.read()
            for upper in banned:
                if re.search(r"from \.\.%s|import repro\.%s"
                             % (upper, upper), text):
                    violations.append("%s/%s imports %s"
                                      % (package, filename, upper))
    assert not violations, violations


def test_version_is_exposed():
    assert repro.__version__
