"""Noisy-neighbor isolation on shared circuits.

Circuit sharing multiplexes co-located users over one physical
circuit per host pair; the risk it must not introduce is head-of-line
blocking — one tenant's gather storm inflating another tenant's
latencies.  The test drives a quiet baseline (the victim alone) and a
noisy run (the same victim schedule plus a fleet of aggressors whose
sessions gather across every leaf host) on identical worlds, and
bounds the victim's p99 degradation by an SLO multiple.
"""

import pytest

workloads = pytest.importorskip("benchmarks.workloads")

from repro.perf.histogram import LatencyHistogram  # noqa: E402

#: The victim's noisy-run p99 may be at most this multiple of its
#: quiet-run p99 for each measured operation.  The shared-circuit
#: design keeps lanes independent at the protocol level, but the
#: tenants still share host CPUs, so bounded (not zero) degradation is
#: the contract: a storm of 24 full-fanout gather sessions measures
#: ~3x on the victim's gather p99; head-of-line blocking across lanes
#: would be an order of magnitude.
SLO_MULTIPLE = 5.0

VICTIM_SESSIONS = 6
VICTIM_GAP_MS = 8_000.0
AGGRESSOR_SESSIONS_EACH = 3
HORIZON_MS = 300_000.0


def drive(n_aggressors, seed=13):
    """Run the victim schedule with ``n_aggressors`` tenants alongside.

    Returns ``{op: LatencyHistogram}`` for the victim's operations.
    The victim's own schedule (arrival times, create targets, locate
    pick) is identical in every call; only the aggressor load varies.
    """
    world, names, users, homes = workloads.build_multitenant_world(
        n_users=n_aggressors + 1, n_hosts=6, gateways=2, seed=seed,
        sharing=True)
    leaves = names[2:]
    victim = users[0]
    victim_home = homes[victim]
    done = []

    def finished(session):
        assert not session.failed
        done.append(session)

    victim_hists = {op: LatencyHistogram() for op in workloads.OPS}
    expected = VICTIM_SESSIONS
    for i in range(VICTIM_SESSIONS):
        session = workloads.Session(
            world, victim, victim_home,
            create_targets=[leaves[0]], locate_index=0,
            record=lambda op, ms: victim_hists[op].record(ms),
            on_done=finished)
        world.fabric.schedule(1_000.0 + i * VICTIM_GAP_MS,
                              session.start, owner=victim_home,
                              label="victim session %d" % i)

    # Aggressors: every session creates on and gathers across *all*
    # leaves — the storm rides the same shared circuits as the victim.
    for j, user in enumerate(users[1:]):
        home = homes[user]
        for k in range(AGGRESSOR_SESSIONS_EACH):
            session = workloads.Session(
                world, user, home,
                create_targets=list(leaves), locate_index=0,
                record=lambda op, ms: None,
                on_done=finished)
            expected += 1
            world.fabric.schedule(
                500.0 + k * VICTIM_GAP_MS + j * 700.0,
                session.start, owner=home,
                label="aggressor %s session %d" % (user, k))

    world.run_for(HORIZON_MS)
    assert len(done) == expected
    return victim_hists


def test_victim_p99_stays_within_slo_multiple():
    quiet = drive(n_aggressors=0)
    noisy = drive(n_aggressors=8)
    for op in ("tool_call", "gather", "session"):
        quiet_p99 = quiet[op].summary()["p99_ms"]
        noisy_p99 = noisy[op].summary()["p99_ms"]
        assert quiet[op].count == noisy[op].count == VICTIM_SESSIONS
        assert noisy_p99 <= SLO_MULTIPLE * quiet_p99, (
            "%s p99 %.1fms exceeds %.1fx quiet baseline %.1fms"
            % (op, noisy_p99, SLO_MULTIPLE, quiet_p99))
