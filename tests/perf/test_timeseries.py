"""The time-series layer: ring buffers and windowed derivatives."""

import pytest

from repro.perf import DEFAULT_CAPACITY, PERF, MetricsSampler, RingSeries


@pytest.fixture(autouse=True)
def clean_counters():
    PERF.reset()
    yield
    PERF.reset()


class TestRingSeries:
    def test_bounded_capacity_rolls_oldest_off(self):
        ring = RingSeries("x", capacity=4)
        for tick in range(10):
            ring.append(float(tick), float(tick * 10))
        assert len(ring) == 4
        assert ring.capacity == 4
        assert ring.samples()[0] == (6.0, 60.0)
        assert ring.latest() == (9.0, 90.0)

    def test_delta_needs_two_samples(self):
        ring = RingSeries("x")
        assert ring.delta_since() is None
        ring.append(0.0, 5.0)
        assert ring.delta_since() is None
        ring.append(10.0, 8.0)
        assert ring.delta_since() == pytest.approx(3.0)

    def test_delta_since_window_anchor(self):
        ring = RingSeries("x")
        for tick in range(5):
            ring.append(tick * 100.0, float(tick))
        # Anchor at t=200 -> delta = 4 - 2.
        assert ring.delta_since(200.0) == pytest.approx(2.0)
        # A window reaching past the ring falls back to the oldest.
        assert ring.delta_since(-1_000.0) == pytest.approx(4.0)

    def test_rate_per_s(self):
        ring = RingSeries("x")
        ring.append(0.0, 0.0)
        ring.append(2_000.0, 10.0)
        assert ring.rate_per_s() == pytest.approx(5.0)
        # Windowed: only the last second's worth of growth.
        ring.append(3_000.0, 40.0)
        assert ring.rate_per_s(window_ms=1_000.0) == pytest.approx(30.0)

    def test_rate_handles_equal_timestamps(self):
        ring = RingSeries("x")
        ring.append(5.0, 1.0)
        ring.append(5.0, 2.0)
        assert ring.rate_per_s() is None

    def test_ewma_weights_recent_samples(self):
        ring = RingSeries("x")
        assert ring.ewma() is None
        for tick, value in enumerate((0.0, 0.0, 0.0, 100.0)):
            ring.append(float(tick), value)
        smoothed = ring.ewma(alpha=0.5)
        assert 0.0 < smoothed < 100.0
        assert smoothed == pytest.approx(50.0)


class TestMetricsSampler:
    def test_samples_every_counter_by_default(self):
        sampler = MetricsSampler()
        PERF.events_run += 7
        sampler.sample(100.0)
        assert set(sampler.series) == set(PERF.snapshot())
        assert sampler.series["events_run"].latest()[1] == 7

    def test_sample_bumps_watch_samples(self):
        sampler = MetricsSampler(counters=("events_run",))
        sampler.sample(0.0)
        sampler.sample(10.0)
        assert PERF.watch_samples == 2

    def test_histogram_p99_series(self):
        sampler = MetricsSampler(counters=())
        sampler.sample(0.0, latency={"rpc_rtt": {"p99_ms": 42.0},
                                     "idle_op": {"p99_ms": None}})
        assert "rpc_rtt_p99_ms" in sampler.series
        assert "idle_op_p99_ms" not in sampler.series
        assert sampler.series["rpc_rtt_p99_ms"].latest() == (0.0, 42.0)

    def test_rising_picks_growing_counters(self):
        sampler = MetricsSampler(counters=("events_run",
                                           "events_cancelled"))
        sampler.sample(0.0)
        PERF.events_run += 50
        sampler.sample(1_000.0)
        rising = sampler.rising(["events_run", "events_cancelled",
                                 "never_sampled"])
        assert set(rising) == {"events_run"}
        assert rising["events_run"] == pytest.approx(50.0)

    def test_capacity_flows_to_series(self):
        sampler = MetricsSampler(capacity=3, counters=("events_run",))
        for tick in range(9):
            sampler.sample(float(tick))
        assert len(sampler.series["events_run"]) == 3

    def test_default_capacity_sane(self):
        assert RingSeries("x").capacity == DEFAULT_CAPACITY
