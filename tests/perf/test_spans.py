"""Tests for the causal span-tracing layer.

Unit tests drive the tracer against a fake clock; the end-to-end tests
run a real simulated session and assert the property the layer exists
for — one tool request becomes one *connected* trace spanning hosts.
"""

import json

import pytest

from repro import HostClass, PersonalProcessManager, World
from repro.core.messages import Message, MsgKind
from repro.core.wire import decode, encode
from repro.perf import (
    OP_CLASSES,
    SpanTracer,
    disable_tracing,
    enable_tracing,
)


class FakeSim:
    def __init__(self):
        self.now_ms = 0.0
        self.tracer = None


# ----------------------------------------------------------------------
# Tracer unit behaviour
# ----------------------------------------------------------------------

def test_start_finish_records_simulated_duration():
    sim = FakeSim()
    tracer = SpanTracer(sim)
    span = tracer.start("rpc:control", host="alpha", cat="rpc")
    sim.now_ms = 12.5
    duration = tracer.finish(span, op="rpc_rtt", outcome="ok")
    assert duration == 12.5
    assert span.end_ms == 12.5
    assert span.duration_ms == 12.5
    assert span.args["outcome"] == "ok"
    assert tracer.histograms["rpc_rtt"].count == 1
    assert tracer.spans == [span]


def test_parent_context_joins_the_same_trace():
    tracer = SpanTracer(FakeSim())
    root = tracer.start("tool:snapshot", host="alpha", cat="tool")
    child = tracer.start("serve:snapshot", host="beta",
                         parent=root.ctx(), cat="serve")
    assert child.trace_id == root.trace_id
    assert child.parent_id == root.span_id
    assert root.parent_id is None
    # A parentless span starts a fresh trace.
    other = tracer.start("tool:rstats", host="alpha", cat="tool")
    assert other.trace_id != root.trace_id


def test_context_is_json_friendly():
    tracer = SpanTracer(FakeSim())
    span = tracer.start("x", host="a")
    ctx = span.ctx()
    assert ctx == [span.trace_id, span.span_id]
    assert json.loads(json.dumps(ctx)) == ctx


def test_instant_is_zero_duration_and_retained():
    sim = FakeSim()
    sim.now_ms = 3.0
    tracer = SpanTracer(sim)
    hop = tracer.instant("hop:locate", host="beta", cat="route",
                         next_hop="gamma")
    assert hop.instant
    assert hop.start_ms == hop.end_ms == 3.0
    assert hop.args == {"next_hop": "gamma"}
    assert tracer.spans == [hop]


def test_traces_group_by_trace_id_and_hosts_sort():
    sim = FakeSim()
    tracer = SpanTracer(sim)
    a = tracer.start("a", host="zeta")
    tracer.finish(a)
    b = tracer.start("b", host="alpha", parent=a.ctx())
    tracer.finish(b)
    c = tracer.start("c", host="alpha")
    tracer.finish(c)
    grouped = tracer.traces()
    assert set(grouped) == {a.trace_id, c.trace_id}
    assert grouped[a.trace_id] == [a, b]
    assert tracer.hosts() == ["alpha", "zeta"]


def test_max_spans_drops_overflow_instead_of_growing():
    sim = FakeSim()
    tracer = SpanTracer(sim, max_spans=2)
    for _ in range(5):
        tracer.instant("tick", host="a")
    assert len(tracer.spans) == 2
    assert tracer.dropped == 3


def test_unknown_op_class_is_an_error():
    tracer = SpanTracer(FakeSim())
    with pytest.raises(KeyError):
        tracer.record("rpc_rt", 1.0)  # typo'd class must not pass silently


def test_latency_summary_covers_every_op_class():
    tracer = SpanTracer(FakeSim())
    summary = tracer.latency_summary()
    assert set(summary) == set(OP_CLASSES)
    assert all(block["count"] == 0 for block in summary.values())


def test_enable_disable_attach_and_detach():
    sim = FakeSim()
    tracer = enable_tracing(sim, max_spans=10)
    assert sim.tracer is tracer
    assert tracer.max_spans == 10
    disable_tracing(sim)
    assert sim.tracer is None


# ----------------------------------------------------------------------
# Wire propagation: absent when off, carried when on
# ----------------------------------------------------------------------

def _message(trace=None):
    return Message(kind=MsgKind.CONTROL, req_id=7, origin="alpha",
                   user="lfc", payload={"pid": 5}, trace=trace)


def test_trace_field_omitted_from_wire_when_none():
    fields = json.loads(encode(_message()).decode("utf-8"))
    assert "trace" not in fields


def test_trace_field_rides_the_wire_and_round_trips():
    message = _message(trace=[3, 9])
    fields = json.loads(encode(message).decode("utf-8"))
    assert fields["trace"] == [3, 9]
    assert decode(encode(message)).trace == [3, 9]
    assert decode(encode(_message())).trace is None


def test_assigning_trace_after_construction_invalidates_encode_cache():
    # Instrumentation sets .trace after the Message is built (and often
    # after it was already sized once), so the wire fingerprint must
    # cover it or the cache would serve stale traceless bytes.
    message = _message()
    before = encode(message)
    message.trace = [1, 2]
    after = encode(message)
    assert before != after
    assert json.loads(after.decode("utf-8"))["trace"] == [1, 2]


# ----------------------------------------------------------------------
# End-to-end: one tool request, one connected cross-host trace
# ----------------------------------------------------------------------

def traced_session(seed=11):
    world = World(seed=seed)
    world.add_host("alpha", HostClass.VAX_780)
    world.add_host("beta", HostClass.VAX_750)
    world.add_host("gamma", HostClass.SUN_2)
    world.ethernet()
    world.add_user("lfc", uid=1001)
    ppm = PersonalProcessManager(world, "lfc", "alpha",
                                 recovery_hosts=["alpha", "beta"])
    tracer = ppm.enable_span_tracing()
    ppm.start()
    return world, ppm, tracer


def assert_connected(trace_spans):
    """Every non-root span's parent is a span of the same trace."""
    ids = {span.span_id for span in trace_spans}
    for span in trace_spans:
        if span.parent_id is not None:
            assert span.parent_id in ids, span


def test_snapshot_yields_one_connected_multi_host_trace():
    world, ppm, tracer = traced_session()
    root = ppm.create_process("coordinator")
    ppm.create_process("solver", host="beta", parent=root)
    before = len(tracer.spans)
    ppm.snapshot()
    new = [s for s in tracer.spans[before:]]
    tool_roots = [s for s in new
                  if s.cat == "tool" and s.parent_id is None]
    assert len(tool_roots) == 1
    trace_id = tool_roots[0].trace_id
    trace_spans = [s for s in new if s.trace_id == trace_id]
    assert {s.host for s in trace_spans} >= {"alpha", "beta"}
    assert_connected(trace_spans)
    cats = {s.cat for s in trace_spans}
    assert {"tool", "serve", "gather", "rpc", "xport"} <= cats


def test_every_retained_trace_is_connected():
    world, ppm, tracer = traced_session()
    root = ppm.create_process("coordinator")
    remote = ppm.create_process("solver", host="gamma", parent=root)
    ppm.snapshot()
    world.run_for(1_000.0)
    ppm.rstats_report()
    for trace_spans in tracer.traces().values():
        assert_connected(trace_spans)
    assert tracer.dropped == 0


def test_histograms_populate_for_key_op_classes():
    world, ppm, tracer = traced_session()
    root = ppm.create_process("coordinator")
    remote = ppm.create_process("solver", host="beta", parent=root)
    ppm.snapshot()
    # The hosts are direct siblings, so force a LOCATE flood to
    # exercise broadcast_settle the way a cold route would.
    lpm = world.lpms[("alpha", "lfc")]
    lpm.locate(remote.host, remote.pid, lambda reply: None)
    world.run_for(2_000.0)
    for op in ("tool_call", "rpc_rtt", "gather_complete",
               "broadcast_settle"):
        assert tracer.histograms[op].count >= 1, op


def test_perf_stats_reports_percentiles_only_when_traced():
    world, ppm, tracer = traced_session()
    ppm.create_process("job")
    ppm.snapshot()
    stats = ppm.perf_stats()
    assert stats["spans_kept"] == len(tracer.spans)
    assert stats["spans_dropped"] == 0
    latency = stats["latency_ms"]
    assert set(latency) == set(OP_CLASSES)
    block = latency["tool_call"]
    assert block["count"] >= 2
    assert block["p50_ms"] <= block["p95_ms"] <= block["p99_ms"]
    disable_tracing(world.sim)
    assert "latency_ms" not in ppm.perf_stats()


def test_enable_span_tracing_is_idempotent():
    world, ppm, tracer = traced_session()
    assert ppm.enable_span_tracing() is tracer
    assert ppm.enable_span_tracing(max_spans=5) is tracer  # unchanged


def test_untraced_session_retains_nothing():
    world = World(seed=11)
    world.add_host("alpha", HostClass.VAX_780)
    world.add_host("beta", HostClass.VAX_750)
    world.ethernet()
    world.add_user("lfc", uid=1001)
    ppm = PersonalProcessManager(world, "lfc", "alpha",
                                 recovery_hosts=["alpha"]).start()
    assert world.sim.tracer is None
    ppm.create_process("job", host="beta")
    ppm.snapshot()
    assert world.sim.tracer is None
