"""Tests for the Chrome trace-event exporter."""

import json

from repro.perf import (
    SpanTracer,
    chrome_trace,
    chrome_trace_events,
    write_chrome_trace,
)


class FakeSim:
    def __init__(self):
        self.now_ms = 0.0
        self.tracer = None


def small_trace():
    """Two hosts, one timed span per category lane, one instant."""
    sim = FakeSim()
    tracer = SpanTracer(sim)
    tool = tracer.start("tool:snapshot", host="alpha", cat="tool")
    serve = tracer.start("serve:snapshot", host="beta",
                         parent=tool.ctx(), cat="serve")
    tracer.instant("hop:gather", host="beta", parent=tool.ctx(),
                   cat="route", next_hop="alpha")
    sim.now_ms = 4.25
    tracer.finish(serve, ok=True)
    sim.now_ms = 10.5
    tracer.finish(tool, op="tool_call", outcome="ok")
    return sim, tracer, tool, serve


def events_by_ph(events):
    grouped = {}
    for event in events:
        grouped.setdefault(event["ph"], []).append(event)
    return grouped


def test_one_process_row_per_host_sorted_from_one():
    _sim, tracer, _tool, _serve = small_trace()
    events = chrome_trace_events(tracer)
    process_names = [e for e in events
                     if e["ph"] == "M" and e["name"] == "process_name"]
    assert [(e["pid"], e["args"]["name"]) for e in process_names] \
        == [(1, "alpha"), (2, "beta")]


def test_category_lanes_get_thread_names():
    _sim, tracer, _tool, _serve = small_trace()
    events = chrome_trace_events(tracer)
    thread_names = {(e["pid"], e["tid"]): e["args"]["name"]
                    for e in events
                    if e["ph"] == "M" and e["name"] == "thread_name"}
    # tool lane on alpha; serve and route lanes on beta.
    assert set(thread_names.values()) == {"tool", "serve", "route"}
    assert len({pid for pid, _tid in thread_names}) == 2


def test_timed_spans_export_as_complete_events_in_microseconds():
    _sim, tracer, tool, serve = small_trace()
    grouped = events_by_ph(chrome_trace_events(tracer))
    complete = {e["name"]: e for e in grouped["X"]}
    assert complete["tool:snapshot"]["ts"] == 0.0
    assert complete["tool:snapshot"]["dur"] == 10.5 * 1000.0
    assert complete["serve:snapshot"]["dur"] == 4.25 * 1000.0
    args = complete["serve:snapshot"]["args"]
    assert args["trace_id"] == serve.trace_id
    assert args["span_id"] == serve.span_id
    assert args["parent_id"] == tool.span_id
    assert args["ok"] is True
    # The root has no parent_id key at all.
    assert "parent_id" not in complete["tool:snapshot"]["args"]


def test_instants_are_thread_scoped():
    _sim, tracer, _tool, _serve = small_trace()
    grouped = events_by_ph(chrome_trace_events(tracer))
    (instant,) = grouped["i"]
    assert instant["name"] == "hop:gather"
    assert instant["s"] == "t"
    assert "dur" not in instant
    assert instant["args"]["next_hop"] == "alpha"


def test_open_span_measured_to_sim_now():
    sim = FakeSim()
    tracer = SpanTracer(sim)
    span = tracer.start("tool:hang", host="alpha", cat="tool")
    tracer._keep(span)  # retained open, e.g. a timeout never fired
    sim.now_ms = 2.0
    (event,) = [e for e in chrome_trace_events(tracer) if e["ph"] == "X"]
    assert event["dur"] == 2000.0


def test_chrome_trace_object_shape():
    _sim, tracer, _tool, _serve = small_trace()
    trace = chrome_trace(tracer)
    assert trace["displayTimeUnit"] == "ms"
    assert trace["otherData"]["clock"] == "simulated"
    assert trace["otherData"]["spans_dropped"] == 0
    assert trace["traceEvents"] == chrome_trace_events(tracer)


def test_write_chrome_trace_round_trips(tmp_path):
    _sim, tracer, _tool, _serve = small_trace()
    path = tmp_path / "trace.json"
    count = write_chrome_trace(tracer, str(path))
    loaded = json.loads(path.read_text(encoding="utf-8"))
    assert len(loaded["traceEvents"]) == count
    assert loaded == chrome_trace(tracer)


def test_empty_tracer_exports_valid_empty_trace(tmp_path):
    tracer = SpanTracer(FakeSim())
    path = tmp_path / "empty.json"
    assert write_chrome_trace(tracer, str(path)) == 0
    loaded = json.loads(path.read_text(encoding="utf-8"))
    assert loaded["traceEvents"] == []
