"""Tests for the fixed-bucket latency histogram."""

import pytest

from repro.perf import BUCKET_BOUNDS_MS, LatencyHistogram


def test_bucket_ladder_shape():
    assert len(BUCKET_BOUNDS_MS) == 22
    assert BUCKET_BOUNDS_MS[0] == 0.1
    for lower, upper in zip(BUCKET_BOUNDS_MS, BUCKET_BOUNDS_MS[1:]):
        assert upper == lower * 2.0
    # Wide enough for the slowest operation class (a 40-host gather
    # settles in seconds, not minutes).
    assert BUCKET_BOUNDS_MS[-1] > 100_000.0


def test_record_tracks_count_sum_and_extrema():
    hist = LatencyHistogram()
    for value in (1.0, 5.0, 3.0):
        hist.record(value)
    assert hist.count == 3
    assert hist.sum_ms == 9.0
    assert hist.min_ms == 1.0
    assert hist.max_ms == 5.0


def test_record_clamps_negative_to_zero():
    hist = LatencyHistogram()
    hist.record(-4.0)
    assert hist.min_ms == 0.0
    assert hist.sum_ms == 0.0
    assert hist.count == 1


def test_overflow_bucket_reports_exact_max():
    hist = LatencyHistogram()
    hist.record(BUCKET_BOUNDS_MS[-1] * 10.0)
    assert hist.counts[-1] == 1
    assert hist.percentile(0.5) == hist.max_ms


def test_empty_percentile_and_summary():
    hist = LatencyHistogram()
    assert hist.percentile(0.5) is None
    summary = hist.summary()
    assert summary["count"] == 0
    assert summary["p50_ms"] is None
    assert summary["mean_ms"] is None


def test_percentile_clamped_to_observed_max():
    # 0.15 lands in the (0.1, 0.2] bucket; the bucket bound 0.2 would
    # overstate the only sample ever seen, so the clamp reports 0.15.
    hist = LatencyHistogram()
    hist.record(0.15)
    assert hist.percentile(0.5) == 0.15
    assert hist.percentile(0.99) == 0.15


def test_percentiles_are_monotone():
    hist = LatencyHistogram()
    for i in range(100):
        hist.record(0.1 * (i + 1))
    p50, p95, p99 = (hist.percentile(q) for q in (0.50, 0.95, 0.99))
    assert p50 <= p95 <= p99
    assert hist.min_ms <= p50
    assert p99 <= hist.max_ms


def test_percentile_rank_selection():
    # Nine fast samples and one slow one: p50 stays in the fast
    # bucket, p99 reaches the slow sample.
    hist = LatencyHistogram()
    for _ in range(9):
        hist.record(0.05)
    hist.record(50.0)
    assert hist.percentile(0.50) == pytest.approx(0.1)
    assert hist.percentile(0.99) == 50.0


def test_summary_rounds_to_three_decimals():
    hist = LatencyHistogram()
    hist.record(1.23456)
    hist.record(2.34567)
    summary = hist.summary()
    assert summary["count"] == 2
    assert summary["mean_ms"] == round((1.23456 + 2.34567) / 2, 3)
    assert summary["min_ms"] == 1.235
    assert summary["max_ms"] == 2.346
    assert set(summary) == {"count", "mean_ms", "min_ms", "max_ms",
                            "p50_ms", "p95_ms", "p99_ms"}
