"""Tests for the history store and history-dependent triggers."""

from repro.ids import GlobalPid
from repro.tracing import (
    HistoryStore,
    TraceEventType,
    TraceRecorder,
    Trigger,
    TriggerEngine,
)


class Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def make():
    clock = Clock()
    recorder = TraceRecorder(clock)
    return clock, recorder


class TestHistory:
    def test_follow_and_query(self):
        clock, recorder = make()
        history = HistoryStore()
        history.follow(recorder)
        gpid = GlobalPid("a", 5)
        recorder.record(TraceEventType.FORK, host="a", gpid=gpid)
        clock.now = 50.0
        recorder.record(TraceEventType.EXIT, host="a", gpid=gpid)
        assert len(history) == 2
        assert [e.event_type for e in history.events_for(gpid)] == [
            TraceEventType.FORK, TraceEventType.EXIT]
        assert history.first_event(gpid).event_type is TraceEventType.FORK
        assert history.last_event(gpid).event_type is TraceEventType.EXIT
        assert history.known_processes() == [gpid]

    def test_follow_includes_existing_events(self):
        clock, recorder = make()
        recorder.record(TraceEventType.EXIT, host="a")
        history = HistoryStore()
        history.follow(recorder, include_existing=True)
        assert len(history) == 1

    def test_unfollow_stops_feed(self):
        clock, recorder = make()
        history = HistoryStore()
        history.follow(recorder)
        history.unfollow()
        recorder.record(TraceEventType.EXIT, host="a")
        assert len(history) == 0

    def test_window_queries(self):
        clock, recorder = make()
        history = HistoryStore()
        history.follow(recorder)
        for t in (0.0, 100.0, 200.0, 300.0):
            clock.now = t
            recorder.record(TraceEventType.EXIT, host="a")
        assert history.count_in_window(300.0, 150.0,
                                       TraceEventType.EXIT) == 2
        assert history.count_in_window(300.0, 1000.0,
                                       TraceEventType.EXIT) == 4
        assert history.count_in_window(300.0, 150.0,
                                       TraceEventType.FORK) == 0

    def test_window_query_per_process(self):
        clock, recorder = make()
        history = HistoryStore()
        history.follow(recorder)
        a, b = GlobalPid("h", 1), GlobalPid("h", 2)
        recorder.record(TraceEventType.EXIT, host="h", gpid=a)
        recorder.record(TraceEventType.EXIT, host="h", gpid=b)
        assert history.count_in_window(0.0, 10.0, TraceEventType.EXIT,
                                       gpid=a) == 1


class TestTriggers:
    def test_simple_event_trigger(self):
        clock, recorder = make()
        engine = TriggerEngine(recorder)
        fired = []
        engine.add(Trigger(name="on-exit", action=fired.append,
                           event_type=TraceEventType.EXIT))
        recorder.record(TraceEventType.FORK, host="a")
        recorder.record(TraceEventType.EXIT, host="a")
        assert len(fired) == 1
        assert fired[0].event_type is TraceEventType.EXIT
        assert engine.firings[0].trigger_name == "on-exit"
        # The firing itself was recorded.
        assert recorder.count(TraceEventType.TRIGGER_FIRED) == 1

    def test_once_trigger_disarms(self):
        clock, recorder = make()
        engine = TriggerEngine(recorder)
        fired = []
        engine.add(Trigger(name="one-shot", action=fired.append,
                           event_type=TraceEventType.EXIT, once=True))
        recorder.record(TraceEventType.EXIT, host="a")
        recorder.record(TraceEventType.EXIT, host="a")
        assert len(fired) == 1

    def test_max_firings(self):
        clock, recorder = make()
        engine = TriggerEngine(recorder)
        fired = []
        engine.add(Trigger(name="twice", action=fired.append,
                           event_type=TraceEventType.EXIT, max_firings=2))
        for _ in range(5):
            recorder.record(TraceEventType.EXIT, host="a")
        assert len(fired) == 2

    def test_history_dependent_predicate(self):
        # "History dependent events can be set by users to trigger
        # process state changes" (section 1): fire on the third exit
        # within a 100 ms window.
        clock, recorder = make()
        engine = TriggerEngine(recorder)
        fired = []
        engine.add(Trigger(
            name="crash-loop", action=fired.append,
            event_type=TraceEventType.EXIT,
            predicate=lambda event, history: history.count_in_window(
                event.time_ms, 100.0, TraceEventType.EXIT) >= 3))
        for t in (0.0, 400.0, 440.0, 480.0):
            clock.now = t
            recorder.record(TraceEventType.EXIT, host="a")
        assert len(fired) == 1
        assert fired[0].time_ms == 480.0

    def test_trigger_action_recording_does_not_recurse(self):
        clock, recorder = make()
        engine = TriggerEngine(recorder)
        fired = []

        def reacting_action(event):
            fired.append(event)
            # The action itself records an event; must not re-trigger.
            recorder.record(TraceEventType.SIGNAL, host="x")

        engine.add(Trigger(name="loopy", action=reacting_action))
        recorder.record(TraceEventType.EXIT, host="a")
        assert len(fired) == 1

    def test_remove_trigger(self):
        clock, recorder = make()
        engine = TriggerEngine(recorder)
        fired = []
        trigger = engine.add(Trigger(name="t", action=fired.append))
        engine.remove(trigger)
        recorder.record(TraceEventType.EXIT, host="a")
        assert fired == []

    def test_close_detaches_engine(self):
        clock, recorder = make()
        engine = TriggerEngine(recorder)
        fired = []
        engine.add(Trigger(name="t", action=fired.append))
        engine.close()
        recorder.record(TraceEventType.EXIT, host="a")
        assert fired == []

    def test_action_removing_later_trigger_suppresses_its_firing(self):
        # Regression: the engine iterates a snapshot of the trigger
        # list; a trigger struck off by an earlier action during the
        # same event must not fire from the stale snapshot.
        clock, recorder = make()
        engine = TriggerEngine(recorder)
        fired = []
        victim = Trigger(name="victim", action=fired.append)

        def assassin_action(event):
            engine.remove(victim)

        engine.add(Trigger(name="assassin", action=assassin_action))
        engine.add(victim)
        recorder.record(TraceEventType.EXIT, host="a")
        assert fired == []
        assert victim not in engine.triggers

    def test_action_may_add_triggers_mid_event(self):
        clock, recorder = make()
        engine = TriggerEngine(recorder)
        late_fired = []
        late = Trigger(name="late", action=late_fired.append)
        engine.add(Trigger(name="adder", once=True,
                           action=lambda event: engine.add(late)))
        recorder.record(TraceEventType.EXIT, host="a")
        # Added mid-event: armed for the next event, not this one.
        assert late_fired == []
        recorder.record(TraceEventType.EXIT, host="a")
        assert len(late_fired) == 1

    def test_close_unfollows_owned_history(self):
        # Regression: close() used to leave the engine-created history
        # store subscribed to the recorder forever.
        clock, recorder = make()
        engine = TriggerEngine(recorder)
        engine.close()
        recorder.record(TraceEventType.EXIT, host="a")
        assert len(engine.history) == 0

    def test_close_keeps_caller_owned_history_attached(self):
        clock, recorder = make()
        history = HistoryStore()
        history.follow(recorder)
        engine = TriggerEngine(recorder, history=history)
        engine.close()
        recorder.record(TraceEventType.EXIT, host="a")
        assert len(history) == 1

    def test_close_is_idempotent(self):
        clock, recorder = make()
        engine = TriggerEngine(recorder)
        engine.close()
        engine.close()
