"""Tests for the trace recorder and granularity control."""

from repro.ids import GlobalPid
from repro.tracing import Granularity, TraceEventType, TraceRecorder
from repro.tracing.events import admitted


class Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def test_record_and_select():
    clock = Clock()
    recorder = TraceRecorder(clock)
    recorder.record(TraceEventType.FORK, host="a",
                    gpid=GlobalPid("a", 5), parent=1)
    clock.now = 10.0
    recorder.record(TraceEventType.EXIT, host="a", gpid=GlobalPid("a", 5))
    recorder.record(TraceEventType.EXIT, host="b", gpid=GlobalPid("b", 9))
    assert len(recorder) == 3
    assert recorder.count(TraceEventType.EXIT) == 2
    assert len(recorder.select(host="a")) == 2
    assert len(recorder.select(gpid=GlobalPid("a", 5))) == 2
    assert len(recorder.select(TraceEventType.EXIT, host="b")) == 1


def test_time_window_select():
    clock = Clock()
    recorder = TraceRecorder(clock)
    for t in (0.0, 10.0, 20.0, 30.0):
        clock.now = t
        recorder.record(TraceEventType.SIGNAL, host="a")
    assert len(recorder.select(since_ms=10.0, until_ms=20.0)) == 2


def test_granularity_off_records_nothing():
    recorder = TraceRecorder(Clock(), granularity=Granularity.OFF)
    recorder.record(TraceEventType.EXIT, host="a")
    assert len(recorder) == 0
    assert recorder.dropped == 1


def test_granularity_coarse_drops_communication_events():
    recorder = TraceRecorder(Clock(), granularity=Granularity.COARSE)
    recorder.record(TraceEventType.EXIT, host="a")        # lifecycle
    recorder.record(TraceEventType.KERNEL_MESSAGE, host="a")  # fine only
    recorder.record(TraceEventType.SIGNAL, host="a")      # medium
    assert recorder.count(TraceEventType.EXIT) == 1
    assert recorder.count(TraceEventType.KERNEL_MESSAGE) == 0
    assert recorder.count(TraceEventType.SIGNAL) == 0


def test_granularity_medium_admits_control_events():
    recorder = TraceRecorder(Clock(), granularity=Granularity.MEDIUM)
    recorder.record(TraceEventType.SIGNAL, host="a")
    recorder.record(TraceEventType.BROADCAST_SENT, host="a")
    assert recorder.count(TraceEventType.SIGNAL) == 1
    assert recorder.count(TraceEventType.BROADCAST_SENT) == 0


def test_granularity_ordering_is_monotone():
    # Every event admitted at a coarser level is admitted at finer ones.
    levels = [Granularity.OFF, Granularity.COARSE, Granularity.MEDIUM,
              Granularity.FINE]
    for event_type in TraceEventType:
        admitted_at = [admitted(event_type, level) for level in levels]
        # once admitted, stays admitted
        for earlier, later in zip(admitted_at, admitted_at[1:]):
            assert later or not earlier


def test_set_granularity_changes_future_recording():
    recorder = TraceRecorder(Clock(), granularity=Granularity.FINE)
    recorder.record(TraceEventType.KERNEL_MESSAGE, host="a")
    recorder.set_granularity(Granularity.COARSE)
    recorder.record(TraceEventType.KERNEL_MESSAGE, host="a")
    assert recorder.count(TraceEventType.KERNEL_MESSAGE) == 1


def test_capacity_ring():
    recorder = TraceRecorder(Clock(), capacity=3)
    for i in range(5):
        recorder.record(TraceEventType.EXIT, host="h%d" % i)
    assert len(recorder) == 3
    assert recorder.events[0].host == "h2"


def test_subscribers_receive_admitted_events_only():
    recorder = TraceRecorder(Clock(), granularity=Granularity.COARSE)
    seen = []
    recorder.subscribe(seen.append)
    recorder.record(TraceEventType.EXIT, host="a")
    recorder.record(TraceEventType.KERNEL_MESSAGE, host="a")
    assert len(seen) == 1
    recorder.unsubscribe(seen.append)
    recorder.record(TraceEventType.EXIT, host="a")
    assert len(seen) == 1


def test_clear():
    recorder = TraceRecorder(Clock())
    recorder.record(TraceEventType.EXIT, host="a")
    recorder.clear()
    assert len(recorder) == 0
