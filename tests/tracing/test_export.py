"""Tests for the DOT/JSON exporters (the graphics-interface hooks)."""

import json

import pytest

from repro.core.snapshot import ProcessRecord, SnapshotForest
from repro.ids import GlobalPid
from repro.tracing import TraceEventType, TraceRecorder
from repro.tracing.export import (
    events_to_json,
    forest_to_dot,
    forest_to_json,
    topology_to_dot,
)


def make_forest():
    records = [
        ProcessRecord(gpid=GlobalPid("a", 1), parent=None, user="u",
                      command="root", state="exited", start_ms=0.0),
        ProcessRecord(gpid=GlobalPid("b", 2), parent=GlobalPid("a", 1),
                      user="u", command="kid", state="stopped",
                      start_ms=1.0),
    ]
    return SnapshotForest(9.0, records=records, missing_hosts={"c"})


class TestDot:
    def test_forest_clusters_and_edges(self):
        dot = forest_to_dot(make_forest())
        assert dot.startswith("digraph")
        assert 'label="a"' in dot and 'label="b"' in dot  # host clusters
        assert '"<a,1>" -> "<b,2>";' in dot
        assert "lightyellow" in dot  # stopped fill
        assert "grey80" in dot       # exited fill

    def test_topology_highlights_ccs(self):
        dot = topology_to_dot(["a", "b", "c"],
                              [("b", "a"), ("b", "c"), ("a", "b")],
                              ccs_host="a")
        assert dot.startswith("graph")
        assert dot.count("--") == 2  # duplicate edge folded
        assert "CCS" in dot
        assert "lightblue" in dot

    def test_quote_escapes(self):
        dot = topology_to_dot(['we"ird'], [])
        assert r"\"" in dot


class TestJson:
    def test_events_roundtrip(self):
        clock = [0.0]
        recorder = TraceRecorder(lambda: clock[0])
        recorder.record(TraceEventType.EXIT, host="a",
                        gpid=GlobalPid("a", 5), status=3)
        data = json.loads(events_to_json(recorder.events, indent=2))
        assert data[0]["type"] == "exit"
        assert data[0]["gpid"] == "<a,5>"
        assert data[0]["details"]["status"] == 3

    def test_forest_json_structure(self):
        data = json.loads(forest_to_json(make_forest()))
        assert data["roots"] == ["<a,1>"]
        assert data["missing_hosts"] == ["c"]
        assert len(data["records"]) == 2
        # Records round-trip through the standard dict form.
        from repro.core.snapshot import ProcessRecord
        restored = [ProcessRecord.from_dict(r) for r in data["records"]]
        assert {r.gpid for r in restored} == {GlobalPid("a", 1),
                                              GlobalPid("b", 2)}


class TestLiveIntegration:
    def test_export_live_session(self):
        from tests.core.conftest import build_world
        from repro import PPMClient, spinner_spec
        from repro.bench.scenarios import overlay_edges
        world = build_world()
        client = PPMClient(world, "lfc", "alpha").connect()
        root = client.create_process("root", program=spinner_spec(None))
        client.create_process("kid", host="beta", parent=root,
                              program=spinner_spec(None))
        forest = client.snapshot()
        dot = forest_to_dot(forest)
        assert "root" in dot and "kid" in dot
        topo = topology_to_dot(["alpha", "beta"], overlay_edges(world),
                               ccs_host="alpha")
        assert '"alpha" -- "beta";' in topo
        blob = json.loads(events_to_json(world.recorder.events))
        assert any(entry["type"] == "lpm_created" for entry in blob)
