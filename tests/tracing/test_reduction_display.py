"""Tests for the data-reduction functions and text renderers."""

from repro.core.snapshot import ProcessRecord, SnapshotForest
from repro.ids import GlobalPid
from repro.tracing import TraceEventType, TraceRecorder
from repro.tracing.display import (
    render_creation_steps,
    render_endpoints,
    render_forest,
    render_timeline,
    render_topology,
)
from repro.tracing.reduction import (
    busiest_hosts,
    event_counts,
    message_rate,
    per_command_usage,
    process_lifetimes,
)


class Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def events_fixture():
    clock = Clock()
    recorder = TraceRecorder(clock)
    g1, g2 = GlobalPid("a", 1), GlobalPid("b", 2)
    recorder.record(TraceEventType.FORK, host="a", gpid=g1)
    clock.now = 100.0
    recorder.record(TraceEventType.FORK, host="b", gpid=g2)
    clock.now = 150.0
    recorder.record(TraceEventType.KERNEL_MESSAGE, host="a", gpid=g1)
    clock.now = 200.0
    recorder.record(TraceEventType.EXIT, host="a", gpid=g1)
    return recorder.events, g1, g2


def test_event_counts():
    events, _g1, _g2 = events_fixture()
    counts = event_counts(events)
    assert counts["fork"] == 2
    assert counts["exit"] == 1


def test_process_lifetimes():
    events, g1, g2 = events_fixture()
    lifetimes = process_lifetimes(events)
    assert lifetimes[g1] == (0.0, 200.0)
    assert lifetimes[g2] == (100.0, None)


def test_message_rate_buckets():
    events, _g1, _g2 = events_fixture()
    rate = message_rate(events, bucket_ms=100.0)
    assert rate == [(100.0, 1)]


def test_busiest_hosts():
    events, _g1, _g2 = events_fixture()
    assert busiest_hosts(events)[0][0] == "a"


def test_per_command_usage():
    class R:
        def __init__(self, command, rusage):
            self.command = command
            self.rusage = rusage

    usage = per_command_usage([
        R("cc", {"utime_ms": 10.0, "forks": 1}),
        R("cc", {"utime_ms": 20.0}),
        R("ld", {"utime_ms": 5.0, "signals": 2}),
    ])
    assert usage["cc"]["count"] == 2
    assert usage["cc"]["utime_ms"] == 30.0
    assert usage["ld"]["signals"] == 2


def make_forest():
    root = ProcessRecord(gpid=GlobalPid("a", 1), parent=None, user="u",
                         command="master", state="exited", start_ms=0.0)
    child = ProcessRecord(gpid=GlobalPid("b", 2),
                          parent=GlobalPid("a", 1), user="u",
                          command="slave", state="stopped", start_ms=1.0)
    return SnapshotForest(500.0, records=[root, child])


def test_render_forest_marks_states():
    text = render_forest(make_forest())
    assert "master (exited)" in text
    assert "slave (stopped)" in text
    assert "<a,1>" in text
    assert "<b,2>" in text


def test_render_forest_empty():
    text = render_forest(SnapshotForest(0.0))
    assert "no processes" in text


def test_render_forest_missing_hosts():
    forest = SnapshotForest(0.0, missing_hosts={"gone"})
    assert "gone" in render_forest(forest)


def test_render_topology():
    text = render_topology("Figure 3", ["a", "b", "c"],
                           [("a", "b"), ("b", "c")])
    assert "a" in text and "(none)" not in text.splitlines()[1]
    lines = {line.split()[0]: line for line in text.splitlines()[1:]}
    assert "b" in lines["a"]
    assert "a, c" in lines["b"]


def test_render_endpoints():
    text = render_endpoints({
        "user": "lfc", "host": "alpha",
        "kernel_socket": "kernel(uid=1001)",
        "accept_socket": "lpm:lfc:abc",
        "sibling_sockets": ["beta"],
        "tool_sockets": ["tool#1", "tool#2"],
    })
    assert "kernel socket" in text
    assert "accept socket" in text
    assert "sibling sockets (1)" in text
    assert "tool sockets (2)" in text


def test_render_creation_steps_ordered():
    clock = Clock()
    recorder = TraceRecorder(clock)
    for step, actor in [(1, "inetd"), (2, "inetd"), (3, "pmd"), (4, "pmd")]:
        clock.now += 10.0
        recorder.record(TraceEventType.CREATION_STEP, host="a",
                        step=step, actor=actor, detail="step %d" % step)
    text = render_creation_steps(recorder.events)
    positions = [text.index("(%d)" % step) for step in (1, 2, 3, 4)]
    assert positions == sorted(positions)


def test_reductions_on_empty_history():
    assert event_counts([]) == {}
    assert process_lifetimes([]) == {}
    assert message_rate([], bucket_ms=50.0) == []
    assert busiest_hosts([]) == []
    assert per_command_usage([]) == {}


def test_process_lifetimes_tolerate_out_of_order_events():
    clock = Clock()
    recorder = TraceRecorder(clock)
    gpid = GlobalPid("a", 9)
    clock.now = 300.0
    recorder.record(TraceEventType.EXIT, host="a", gpid=gpid)
    clock.now = 100.0  # a late-arriving earlier record
    recorder.record(TraceEventType.FORK, host="a", gpid=gpid)
    lifetimes = process_lifetimes(recorder.events)
    assert lifetimes[gpid] == (100.0, 300.0)


def test_process_lifetimes_skip_hostonly_events():
    clock = Clock()
    recorder = TraceRecorder(clock)
    recorder.record(TraceEventType.LPM_CREATED, host="a")
    assert process_lifetimes(recorder.events) == {}


def test_per_command_usage_tolerates_missing_rusage():
    class R:
        def __init__(self, command, rusage):
            self.command = command
            self.rusage = rusage

    usage = per_command_usage([R("cc", None), R("cc", {"forks": 3})])
    assert usage["cc"]["count"] == 2
    assert usage["cc"]["forks"] == 3
    assert usage["cc"]["utime_ms"] == 0.0


def test_busiest_hosts_honours_top():
    clock = Clock()
    recorder = TraceRecorder(clock)
    for host, repeats in (("a", 3), ("b", 2), ("c", 1)):
        for _ in range(repeats):
            recorder.record(TraceEventType.EXIT, host=host)
    assert busiest_hosts(recorder.events, top=2) == [("a", 3), ("b", 2)]


def test_render_timeline_limits():
    clock = Clock()
    recorder = TraceRecorder(clock)
    for _i in range(100):
        recorder.record(TraceEventType.EXIT, host="a")
    text = render_timeline(recorder.events, limit=10)
    assert "10 of 100" in text
