"""Tests for the IPC activity analysis tool (`tracing.ipc`)."""

from repro import Granularity, PPMClient, spinner_spec
from repro.ids import GlobalPid
from repro.tracing.events import TraceEvent, TraceEventType
from repro.tracing.ipc import (
    hottest_links,
    ipc_by_kind,
    ipc_matrix,
    render_ipc_by_kind,
    render_ipc_matrix,
    render_user_ipc,
    user_ipc_matrix,
)

from ..core.conftest import build_world


def sibling(host, peer, kind="gather", nbytes=100, forwarded=False,
            time_ms=0.0):
    return TraceEvent(time_ms=time_ms,
                      event_type=TraceEventType.SIBLING_MESSAGE,
                      host=host,
                      details={"peer": peer, "kind": kind,
                               "nbytes": nbytes, "forwarded": forwarded})


def user_ipc(gpid, peer, nbytes=10):
    return TraceEvent(time_ms=0.0, event_type=TraceEventType.USER_IPC,
                      host=gpid.host, gpid=gpid,
                      details={"peer": peer, "nbytes": nbytes})


EVENTS = [
    sibling("alpha", "beta", kind="gather", nbytes=200),
    sibling("alpha", "beta", kind="gather_reply", nbytes=900),
    sibling("beta", "alpha", kind="gather_reply", nbytes=400),
    sibling("alpha", "gamma", kind="locate", nbytes=150, forwarded=True),
    # Non-sibling noise the reductions must ignore.
    TraceEvent(time_ms=1.0, event_type=TraceEventType.FORK, host="alpha"),
    user_ipc(GlobalPid("alpha", 5), "<beta,7>", nbytes=64),
]


def test_ipc_matrix_is_directed_and_aggregated():
    matrix = ipc_matrix(EVENTS)
    assert matrix[("alpha", "beta")] == {"messages": 2, "bytes": 1100,
                                         "forwarded": 0}
    assert matrix[("beta", "alpha")]["messages"] == 1
    assert matrix[("alpha", "gamma")]["forwarded"] == 1
    assert set(matrix) == {("alpha", "beta"), ("beta", "alpha"),
                           ("alpha", "gamma")}


def test_ipc_by_kind_sums_volume():
    kinds = ipc_by_kind(EVENTS)
    assert kinds["gather_reply"] == {"messages": 2, "bytes": 1300}
    assert kinds["locate"]["messages"] == 1
    assert "fork" not in kinds


def test_hottest_links_are_undirected_and_ranked():
    links = hottest_links(EVENTS)
    assert links[0] == (("alpha", "beta"), 3)
    assert links[1] == (("alpha", "gamma"), 1)
    assert hottest_links(EVENTS, top=1) == [(("alpha", "beta"), 3)]


def test_hottest_links_ties_break_by_name():
    events = [sibling("b", "c"), sibling("a", "b")]
    assert hottest_links(events) == [(("a", "b"), 1), (("b", "c"), 1)]


def test_user_ipc_matrix_keys_by_gpid():
    matrix = user_ipc_matrix(EVENTS)
    assert matrix == {("<alpha,5>", "<beta,7>"):
                      {"messages": 1, "bytes": 64}}


def test_renderers_explain_empty_traces():
    assert "granularity FINE" in render_ipc_matrix([])
    assert "granularity FINE" in render_user_ipc([])
    assert "granularity FINE" in render_ipc_by_kind([])


def test_render_ipc_matrix_table():
    text = render_ipc_matrix(EVENTS)
    assert "IPC activity between sibling LPMs" in text
    assert "alpha" in text and "gamma" in text
    assert "1100" in text


def test_render_ipc_by_kind_sorts_busiest_first():
    text = render_ipc_by_kind(EVENTS)
    assert text.index("gather_reply") < text.index("locate")


def test_render_user_ipc_table():
    text = render_user_ipc(EVENTS)
    assert "IPC activity between user processes" in text
    assert "<alpha,5>" in text


def test_fine_granularity_session_feeds_the_ipc_tool():
    # End to end: a real cross-host session at FINE granularity leaves
    # sibling-message events the tool can reduce.
    world = build_world()
    world.recorder.set_granularity(Granularity.FINE)
    client = PPMClient(world, "lfc", "alpha").connect()
    client.create_process("job", host="beta", program=spinner_spec(None))
    client.snapshot()
    world.run_for(1_000.0)
    matrix = ipc_matrix(world.recorder.events)
    assert matrix, "FINE granularity should record sibling messages"
    assert any(host == "alpha" for host, _peer in matrix)
    total = sum(cell["bytes"] for cell in matrix.values())
    assert total > 0
    assert "sibling LPMs" in render_ipc_matrix(world.recorder.events)
