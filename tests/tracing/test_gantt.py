"""Tests for the state-chart display tool (section 7's display tool)."""

import pytest

from repro.ids import GlobalPid
from repro.tracing import TraceEventType, TraceRecorder, render_gantt, state_intervals


class Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def history():
    clock = Clock()
    recorder = TraceRecorder(clock)
    a = GlobalPid("h", 1)
    b = GlobalPid("h", 2)
    recorder.record(TraceEventType.PROCESS_CREATED, host="h", gpid=a)
    clock.now = 100.0
    recorder.record(TraceEventType.FORK, host="h", gpid=b)
    clock.now = 200.0
    recorder.record(TraceEventType.STOPPED, host="h", gpid=a)
    clock.now = 300.0
    recorder.record(TraceEventType.CONTINUED, host="h", gpid=a)
    clock.now = 400.0
    recorder.record(TraceEventType.EXIT, host="h", gpid=b)
    return recorder.events, a, b


def test_state_intervals_reconstructed():
    events, a, b = history()
    intervals = state_intervals(events, until_ms=500.0)
    assert intervals[a] == [(0.0, 200.0, "running"),
                            (200.0, 300.0, "stopped"),
                            (300.0, 500.0, "running")]
    assert intervals[b] == [(100.0, 400.0, "running")]


def test_duplicate_birth_events_ignored():
    clock = Clock()
    recorder = TraceRecorder(clock)
    a = GlobalPid("h", 1)
    recorder.record(TraceEventType.PROCESS_CREATED, host="h", gpid=a)
    recorder.record(TraceEventType.ADOPTED, host="h", gpid=a)
    intervals = state_intervals(recorder.events, until_ms=100.0)
    assert intervals[a] == [(0.0, 100.0, "running")]


def test_render_gantt_shape():
    events, a, b = history()
    chart = render_gantt(events, until_ms=500.0, width=50)
    lines = chart.splitlines()
    assert len(lines) == 3  # header + two processes
    row_a = next(line for line in lines if str(a) in line)
    assert "=" in row_a and "." in row_a
    # The stopped stretch sits between running stretches.
    bar = row_a[row_a.index("|") + 1:row_a.rindex("|")]
    assert bar.strip("=").strip() != ""  # contains dots
    first_dot = bar.index(".")
    assert "=" in bar[:first_dot] and "=" in bar[first_dot:]


def test_render_gantt_empty():
    assert "no process history" in render_gantt([], until_ms=10.0)


def test_gantt_integration_with_live_session():
    from tests.core.conftest import build_world
    from repro import PPMClient, spinner_spec
    world = build_world()
    client = PPMClient(world, "lfc", "alpha").connect()
    gpid = client.create_process("job", host="beta",
                                 program=spinner_spec(None))
    client.stop(gpid)
    world.run_for(2_000.0)
    client.cont(gpid)
    world.run_for(2_000.0)
    chart = render_gantt(world.recorder.events, until_ms=world.now_ms)
    assert str(gpid) in chart
    assert "." in chart  # the stopped stretch is visible
