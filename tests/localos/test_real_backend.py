"""Tests for the real-OS backend (genuine subprocesses and signals)."""

import os
import sys
import time

import pytest

from repro import ControlAction, GlobalPid, NoSuchProcessError, PPMError
from repro.localos import RealBackend, children_map, descendants, read_stat

pytestmark = pytest.mark.skipif(not os.path.isdir("/proc"),
                                reason="requires a Linux /proc")

PY = sys.executable


def wait_for(predicate, timeout_s=10.0, interval_s=0.05):
    deadline = time.time() + timeout_s
    while time.time() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return False


@pytest.fixture
def backend():
    with RealBackend() as b:
        yield b


class TestProcfs:
    def test_read_own_stat(self):
        stat = read_stat(os.getpid())
        assert stat is not None
        assert stat.pid == os.getpid()
        assert stat.ppid > 0
        assert stat.state in ("running", "sleeping")
        assert stat.utime_ms >= 0

    def test_read_missing_pid(self):
        assert read_stat(2 ** 22 - 1) is None

    def test_children_map_contains_us(self):
        index = children_map()
        stat = read_stat(os.getpid())
        assert os.getpid() in index.get(stat.ppid, [])


class TestSpawnAndControl:
    def test_spawn_and_state(self, backend):
        gpid = backend.spawn([PY, "-c", "import time; time.sleep(30)"],
                             name="sleeper")
        assert gpid.host == backend.host_name
        assert backend.state_of(gpid) in ("running", "sleeping")

    def test_stop_and_continue(self, backend):
        gpid = backend.spawn([PY, "-c", "import time; time.sleep(30)"])
        backend.control(gpid, ControlAction.STOP)
        assert wait_for(lambda: backend.state_of(gpid) == "stopped")
        backend.control(gpid, ControlAction.CONTINUE)
        assert wait_for(
            lambda: backend.state_of(gpid) in ("running", "sleeping"))

    def test_kill(self, backend):
        gpid = backend.spawn([PY, "-c", "import time; time.sleep(30)"])
        backend.control(gpid, ControlAction.KILL)
        assert wait_for(lambda: backend.state_of(gpid) == "exited")

    def test_exit_status_recorded(self, backend):
        gpid = backend.spawn([PY, "-c", "raise SystemExit(7)"],
                             name="failing")
        backend.wait_all()
        records = backend.rstats()
        mine = [r for r in records if r.gpid == gpid]
        assert mine and mine[0].exit_status == 7

    def test_unknown_pid_rejected(self, backend):
        with pytest.raises(NoSuchProcessError):
            backend.control(GlobalPid(backend.host_name, 1 << 21),
                            ControlAction.STOP)

    def test_foreign_host_rejected(self, backend):
        with pytest.raises(PPMError):
            backend.state_of(GlobalPid("elsewhere", 1))


class TestGenealogy:
    def test_descendants_discovered(self, backend):
        # A shell that forks a child sleeper.
        root = backend.spawn(
            ["/bin/sh", "-c", "%s -c 'import time; time.sleep(30)' & wait"
             % PY], name="forker")
        assert wait_for(
            lambda: len(backend.snapshot(prune=False).descendants(root)) >= 1)
        forest = backend.snapshot(prune=False)
        kids = forest.descendants(root)
        assert kids
        assert all(g.host == backend.host_name for g in kids)
        assert descendants(root.pid)  # raw procfs agrees

    def test_control_tree_stops_whole_computation(self, backend):
        root = backend.spawn(
            ["/bin/sh", "-c", "%s -c 'import time; time.sleep(30)' & wait"
             % PY], name="forker")
        assert wait_for(
            lambda: len(backend.snapshot(prune=False).descendants(root)) >= 1)
        targets = backend.control_tree(root, ControlAction.KILL)
        assert len(targets) >= 2
        assert wait_for(lambda: backend.state_of(root) == "exited")

    def test_exited_parent_retained_while_child_lives(self, backend):
        # The shell exits immediately; its orphaned child lives on.  The
        # backend keeps the exited parent's record (section 2).
        # The shell lingers briefly so the child is discovered while the
        # parent still lives, then exits, orphaning the child.
        root = backend.spawn(
            ["/bin/sh", "-c",
             "%s -c 'import time; time.sleep(30)' & sleep 0.4" % PY],
            name="orphaner")
        assert wait_for(
            lambda: len(backend.snapshot(prune=False)) >= 2,
            timeout_s=2.0)
        assert wait_for(lambda: backend.state_of(root) == "exited")
        forest = backend.snapshot(prune=True)
        assert root in forest  # exited, but its child is alive
        assert forest.records[root].state == "exited"

    def test_snapshot_prunes_exited_leaves(self, backend):
        gpid = backend.spawn([PY, "-c", "pass"], name="brief")
        backend.wait_all()
        assert gpid not in backend.snapshot(prune=True)
        assert gpid in backend.snapshot(prune=False)


class TestTreeControl:
    def test_stop_and_continue_tree(self, backend):
        root = backend.spawn(
            ["/bin/sh", "-c", "%s -c 'import time; time.sleep(30)' & wait"
             % PY], name="forker")
        assert wait_for(
            lambda: len(backend.snapshot(prune=False).descendants(root))
            >= 1)
        backend.control_tree(root, ControlAction.STOP)
        assert wait_for(lambda: backend.state_of(root) == "stopped")
        backend.control_tree(root, ControlAction.CONTINUE)
        assert wait_for(
            lambda: backend.state_of(root) in ("running", "sleeping"))
        backend.control_tree(root, ControlAction.KILL)

    def test_wait_all_times_out_on_stuck_child(self):
        backend = RealBackend()
        try:
            backend.spawn([PY, "-c", "import time; time.sleep(60)"])
            with pytest.raises(PPMError):
                backend.wait_all(timeout_s=0.5)
        finally:
            backend.shutdown()

    def test_rstats_report_renders(self, backend):
        from repro.core.rstats import build_report, render_report
        backend.spawn([PY, "-c", "pass"], name="quickjob")
        backend.wait_all()
        text = render_report(build_report(backend.rstats()))
        assert "quickjob" in text


class TestShutdown:
    def test_shutdown_kills_survivors(self):
        backend = RealBackend()
        gpid = backend.spawn([PY, "-c", "import time; time.sleep(60)"])
        backend.shutdown()
        assert backend.state_of(gpid) == "exited"

    def test_rusage_sampled(self, backend):
        gpid = backend.spawn(
            [PY, "-c", "sum(i*i for i in range(2_000_000))"],
            name="cruncher")
        backend.wait_all()
        record = backend.snapshot(prune=False).records[gpid]
        assert record.rusage["utime_ms"] >= 0
