"""Tests for the benchmark support package (workloads, scenarios,
tables) under plain pytest."""

import os

import pytest

from repro.bench.scenarios import (
    FIGURE5_TOPOLOGIES,
    TABLE1_PAPER,
    TABLE2_PAPER,
    build_figure5_topology,
    build_table1_world,
    build_table2_chain,
    overlay_edges,
)
from repro.bench.tables import comparison_table, write_result
from repro.bench.workloads import (
    clear_load,
    measure_kernel_deliveries,
    raise_load_to_band,
)
from repro.netsim import HostClass


class TestWorkloads:
    def test_raise_load_reaches_each_band(self):
        world, host, lpm, _client, _target = build_table1_world(
            HostClass.VAX_780)
        pids = raise_load_to_band(world, host, (1, 2))
        la = host.kernel.loadavg.value()
        assert 1.0 < la <= 2.0
        assert len(pids) == 2
        clear_load(world, host, pids)
        assert host.kernel.loadavg.value() < 0.2

    def test_measure_kernel_deliveries_sample_count(self):
        world, host, lpm, _client, target = build_table1_world(
            HostClass.VAX_750)
        raise_load_to_band(world, host, (0, 1))
        delays = measure_kernel_deliveries(world, host, lpm, target.pid,
                                           (0, 1), samples=6)
        assert len(delays) == 6
        assert all(delay > 0 for delay in delays)


class TestScenarios:
    def test_paper_constants_complete(self):
        assert len(TABLE1_PAPER[HostClass.SUN_2]) == 4
        assert len(TABLE1_PAPER[HostClass.VAX_780]) == 3  # blank cell
        assert TABLE2_PAPER[("stop", "one-hop")] == 199.0
        assert [t.paper_ms for t in FIGURE5_TOPOLOGIES] == [
            205.0, 225.0, 461.0, 507.0]

    def test_table2_chain_shape(self):
        chain = build_table2_chain()
        lpm_a = chain.world.lpms[("hostA", "lfc")]
        assert "hostC" not in lpm_a.authenticated_siblings()
        assert lpm_a.routes.route_to("hostC") == ["hostA", "hostB",
                                                  "hostC"]
        assert chain.two_hop.host == "hostC"
        # Fresh targets land at the right distances.
        assert chain.fresh_target("within").host == "hostA"
        assert chain.fresh_target("one-hop").host == "hostB"
        assert chain.fresh_target("two-hop").host == "hostC"
        with pytest.raises(ValueError):
            chain.fresh_target("three-hop")

    @pytest.mark.parametrize("topology", FIGURE5_TOPOLOGIES,
                             ids=lambda t: t.name)
    def test_figure5_builders_produce_prescribed_overlays(self, topology):
        world, origin = build_figure5_topology(topology)
        edges = {frozenset(edge) for edge in overlay_edges(world)}
        assert edges == {frozenset(edge) for edge in topology.edges}
        forest = origin.snapshot(prune=False)
        assert len(forest) == 6 * len(topology.remote_hosts)


class TestTables:
    def test_comparison_table_ratio(self):
        text = comparison_table("T", [
            {"case": "x", "paper_ms": 100.0, "measured_ms": 110.0},
            {"case": "y", "paper_ms": None, "measured_ms": 5.0},
        ])
        assert "1.10" in text
        assert "-" in text  # the no-paper-value row

    def test_write_result_creates_file(self, tmp_path):
        path = write_result("unit.txt", "hello",
                            results_dir=str(tmp_path))
        assert os.path.exists(path)
        with open(path) as handle:
            assert handle.read() == "hello\n"
