"""Cross-backend conformance: one scenario, two fabrics.

The netsim run administers simulated processes over simulated links;
the realnet run administers real OS processes over real TCP sockets —
through the *same* ``PPMClient`` and the same protocol stack.  The
assertion is that the journals (ordered tool-stream traffic) and the
normalized final process tables are identical.
"""

from __future__ import annotations

import socket
import sys

import pytest

from repro import HostClass, PPMClient, World, install

from .scenario import HOSTS, run_scenario, run_shared_scenario


def _real_backend_available() -> bool:
    """Real runs need loopback sockets and subprocess support."""
    if sys.platform.startswith("win"):
        return False
    try:
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.bind(("127.0.0.1", 0))
        probe.close()
    except OSError:
        return False
    return True


needs_real = pytest.mark.skipif(
    not _real_backend_available(),
    reason="loopback sockets unavailable; realnet cases skipped")


def run_on_netsim():
    world = World(seed=11)
    for name, host_class in zip(HOSTS, (HostClass.VAX_780,
                                        HostClass.VAX_750,
                                        HostClass.SUN_2)):
        world.add_host(name, host_class)
    world.ethernet()
    world.add_user("lfc", 1001)
    install(world)
    return run_scenario(PPMClient(world, "lfc", HOSTS[0]), HOSTS)


def run_on_realnet():
    from repro.realnet.session import RealSession, launch_hosts

    with launch_hosts(HOSTS, budget_s=120.0) as fleet:
        with RealSession(fleet.registry_path, "lfc",
                         HOSTS[0]) as session:
            return run_scenario(session.client, HOSTS)


EXPECTED_JOURNAL = [
    ("connect", True),
    ("tool_ping", True, "alpha"),
    ("tool_session_info", True, "alpha", "lfc"),
    ("tool_create", "local", True),
    ("tool_create", "remote", True),
    ("tool_locate", True, True, "gamma"),
    ("tool_control", "stop", True),
    ("tool_control", "continue", True),
    ("tool_snapshot", True, 2),
    ("tool_control", "kill", True),
    ("tool_control", "kill", True),
    ("close", True),
]

EXPECTED_TABLE = [("p0", "alpha", None), ("p1", "gamma", "p0")]


def test_netsim_runs_the_scenario():
    journal, table = run_on_netsim()
    assert journal == EXPECTED_JOURNAL
    assert table == EXPECTED_TABLE


@needs_real
def test_realnet_runs_the_scenario():
    journal, table = run_on_realnet()
    assert journal == EXPECTED_JOURNAL
    assert table == EXPECTED_TABLE


@needs_real
def test_backends_agree_end_to_end():
    """The two backends produce identical journals and tables — the
    direct cross-backend comparison, independent of the expectation
    constants above."""
    sim_journal, sim_table = run_on_netsim()
    real_journal, real_table = run_on_realnet()
    assert sim_journal == real_journal
    assert sim_table == real_table


# ----------------------------------------------------------------------
# Multi-tenant mode: two co-located users over a shared circuit
# ----------------------------------------------------------------------

def run_shared_on_netsim():
    from repro import PPMConfig

    world = World(seed=11, config=PPMConfig(circuit_sharing=True))
    for name, host_class in zip(HOSTS, (HostClass.VAX_780,
                                        HostClass.VAX_750,
                                        HostClass.SUN_2)):
        world.add_host(name, host_class)
    world.ethernet()
    world.add_user("lfc", 1001)
    world.add_user("ramon", 1002)
    install(world)
    journal = run_shared_scenario(PPMClient(world, "lfc", HOSTS[0]),
                                  PPMClient(world, "ramon", HOSTS[0]),
                                  HOSTS)
    # Netsim lets us see inside: the two users' sibling channels to
    # gamma really rode one physical circuit as two lanes.
    pool = getattr(world.host(HOSTS[0]), "_circuit_pool", None)
    assert pool is not None
    return journal


def run_shared_on_realnet():
    import os

    from repro.realnet.session import RealSession, launch_hosts

    os.environ["REPRO_CIRCUIT_SHARING"] = "1"
    try:
        with launch_hosts(HOSTS, budget_s=120.0) as fleet:
            with RealSession(fleet.registry_path, "lfc",
                             HOSTS[0]) as a, \
                    RealSession(fleet.registry_path, "ramon",
                                HOSTS[0]) as b:
                return run_shared_scenario(a.client, b.client, HOSTS)
    finally:
        del os.environ["REPRO_CIRCUIT_SHARING"]


EXPECTED_SHARED_JOURNAL = [
    ("connect", "a", True),
    ("connect", "b", True),
    ("tool_ping", "a", True, "alpha"),
    ("tool_ping", "b", True, "alpha"),
    ("tool_create", "a", True),
    ("tool_create", "b", True),
    ("tool_locate", "a", True, True, "gamma"),
    ("tool_locate", "b", True, True, "gamma"),
    ("isolated", True, True),
    ("tool_control", "a", "kill", True),
    ("tool_control", "b", "kill", True),
    ("close", True),
]


def test_netsim_runs_the_shared_scenario():
    assert run_shared_on_netsim() == EXPECTED_SHARED_JOURNAL


@needs_real
def test_realnet_runs_the_shared_scenario():
    assert run_shared_on_realnet() == EXPECTED_SHARED_JOURNAL


@needs_real
def test_backends_agree_on_shared_circuits():
    """A two-user shared-circuit session produces identical journals
    on the simulated and the real TCP backend."""
    assert run_shared_on_netsim() == run_shared_on_realnet()
