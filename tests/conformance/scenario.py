"""The shared cross-backend scenario.

One session script — bootstrap, ping, session info, local create,
cross-host create, locate, stop/continue, snapshot, kill, teardown —
run unmodified against any object satisfying the ``PPMClient``
surface.  It returns a *journal* (the ordered tool-stream traffic:
request kind plus the backend-independent parts of each reply) and a
normalized final process-table summary, so the test can assert the
netsim and realnet backends administer the computation identically
even though pids, states, and latencies legitimately differ.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.core.progspec import sleeper_spec

#: The overlay host names every conformance run uses.
HOSTS = ["alpha", "beta", "gamma"]


def run_scenario(client, hosts: Sequence[str]) -> Tuple[List, List]:
    """Drive one full session; returns ``(journal, table)``.

    The journal records, in order, each request the tool stream
    carried and the reply facts that must not depend on the backend.
    The table maps the created processes to creation-order labels so
    genealogy compares across backends with different pid spaces.
    """
    home, away = hosts[0], hosts[-1]
    journal: List = []

    client.connect()
    journal.append(("connect", True))

    ping = client.ping()
    journal.append(("tool_ping", bool(ping["ok"]), ping["host"]))

    info = client.session_info()
    journal.append(("tool_session_info", bool(info["ok"]),
                    info["host"], info["user"]))

    local = client.create_process("coordinator",
                                  program=sleeper_spec(60_000.0))
    journal.append(("tool_create", "local", local.host == home))

    remote = client.create_process("worker", host=away, parent=local,
                                   program=sleeper_spec(60_000.0))
    journal.append(("tool_create", "remote", remote.host == away))

    located = client.locate(remote)
    journal.append(("tool_locate", bool(located["ok"]),
                    bool(located["found"]), located["host"]))

    journal.append(("tool_control", "stop",
                    bool(client.stop(remote)["ok"])))
    journal.append(("tool_control", "continue",
                    bool(client.cont(remote)["ok"])))

    forest = client.snapshot(prune=False)
    labels = {local: "p0", remote: "p1"}
    table = sorted(
        (labels[gpid], gpid.host,
         labels.get(record.parent) if record.parent is not None
         else None)
        for gpid, record in forest.records.items() if gpid in labels)
    journal.append(("tool_snapshot", True, len(table)))

    for gpid in (remote, local):
        journal.append(("tool_control", "kill",
                        bool(client.kill(gpid)["ok"])))

    client.close()
    journal.append(("close", True))
    return journal, table


def run_shared_scenario(client_a, client_b,
                        hosts: Sequence[str]) -> List:
    """Two co-located users over one (shared) circuit; one journal.

    The interleaving is fixed — connect a, connect b, then each step
    for a before b — so the journal is deterministic on any backend.
    Every fact recorded is backend-independent: reply flags, hosts,
    and the isolation check that neither user's snapshot contains the
    other's process.
    """
    home, away = hosts[0], hosts[-1]
    journal: List = []

    client_a.connect()
    client_b.connect()
    journal.append(("connect", "a", True))
    journal.append(("connect", "b", True))

    for label, client in (("a", client_a), ("b", client_b)):
        ping = client.ping()
        journal.append(("tool_ping", label, bool(ping["ok"]),
                        ping["host"]))

    created = {}
    for label, client in (("a", client_a), ("b", client_b)):
        gpid = client.create_process("worker", host=away,
                                     program=sleeper_spec(60_000.0))
        created[label] = gpid
        journal.append(("tool_create", label, gpid.host == away))

    for label, client in (("a", client_a), ("b", client_b)):
        located = client.locate(created[label])
        journal.append(("tool_locate", label, bool(located["ok"]),
                        bool(located["found"]), located["host"]))

    forest_a = client_a.snapshot(prune=False)
    forest_b = client_b.snapshot(prune=False)
    journal.append(("isolated",
                    created["a"] in forest_a.records
                    and created["b"] not in forest_a.records,
                    created["b"] in forest_b.records
                    and created["a"] not in forest_b.records))

    for label, client in (("a", client_a), ("b", client_b)):
        journal.append(("tool_control", label, "kill",
                        bool(client.kill(created[label])["ok"])))

    client_a.close()
    client_b.close()
    journal.append(("close", True))
    return journal
