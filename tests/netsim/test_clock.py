"""Tests for the simulated clock (netsim/clock.py).

The clock's one invariant — time never moves backwards — is what the
lockstep shard protocol leans on when it advances workers to barrier-
agreed instants, so the failure mode gets its own coverage.
"""

import pytest

from repro.errors import SimulationError
from repro.netsim.clock import SimClock


def test_starts_at_zero_by_default():
    assert SimClock().now_ms == 0.0


def test_starts_at_given_instant():
    assert SimClock(125.5).now_ms == 125.5


def test_advance_moves_forward():
    clock = SimClock()
    clock.advance_to(10.0)
    assert clock.now_ms == 10.0
    clock.advance_to(10.5)
    assert clock.now_ms == 10.5


def test_advance_to_current_instant_is_a_noop():
    clock = SimClock(7.0)
    clock.advance_to(7.0)
    assert clock.now_ms == 7.0


def test_moving_backwards_is_a_bug():
    clock = SimClock(100.0)
    with pytest.raises(SimulationError, match="backwards"):
        clock.advance_to(99.999)
    # The failed advance must not have moved the clock.
    assert clock.now_ms == 100.0


def test_integer_times_are_coerced_to_float():
    clock = SimClock(5)
    assert isinstance(clock.now_ms, float)
    clock.advance_to(6)
    assert isinstance(clock.now_ms, float)


def test_repr_shows_current_time():
    assert "123.000" in repr(SimClock(123))
