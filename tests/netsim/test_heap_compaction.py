"""Regression tests for event-queue compaction and the fast path.

The queue may rebuild itself when cancelled residents dominate; none of
that is allowed to change *what* runs or *in which order* — the
``(time, seq)`` total order is the determinism contract every
experiment's byte-identical outputs rest on.
"""

import random

from repro.netsim.events import COMPACT_MIN_CANCELLED, Event, EventQueue
from repro.netsim.simulator import Simulator


def _noop() -> None:
    pass


def test_compaction_triggers_and_preserves_pop_order():
    rng = random.Random(42)
    queue = EventQueue()
    events = [Event(rng.uniform(0, 1000.0), seq, _noop, ())
              for seq in range(1, 501)]
    for event in events:
        queue.push(event)
    survivors = []
    for event in events:
        if rng.random() < 0.7:
            event.cancel()
        else:
            survivors.append(event)
    assert queue.compactions > 0, "70% of 500 cancelled must compact"
    assert len(queue) == len(survivors)
    expected = sorted(survivors, key=lambda e: (e.time_ms, e.seq))
    popped = []
    while True:
        event = queue.pop()
        if event is None:
            break
        popped.append(event)
    assert popped == expected


def test_cancelled_events_never_fire_across_compaction():
    sim = Simulator(seed=1)
    fired = []
    keep, cancel = [], []
    for i in range(3 * COMPACT_MIN_CANCELLED):
        event = sim.schedule(float(i), fired.append, i)
        (keep if i % 3 == 0 else cancel).append((i, event))
    for _i, event in cancel:
        sim.cancel(event)
    assert sim.queue.compactions > 0
    sim.run_until_idle()
    assert fired == [i for i, _e in keep]


def test_len_invariant_with_mixed_cancel_paths():
    sim = Simulator(seed=2)
    events = [sim.schedule(float(i), _noop) for i in range(10)]
    # Every historical cancellation style must hit the single
    # bookkeeping path exactly once.
    sim.cancel(events[0])                      # simulator API
    events[1].cancel()                         # direct event API
    events[2].cancel()
    sim.queue.note_cancelled()                 # legacy pairing: a no-op
    sim.cancel(events[0])                      # double-cancel: ignored
    events[1].cancel()
    assert len(sim.queue) == 7
    sim.run_until_idle()
    assert len(sim.queue) == 0


def test_cancel_after_firing_does_not_corrupt_len():
    sim = Simulator(seed=3)
    event = sim.schedule(1.0, _noop)
    sim.schedule(2.0, _noop)
    sim.step()
    # The old queue drifted negative here: cancelling an event that
    # already ran decremented the live counter anyway.
    event.cancel()
    sim.cancel(event)
    assert len(sim.queue) == 1
    sim.run_until_idle()
    assert len(sim.queue) == 0


def test_same_time_fastpath_keeps_scheduling_order():
    sim = Simulator(seed=4)
    fired = []

    def cascade(depth: int) -> None:
        fired.append(depth)
        if depth < 5:
            # Zero-delay re-scheduling at the executing instant: the
            # queue's same-time FIFO, not the heap.
            sim.schedule(0.0, cascade, depth + 1)

    sim.schedule(10.0, cascade, 0)
    sim.schedule(10.0, fired.append, "sibling")
    sim.run_until_idle()
    assert fired == [0, "sibling", 1, 2, 3, 4, 5]


def test_fastpath_and_heap_interleave_deterministically():
    rng = random.Random(7)
    queue = EventQueue()
    seq = 0
    pushed = []
    popped = []
    now = 0.0
    for _round in range(200):
        for _ in range(rng.randrange(4)):
            seq += 1
            event = Event(now + rng.uniform(0.0, 50.0), seq, _noop, ())
            queue.push(event)
            pushed.append(event)
        if queue and rng.random() < 0.8:
            event = queue.pop()
            now = event.time_ms
            popped.append(event)
    while queue:
        popped.append(queue.pop())
    assert popped == sorted(pushed, key=lambda e: (e.time_ms, e.seq))
