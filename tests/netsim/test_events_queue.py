"""Direct tests and properties for the event queue."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim.events import Event, EventQueue
from repro.netsim import Network, Simulator, StreamConnection


class TestEventQueue:
    def test_pop_order(self):
        queue = EventQueue()
        for seq, time_ms in enumerate([30.0, 10.0, 20.0]):
            queue.push(Event(time_ms, seq, lambda: None, ()))
        times = [queue.pop().time_ms for _ in range(3)]
        assert times == [10.0, 20.0, 30.0]
        assert queue.pop() is None

    def test_cancelled_events_skipped(self):
        queue = EventQueue()
        keep = Event(10.0, 1, lambda: None, ())
        drop = Event(5.0, 2, lambda: None, ())
        queue.push(keep)
        queue.push(drop)
        drop.cancel()
        queue.note_cancelled()
        assert queue.peek_time() == 10.0
        assert queue.pop() is keep
        assert len(queue) == 0

    def test_bool_and_len(self):
        queue = EventQueue()
        assert not queue
        event = Event(1.0, 1, lambda: None, ())
        queue.push(event)
        assert queue
        assert len(queue) == 1

    def test_event_repr_states(self):
        event = Event(1.5, 3, lambda: None, (), label="x")
        assert "pending" in repr(event)
        event.cancel()
        assert "cancelled" in repr(event)

    @given(st.lists(st.tuples(st.floats(min_value=0, max_value=1e6,
                                        allow_nan=False),
                              st.booleans()),
                    max_size=50))
    @settings(max_examples=100, deadline=None)
    def test_pop_always_nondecreasing(self, entries):
        queue = EventQueue()
        for seq, (time_ms, cancel) in enumerate(entries):
            event = Event(time_ms, seq, lambda: None, ())
            queue.push(event)
            if cancel:
                event.cancel()
                queue.note_cancelled()
        previous = -1.0
        while True:
            event = queue.pop()
            if event is None:
                break
            assert event.time_ms >= previous
            assert not event.cancelled
            previous = event.time_ms


class TestStreamOrderingProperty:
    @given(st.lists(st.floats(min_value=0.0, max_value=200.0,
                              allow_nan=False),
                    min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_in_order_delivery_under_random_delays(self, extra_delays):
        """Whatever per-message processing delays occur, a stream never
        reorders (TCP semantics)."""
        sim = Simulator(seed=1)
        net = Network(sim)
        net.add_node("a")
        net.add_node("b")
        net.ethernet(["a", "b"])
        received = []

        def acceptor(endpoint, payload):
            endpoint.on_message = lambda data, ep: received.append(data)

        net.node("b").listen("svc", acceptor)
        client = []
        StreamConnection.connect(net, "a", "b", "svc",
                                 on_established=client.append)
        sim.run_until_true(lambda: bool(client), timeout_ms=60_000.0)
        for index, extra in enumerate(extra_delays):
            client[0].send(index, nbytes=64, extra_delay_ms=extra)
        sim.run_for(1_000_000.0)
        assert received == list(range(len(extra_delays)))
