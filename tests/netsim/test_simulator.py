"""Tests for the discrete-event simulation core."""

import pytest

from repro.errors import SimulationError
from repro.netsim import Simulator


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now_ms == 0.0


def test_schedule_and_run_single_event():
    sim = Simulator()
    fired = []
    sim.schedule(10.0, fired.append, "a")
    sim.run_until(5.0)
    assert fired == []
    sim.run_until(10.0)
    assert fired == ["a"]
    assert sim.now_ms == 10.0


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(30.0, fired.append, 3)
    sim.schedule(10.0, fired.append, 1)
    sim.schedule(20.0, fired.append, 2)
    sim.run_until_idle()
    assert fired == [1, 2, 3]


def test_same_time_events_fire_in_scheduling_order():
    sim = Simulator()
    fired = []
    for i in range(20):
        sim.schedule(5.0, fired.append, i)
    sim.run_until_idle()
    assert fired == list(range(20))


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(10.0, fired.append, "x")
    sim.cancel(event)
    sim.run_until_idle()
    assert fired == []
    assert len(sim.queue) == 0


def test_cancel_is_idempotent():
    sim = Simulator()
    event = sim.schedule(10.0, lambda: None)
    sim.cancel(event)
    sim.cancel(event)
    sim.cancel(None)
    assert len(sim.queue) == 0


def test_cannot_schedule_into_the_past():
    sim = Simulator()
    sim.schedule(10.0, lambda: None)
    sim.run_until(10.0)
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)
    with pytest.raises(SimulationError):
        sim.schedule_at(5.0, lambda: None)


def test_nested_scheduling_from_callback():
    sim = Simulator()
    fired = []

    def first():
        fired.append("first")
        sim.schedule(5.0, lambda: fired.append("second"))

    sim.schedule(10.0, first)
    sim.run_until_idle()
    assert fired == ["first", "second"]
    assert sim.now_ms == 15.0


def test_run_until_advances_clock_even_when_idle():
    sim = Simulator()
    sim.run_until(100.0)
    assert sim.now_ms == 100.0


def test_run_for_is_relative():
    sim = Simulator()
    sim.run_until(50.0)
    sim.run_for(25.0)
    assert sim.now_ms == 75.0


def test_run_until_true_stops_at_predicate():
    sim = Simulator()
    state = {"n": 0}

    def bump():
        state["n"] += 1
        sim.schedule(10.0, bump)

    sim.schedule(10.0, bump)
    assert sim.run_until_true(lambda: state["n"] >= 3, timeout_ms=1000.0)
    assert state["n"] == 3
    assert sim.now_ms == 30.0


def test_run_until_true_times_out():
    sim = Simulator()
    sim.schedule(10_000.0, lambda: None)
    assert not sim.run_until_true(lambda: False, timeout_ms=100.0)


def test_run_until_true_immediate():
    sim = Simulator()
    assert sim.run_until_true(lambda: True, timeout_ms=0.0)


def test_determinism_with_same_seed():
    def run(seed):
        sim = Simulator(seed=seed)
        values = []
        for _ in range(50):
            sim.schedule(sim.jitter_ms(10.0) + 1.0, values.append,
                         sim.rng.random())
        sim.run_until_idle()
        return values

    assert run(7) == run(7)
    assert run(7) != run(8)


def test_runaway_loop_detection():
    sim = Simulator()

    def forever():
        sim.schedule(0.0, forever)

    sim.schedule(0.0, forever)
    with pytest.raises(SimulationError):
        sim.run_until(1.0, max_events=1000)


def test_jitter_bounds():
    sim = Simulator(seed=3)
    for _ in range(100):
        j = sim.jitter_ms(5.0)
        assert 0.0 <= j < 5.0
    assert sim.jitter_ms(0.0) == 0.0
    assert sim.jitter_ms(-1.0) == 0.0


def test_events_run_counter():
    sim = Simulator()
    for _ in range(5):
        sim.schedule(1.0, lambda: None)
    sim.run_until_idle()
    assert sim.events_run == 5
