"""Tests for the lockstep shard machinery (netsim/shard.py, parallel.py).

Three layers of coverage: pure window/partition math, the cross-shard
ship ordering contract, and whole-fleet determinism — two independent
K-shard runs and the 1-shard run of the same scenario must produce
identical results and merged counters.
"""

import pytest

from repro.errors import SimulationError
from repro.netsim import HostClass
from repro.netsim.datagram import DatagramTransport
from repro.netsim.network import Network
from repro.netsim.parallel import demo_scenario, identity_diff, run_scenario
from repro.netsim.shard import (
    ShardContext,
    ShardPlan,
    WorkerHarness,
    window_bounds,
    window_index_at,
)
from repro.netsim.simulator import Simulator


# ----------------------------------------------------------------------
# Window math
# ----------------------------------------------------------------------

class TestWindows:
    def test_bounds_are_half_open_grid(self):
        assert window_bounds(0.0, 5.0, 0) == (0.0, 5.0)
        assert window_bounds(0.0, 5.0, 3) == (15.0, 20.0)
        assert window_bounds(100.0, 2.5, 2) == (105.0, 107.5)

    def test_boundary_instant_belongs_to_later_window(self):
        # An event at exactly a window edge runs after the barrier has
        # applied ships landing on that edge.
        assert window_index_at(0.0, 5.0, 0.0) == 0
        assert window_index_at(0.0, 5.0, 4.999) == 0
        assert window_index_at(0.0, 5.0, 5.0) == 1
        assert window_index_at(0.0, 5.0, 10.0) == 2

    def test_index_respects_grid_anchor(self):
        assert window_index_at(50.0, 5.0, 57.0) == 1

    def test_time_before_anchor_rejected(self):
        with pytest.raises(SimulationError):
            window_index_at(50.0, 5.0, 49.9)

    def test_lookahead_comes_from_min_link_latency(self):
        sim = Simulator(seed=1)
        network = Network(sim)
        for name in ("a", "b", "c"):
            network.add_node(name, HostClass.VAX_750)
        network.add_link("a", "b", latency_ms=12.0)
        network.add_link("b", "c", latency_ms=5.0)
        assert network.min_link_latency_ms() == 5.0

    def test_attach_requires_positive_lookahead(self):
        # A linkless topology has no lookahead; lockstep would need
        # zero-length windows.  (Raises before any pipe traffic.)
        sim = Simulator(seed=1)
        network = Network(sim)
        network.add_node("a", HostClass.VAX_750)
        harness = WorkerHarness(2, 0, conn=None)
        with pytest.raises(SimulationError, match="lookahead"):
            harness.attach(network, "a")


# ----------------------------------------------------------------------
# The host partition
# ----------------------------------------------------------------------

class TestShardPlan:
    def test_round_robin_over_sorted_hosts(self):
        plan = ShardPlan(["d", "b", "a", "c"], 2)
        # Sorted order a,b,c,d dealt round-robin.
        assert plan.shard_of("a") == 0
        assert plan.shard_of("b") == 1
        assert plan.shard_of("c") == 0
        assert plan.shard_of("d") == 1

    def test_partition_is_disjoint_and_complete(self):
        hosts = ["h%02d" % i for i in range(17)]
        plan = ShardPlan(hosts, 4)
        owned = [plan.owned(i) for i in range(4)]
        flat = [h for part in owned for h in part]
        assert sorted(flat) == sorted(hosts)
        assert len(flat) == len(set(flat))

    def test_identical_for_any_insertion_order(self):
        hosts = ["h%02d" % i for i in range(9)]
        a = ShardPlan(hosts, 3)
        b = ShardPlan(list(reversed(hosts)), 3)
        assert all(a.shard_of(h) == b.shard_of(h) for h in hosts)

    def test_unknown_host_rejected(self):
        plan = ShardPlan(["a", "b"], 2)
        with pytest.raises(SimulationError, match="not part of the shard"):
            plan.shard_of("z")

    def test_zero_shards_rejected(self):
        with pytest.raises(SimulationError):
            ShardPlan(["a"], 0)


class TestOwnership:
    def _ctx(self, index):
        return ShardContext(ShardPlan(["a", "b", "c", "d"], 2), index)

    def test_owned_events_execute_on_owner_only(self):
        assert self._ctx(0).executes("a")
        assert not self._ctx(1).executes("a")

    def test_global_events_execute_everywhere_count_once(self):
        for index in (0, 1):
            assert self._ctx(index).executes(None)
        assert self._ctx(0).counts(None)
        assert not self._ctx(1).counts(None)

    def test_shared_events_execute_on_either_end(self):
        # ("a","b") spans both shards: both execute, only a's owner
        # charges the counters.
        for index in (0, 1):
            assert self._ctx(index).executes(("a", "b"))
        assert self._ctx(0).counts(("a", "b"))
        assert not self._ctx(1).counts(("a", "b"))


# ----------------------------------------------------------------------
# Cross-shard ship ordering
# ----------------------------------------------------------------------

class TestShipOrdering:
    def test_barrier_batch_sorts_by_arrival_src_seq(self):
        # The coordinator sorts each destination bucket by
        # (arrival, src_host, seq); whatever order sends happen in, the
        # receiver applies one canonical order.
        ctx = ShardContext(ShardPlan(["a", "b", "c", "d"], 2), 0)
        ctx.ship_datagram("b", "p", "late", 30.0, "a", None)
        ctx.ship_datagram("b", "p", "early", 10.0, "c", None)
        ctx.ship_datagram("b", "p", "tie-c", 20.0, "c", None)
        ctx.ship_datagram("b", "p", "tie-a", 20.0, "a", None)
        ships = ctx.take_outbound()
        assert len(ships) == 4
        assert ctx.outbound == []  # drained

        bucket = sorted(((key, payload)
                         for _dst, key, payload in ships),
                        key=lambda item: item[0])
        assert [payload[3] for _key, payload in bucket] == \
            ["early", "tie-a", "tie-c", "late"]

    def test_same_instant_same_src_preserves_send_order(self):
        ctx = ShardContext(ShardPlan(["a", "b"], 2), 0)
        for n in range(3):
            ctx.ship_datagram("b", "p", n, 7.0, "a", None)
        bucket = sorted(((key, payload)
                        for _dst, key, payload in ctx.take_outbound()),
                        key=lambda item: item[0])
        assert [payload[3] for _key, payload in bucket] == [0, 1, 2]

    def test_ships_route_to_destination_owner(self):
        plan = ShardPlan(["a", "b", "c", "d"], 2)
        ctx = ShardContext(plan, 0)
        ctx.ship_datagram("b", "p", "x", 5.0, "a", None)
        ctx.ship_datagram("d", "p", "y", 5.0, "c", None)
        destinations = [dst for dst, _key, _payload in ctx.take_outbound()]
        assert destinations == [plan.shard_of("b"), plan.shard_of("d")] \
            == [1, 1]


# ----------------------------------------------------------------------
# Fleet determinism
# ----------------------------------------------------------------------

class TestDeterminism:
    def test_two_shard_runs_and_local_run_identical(self):
        kwargs = dict(n_hosts=8, chats=12)
        local = run_scenario(demo_scenario, kwargs=kwargs, shards=1)
        first = run_scenario(demo_scenario, kwargs=kwargs, shards=2)
        second = run_scenario(demo_scenario, kwargs=kwargs, shards=2)

        # K-shard vs single-threaded: byte-identical modulo the
        # documented volatile counters.
        assert identity_diff(local, first) == []
        # K-shard vs K-shard: *everything* matches, volatile included —
        # the protocol itself is deterministic.
        assert first.result == second.result
        assert first.measure["counters"] == second.measure["counters"]
        assert first.barrier_rounds == second.barrier_rounds
        assert first.ships == second.ships
        assert first.ships > 0  # the demo actually crossed shards

    def test_three_shards_also_identical(self):
        kwargs = dict(n_hosts=8, chats=12)
        local = run_scenario(demo_scenario, kwargs=kwargs, shards=1)
        sharded = run_scenario(demo_scenario, kwargs=kwargs, shards=3)
        assert identity_diff(local, sharded) == []


def _reanchor_scenario(harness):
    """Regression for the window-cursor bug: an idle ``run_for`` under a
    distant timer fast-forwards the cursor far past the op target; the
    next op must re-anchor it or its first window spans the whole gap
    and cross-shard ships arrive into a worker's past."""
    sim = Simulator(seed=3)
    network = Network(sim)
    names = ["a", "b", "c", "d"]
    for name in names:
        network.add_node(name, HostClass.VAX_750)
    network.ethernet(names, latency_ms=5.0)
    datagrams = DatagramTransport(network)
    inbox = {name: [] for name in names}

    def on_b(payload, src):
        inbox["b"].append(payload)
        datagrams.send("b", src, "p", "pong")

    for name in names:
        if name == "b":
            datagrams.bind(name, "p", on_b)
        else:
            datagrams.bind(name, "p",
                           lambda payload, src, _n=name:
                           inbox[_n].append(payload))
    # The distant timer: far beyond every op target below.
    sim.schedule_at(600_000.0, lambda: None, owner="a", label="distant")

    harness.attach(network, "a")
    harness.begin_measure()
    harness.run_for(1_000.0)  # idle op: fast-forward chases the timer
    harness.call_on("a", lambda: datagrams.send("a", "b", "p", "ping"))
    found = harness.run_until_true(lambda: len(inbox["a"]) == 1,
                                   timeout_ms=60_000.0)
    total = harness.sum_hosts(lambda host: len(inbox[host]))
    harness.end_measure()
    result = {"found": found, "messages": total,
              "sim_ms": round(harness.now, 3)}
    harness.detach()
    return result


class TestPredicateStops:
    def test_reanchor_after_fast_forward(self):
        local = run_scenario(_reanchor_scenario, shards=1)
        sharded = run_scenario(_reanchor_scenario, shards=2)
        assert local.result["found"] is True
        assert local.result["messages"] == 2  # ping + pong
        assert identity_diff(local, sharded) == []

    def test_timed_out_predicate_lands_on_deadline(self):
        def scenario(harness):
            sim = Simulator(seed=5)
            network = Network(sim)
            for name in ("a", "b"):
                network.add_node(name, HostClass.VAX_750)
            network.add_link("a", "b", latency_ms=5.0)
            harness.attach(network, "a")
            harness.begin_measure()
            found = harness.run_until_true(lambda: False,
                                           timeout_ms=4_321.0)
            result = {"found": found, "sim_ms": round(harness.now, 3)}
            harness.end_measure()
            harness.detach()
            return result

        local = run_scenario(scenario, shards=1)
        sharded = run_scenario(scenario, shards=2)
        assert local.result == {"found": False, "sim_ms": 4321.0}
        assert identity_diff(local, sharded) == []


# ----------------------------------------------------------------------
# Identity diffing
# ----------------------------------------------------------------------

class _FakeOutcome:
    def __init__(self, result, counters):
        self.result = result
        self.measure = {"wall_s": 0.0, "counters": counters}


class TestIdentityDiff:
    def test_summed_group_accepts_offsetting_split(self):
        # The hit/recompute split moves with execution placement; only
        # the total is invariant.
        a = _FakeOutcome({}, {"hmac_computed": 5, "hmac_cache_hits": 1689})
        b = _FakeOutcome({}, {"hmac_computed": 0, "hmac_cache_hits": 1694})
        assert identity_diff(a, b) == []

    def test_summed_group_flags_total_divergence(self):
        a = _FakeOutcome({}, {"hmac_computed": 5, "hmac_cache_hits": 1689})
        b = _FakeOutcome({}, {"hmac_computed": 0, "hmac_cache_hits": 1693})
        diffs = identity_diff(a, b)
        assert len(diffs) == 1 and "hmac_verifies" in diffs[0]

    def test_volatile_counters_ignored_plain_ones_not(self):
        a = _FakeOutcome({"x": 1}, {"shard_windows": 9, "events_run": 10})
        b = _FakeOutcome({"x": 1}, {"shard_windows": 2, "events_run": 11})
        diffs = identity_diff(a, b)
        assert diffs == ["counter events_run: 10 != 11"]

    def test_result_keys_compared(self):
        a = _FakeOutcome({"x": 1, "y": 2}, {})
        b = _FakeOutcome({"x": 1, "y": 3}, {})
        assert identity_diff(a, b) == ["result['y']: 2 != 3"]
