"""Tests for topology, routing, partitions, and crashes."""

import pytest

from repro.errors import (
    NoSuchHostError,
    SimulationError,
    UnreachableHostError,
)
from repro.netsim import HostClass, Network, Simulator


def make_network(names=("a", "b", "c")):
    sim = Simulator()
    net = Network(sim)
    for name in names:
        net.add_node(name)
    return sim, net


def test_add_and_lookup_node():
    _, net = make_network()
    assert net.node("a").name == "a"
    with pytest.raises(NoSuchHostError):
        net.node("zz")


def test_duplicate_node_rejected():
    _, net = make_network()
    with pytest.raises(SimulationError):
        net.add_node("a")


def test_self_link_rejected():
    _, net = make_network()
    with pytest.raises(SimulationError):
        net.add_link("a", "a")


def test_path_on_chain():
    _, net = make_network()
    net.add_link("a", "b")
    net.add_link("b", "c")
    assert net.find_path("a", "c") == ["a", "b", "c"]
    assert net.find_path("a", "a") == ["a"]


def test_shortest_path_preferred():
    _, net = make_network(("a", "b", "c", "d"))
    net.add_link("a", "b")
    net.add_link("b", "c")
    net.add_link("c", "d")
    net.add_link("a", "d")
    assert net.find_path("a", "d") == ["a", "d"]


def test_no_path_when_disconnected():
    _, net = make_network()
    net.add_link("a", "b")
    assert net.find_path("a", "c") is None
    assert not net.reachable("a", "c")


def test_ethernet_builds_full_mesh():
    _, net = make_network(("a", "b", "c", "d"))
    net.ethernet(["a", "b", "c", "d"])
    assert len(net.links) == 6
    # Idempotent: no duplicate links.
    net.ethernet(["a", "b", "c", "d"])
    assert len(net.links) == 6


def test_transit_delay_includes_per_link_latency_and_bytes():
    _, net = make_network()
    net.add_link("a", "b", latency_ms=10.0, bandwidth_bytes_per_ms=100.0)
    net.add_link("b", "c", latency_ms=10.0, bandwidth_bytes_per_ms=100.0)
    # Two links: 2 * (10 + 200/100) = 24.
    assert net.transit_delay_ms("a", "c", 200) == pytest.approx(24.0)


def test_transit_raises_when_unreachable():
    _, net = make_network()
    with pytest.raises(UnreachableHostError):
        net.transit_delay_ms("a", "b", 10)


def test_crash_removes_paths_through_host():
    _, net = make_network()
    net.add_link("a", "b")
    net.add_link("b", "c")
    net.crash_host("b")
    assert not net.reachable("a", "c")
    assert not net.reachable("a", "b")
    net.revive_host("b")
    assert net.reachable("a", "c")


def test_partition_cuts_cross_group_links():
    _, net = make_network()
    net.ethernet(["a", "b", "c"])
    net.set_partition([{"a"}, {"b", "c"}])
    assert not net.reachable("a", "b")
    assert net.reachable("b", "c")
    net.heal_partition()
    assert net.reachable("a", "b")


def test_partition_remainder_forms_implicit_group():
    _, net = make_network(("a", "b", "c", "d"))
    net.ethernet(["a", "b", "c", "d"])
    net.set_partition([{"a", "b"}])
    assert net.reachable("a", "b")
    assert net.reachable("c", "d")
    assert not net.reachable("a", "c")


def test_overlapping_partition_groups_rejected():
    _, net = make_network()
    net.ethernet(["a", "b", "c"])
    with pytest.raises(SimulationError):
        net.set_partition([{"a", "b"}, {"b", "c"}])


def test_link_state_toggle():
    _, net = make_network()
    net.add_link("a", "b")
    net.set_link_state("a", "b", up=False)
    assert not net.reachable("a", "b")
    net.set_link_state("a", "b", up=True)
    assert net.reachable("a", "b")
    with pytest.raises(NoSuchHostError):
        net.set_link_state("a", "c", up=False)


def test_topology_listener_fires_on_changes():
    _, net = make_network()
    net.ethernet(["a", "b", "c"])
    calls = []
    net.add_topology_listener(lambda: calls.append(1))
    net.crash_host("a")
    net.revive_host("a")
    net.set_partition([{"a"}])
    net.heal_partition()
    assert len(calls) == 4


def test_node_host_class_recorded():
    sim = Simulator()
    net = Network(sim)
    node = net.add_node("sun", host_class=HostClass.SUN_2)
    assert node.host_class is HostClass.SUN_2


def test_services_register_and_unregister():
    _, net = make_network()
    node = net.node("a")
    node.listen("inetd", lambda ep, payload: None)
    assert "inetd" in node.services
    node.unlisten("inetd")
    assert "inetd" not in node.services
    node.unlisten("inetd")  # idempotent
