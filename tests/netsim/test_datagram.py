"""Tests for the datagram transport (the paper's scalability alternative)."""

from repro.netsim import DatagramTransport, Network, Simulator


def build():
    sim = Simulator()
    net = Network(sim)
    for name in ("a", "b"):
        net.add_node(name)
    net.ethernet(["a", "b"])
    return sim, net, DatagramTransport(net)


def test_send_and_receive():
    sim, net, dgram = build()
    received = []
    dgram.bind("b", "lpm", lambda payload, src: received.append((payload, src)))
    dgram.send("a", "b", "lpm", "ping")
    sim.run_for(1_000.0)
    assert received == [("ping", "a")]


def test_no_connection_state_kept():
    sim, net, dgram = build()
    dgram.bind("b", "lpm", lambda payload, src: None)
    for _ in range(10):
        dgram.send("a", "b", "lpm", "x")
    sim.run_for(1_000.0)
    assert net.open_connection_count() == 0
    assert net.stats.datagrams_sent == 10


def test_per_message_auth_cost_charged():
    sim, net, dgram = build()
    arrivals = []
    dgram.bind("b", "lpm", lambda payload, src: arrivals.append(sim.now_ms))
    dgram.send("a", "b", "lpm", "x", nbytes=112)
    sim.run_for(1_000.0)
    wire = net.transit_delay_ms("a", "b", 112)
    assert arrivals[0] >= wire + dgram.cost_model.datagram_auth_ms


def test_dropped_when_unreachable():
    sim, net, dgram = build()
    drops = []
    net.crash_host("b")
    dgram.send("a", "b", "lpm", "x", on_dropped=drops.append)
    sim.run_for(1_000.0)
    assert drops == ["unreachable"]
    assert net.stats.datagrams_dropped == 1


def test_dropped_when_host_dies_in_flight():
    sim, net, dgram = build()
    received = []
    dgram.bind("b", "lpm", lambda payload, src: received.append(payload))
    dgram.send("a", "b", "lpm", "x")
    net.crash_host("b")
    sim.run_for(1_000.0)
    assert received == []
    assert net.stats.datagrams_dropped == 1


def test_dropped_without_binding():
    sim, net, dgram = build()
    drops = []
    dgram.send("a", "b", "nobody-home", "x", on_dropped=drops.append)
    sim.run_for(1_000.0)
    assert drops == ["port unreachable"]


def test_unbind_stops_delivery():
    sim, net, dgram = build()
    received = []
    dgram.bind("b", "lpm", lambda payload, src: received.append(payload))
    dgram.unbind("b", "lpm")
    dgram.send("a", "b", "lpm", "x")
    sim.run_for(1_000.0)
    assert received == []
