"""Tests for reliable stream connections."""

import pytest

from repro.errors import ConnectionClosedError
from repro.netsim import Network, Simulator, StreamConnection


class Collector:
    """Records messages and close reasons for one endpoint."""

    def __init__(self):
        self.messages = []
        self.closes = []
        self.endpoint = None

    def attach(self, endpoint):
        self.endpoint = endpoint
        endpoint.on_message = lambda payload, ep: self.messages.append(payload)
        endpoint.on_close = lambda reason, ep: self.closes.append(reason)


def build(names=("a", "b", "c")):
    sim = Simulator()
    net = Network(sim)
    for name in names:
        net.add_node(name)
    net.ethernet(names)
    return sim, net


def open_pair(sim, net, src="a", dst="b", service="svc"):
    """Open a connection and return (client_collector, server_collector)."""
    client, server = Collector(), Collector()

    def acceptor(endpoint, payload):
        server.attach(endpoint)

    net.node(dst).listen(service, acceptor)
    StreamConnection.connect(net, src, dst, service,
                             on_established=client.attach)
    sim.run_until_true(lambda: client.endpoint is not None,
                       timeout_ms=10_000.0)
    assert client.endpoint is not None, "connection never established"
    return client, server


def test_connect_and_exchange_messages():
    sim, net = build()
    client, server = open_pair(sim, net)
    client.endpoint.send("hello", nbytes=64)
    server.endpoint.send("world", nbytes=64)
    sim.run_for(1_000.0)
    assert server.messages == ["hello"]
    assert client.messages == ["world"]


def test_connection_setup_takes_time():
    sim, net = build()
    established_at = []

    def acceptor(endpoint, payload):
        pass

    net.node("b").listen("svc", acceptor)
    StreamConnection.connect(
        net, "a", "b", "svc", setup_ms=100.0,
        on_established=lambda ep: established_at.append(sim.now_ms))
    sim.run_for(1_000.0)
    assert established_at and established_at[0] > 100.0


def test_messages_delivered_in_order():
    sim, net = build()
    client, server = open_pair(sim, net)
    # Later messages carry less extra delay; ordering must still hold.
    for i, extra in enumerate([50.0, 30.0, 10.0, 0.0]):
        client.endpoint.send(i, nbytes=32, extra_delay_ms=extra)
    sim.run_for(1_000.0)
    assert server.messages == [0, 1, 2, 3]


def test_connect_refused_without_service():
    sim, net = build()
    failures = []
    StreamConnection.connect(net, "a", "b", "missing",
                             on_failed=failures.append)
    sim.run_for(10_000.0)
    assert failures and "refused" in failures[0]


def test_connect_fails_when_unreachable():
    sim, net = build()
    net.crash_host("b")
    failures = []
    StreamConnection.connect(net, "a", "b", "svc",
                             on_failed=failures.append)
    sim.run_for(10_000.0)
    assert failures == ["unreachable"]


def test_payload_passed_to_acceptor():
    sim, net = build()
    received = []
    net.node("b").listen("svc",
                         lambda ep, payload: received.append(payload))
    StreamConnection.connect(net, "a", "b", "svc", payload={"user": "lfc"})
    sim.run_for(1_000.0)
    assert received == [{"user": "lfc"}]


def test_orderly_close_notifies_peer_only():
    sim, net = build()
    client, server = open_pair(sim, net)
    client.endpoint.close()
    sim.run_for(1_000.0)
    assert server.closes == ["closed"]
    assert client.closes == []  # the initiator asked; no callback
    assert not client.endpoint.open
    assert not server.endpoint.open


def test_send_after_close_raises():
    sim, net = build()
    client, server = open_pair(sim, net)
    client.endpoint.close()
    with pytest.raises(ConnectionClosedError):
        client.endpoint.send("late")


def test_crash_breaks_connection_after_detection_delay():
    sim, net = build()
    client, server = open_pair(sim, net)
    before = sim.now_ms
    net.crash_host("b")
    sim.run_for(10_000.0)
    assert client.closes == ["connection timed out"]
    # The crashed side hears nothing.
    assert server.closes == []
    assert net.stats.connections_broken == 1
    assert sim.now_ms > before


def test_partition_breaks_connection_and_heal_before_detection_saves_it():
    sim, net = build()
    client, server = open_pair(sim, net)
    net.set_partition([{"a"}, {"b", "c"}])
    # Heal before the detection delay (2000 ms) elapses.
    sim.run_for(100.0)
    net.heal_partition()
    sim.run_for(10_000.0)
    assert client.closes == []
    assert server.closes == []
    client.endpoint.send("still alive")
    sim.run_for(1_000.0)
    assert server.messages == ["still alive"]


def test_send_onto_dead_path_discovers_break_immediately():
    sim, net = build()
    client, server = open_pair(sim, net)
    net.set_partition([{"a"}, {"b", "c"}])
    with pytest.raises(ConnectionClosedError):
        client.endpoint.send("into the void")
    assert not client.endpoint.open


def test_messages_in_flight_lost_on_break():
    sim, net = build()
    client, server = open_pair(sim, net)
    client.endpoint.send("doomed", nbytes=64, extra_delay_ms=500.0)
    net.crash_host("b")
    sim.run_for(10_000.0)
    assert server.messages == []


def test_stats_count_messages_and_connections():
    sim, net = build()
    client, server = open_pair(sim, net)
    client.endpoint.send("x", nbytes=100)
    client.endpoint.send("y", nbytes=50)
    sim.run_for(1_000.0)
    assert net.stats.connections_opened == 1
    assert net.stats.stream_messages == 2
    assert net.stats.stream_bytes == 150
    assert net.open_connection_count() == 1
    client.endpoint.close()
    assert net.open_connection_count() == 0


def test_multihop_connection_survives_alternate_path():
    # a-b-c chain plus a-c direct: killing b must not break an a-c circuit.
    sim = Simulator()
    net = Network(sim)
    for name in ("a", "b", "c"):
        net.add_node(name)
    net.add_link("a", "b")
    net.add_link("b", "c")
    net.add_link("a", "c")
    client, server = open_pair(sim, net, src="a", dst="c")
    net.crash_host("b")
    sim.run_for(10_000.0)
    assert client.closes == []
    client.endpoint.send("rerouted")
    sim.run_for(1_000.0)
    assert server.messages == ["rerouted"]
