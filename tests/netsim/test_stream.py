"""Tests for reliable stream connections."""

import pytest

from repro.errors import ConnectionClosedError
from repro.netsim import Network, Simulator, StreamConnection
from repro.perf import PERF


class Collector:
    """Records messages and close reasons for one endpoint."""

    def __init__(self):
        self.messages = []
        self.closes = []
        self.endpoint = None

    def attach(self, endpoint):
        self.endpoint = endpoint
        endpoint.on_message = lambda payload, ep: self.messages.append(payload)
        endpoint.on_close = lambda reason, ep: self.closes.append(reason)


def build(names=("a", "b", "c")):
    sim = Simulator()
    net = Network(sim)
    for name in names:
        net.add_node(name)
    net.ethernet(names)
    return sim, net


def open_pair(sim, net, src="a", dst="b", service="svc"):
    """Open a connection and return (client_collector, server_collector)."""
    client, server = Collector(), Collector()

    def acceptor(endpoint, payload):
        server.attach(endpoint)

    net.node(dst).listen(service, acceptor)
    StreamConnection.connect(net, src, dst, service,
                             on_established=client.attach)
    sim.run_until_true(lambda: client.endpoint is not None,
                       timeout_ms=10_000.0)
    assert client.endpoint is not None, "connection never established"
    return client, server


def test_connect_and_exchange_messages():
    sim, net = build()
    client, server = open_pair(sim, net)
    client.endpoint.send("hello", nbytes=64)
    server.endpoint.send("world", nbytes=64)
    sim.run_for(1_000.0)
    assert server.messages == ["hello"]
    assert client.messages == ["world"]


def test_connection_setup_takes_time():
    sim, net = build()
    established_at = []

    def acceptor(endpoint, payload):
        pass

    net.node("b").listen("svc", acceptor)
    StreamConnection.connect(
        net, "a", "b", "svc", setup_ms=100.0,
        on_established=lambda ep: established_at.append(sim.now_ms))
    sim.run_for(1_000.0)
    assert established_at and established_at[0] > 100.0


def test_messages_delivered_in_order():
    sim, net = build()
    client, server = open_pair(sim, net)
    # Later messages carry less extra delay; ordering must still hold.
    for i, extra in enumerate([50.0, 30.0, 10.0, 0.0]):
        client.endpoint.send(i, nbytes=32, extra_delay_ms=extra)
    sim.run_for(1_000.0)
    assert server.messages == [0, 1, 2, 3]


def test_connect_refused_without_service():
    sim, net = build()
    failures = []
    StreamConnection.connect(net, "a", "b", "missing",
                             on_failed=failures.append)
    sim.run_for(10_000.0)
    assert failures and "refused" in failures[0]


def test_connect_fails_when_unreachable():
    sim, net = build()
    net.crash_host("b")
    failures = []
    StreamConnection.connect(net, "a", "b", "svc",
                             on_failed=failures.append)
    sim.run_for(10_000.0)
    assert failures == ["unreachable"]


def test_payload_passed_to_acceptor():
    sim, net = build()
    received = []
    net.node("b").listen("svc",
                         lambda ep, payload: received.append(payload))
    StreamConnection.connect(net, "a", "b", "svc", payload={"user": "lfc"})
    sim.run_for(1_000.0)
    assert received == [{"user": "lfc"}]


def test_orderly_close_notifies_peer_only():
    sim, net = build()
    client, server = open_pair(sim, net)
    client.endpoint.close()
    sim.run_for(1_000.0)
    assert server.closes == ["closed"]
    assert client.closes == []  # the initiator asked; no callback
    assert not client.endpoint.open
    assert not server.endpoint.open


def test_send_after_close_raises():
    sim, net = build()
    client, server = open_pair(sim, net)
    client.endpoint.close()
    with pytest.raises(ConnectionClosedError):
        client.endpoint.send("late")


def test_crash_breaks_connection_after_detection_delay():
    sim, net = build()
    client, server = open_pair(sim, net)
    before = sim.now_ms
    net.crash_host("b")
    sim.run_for(10_000.0)
    assert client.closes == ["connection timed out"]
    # The crashed side hears nothing.
    assert server.closes == []
    assert net.stats.connections_broken == 1
    assert sim.now_ms > before


def test_partition_breaks_connection_and_heal_before_detection_saves_it():
    sim, net = build()
    client, server = open_pair(sim, net)
    net.set_partition([{"a"}, {"b", "c"}])
    # Heal before the detection delay (2000 ms) elapses.
    sim.run_for(100.0)
    net.heal_partition()
    sim.run_for(10_000.0)
    assert client.closes == []
    assert server.closes == []
    client.endpoint.send("still alive")
    sim.run_for(1_000.0)
    assert server.messages == ["still alive"]


def test_send_onto_dead_path_discovers_break_immediately():
    sim, net = build()
    client, server = open_pair(sim, net)
    net.set_partition([{"a"}, {"b", "c"}])
    with pytest.raises(ConnectionClosedError):
        client.endpoint.send("into the void")
    assert not client.endpoint.open


def test_messages_in_flight_lost_on_break():
    sim, net = build()
    client, server = open_pair(sim, net)
    client.endpoint.send("doomed", nbytes=64, extra_delay_ms=500.0)
    net.crash_host("b")
    sim.run_for(10_000.0)
    assert server.messages == []


def test_stats_count_messages_and_connections():
    sim, net = build()
    client, server = open_pair(sim, net)
    client.endpoint.send("x", nbytes=100)
    client.endpoint.send("y", nbytes=50)
    sim.run_for(1_000.0)
    assert net.stats.connections_opened == 1
    assert net.stats.stream_messages == 2
    assert net.stats.stream_bytes == 150
    assert net.open_connection_count() == 1
    client.endpoint.close()
    assert net.open_connection_count() == 0


# ----------------------------------------------------------------------
# Batched per-direction delivery
# ----------------------------------------------------------------------

def test_burst_arrives_in_order_at_per_segment_times():
    # A back-to-back burst must arrive in order at exactly the arrival
    # times the seed's one-event-per-segment scheduler produced:
    # max(now + wire + extra, floor), floor advancing to each arrival.
    sim, net = build()
    client, server = open_pair(sim, net)
    deliveries = []
    server.endpoint.on_message = (
        lambda payload, ep: deliveries.append((payload, sim.now_ms)))
    extras = [0.0, 0.0, 40.0, 0.0, 15.0]
    wire = net.transit_delay_ms("a", "b", 32)
    t0 = sim.now_ms
    expected, floor = [], 0.0
    for i, extra in enumerate(extras):
        arrival = max(t0 + wire + extra, floor)
        floor = arrival
        expected.append((i, arrival))
    for i, extra in enumerate(extras):
        client.endpoint.send(i, nbytes=32, extra_delay_ms=extra)
    sim.run_until_idle()
    assert deliveries == expected


def test_burst_batches_into_one_event_per_arrival_group():
    sim, net = build()
    client, server = open_pair(sim, net)
    base = PERF.snapshot()
    # Two arrival groups: ten identical-time segments, then ten more
    # pushed 30 ms later by extra delay (the floor flattens each group).
    for i in range(20):
        client.endpoint.send(i, nbytes=32,
                             extra_delay_ms=30.0 if i >= 10 else 0.0)
    sim.run_until_idle()
    delta = PERF.delta_since(base)
    assert server.messages == list(range(20))
    assert delta["stream_batched_deliveries"] == 2
    assert delta["stream_segments_drained"] == 20
    assert delta["stream_timer_rearms"] == 1
    # One armed timer plus one re-arm, instead of twenty pushes.
    assert delta["events_scheduled"] == 2


def test_close_mid_burst_cancels_timer_and_drops_inflight():
    sim, net = build()
    client, server = open_pair(sim, net)
    for i in range(5):
        client.endpoint.send(i, nbytes=32)
    client.endpoint.close()
    assert len(sim.queue) == 0  # delivery timer cancelled, not leaked
    sim.run_until_idle()
    assert server.messages == []
    assert server.closes == ["closed"]


def test_break_mid_burst_cancels_timers_and_detection():
    sim, net = build()
    client, server = open_pair(sim, net)
    for i in range(5):
        client.endpoint.send(i, nbytes=32, extra_delay_ms=100.0)
    net.set_partition([{"a"}, {"b", "c"}])  # arms the detect-break timer
    with pytest.raises(ConnectionClosedError):
        client.endpoint.send("reset", nbytes=32)  # immediate break
    # The immediate break must cancel the delivery timer AND the pending
    # detect-break timer, leaving no stale bookkeeping.
    conn = client.endpoint.conn
    assert not conn._break_scheduled
    assert conn._detect_timer is None
    assert len(sim.queue) == 0
    sim.run_until_idle()
    assert server.messages == []


def test_rebroken_path_after_immediate_break_still_detects():
    # Regression for the stale-_break_scheduled bug: an immediate break
    # while a detect-break timer was pending must not leave state that
    # lets a later healed-then-rebroken circuit skip detection.
    sim, net = build()
    client, server = open_pair(sim, net)
    net.set_partition([{"a"}, {"b", "c"}])
    with pytest.raises(ConnectionClosedError):
        client.endpoint.send("reset")
    net.heal_partition()
    sim.run_for(5_000.0)
    # A fresh circuit over the healed path must get its own detection.
    client2, server2 = open_pair(sim, net)
    net.set_partition([{"a"}, {"b", "c"}])
    sim.run_for(10_000.0)
    assert client2.closes == ["connection timed out"]


def test_host_down_between_arm_and_fire_suppresses_delivery():
    sim, net = build()
    client, server = open_pair(sim, net)
    client.endpoint.send("lost", nbytes=32, extra_delay_ms=200.0)
    net.crash_host("b")  # down before the armed timer fires
    sim.run_for(500.0)   # past the arrival, before the detection delay
    assert server.messages == []
    assert net.stats.stream_deliveries_suppressed == 1
    net.revive_host("b")
    sim.run_for(5_000.0)
    assert client.closes == []  # healed before detection broke it
    client.endpoint.send("after revival", nbytes=32)
    sim.run_for(1_000.0)
    assert server.messages == ["after revival"]


def test_close_during_drain_stops_remaining_same_time_segments():
    sim, net = build()
    client, server = open_pair(sim, net)

    def close_after_first(payload, endpoint):
        server.messages.append(payload)
        endpoint.close()

    server.endpoint.on_message = close_after_first
    for i in range(4):
        client.endpoint.send(i, nbytes=32)  # one arrival group of four
    sim.run_until_idle()
    # The close inside the drain flushes the rest of the batch: the
    # remaining same-instant segments are lost, never delivered.
    assert server.messages == [0]
    assert len(sim.queue) == 0


def test_multihop_connection_survives_alternate_path():
    # a-b-c chain plus a-c direct: killing b must not break an a-c circuit.
    sim = Simulator()
    net = Network(sim)
    for name in ("a", "b", "c"):
        net.add_node(name)
    net.add_link("a", "b")
    net.add_link("b", "c")
    net.add_link("a", "c")
    client, server = open_pair(sim, net, src="a", dst="c")
    net.crash_host("b")
    sim.run_for(10_000.0)
    assert client.closes == []
    client.endpoint.send("rerouted")
    sim.run_for(1_000.0)
    assert server.messages == ["rerouted"]
