"""Tests for the calibrated latency model (Table 1 anchors)."""

import pytest

from repro.errors import ConfigError
from repro.netsim import (
    DEFAULT_COST_MODEL,
    HostClass,
    kernel_message_delay_ms,
    load_factor,
)


# Band midpoints and the paper's Table 1 values.
TABLE1 = [
    (HostClass.VAX_780, 0.5, 7.2),
    (HostClass.VAX_780, 1.5, 9.8),
    (HostClass.VAX_780, 2.5, 13.6),
    (HostClass.VAX_750, 0.5, 7.2),
    (HostClass.VAX_750, 1.5, 9.6),
    (HostClass.VAX_750, 2.5, 12.8),
    (HostClass.VAX_750, 3.5, 18.9),
    (HostClass.SUN_2, 0.5, 8.31),
    (HostClass.SUN_2, 1.5, 14.13),
    (HostClass.SUN_2, 2.5, 22.0),
    (HostClass.SUN_2, 3.5, 42.7),
]


@pytest.mark.parametrize("host_class,load,expected", TABLE1)
def test_anchors_reproduce_table1(host_class, load, expected):
    assert kernel_message_delay_ms(host_class, load) == pytest.approx(expected)


def test_delay_monotonic_in_load():
    for host_class in HostClass:
        previous = 0.0
        for load in [0.0, 0.5, 1.0, 1.7, 2.4, 3.0, 3.9, 5.0]:
            current = kernel_message_delay_ms(host_class, load)
            assert current >= previous
            previous = current


def test_sun2_slower_than_vaxes_at_all_loads():
    for load in [0.5, 1.5, 2.5, 3.5]:
        sun = kernel_message_delay_ms(HostClass.SUN_2, load)
        assert sun > kernel_message_delay_ms(HostClass.VAX_780, load)
        assert sun > kernel_message_delay_ms(HostClass.VAX_750, load)


def test_light_load_clamps_to_first_anchor():
    assert kernel_message_delay_ms(HostClass.VAX_780, 0.0) == pytest.approx(7.2)
    assert kernel_message_delay_ms(HostClass.VAX_780, 0.3) == pytest.approx(7.2)


def test_extrapolation_beyond_last_band():
    heavy = kernel_message_delay_ms(HostClass.SUN_2, 5.0)
    assert heavy > 42.7


def test_negative_load_rejected():
    with pytest.raises(ConfigError):
        kernel_message_delay_ms(HostClass.VAX_780, -0.1)


def test_message_size_scales_copy_cost():
    base = kernel_message_delay_ms(HostClass.VAX_780, 0.5, size_bytes=112)
    double = kernel_message_delay_ms(HostClass.VAX_780, 0.5, size_bytes=224)
    half = kernel_message_delay_ms(HostClass.VAX_780, 0.5, size_bytes=56)
    assert half < base < double
    # Only the copy share scales, so doubling size does not double cost.
    assert double < 2 * base


def test_load_factor_normalised_at_light_load():
    for host_class in HostClass:
        assert load_factor(host_class, 0.5) == pytest.approx(1.0)
        assert load_factor(host_class, 0.0) == pytest.approx(1.0)


def test_load_factor_grows_faster_on_sun2():
    # Table 1: the SUN II degrades much faster under load.
    assert load_factor(HostClass.SUN_2, 3.5) > load_factor(
        HostClass.VAX_780, 3.5)


class TestCostModelCalibration:
    """The Table 2 identities the constants were solved from."""

    def test_within_host_stop(self):
        m = DEFAULT_COST_MODEL
        total = 2 * m.tool_ipc_ms + m.signal_ms
        assert total == pytest.approx(30.0)

    def test_within_host_create(self):
        m = DEFAULT_COST_MODEL
        total = 2 * m.tool_ipc_ms + m.fork_ms + m.exec_ms + m.adopt_ms
        assert total == pytest.approx(77.0)

    def test_one_hop_stop(self):
        # Request and reply each cross one overlay hop; the blocking
        # request occupies a (warm) handler.
        m = DEFAULT_COST_MODEL
        total = (2 * m.tool_ipc_ms + m.handler_reuse_ms
                 + 2 * m.sibling_one_way_ms(1) + m.signal_ms)
        assert total == pytest.approx(199.0)

    def test_two_hop_stop(self):
        m = DEFAULT_COST_MODEL
        total = (2 * m.tool_ipc_ms + m.handler_reuse_ms
                 + 2 * m.sibling_one_way_ms(2) + m.signal_ms)
        assert total == pytest.approx(210.0)

    def test_remote_create_matches_section8(self):
        # "Remote process creation, once a connection between sibling
        # managers exist, takes 177 milliseconds under lightly loaded
        # conditions."
        m = DEFAULT_COST_MODEL
        total = (2 * m.tool_ipc_ms + m.handler_reuse_ms
                 + 2 * m.sibling_one_way_ms(1) + m.server_fork_ms)
        assert total == pytest.approx(177.0)

    def test_hops_must_be_positive(self):
        with pytest.raises(ConfigError):
            DEFAULT_COST_MODEL.sibling_one_way_ms(0)

    def test_wire_cost_is_positive(self):
        # wire_ms is the default Ethernet link latency, which in turn is
        # the lockstep shard scheduler's lookahead — zero would make
        # conservative windows degenerate.
        assert DEFAULT_COST_MODEL.wire_ms > 0.0

    def test_each_extra_hop_adds_wire_plus_forward(self):
        m = DEFAULT_COST_MODEL
        delta = m.sibling_one_way_ms(3) - m.sibling_one_way_ms(2)
        assert delta == pytest.approx(m.wire_ms + m.forward_ms)

    def test_send_recv_factors_scale_endpoint_shares_only(self):
        m = DEFAULT_COST_MODEL
        base = m.sibling_one_way_ms(1)
        heavy = m.sibling_one_way_ms(1, send_factor=2.0, recv_factor=3.0)
        assert heavy - base == pytest.approx(
            m.sibling_send_ms + 2 * m.sibling_recv_ms)

    def test_datagram_auth_charge_is_positive(self):
        # Section 3's trade-off only exists if per-message
        # authentication actually costs something.
        assert DEFAULT_COST_MODEL.datagram_auth_ms > 0.0
