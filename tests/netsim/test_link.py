"""Direct tests for the link model."""

import pytest

from repro.netsim.link import Link


def test_endpoints_and_other():
    link = Link("a", "b")
    assert link.endpoints() == frozenset(("a", "b"))
    assert link.other("a") == "b"
    assert link.other("b") == "a"
    with pytest.raises(ValueError):
        link.other("c")
    assert link.connects("a") and not link.connects("c")


def test_transfer_delay_combines_latency_and_serialisation():
    link = Link("a", "b", latency_ms=10.0, bandwidth_bytes_per_ms=100.0)
    assert link.transfer_delay_ms(0) == pytest.approx(10.0)
    assert link.transfer_delay_ms(500) == pytest.approx(15.0)


def test_usable_requires_up_and_unpartitioned():
    link = Link("a", "b")
    assert link.usable
    link.partitioned = True
    assert not link.usable
    link.partitioned = False
    link.up = False
    assert not link.usable


def test_default_bandwidth_is_ethernet_scale():
    # 10 Mb/s Ethernet moves ~1250 bytes per millisecond.
    link = Link("a", "b")
    delay_per_kb = link.transfer_delay_ms(1250) - link.latency_ms
    assert delay_per_kb == pytest.approx(1.0)
