"""Tests for the command-line interface."""

import io
import subprocess
import sys

import pytest

from repro.cli import main


def test_version(capsys):
    assert main(["version"]) == 0
    out = capsys.readouterr().out
    assert "repro" in out
    assert "ICDCS 1986" in out


def test_no_command_prints_help(capsys):
    assert main([]) == 2
    assert "demo" in capsys.readouterr().out


def test_demo_runs(capsys):
    assert main(["demo", "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "snapshot at" in out
    assert "Exited process resource consumption" in out
    assert "(stopped)" in out


def test_demo_deterministic(capsys):
    main(["demo", "--seed", "5"])
    first = capsys.readouterr().out
    main(["demo", "--seed", "5"])
    second = capsys.readouterr().out
    assert first == second


def test_shell_scripted(capsys):
    import repro.cli as cli

    script = io.StringIO(
        "create ucbarpa job spinner\n"
        "run 1000\n"
        "run bogus\n"
        "snapshot\n"
        "quit\n")
    parser_args = type("Args", (), {"seed": 2, "input": script})
    assert cli.cmd_shell(parser_args) == 0
    out = capsys.readouterr().out
    assert "created <ucbarpa," in out
    assert "advanced to" in out
    assert "usage: run <ms>" in out
    assert "job" in out


def test_stats_prints_counters_and_percentiles(capsys):
    assert main(["stats", "--seed", "4"]) == 0
    out = capsys.readouterr().out
    assert "perf counters" in out
    assert "latency histograms (simulated ms)" in out
    for op in ("rpc_rtt", "broadcast_settle", "gather_complete",
               "stream_lag", "tool_call"):
        assert op in out
    assert "p95_ms" in out


def test_stats_latency_deterministic(capsys):
    # The counter table can differ across in-process reruns (the
    # process-global hmac memo survives PERF.reset), but the simulated
    # latency percentiles must reproduce exactly.
    marker = "latency histograms"
    main(["stats", "--seed", "6"])
    first = capsys.readouterr().out
    main(["stats", "--seed", "6"])
    second = capsys.readouterr().out
    assert marker in first
    assert first[first.index(marker):] == second[second.index(marker):]


def test_trace_writes_loadable_chrome_json(tmp_path, capsys):
    import json

    out_path = tmp_path / "trace.json"
    assert main(["trace", "--seed", "4", "--out", str(out_path)]) == 0
    assert "wrote" in capsys.readouterr().out
    trace = json.loads(out_path.read_text(encoding="utf-8"))
    events = trace["traceEvents"]
    assert events
    assert trace["otherData"]["clock"] == "simulated"
    hosts = {e["args"]["name"] for e in events
             if e["ph"] == "M" and e["name"] == "process_name"}
    assert {"ucbvax", "ucbarpa"} <= hosts
    assert any(e["ph"] == "X" for e in events)


def test_module_entry_point():
    result = subprocess.run(
        [sys.executable, "-m", "repro", "version"],
        capture_output=True, text=True, timeout=60)
    assert result.returncode == 0
    assert "repro" in result.stdout


def test_stats_prints_operational_alerts_section(capsys):
    assert main(["stats", "--seed", "4"]) == 0
    assert "operational alerts" in capsys.readouterr().out


def test_doctor_healthy_netsim_exits_zero(capsys):
    assert main(["doctor", "--seed", "2"]) == 0
    out = capsys.readouterr().out
    assert "doctor: healthy (exit 0)" in out
    assert "daemon-liveness" in out


def test_doctor_injected_dead_host_exits_ten(capsys):
    code = main(["doctor", "--seed", "2", "--inject", "dead-host"])
    assert code == 10
    out = capsys.readouterr().out
    assert "first failing check 'daemon-liveness' (exit 10)" in out
    # The injected crash also latches the host-down ops trigger.
    assert "ops:host-down" in out


def test_doctor_json_report(capsys):
    import json

    assert main(["doctor", "--seed", "2", "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["ok"] is True
    assert report["backend"] == "netsim"
    names = [check["name"] for check in report["checks"]]
    assert "daemon-liveness" in names and "trigger-alerts" in names


def test_doctor_baseline_roundtrip(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    assert main(["doctor", "--seed", "2",
                 "--write-baseline", str(baseline)]) == 0
    assert "wrote baseline" in capsys.readouterr().out
    assert main(["doctor", "--seed", "2",
                 "--baseline", str(baseline)]) == 0
    assert "p99 within" in capsys.readouterr().out


def test_watch_healthy_netsim_exits_zero(capsys):
    assert main(["watch", "--seed", "2", "--max-sweeps", "3"]) == 0
    out = capsys.readouterr().out
    assert "watching netsim demo world" in out
    assert "watch complete: 3 sweeps, 0 edges, 0 open incident(s)" in out


def test_watch_dead_host_drill_journals_one_incident(tmp_path, capsys):
    import json

    journal = tmp_path / "journal.jsonl"
    code = main(["watch", "--seed", "2", "--inject", "dead-host",
                 "--journal", str(journal),
                 "--checks", "daemon-liveness"])
    out = capsys.readouterr().out
    assert code == 0, "drill recovers, so the watch must exit clean"
    assert "drill: crashed ucbernie" in out
    assert "drill: rebooted ucbernie" in out
    assert "ONSET daemon-liveness (ucbernie) exit 10" in out
    assert "CLEAR daemon-liveness (ucbernie) exit 0" in out
    records = [json.loads(line) for line in
               journal.read_text(encoding="utf-8").splitlines()]
    assert records[0]["kind"] == "watch-start"
    edges = [(r["check"], r["edge"]) for r in records
             if r["kind"] == "incident"]
    assert edges == [("daemon-liveness", "onset"),
                     ("daemon-liveness", "clear")]


def test_watch_unrecovered_incident_names_the_exit(capsys):
    # Crash at sweep 2, but stop watching before the reboot sweep:
    # the open daemon-liveness incident sets the exit code.
    code = main(["watch", "--seed", "2", "--inject", "dead-host",
                 "--max-sweeps", "4", "--checks", "daemon-liveness"])
    assert code == 10
    assert "1 open incident(s)" in capsys.readouterr().out


def test_watch_then_incidents_roundtrip(tmp_path, capsys):
    journal = tmp_path / "journal.jsonl"
    main(["watch", "--seed", "2", "--inject", "dead-host",
          "--journal", str(journal), "--checks", "daemon-liveness"])
    capsys.readouterr()
    assert main(["incidents", str(journal)]) == 0
    out = capsys.readouterr().out
    assert "incident timeline" in out
    assert "mean time to recovery" in out
    assert "daemon-liveness" in out


def test_incidents_json_mode(tmp_path, capsys):
    import json

    journal = tmp_path / "journal.jsonl"
    main(["watch", "--seed", "2", "--inject", "dead-host",
          "--journal", str(journal), "--checks", "daemon-liveness"])
    capsys.readouterr()
    assert main(["incidents", str(journal), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["mttr"]["daemon-liveness"]["onsets"] == 1
    assert payload["mttr"]["daemon-liveness"]["mttr_ms"] > 0
