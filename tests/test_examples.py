"""Smoke tests: every example script runs to completion."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "examples")

SIM_EXAMPLES = ["quickstart.py", "distributed_build.py",
                "crash_recovery.py", "session_persistence.py",
                "resilient_service.py", "ipc_pipeline.py",
                "doctor_demo.py"]


def run_example(name, timeout=180):
    return subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, name)],
        capture_output=True, text=True, timeout=timeout)


@pytest.mark.parametrize("name", SIM_EXAMPLES)
def test_simulated_example_runs(name):
    result = run_example(name)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip()


def test_quickstart_output_shape():
    result = run_example("quickstart.py")
    assert "snapshot at" in result.stdout
    assert "<ucbarpa," in result.stdout
    assert "Exited process resource consumption" in result.stdout


def test_crash_recovery_output_shape():
    result = run_example("crash_recovery.py")
    assert "ccs_assumed" in result.stdout
    assert "ccs_relinquished" in result.stdout
    assert "time_to_die_armed" in result.stdout


@pytest.mark.skipif(not os.path.isdir("/proc"),
                    reason="requires a Linux /proc")
def test_real_processes_example_runs():
    result = run_example("real_processes.py")
    assert result.returncode == 0, result.stderr[-2000:]
    assert "genealogical snapshot" in result.stdout
    assert "coordinator" in result.stdout
    # Part 2: the distributed PPM over real TCP.
    assert "across a machine boundary" in result.stdout
    assert "cross-host genealogical snapshot" in result.stdout
    assert "fleet torn down" in result.stdout


def test_doctor_demo_output_shape():
    result = run_example("doctor_demo.py")
    assert "doctor: healthy (exit 0)" in result.stdout
    assert "first failing check 'daemon-liveness' (exit 10)" in result.stdout
    assert "ops:host-down" in result.stdout
    assert "orphan-processes    FAIL" in result.stdout
