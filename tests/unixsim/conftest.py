"""Shared fixtures for the unixsim tests."""

import pytest

from repro.netsim import HostClass
from repro.unixsim import World


@pytest.fixture
def world():
    w = World(seed=42)
    w.add_host("alpha", HostClass.VAX_780)
    w.add_host("beta", HostClass.VAX_750)
    w.add_host("gamma", HostClass.SUN_2)
    w.ethernet()
    w.add_user("lfc", 1001)
    w.add_user("ramon", 1002)
    return w


@pytest.fixture
def alpha(world):
    return world.host("alpha")
