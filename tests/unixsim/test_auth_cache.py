"""The pmd's memoised authentication (multi-tenant login waves).

A login wave dials every sibling pair through the home host's pmd;
without memoisation each dial re-reads ``.rhosts`` and re-compares
password files.  The cache is keyed on ``(user, origin_host,
origin_user)`` and guarded by an *incarnation* tuple — the local
filesystem and password-file versions plus the origin host's
password-file version — so any change to an input of the decision
invalidates the entry.  Only positive verdicts are memoised.
"""

import pytest

from repro.errors import AuthenticationError
from repro.perf import PERF


@pytest.fixture
def pmd(world):
    return world.host("alpha").ensure_pmd()


class TestMemoisation:
    def test_repeat_check_hits_the_cache(self, pmd):
        before = PERF.auth_cache_hits
        pmd._authenticate("lfc", "beta", "lfc")
        assert PERF.auth_cache_hits == before  # first check is a miss
        pmd._authenticate("lfc", "beta", "lfc")
        pmd._authenticate("lfc", "beta", "lfc")
        assert PERF.auth_cache_hits == before + 2

    def test_distinct_keys_do_not_collide(self, pmd):
        before = PERF.auth_cache_hits
        pmd._authenticate("lfc", "beta", "lfc")
        pmd._authenticate("lfc", "gamma", "lfc")
        pmd._authenticate("ramon", "beta", "ramon")
        assert PERF.auth_cache_hits == before

    def test_failures_are_not_memoised(self, world, pmd):
        before = PERF.auth_cache_hits
        with pytest.raises(AuthenticationError):
            pmd._authenticate("lfc", "beta", "ramon")
        # Permission granted after the failure must take effect at once:
        # a memoised refusal would mask the fresh ``.rhosts`` grant.
        world.host("alpha").fs.write_rhosts("lfc", ["beta ramon"])
        pmd._authenticate("lfc", "beta", "ramon")
        assert PERF.auth_cache_hits == before


class TestInvalidation:
    def test_local_password_file_change_invalidates(self, world, pmd):
        pmd._authenticate("lfc", "beta", "lfc")
        world.host("alpha").users.version += 1
        before = PERF.auth_cache_hits
        pmd._authenticate("lfc", "beta", "lfc")
        assert PERF.auth_cache_hits == before  # re-checked, not served

    def test_local_fs_change_invalidates(self, world, pmd):
        pmd._authenticate("lfc", "beta", "lfc")
        world.host("alpha").fs.write("/tmp/anything", "x")
        before = PERF.auth_cache_hits
        pmd._authenticate("lfc", "beta", "lfc")
        assert PERF.auth_cache_hits == before

    def test_origin_password_file_change_invalidates(self, world, pmd):
        pmd._authenticate("lfc", "beta", "lfc")
        world.host("beta").users.version += 1
        before = PERF.auth_cache_hits
        pmd._authenticate("lfc", "beta", "lfc")
        assert PERF.auth_cache_hits == before

    def test_revoked_rhosts_grant_is_honoured(self, world, pmd):
        world.host("alpha").fs.write_rhosts("lfc", ["beta ramon"])
        pmd._authenticate("lfc", "beta", "ramon")
        # Revoking the grant bumps fs.version, so the cached positive
        # verdict dies with it and the next check refuses.
        world.host("alpha").fs.write_rhosts("lfc", [])
        with pytest.raises(AuthenticationError):
            pmd._authenticate("lfc", "beta", "ramon")
