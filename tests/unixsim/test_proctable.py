"""Tests for the process table: pid allocation, wrap-around, lookups."""

import pytest

from repro.errors import NoSuchProcessError, SimulationError
from repro.unixsim import Process, ProcState
from repro.unixsim.proctable import PID_MAX, ProcessTable


def proc(pid, uid=1001, state=ProcState.RUNNING):
    return Process(pid=pid, ppid=1, uid=uid, command="x", state=state)


def test_allocate_monotonic():
    table = ProcessTable()
    first = table.allocate_pid()
    table.insert(proc(first))
    second = table.allocate_pid()
    assert second == first + 1


def test_allocator_skips_in_use_pids():
    table = ProcessTable()
    table.insert(proc(1))
    table.insert(proc(2))
    table._next_pid = 2
    pid = table.allocate_pid()
    assert pid == 3


def test_wraps_at_pid_max_preserving_init():
    table = ProcessTable()
    table.insert(proc(1))  # init
    table._next_pid = PID_MAX
    pid = table.allocate_pid()
    assert pid == PID_MAX
    # The next allocation wraps to 2, never recycling pid 1.
    next_pid = table.allocate_pid()
    assert next_pid == 2


def test_full_table_raises():
    table = ProcessTable()
    for pid in range(1, PID_MAX + 1):
        table._procs[pid] = proc(pid)
    with pytest.raises(SimulationError):
        table.allocate_pid()


def test_duplicate_insert_rejected():
    table = ProcessTable()
    table.insert(proc(5))
    with pytest.raises(SimulationError):
        table.insert(proc(5))


def test_get_and_find():
    table = ProcessTable()
    table.insert(proc(5))
    assert table.get(5).pid == 5
    assert table.find(6) is None
    with pytest.raises(NoSuchProcessError):
        table.get(6)


def test_by_uid_and_alive():
    table = ProcessTable()
    table.insert(proc(1, uid=0))
    table.insert(proc(2, uid=1001))
    table.insert(proc(3, uid=1001, state=ProcState.ZOMBIE))
    assert {p.pid for p in table.by_uid(1001)} == {2, 3}
    assert {p.pid for p in table.alive_by_uid(1001)} == {2}


def test_running_count_excludes_non_runnable():
    table = ProcessTable()
    table.insert(proc(1, state=ProcState.RUNNING))
    table.insert(proc(2, state=ProcState.SLEEPING))
    table.insert(proc(3, state=ProcState.STOPPED))
    assert table.running_count() == 1


def test_children_and_zombies():
    table = ProcessTable()
    parent = proc(1)
    parent.children = [2, 3, 99]  # 99 is gone
    table.insert(parent)
    table.insert(proc(2))
    table.insert(proc(3, state=ProcState.ZOMBIE))
    assert {p.pid for p in table.children_of(1)} == {2, 3}
    assert [p.pid for p in table.zombies_of(1)] == [3]
    assert table.children_of(404) == []


def test_iteration_is_snapshot_safe():
    table = ProcessTable()
    table.insert(proc(1))
    table.insert(proc(2))
    for p in table:
        table.remove(p.pid)  # must not blow up mid-iteration
    assert len(table) == 0
