"""Edge cases for inetd request handling."""

import pytest

from repro.netsim import StreamConnection
from repro.unixsim.inetd import INETD_SERVICE


def ask(world, payload):
    replies = []

    def established(endpoint):
        endpoint.on_message = lambda data, ep: replies.append(data)

    StreamConnection.connect(world.network, "alpha", "alpha",
                             INETD_SERVICE, payload=payload,
                             on_established=established)
    world.run_for(30_000.0)
    return replies


def test_non_dict_request_rejected(world):
    replies = ask(world, "GET / HTTP/1.0")
    assert replies and not replies[0]["ok"]
    assert "bad request" in replies[0]["error"]


def test_missing_service_field_rejected(world):
    replies = ask(world, {"user": "lfc"})
    assert replies and not replies[0]["ok"]


def test_request_counter_increments(world):
    inetd = world.host("alpha").inetd
    before = inetd.requests_served
    ask(world, {"service": "ppm", "user": "lfc",
                "origin_host": "alpha", "origin_user": "lfc"})
    assert inetd.requests_served == before + 1


def test_inetd_survives_requests_during_light_load(world, alpha):
    # Two concurrent bootstrap requests for the same user yield one LPM.
    from repro import install
    install(world)
    results = []
    for _ in range(2):
        def established(endpoint):
            endpoint.on_message = lambda data, ep: results.append(data)

        StreamConnection.connect(
            world.network, "alpha", "alpha", INETD_SERVICE,
            payload={"service": "ppm", "user": "lfc",
                     "origin_host": "alpha", "origin_user": "lfc"},
            on_established=established)
    world.run_for(60_000.0)
    assert len(results) == 2
    assert all(reply["ok"] for reply in results)
    services = {reply["accept_service"] for reply in results}
    assert len(services) == 1  # the race resolved to one LPM
    assert alpha.pmd_daemon.creations == 1
