"""Tests for signal numbering and default actions."""

from repro.unixsim import Signal, SignalAction, default_action
from repro.unixsim.signals import UNCATCHABLE


def test_bsd_numbering():
    assert Signal.SIGKILL == 9
    assert Signal.SIGTERM == 15
    assert Signal.SIGSTOP == 17
    assert Signal.SIGCONT == 19


def test_default_actions():
    assert default_action(Signal.SIGKILL) is SignalAction.TERMINATE
    assert default_action(Signal.SIGTERM) is SignalAction.TERMINATE
    assert default_action(Signal.SIGSTOP) is SignalAction.STOP
    assert default_action(Signal.SIGTSTP) is SignalAction.STOP
    assert default_action(Signal.SIGCONT) is SignalAction.CONTINUE
    assert default_action(Signal.SIGCHLD) is SignalAction.IGNORE


def test_every_signal_has_an_action():
    for signal in Signal:
        assert default_action(signal) is not None


def test_kill_and_stop_are_uncatchable():
    assert Signal.SIGKILL in UNCATCHABLE
    assert Signal.SIGSTOP in UNCATCHABLE
    assert Signal.SIGTERM not in UNCATCHABLE
