"""Tests for user-level IPC (4.3BSD sockets between arbitrary
processes) and the talker/echo workload programs."""

import pytest

from repro.errors import NoSuchProcessError
from repro.ids import GlobalPid
from repro.tracing import TraceEventType
from repro.tracing.ipc import render_user_ipc, user_ipc_matrix
from repro.unixsim import EchoProgram, TalkerProgram


def gpid_of(host, proc):
    return GlobalPid(host.name, proc.pid)


def start_echo(world, host_name="alpha", user="lfc"):
    host = world.host(host_name)
    program = EchoProgram(None)
    proc = host.spawn_user_process(user, "echo-server", program=program)
    return gpid_of(host, proc), program, proc


def test_cross_host_conversation(world):
    server_gpid, server_prog, _server = start_echo(world, "alpha")
    beta = world.host("beta")
    talker_prog = TalkerProgram(server_gpid, interval_ms=100.0, count=5)
    beta.spawn_user_process("lfc", "talker", program=talker_prog)
    world.run_for(5_000.0)
    assert server_prog.messages_echoed == 5
    assert talker_prog.replies_seen == 5


def test_no_common_ancestor_and_different_users(world):
    # ramon's process talks to lfc's: IPC needs no shared ancestry and
    # no shared uid (section 1).
    server_gpid, server_prog, server = start_echo(world, "alpha",
                                                  user="lfc")
    gamma = world.host("gamma")
    talker_prog = TalkerProgram(server_gpid, interval_ms=50.0, count=3)
    talker = gamma.spawn_user_process("ramon", "talker",
                                      program=talker_prog)
    world.run_for(3_000.0)
    assert server_prog.messages_echoed == 3
    assert server.uid != talker.uid


def test_same_host_loopback(world):
    server_gpid, server_prog, _server = start_echo(world, "alpha")
    alpha = world.host("alpha")
    talker_prog = TalkerProgram(server_gpid, interval_ms=10.0, count=4)
    alpha.spawn_user_process("lfc", "talker", program=talker_prog)
    world.run_for(2_000.0)
    assert server_prog.messages_echoed == 4


def test_messages_counted_in_rusage(world):
    server_gpid, _server_prog, server = start_echo(world, "alpha")
    beta = world.host("beta")
    talker_prog = TalkerProgram(server_gpid, interval_ms=50.0, count=6)
    talker = beta.spawn_user_process("lfc", "talker",
                                     program=talker_prog)
    world.run_for(3_000.0)
    assert talker.rusage.messages_sent == 6
    assert server.rusage.messages_sent == 6  # the echoes


def test_user_ipc_traced_and_analysed(world):
    server_gpid, _sp, _server = start_echo(world, "alpha")
    beta = world.host("beta")
    talker_prog = TalkerProgram(server_gpid, interval_ms=50.0, count=3)
    talker = beta.spawn_user_process("lfc", "talker",
                                     program=talker_prog)
    world.run_for(3_000.0)
    events = world.recorder.select(TraceEventType.USER_IPC)
    assert events
    matrix = user_ipc_matrix(world.recorder.events)
    talker_gpid = GlobalPid("beta", talker.pid)
    assert matrix[(str(talker_gpid), str(server_gpid))]["messages"] == 3
    assert matrix[(str(server_gpid), str(talker_gpid))]["messages"] == 3
    text = render_user_ipc(world.recorder.events)
    assert str(server_gpid) in text
    assert "no user-process IPC" in render_user_ipc([])


def test_connect_to_non_listening_process_fails(world):
    beta = world.host("beta")
    target = world.host("alpha").spawn_user_process("lfc", "mute")
    results = []
    world.ipc.connect(GlobalPid("beta", 999),
                      GlobalPid("alpha", target.pid)).then(results.append)
    world.run_for(10_000.0)
    assert results == [None]


def test_listen_requires_live_process(world):
    with pytest.raises(NoSuchProcessError):
        world.ipc.listen(GlobalPid("alpha", 4242), lambda ch: None)


def test_server_exit_closes_channels_and_stops_accepting(world):
    server_gpid, server_prog, server = start_echo(world, "alpha")
    beta = world.host("beta")
    talker_prog = TalkerProgram(server_gpid, interval_ms=100.0, count=100)
    beta.spawn_user_process("lfc", "talker", program=talker_prog)
    world.run_for(1_000.0)
    world.host("alpha").kernel.exit(server.pid)
    world.run_for(2_000.0)
    assert talker_prog.channel is None or not talker_prog.channel.open
    # New connections are refused.
    results = []
    world.ipc.connect(GlobalPid("beta", 999), server_gpid).then(
        results.append)
    world.run_for(10_000.0)
    assert results == [None]


def test_host_crash_breaks_conversation(world):
    server_gpid, _sp, _server = start_echo(world, "alpha")
    beta = world.host("beta")
    talker_prog = TalkerProgram(server_gpid, interval_ms=100.0, count=100)
    beta.spawn_user_process("lfc", "talker", program=talker_prog)
    world.run_for(1_000.0)
    sent_before = talker_prog._sent
    world.host("alpha").crash()
    world.run_for(5_000.0)
    # The talker noticed (channel closed) and stopped making progress.
    assert talker_prog._sent <= sent_before + 1
