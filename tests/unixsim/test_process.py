"""Tests for process control blocks, states, flags, and rusage."""

import pytest

from repro.unixsim import Process, ProcState, Rusage, TraceFlag
from repro.unixsim.process import trace_flags_from_names


def make(pid=10, state=ProcState.RUNNING):
    return Process(pid=pid, ppid=1, uid=1001, command="work", state=state)


def test_alive_states():
    assert ProcState.RUNNING.alive
    assert ProcState.SLEEPING.alive
    assert ProcState.STOPPED.alive
    assert not ProcState.ZOMBIE.alive
    assert not ProcState.DEAD.alive


def test_trace_flag_combination():
    flags = TraceFlag.FORK | TraceFlag.EXIT
    assert flags & TraceFlag.FORK
    assert not (flags & TraceFlag.SIGNAL)
    assert TraceFlag.ALL & TraceFlag.RESOURCE


def test_trace_flags_from_names():
    flags = trace_flags_from_names(["fork", "exit"])
    assert flags == TraceFlag.FORK | TraceFlag.EXIT
    assert trace_flags_from_names(["all"]) == TraceFlag.ALL
    assert trace_flags_from_names([]) == TraceFlag.NONE
    with pytest.raises(KeyError):
        trace_flags_from_names(["bogus"])


def test_untraced_process_wants_nothing():
    proc = make()
    proc.trace_flags = TraceFlag.ALL
    assert not proc.wants(TraceFlag.FORK)  # not adopted
    proc.adopted_by_uid = 1001
    assert proc.wants(TraceFlag.FORK)


def test_cpu_accounting_only_while_running():
    proc = make()
    proc._state_since_ms = 0.0
    proc.set_state(ProcState.SLEEPING, 100.0)
    assert proc.rusage.utime_ms == pytest.approx(100.0)
    proc.set_state(ProcState.RUNNING, 200.0)
    assert proc.rusage.utime_ms == pytest.approx(100.0)  # slept
    proc.set_state(ProcState.ZOMBIE, 250.0)
    assert proc.rusage.utime_ms == pytest.approx(150.0)


def test_set_state_same_state_is_noop():
    proc = make()
    proc._state_since_ms = 0.0
    proc.set_state(ProcState.RUNNING, 500.0)
    assert proc.rusage.utime_ms == 0.0  # not charged twice


def test_lifetime():
    proc = make()
    proc.start_ms = 100.0
    assert proc.lifetime_ms(400.0) == pytest.approx(300.0)
    proc.end_ms = 250.0
    assert proc.lifetime_ms(400.0) == pytest.approx(150.0)


def test_rusage_merge():
    a = Rusage(utime_ms=10.0, max_rss_kb=100, forks=1)
    b = Rusage(utime_ms=5.0, max_rss_kb=200, signals_received=2)
    merged = a.merged_with(b)
    assert merged.utime_ms == pytest.approx(15.0)
    assert merged.max_rss_kb == 200
    assert merged.forks == 1
    assert merged.signals_received == 2
