"""Unit tests for the CCS name server daemon."""

import pytest

from repro.netsim import StreamConnection
from repro.unixsim.nameserver import NAME_SERVICE


@pytest.fixture
def server(world, alpha):
    ns = world.install_name_server("alpha")
    ns.administer("lfc", ["h-one", "h-two", "h-three"])
    return ns


def call(world, src, payload):
    replies = []

    def established(endpoint):
        endpoint.on_message = lambda data, ep: replies.append(data)

    StreamConnection.connect(world.network, src, "alpha", NAME_SERVICE,
                             payload=payload,
                             on_established=established)
    world.run_until_true(lambda: bool(replies), timeout_ms=30_000.0)
    return replies[0]


def test_query_returns_top_assignment(world, server):
    reply = call(world, "beta", {"op": "query", "user": "lfc"})
    assert reply == {"ok": True, "ccs_host": "h-one"}
    assert server.queries == 1


def test_unknown_user_returns_none(world, server):
    reply = call(world, "beta", {"op": "query", "user": "nobody"})
    assert reply["ccs_host"] is None


def test_report_down_advances(world, server):
    reply = call(world, "beta", {"op": "report_down", "user": "lfc",
                                 "host": "h-one"})
    assert reply["ccs_host"] == "h-two"
    # Reporting a non-current host changes nothing.
    reply = call(world, "beta", {"op": "report_down", "user": "lfc",
                                 "host": "h-one"})
    assert reply["ccs_host"] == "h-two"


def test_assignment_wraps_around(world, server):
    for expected in ("h-two", "h-three", "h-one"):
        reply = call(world, "beta",
                     {"op": "report_down", "user": "lfc",
                      "host": server.current_ccs("lfc")})
        assert reply["ccs_host"] == expected


def test_register_climbs_only_upward(world, server):
    call(world, "beta", {"op": "report_down", "user": "lfc",
                         "host": "h-one"})
    call(world, "beta", {"op": "report_down", "user": "lfc",
                         "host": "h-two"})
    assert server.current_ccs("lfc") == "h-three"
    # Registering a lower-priority (or unknown) host does nothing.
    call(world, "beta", {"op": "register", "user": "lfc",
                         "host": "h-three"})
    call(world, "beta", {"op": "register", "user": "lfc",
                         "host": "elsewhere"})
    assert server.current_ccs("lfc") == "h-three"
    # Registering a higher one climbs.
    reply = call(world, "beta", {"op": "register", "user": "lfc",
                                 "host": "h-two"})
    assert reply["ccs_host"] == "h-two"
    reply = call(world, "beta", {"op": "register", "user": "lfc",
                                 "host": "h-one"})
    assert reply["ccs_host"] == "h-one"


def test_bad_op_rejected(world, server):
    reply = call(world, "beta", {"op": "frobnicate", "user": "lfc"})
    assert not reply["ok"]


def test_daemon_is_a_process(world, server):
    assert server.proc.command == "ccsnsd"
    assert server.proc.alive
