"""Tests for the run-queue load average (Table 1's ``la`` estimator)."""

import pytest

from repro.unixsim import SleeperProgram, SpinnerProgram


def test_idle_host_has_near_zero_load(world, alpha):
    world.run_for(60_000.0)
    assert alpha.load_average() < 0.05


def test_one_spinner_converges_to_one(world, alpha):
    alpha.spawn_user_process("lfc", "spin", program=SpinnerProgram(None))
    world.run_for(600_000.0)  # 10 tau
    assert alpha.load_average() == pytest.approx(1.0, abs=0.01)


def test_three_spinners_converge_to_three(world, alpha):
    for _ in range(3):
        alpha.spawn_user_process("lfc", "spin", program=SpinnerProgram(None))
    world.run_for(600_000.0)
    assert alpha.load_average() == pytest.approx(3.0, abs=0.05)


def test_sleepers_do_not_count(world, alpha):
    for _ in range(5):
        alpha.spawn_user_process("lfc", "sleep",
                                 program=SleeperProgram(None))
    world.run_for(600_000.0)
    assert alpha.load_average() < 0.05


def test_load_decays_after_exit(world, alpha):
    alpha.spawn_user_process("lfc", "spin",
                             program=SpinnerProgram(300_000.0))
    world.run_for(300_000.0)
    peak = alpha.load_average()
    world.run_for(300_000.0)
    assert alpha.load_average() < peak / 2


def test_load_rises_monotonically_toward_count(world, alpha):
    alpha.spawn_user_process("lfc", "spin", program=SpinnerProgram(None))
    previous = 0.0
    for _ in range(10):
        world.run_for(30_000.0)
        current = alpha.load_average()
        assert current >= previous
        assert current <= 1.0 + 1e-9
        previous = current


def test_stopped_processes_leave_run_queue(world, alpha):
    from repro.unixsim import Signal
    proc = alpha.spawn_user_process("lfc", "spin",
                                    program=SpinnerProgram(None))
    world.run_for(600_000.0)
    assert alpha.load_average() > 0.9
    alpha.kernel.kill(proc.pid, Signal.SIGSTOP, sender_uid=1001)
    world.run_for(600_000.0)
    assert alpha.load_average() < 0.05


def test_force_pins_value(world, alpha):
    alpha.kernel.loadavg.force(2.5)
    assert alpha.load_average() == pytest.approx(2.5)
    # Decays back toward the true runnable count afterwards.
    world.run_for(600_000.0)
    assert alpha.load_average() < 0.1


def test_idle_fast_path_skips_exp_without_changing_value(world, alpha):
    from repro.perf import PERF

    world.run_for(60_000.0)
    assert alpha.load_average() == 0.0  # truly idle: la == n == 0
    PERF.reset()
    world.run_for(60_000.0)
    value = alpha.load_average()
    assert value == 0.0
    # Every lazy integration on the idle host took the steady-state
    # short cut (la' = n + (la-n)*decay == la when la == n).
    assert PERF.loadavg_idle_skips >= 1


def test_fast_path_is_exact_not_approximate():
    from repro.perf import PERF
    from repro.unixsim.loadavg import LoadAverage

    clock = [0.0]
    runnable = [2]
    la = LoadAverage(lambda: clock[0], lambda: runnable[0],
                     tau_ms=1_000.0)
    la.force(2.0)  # converged: la == n == 2
    PERF.reset()
    clock[0] = 5_000.0
    assert la.value() == 2.0
    assert PERF.loadavg_idle_skips == 1
    # A change in the runnable count leaves the fast path.
    runnable[0] = 0
    la.note_change()
    clock[0] = 10_000.0
    before = PERF.loadavg_idle_skips
    assert 0.0 < la.value() < 2.0  # genuine exponential decay resumed
    assert PERF.loadavg_idle_skips == before
