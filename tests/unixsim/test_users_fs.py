"""Tests for the filesystem, accounts, and .rhosts authentication."""

import pytest

from repro.errors import AuthenticationError
from repro.unixsim import SimFilesystem, UserAccount, UserRegistry
from repro.unixsim.users import rhosts_permits


class TestFilesystem:
    def test_write_read_remove(self):
        fs = SimFilesystem()
        fs.write("/tmp/x", "hello")
        assert fs.read("/tmp/x") == "hello"
        assert fs.exists("/tmp/x")
        fs.remove("/tmp/x")
        assert fs.read("/tmp/x") is None
        fs.remove("/tmp/x")  # idempotent

    def test_recovery_file_roundtrip(self):
        fs = SimFilesystem()
        fs.write_recovery_file("lfc", ["home1", "home2", "home3"])
        assert fs.read_recovery_file("lfc") == ["home1", "home2", "home3"]

    def test_recovery_file_skips_comments_and_blanks(self):
        fs = SimFilesystem()
        fs.write("/usr/lfc/.recovery", "# priority list\nhome1\n\n  home2\n")
        assert fs.read_recovery_file("lfc") == ["home1", "home2"]

    def test_missing_recovery_file_is_empty(self):
        fs = SimFilesystem()
        assert fs.read_recovery_file("nobody") == []

    def test_rhosts_roundtrip(self):
        fs = SimFilesystem()
        fs.write_rhosts("lfc", ["hostA", "hostB ramon"])
        assert fs.read_rhosts("lfc") == ["hostA", "hostB ramon"]


class TestAccounts:
    def test_account_lookup(self):
        reg = UserRegistry()
        reg.add(UserAccount.create("lfc", 1001, "pw"))
        assert reg.lookup("lfc").uid == 1001
        assert reg.lookup("nobody") is None
        with pytest.raises(AuthenticationError):
            reg.require("nobody")

    def test_password_check(self):
        reg = UserRegistry()
        reg.add(UserAccount.create("lfc", 1001, "pw"))
        assert reg.check_password("lfc", "pw")
        assert not reg.check_password("lfc", "wrong")
        assert not reg.check_password("nobody", "pw")

    def test_consistency_across_hosts(self):
        a, b = UserRegistry(), UserRegistry()
        account = UserAccount.create("lfc", 1001, "pw")
        a.add(account)
        b.add(account)
        assert a.consistent_with(b, "lfc")
        # Different uid on the other machine: inconsistent.
        c = UserRegistry()
        c.add(UserAccount.create("lfc", 2001, "pw"))
        assert not a.consistent_with(c, "lfc")
        assert not a.consistent_with(UserRegistry(), "lfc")


class TestRhosts:
    def test_host_only_entry_grants_same_user(self):
        assert rhosts_permits(["hostA"], "hostA", "lfc", "lfc")
        assert not rhosts_permits(["hostA"], "hostA", "ramon", "lfc")

    def test_host_user_entry(self):
        assert rhosts_permits(["hostA ramon"], "hostA", "ramon", "lfc")
        assert not rhosts_permits(["hostA ramon"], "hostB", "ramon", "lfc")

    def test_empty_entries_deny(self):
        assert not rhosts_permits([], "hostA", "lfc", "lfc")
        assert not rhosts_permits(["", "   "], "hostA", "lfc", "lfc")
