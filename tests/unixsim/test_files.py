"""Tests for the kernel's file-descriptor support (the substrate for
section 7's files and descriptor tools)."""

import pytest

from repro.errors import NoSuchProcessError
from repro.unixsim import FileWorkerProgram, KernelEvent, Signal, TraceFlag
from repro.unixsim.process import CLOSED_FILE_HISTORY_LIMIT


@pytest.fixture
def kernel(alpha):
    return alpha.kernel


def test_open_allocates_increasing_fds(kernel):
    proc = kernel.spawn(1001, "job")
    fd1 = kernel.open_file(proc.pid, "/tmp/a")
    fd2 = kernel.open_file(proc.pid, "/tmp/b", mode="w")
    assert fd2 > fd1 >= 3  # 0-2 reserved
    assert proc.fd_table[fd1].path == "/tmp/a"
    assert proc.fd_table[fd2].mode == "w"


def test_close_moves_to_history(kernel, world):
    proc = kernel.spawn(1001, "job")
    fd = kernel.open_file(proc.pid, "/tmp/a")
    world.run_for(100.0)
    kernel.close_file(proc.pid, fd)
    assert fd not in proc.fd_table
    (closed,) = proc.closed_files
    assert closed.path == "/tmp/a"
    assert closed.closed_ms > closed.opened_ms


def test_close_unknown_fd_rejected(kernel):
    proc = kernel.spawn(1001, "job")
    with pytest.raises(NoSuchProcessError):
        kernel.close_file(proc.pid, 99)


def test_dup_shares_path(kernel):
    proc = kernel.spawn(1001, "job")
    fd = kernel.open_file(proc.pid, "/tmp/a")
    fd2 = kernel.dup_file(proc.pid, fd)
    assert fd2 != fd
    assert proc.fd_table[fd2].path == "/tmp/a"
    with pytest.raises(NoSuchProcessError):
        kernel.dup_file(proc.pid, 1234)


def test_exit_closes_everything(kernel):
    proc = kernel.spawn(1001, "job")
    kernel.open_file(proc.pid, "/tmp/a")
    kernel.open_file(proc.pid, "/tmp/b")
    kernel.exit(proc.pid)
    assert not proc.fd_table
    assert {entry.path for entry in proc.closed_files} == {"/tmp/a",
                                                           "/tmp/b"}


def test_closed_history_bounded(kernel):
    proc = kernel.spawn(1001, "job")
    for index in range(CLOSED_FILE_HISTORY_LIMIT + 10):
        fd = kernel.open_file(proc.pid, "/tmp/f%d" % index)
        kernel.close_file(proc.pid, fd)
    assert len(proc.closed_files) == CLOSED_FILE_HISTORY_LIMIT
    assert proc.closed_files[0].path == "/tmp/f10"


def test_file_events_posted_when_traced(kernel, world):
    received = []
    kernel.register_lpm(1001, received.append)
    proc = kernel.spawn(1001, "job")
    kernel.adopt(1001, proc.pid, TraceFlag.FILES)
    fd = kernel.open_file(proc.pid, "/tmp/a")
    kernel.close_file(proc.pid, fd)
    world.run_for(200.0)
    events = [m.event for m in received]
    assert events == [KernelEvent.FILE_OPENED, KernelEvent.FILE_CLOSED]
    assert received[0].details["path"] == "/tmp/a"


def test_file_events_suppressed_without_flag(kernel, world):
    received = []
    kernel.register_lpm(1001, received.append)
    proc = kernel.spawn(1001, "job")
    kernel.adopt(1001, proc.pid, TraceFlag.EXIT)  # no FILES bit
    kernel.open_file(proc.pid, "/tmp/a")
    world.run_for(200.0)
    assert received == []


def test_file_worker_program_lifecycle(world, alpha):
    program = FileWorkerProgram(
        1_000.0, files=["/data/in", "/data/out"],
        close_after_ms=[("/data/in", 300.0)])
    proc = alpha.spawn_user_process("lfc", "fjob", program=program)
    assert {e.path for e in proc.fd_table.values()} == {"/data/in",
                                                        "/data/out"}
    world.run_for(500.0)
    assert {e.path for e in proc.fd_table.values()} == {"/data/out"}
    world.run_for(1_000.0)  # program exits; kernel closes the rest
    assert not proc.alive
    assert {e.path for e in proc.closed_files} == {"/data/in",
                                                   "/data/out"}


def test_file_worker_kill_cancels_close_timers(world, alpha):
    program = FileWorkerProgram(
        10_000.0, files=["/data/in"],
        close_after_ms=[("/data/in", 5_000.0)])
    proc = alpha.spawn_user_process("lfc", "fjob", program=program)
    alpha.kernel.kill(proc.pid, Signal.SIGKILL, sender_uid=1001)
    world.run_for(10_000.0)  # the close timer must not touch a corpse
    assert not proc.alive
