"""Tests for inetd and the process manager daemon (Figure 2's protocol)."""

import pytest

from repro.netsim import StreamConnection
from repro.tracing import TraceEventType
from repro.unixsim import ProcState
from repro.unixsim.inetd import INETD_SERVICE


class FakeLpm:
    """Stands in for the core LPM when testing the daemons alone."""

    counter = 0

    def __init__(self, host, user, token):
        FakeLpm.counter += 1
        self.proc = host.kernel.spawn(host.uid_of(user), "lpm",
                                      state=ProcState.SLEEPING)
        self.accept_service = "lpm:%s:%d" % (user, FakeLpm.counter)
        self.token = token
        host.node.listen(self.accept_service, lambda ep, payload: None)


@pytest.fixture
def ppm_world(world):
    world.lpm_factory = FakeLpm
    return world


def bootstrap(world, src, dst, user, origin_user=None):
    """Run the Figure-2 protocol; returns the reply dict."""
    replies = []

    def on_established(endpoint):
        endpoint.on_message = lambda payload, ep: replies.append(payload)

    StreamConnection.connect(
        world.network, src, dst, INETD_SERVICE,
        payload={"service": "ppm", "user": user,
                 "origin_host": src,
                 "origin_user": origin_user or user},
        on_established=on_established)
    world.run_until_true(lambda: bool(replies), timeout_ms=60_000.0)
    assert replies, "no reply from inetd"
    return replies[0]


def test_lpm_created_ab_initio(ppm_world, alpha):
    reply = bootstrap(ppm_world, "alpha", "alpha", "lfc")
    assert reply["ok"]
    assert reply["created"]
    assert reply["accept_service"].startswith("lpm:lfc")
    assert reply["token"]
    assert alpha.pmd_daemon is not None


def test_second_request_returns_existing_lpm(ppm_world, alpha):
    first = bootstrap(ppm_world, "alpha", "alpha", "lfc")
    second = bootstrap(ppm_world, "alpha", "alpha", "lfc")
    assert not second["created"]
    assert second["accept_service"] == first["accept_service"]
    assert second["token"] == first["token"]
    assert alpha.pmd_daemon.creations == 1


def test_creation_steps_traced(ppm_world, alpha):
    bootstrap(ppm_world, "alpha", "alpha", "lfc")
    steps = [e.details["step"] for e in ppm_world.recorder.select(
        TraceEventType.CREATION_STEP, host="alpha")]
    assert steps == [1, 2, 3, 4]


def test_remote_request_with_consistent_accounts(ppm_world):
    # lfc exists on both hosts with the same uid/password: allowed.
    reply = bootstrap(ppm_world, "beta", "alpha", "lfc")
    assert reply["ok"]


def test_unknown_user_rejected(ppm_world):
    reply = bootstrap(ppm_world, "alpha", "alpha", "mallory")
    assert not reply["ok"]
    assert "account" in reply["error"]


def test_masquerade_rejected_without_rhosts(ppm_world):
    # ramon@beta asks for lfc's LPM on alpha: user-level masquerade.
    reply = bootstrap(ppm_world, "beta", "alpha", "lfc",
                      origin_user="ramon")
    assert not reply["ok"]


def test_rhosts_grants_cross_user_access(ppm_world, alpha):
    alpha.fs.write_rhosts("lfc", ["beta ramon"])
    reply = bootstrap(ppm_world, "beta", "alpha", "lfc",
                      origin_user="ramon")
    assert reply["ok"]


def test_unknown_service_rejected(ppm_world):
    replies = []

    def on_established(endpoint):
        endpoint.on_message = lambda payload, ep: replies.append(payload)

    StreamConnection.connect(
        ppm_world.network, "alpha", "alpha", INETD_SERVICE,
        payload={"service": "finger", "user": "lfc"},
        on_established=on_established)
    ppm_world.run_until_true(lambda: bool(replies), timeout_ms=60_000.0)
    assert not replies[0]["ok"]


def test_pmd_persists_while_lpm_alive(ppm_world, alpha):
    bootstrap(ppm_world, "alpha", "alpha", "lfc")
    pmd_proc = alpha.pmd_daemon.proc
    assert pmd_proc.alive
    ppm_world.run_for(100_000.0)
    assert pmd_proc.alive


class TestPmdCrash:
    def test_crash_without_stable_storage_forgets_lpms(self, ppm_world,
                                                       alpha):
        first = bootstrap(ppm_world, "alpha", "alpha", "lfc")
        alpha.pmd_daemon.crash()
        # The paper: "the process management mechanism does not operate
        # correctly" — a second LPM is created for the same user.
        second = bootstrap(ppm_world, "alpha", "alpha", "lfc")
        assert second["created"]
        assert second["accept_service"] != first["accept_service"]

    def test_crash_with_stable_storage_recovers(self, world):
        from repro.config import PPMConfig
        from repro.netsim import HostClass
        from repro.unixsim import World
        w = World(seed=1, config=PPMConfig(pmd_stable_storage=True))
        w.add_host("alpha", HostClass.VAX_780)
        w.ethernet()
        w.add_user("lfc", 1001)
        w.lpm_factory = FakeLpm
        first = bootstrap(w, "alpha", "alpha", "lfc")
        w.host("alpha").pmd_daemon.crash()
        second = bootstrap(w, "alpha", "alpha", "lfc")
        assert not second["created"]
        assert second["accept_service"] == first["accept_service"]


def test_lpm_exit_frees_registry(ppm_world, alpha):
    reply = bootstrap(ppm_world, "alpha", "alpha", "lfc")
    record = alpha.pmd_daemon.record_for("lfc")
    alpha.kernel.exit(record.pid)
    assert not alpha.pmd_daemon.knows("lfc")
    again = bootstrap(ppm_world, "alpha", "alpha", "lfc")
    assert again["created"]
