"""Tests for hosts and the world container (crash/reboot, accounts)."""

import pytest

from repro.errors import NoSuchHostError
from repro.netsim import HostClass
from repro.unixsim import SpinnerProgram, World


def test_world_builds_hosts_and_links(world):
    assert set(world.hosts) == {"alpha", "beta", "gamma"}
    assert world.network.reachable("alpha", "gamma")
    with pytest.raises(NoSuchHostError):
        world.host("delta")


def test_accounts_consistent_across_hosts(world):
    for name in ("alpha", "beta", "gamma"):
        host = world.host(name)
        assert host.uid_of("lfc") == 1001
    assert world.host("alpha").users.consistent_with(
        world.host("beta").users, "lfc")


def test_recovery_file_written_everywhere(world):
    world.write_recovery_file("lfc", ["alpha", "beta"])
    for name in ("alpha", "beta", "gamma"):
        assert world.host(name).fs.read_recovery_file("lfc") == [
            "alpha", "beta"]


def test_cpu_cost_scales_with_load(world, alpha):
    light = alpha.cpu_cost(100.0)
    alpha.kernel.loadavg.force(3.5)
    heavy = alpha.cpu_cost(100.0)
    assert heavy > light
    assert light == pytest.approx(100.0)


def test_cpu_cost_scales_with_host_class(world):
    gamma = world.host("gamma")  # SUN II
    gamma.kernel.loadavg.force(3.5)
    alpha = world.host("alpha")  # VAX 780
    alpha.kernel.loadavg.force(3.5)
    assert gamma.cpu_cost(100.0) > alpha.cpu_cost(100.0)


def test_crash_kills_processes_and_network(world, alpha):
    proc = alpha.spawn_user_process("lfc", "spin",
                                    program=SpinnerProgram(None))
    alpha.crash()
    assert not alpha.up
    assert not proc.alive
    assert not world.network.reachable("beta", "alpha")
    assert alpha.crash_count == 1


def test_crash_is_idempotent(world, alpha):
    alpha.crash()
    alpha.crash()
    assert alpha.crash_count == 1


def test_disk_survives_crash(world, alpha):
    alpha.fs.write_recovery_file("lfc", ["beta"])
    alpha.crash()
    alpha.reboot()
    assert alpha.fs.read_recovery_file("lfc") == ["beta"]


def test_reboot_gives_fresh_kernel(world, alpha):
    old_kernel = alpha.kernel
    proc = alpha.spawn_user_process("lfc", "spin")
    alpha.crash()
    alpha.reboot()
    assert alpha.up
    assert alpha.kernel is not old_kernel
    assert proc.pid not in alpha.kernel.procs or \
        alpha.kernel.procs.find(proc.pid) is not proc
    assert world.network.reachable("beta", "alpha")
    # inetd is back.
    assert "inetd" in alpha.node.services


def test_reboot_when_up_is_noop(world, alpha):
    kernel = alpha.kernel
    alpha.reboot()
    assert alpha.kernel is kernel


def test_load_average_zero_when_down(world, alpha):
    alpha.spawn_user_process("lfc", "spin", program=SpinnerProgram(None))
    world.run_for(600_000.0)
    alpha.crash()
    assert alpha.load_average() == 0.0


def test_world_determinism():
    def build_and_run(seed):
        w = World(seed=seed)
        w.add_host("a", HostClass.VAX_780)
        w.add_host("b", HostClass.SUN_2)
        w.ethernet()
        w.add_user("u", 100)
        h = w.host("a")
        for i in range(5):
            h.spawn_user_process("u", "job%d" % i,
                                 program=SpinnerProgram(1000.0 * (i + 1)))
        w.run_for(30_000.0)
        return [(e.time_ms, e.event_type.value)
                for e in w.recorder.events], h.load_average()

    assert build_and_run(5) == build_and_run(5)
