"""Tests for the simulated workload programs."""

import pytest

from repro.unixsim import (
    ForkTreeProgram,
    ProcState,
    Signal,
    SleeperProgram,
    SpinnerProgram,
    WorkerProgram,
)


def test_spinner_runs_then_exits(world, alpha):
    proc = alpha.spawn_user_process("lfc", "spin",
                                    program=SpinnerProgram(1_000.0))
    assert proc.state is ProcState.RUNNING
    world.run_for(999.0)
    assert proc.alive
    world.run_for(2.0)
    assert not proc.alive
    assert proc.exit_status == 0


def test_worker_exit_status(world, alpha):
    proc = alpha.spawn_user_process(
        "lfc", "worker", program=WorkerProgram(500.0, exit_status=4))
    world.run_for(1_000.0)
    assert proc.exit_status == 4


def test_sleeper_sleeps(world, alpha):
    proc = alpha.spawn_user_process("lfc", "sleep",
                                    program=SleeperProgram(1_000.0))
    assert proc.state is ProcState.SLEEPING
    world.run_for(2_000.0)
    assert not proc.alive


def test_infinite_spinner_never_exits(world, alpha):
    proc = alpha.spawn_user_process("lfc", "spin",
                                    program=SpinnerProgram(None))
    world.run_for(1_000_000.0)
    assert proc.alive


def test_negative_duration_rejected():
    with pytest.raises(ValueError):
        SpinnerProgram(-5.0)


def test_stop_freezes_remaining_time(world, alpha):
    proc = alpha.spawn_user_process("lfc", "spin",
                                    program=SpinnerProgram(1_000.0))
    world.run_for(600.0)
    alpha.kernel.kill(proc.pid, Signal.SIGSTOP, sender_uid=1001)
    world.run_for(10_000.0)  # stopped: timer frozen
    assert proc.alive
    alpha.kernel.kill(proc.pid, Signal.SIGCONT, sender_uid=1001)
    world.run_for(399.0)
    assert proc.alive
    world.run_for(2.0)
    assert not proc.alive


def test_kill_cancels_timer(world, alpha):
    proc = alpha.spawn_user_process("lfc", "spin",
                                    program=SpinnerProgram(1_000.0))
    alpha.kernel.kill(proc.pid, Signal.SIGKILL, sender_uid=1001)
    world.run_for(5_000.0)  # the program timer must not resurrect anything
    assert proc.term_signal == int(Signal.SIGKILL)


def test_fork_tree_builds_genealogy(world, alpha):
    program = ForkTreeProgram(
        children=[
            ("child-a", 100.0, SpinnerProgram(None)),
            ("child-b", 200.0, ForkTreeProgram(
                children=[("grandchild", 100.0, SpinnerProgram(None))])),
        ])
    root = alpha.spawn_user_process("lfc", "root", program=program)
    world.run_for(1_000.0)
    children = alpha.kernel.procs.children_of(root.pid)
    assert sorted(c.command for c in children) == ["child-a", "child-b"]
    child_b = next(c for c in children if c.command == "child-b")
    grandchildren = alpha.kernel.procs.children_of(child_b.pid)
    assert [g.command for g in grandchildren] == ["grandchild"]


def test_fork_tree_stops_spawning_after_exit(world, alpha):
    program = ForkTreeProgram(
        children=[("late-child", 5_000.0, SpinnerProgram(None))],
        duration_ms=1_000.0)
    root = alpha.spawn_user_process("lfc", "root", program=program)
    world.run_for(10_000.0)
    assert not root.alive
    # The child scheduled for t=5000 must never have been spawned.
    assert all(p.command != "late-child" for p in alpha.kernel.procs)


def test_host_crash_cancels_program_timers(world, alpha):
    alpha.spawn_user_process("lfc", "spin", program=SpinnerProgram(1_000.0))
    alpha.crash()
    world.run_for(10_000.0)  # timer fires harmlessly


def test_fork_tree_children_inherit_background(world, alpha):
    program = ForkTreeProgram(
        children=[("child", 10.0, SpinnerProgram(None))])
    root = alpha.spawn_user_process("lfc", "root", program=program,
                                    foreground=False)
    world.run_for(100.0)
    child = alpha.kernel.procs.children_of(root.pid)[0]
    assert not child.foreground
