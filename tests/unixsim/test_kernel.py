"""Tests for the simulated kernel: syscalls, signals, adoption, and the
kernel->LPM message path."""

import pytest

from repro.errors import (
    AdoptionError,
    NoSuchProcessError,
    ProcessPermissionError,
    SimulationError,
)
from repro.unixsim import (
    KernelEvent,
    ProcState,
    Signal,
    SpinnerProgram,
    TraceFlag,
)
from repro.unixsim.kernel import INIT_PID


@pytest.fixture
def kernel(alpha):
    return alpha.kernel


def test_init_exists(kernel):
    init = kernel.procs.get(INIT_PID)
    assert init.command == "init"
    assert init.uid == 0


def test_spawn_links_parent_and_child(kernel):
    proc = kernel.spawn(1001, "job")
    assert proc.ppid == INIT_PID
    assert proc.pid in kernel.procs.get(INIT_PID).children
    assert proc.state is ProcState.RUNNING


def test_fork_inherits_identity(kernel):
    parent = kernel.spawn(1001, "shell")
    child = kernel.fork(parent.pid)
    assert child.uid == parent.uid
    assert child.command == parent.command
    assert child.ppid == parent.pid
    assert parent.rusage.forks == 1


def test_exec_replaces_image(kernel):
    proc = kernel.spawn(1001, "shell")
    kernel.exec(proc.pid, "compiler", ("-O",))
    assert proc.command == "compiler"
    assert proc.args == ("-O",)


def test_exec_disarms_old_program_timers(kernel, world):
    # The old image's exit timer must not kill the new image.
    proc = kernel.spawn(1001, "short",
                        program=SpinnerProgram(1_000.0))
    kernel.exec(proc.pid, "long", program=SpinnerProgram(60_000.0))
    world.run_for(5_000.0)
    assert proc.alive  # the 1-second timer died with the old image
    world.run_for(60_000.0)
    assert not proc.alive  # the new image's timer ran its course


def test_exit_makes_zombie_then_parent_reaps(kernel):
    parent = kernel.spawn(1001, "shell")
    child = kernel.spawn(1001, "job", ppid=parent.pid)
    kernel.exit(child.pid, status=3)
    assert child.state is ProcState.ZOMBIE
    assert child.exit_status == 3
    reaped = kernel.reap(parent.pid)
    assert reaped == [child]
    assert child.state is ProcState.DEAD
    assert child.pid not in kernel.procs


def test_children_of_init_reaped_automatically(kernel):
    proc = kernel.spawn(1001, "job")  # child of init
    kernel.exit(proc.pid)
    assert proc.state is ProcState.DEAD
    assert proc.pid not in kernel.procs


def test_orphans_reparented_to_init(kernel):
    parent = kernel.spawn(1001, "shell")
    child = kernel.spawn(1001, "job", ppid=parent.pid)
    kernel.exit(parent.pid)
    assert child.ppid == INIT_PID
    assert child.pid in kernel.procs.get(INIT_PID).children


def test_zombie_child_reaped_when_parent_dies(kernel):
    parent = kernel.spawn(1001, "shell")
    child = kernel.spawn(1001, "job", ppid=parent.pid)
    kernel.exit(child.pid)
    assert child.state is ProcState.ZOMBIE
    kernel.exit(parent.pid)
    assert child.state is ProcState.DEAD


def test_exit_idempotent(kernel):
    proc = kernel.spawn(1001, "job")
    kernel.exit(proc.pid)
    kernel.exit(proc.pid)  # no error


class TestSignals:
    def test_sigkill_terminates(self, kernel):
        proc = kernel.spawn(1001, "job")
        kernel.kill(proc.pid, Signal.SIGKILL, sender_uid=1001)
        assert not proc.alive
        assert proc.term_signal == int(Signal.SIGKILL)
        assert proc.exit_status == 128 + 9

    def test_sigstop_and_sigcont(self, kernel):
        proc = kernel.spawn(1001, "job")
        kernel.kill(proc.pid, Signal.SIGSTOP, sender_uid=1001)
        assert proc.state is ProcState.STOPPED
        kernel.kill(proc.pid, Signal.SIGCONT, sender_uid=1001)
        assert proc.state is ProcState.RUNNING

    def test_sigcont_resumes_prior_state(self, kernel):
        proc = kernel.spawn(1001, "job", state=ProcState.SLEEPING)
        kernel.kill(proc.pid, Signal.SIGSTOP, sender_uid=1001)
        kernel.kill(proc.pid, Signal.SIGCONT, sender_uid=1001)
        assert proc.state is ProcState.SLEEPING

    def test_sigchld_ignored(self, kernel):
        proc = kernel.spawn(1001, "job")
        kernel.kill(proc.pid, Signal.SIGCHLD, sender_uid=1001)
        assert proc.state is ProcState.RUNNING

    def test_cross_user_signal_denied(self, kernel):
        proc = kernel.spawn(1001, "job")
        with pytest.raises(ProcessPermissionError):
            kernel.kill(proc.pid, Signal.SIGKILL, sender_uid=1002)
        assert proc.alive

    def test_root_may_signal_anyone(self, kernel):
        proc = kernel.spawn(1001, "job")
        kernel.kill(proc.pid, Signal.SIGKILL, sender_uid=0)
        assert not proc.alive

    def test_signal_to_missing_pid(self, kernel):
        with pytest.raises(NoSuchProcessError):
            kernel.kill(9999, Signal.SIGKILL, sender_uid=0)

    def test_signal_to_zombie_discarded(self, kernel):
        parent = kernel.spawn(1001, "shell")
        child = kernel.spawn(1001, "job", ppid=parent.pid)
        kernel.exit(child.pid)
        kernel.kill(child.pid, Signal.SIGKILL, sender_uid=1001)  # no error

    def test_double_stop_is_noop(self, kernel):
        proc = kernel.spawn(1001, "job")
        kernel.kill(proc.pid, Signal.SIGSTOP, sender_uid=1001)
        kernel.kill(proc.pid, Signal.SIGSTOP, sender_uid=1001)
        assert proc.state is ProcState.STOPPED

    def test_signals_counted_in_rusage(self, kernel):
        proc = kernel.spawn(1001, "job")
        kernel.kill(proc.pid, Signal.SIGSTOP, sender_uid=1001)
        kernel.kill(proc.pid, Signal.SIGCONT, sender_uid=1001)
        assert proc.rusage.signals_received == 2


class TestForegroundBackground:
    def test_toggle(self, kernel):
        proc = kernel.spawn(1001, "job")
        kernel.set_foreground(proc.pid, False, sender_uid=1001)
        assert not proc.foreground
        kernel.set_foreground(proc.pid, True, sender_uid=1001)
        assert proc.foreground

    def test_cross_user_denied(self, kernel):
        proc = kernel.spawn(1001, "job")
        with pytest.raises(ProcessPermissionError):
            kernel.set_foreground(proc.pid, False, sender_uid=1002)


class TestAdoption:
    def test_adopt_sets_flags(self, kernel):
        proc = kernel.spawn(1001, "job")
        kernel.adopt(1001, proc.pid, TraceFlag.FORK | TraceFlag.EXIT)
        assert proc.adopted_by_uid == 1001
        assert proc.trace_flags == TraceFlag.FORK | TraceFlag.EXIT

    def test_adoption_fails_across_users(self, kernel):
        # "The adoption operations fail if the process and the PPM belong
        # to different users."
        proc = kernel.spawn(1001, "job")
        with pytest.raises(AdoptionError):
            kernel.adopt(1002, proc.pid)

    def test_children_inherit_adoption(self, kernel):
        proc = kernel.spawn(1001, "shell")
        kernel.adopt(1001, proc.pid, TraceFlag.ALL)
        child = kernel.fork(proc.pid)
        assert child.adopted_by_uid == 1001
        assert child.trace_flags == TraceFlag.ALL

    def test_set_trace_flags_requires_adoption(self, kernel):
        proc = kernel.spawn(1001, "job")
        with pytest.raises(AdoptionError):
            kernel.set_trace_flags(1001, proc.pid, TraceFlag.EXIT)
        kernel.adopt(1001, proc.pid)
        kernel.set_trace_flags(1001, proc.pid, TraceFlag.EXIT)
        assert proc.trace_flags == TraceFlag.EXIT

    def test_adopt_dead_process_fails(self, kernel):
        proc = kernel.spawn(1001, "job")
        kernel.exit(proc.pid)
        with pytest.raises(NoSuchProcessError):
            kernel.adopt(1001, proc.pid)


class TestKernelMessages:
    def events_of(self, world, kernel, uid=1001, flags=TraceFlag.ALL):
        """Adopt-and-collect helper: returns (proc, received list)."""
        received = []
        kernel.register_lpm(uid, received.append)
        proc = kernel.spawn(uid, "job")
        kernel.adopt(uid, proc.pid, flags)
        return proc, received

    def test_exit_event_delivered_with_delay(self, world, alpha):
        proc, received = self.events_of(world, alpha.kernel)
        start = world.now_ms
        alpha.kernel.exit(proc.pid, status=7)
        assert received == []  # not synchronous
        world.run_for(100.0)
        assert len(received) == 1
        message = received[0]
        assert message.event is KernelEvent.EXIT
        assert message.pid == proc.pid
        assert message.details["status"] == 7
        # Light load on a VAX 11/780: Table 1 says 7.2 ms.
        assert message.timestamp_ms == start

    def test_delivery_time_matches_table1(self, world, alpha):
        proc, received = self.events_of(world, alpha.kernel)
        alpha.kernel.kill(proc.pid, Signal.SIGSTOP, sender_uid=1001)
        world.run_until_true(lambda: len(received) >= 1)
        # SIGNAL + STOPPED both queued at the same instant; delivery
        # occurred ~7.2 ms later (VAX 780, la ~ 0).
        assert world.now_ms == pytest.approx(7.2, abs=0.5)

    def test_no_messages_without_registration(self, world, alpha):
        proc = alpha.kernel.spawn(1001, "job")
        alpha.kernel.adopt(1001, proc.pid)
        alpha.kernel.exit(proc.pid)
        world.run_for(100.0)
        assert alpha.kernel.messages_posted == 0

    def test_untraced_process_suppressed(self, world, alpha):
        received = []
        alpha.kernel.register_lpm(1001, received.append)
        proc = alpha.kernel.spawn(1001, "job")  # never adopted
        alpha.kernel.exit(proc.pid)
        world.run_for(100.0)
        assert received == []
        assert alpha.kernel.messages_suppressed > 0

    def test_flag_granularity_respected(self, world, alpha):
        proc, received = self.events_of(world, alpha.kernel,
                                        flags=TraceFlag.EXIT)
        alpha.kernel.kill(proc.pid, Signal.SIGSTOP, sender_uid=1001)
        alpha.kernel.kill(proc.pid, Signal.SIGCONT, sender_uid=1001)
        alpha.kernel.exit(proc.pid)
        world.run_for(200.0)
        assert [m.event for m in received] == [KernelEvent.EXIT]

    def test_fork_events_from_descendants(self, world, alpha):
        proc, received = self.events_of(world, alpha.kernel)
        child = alpha.kernel.fork(proc.pid)
        grandchild = alpha.kernel.fork(child.pid)
        world.run_for(200.0)
        fork_events = [m for m in received if m.event is KernelEvent.FORK]
        assert {m.pid for m in fork_events} == {child.pid, grandchild.pid}

    def test_resource_details_on_exit(self, world, alpha):
        proc, received = self.events_of(world, alpha.kernel)
        world.run_for(500.0)
        alpha.kernel.exit(proc.pid)
        world.run_for(100.0)
        exit_messages = [m for m in received if m.event is KernelEvent.EXIT]
        assert exit_messages[0].details["rusage"]["utime_ms"] > 0

    def test_unregister_stops_delivery(self, world, alpha):
        proc, received = self.events_of(world, alpha.kernel)
        alpha.kernel.unregister_lpm(1001)
        alpha.kernel.exit(proc.pid)
        world.run_for(100.0)
        assert received == []


class TestHalt:
    def test_halt_kills_everything(self, world, alpha):
        proc = alpha.kernel.spawn(1001, "job",
                                  program=SpinnerProgram(60_000.0))
        alpha.kernel.halt()
        assert not proc.alive
        with pytest.raises(SimulationError):
            alpha.kernel.spawn(1001, "late")

    def test_no_message_delivery_after_halt(self, world, alpha):
        received = []
        alpha.kernel.register_lpm(1001, received.append)
        proc = alpha.kernel.spawn(1001, "job")
        alpha.kernel.adopt(1001, proc.pid)
        alpha.kernel.exit(proc.pid)  # message scheduled
        alpha.kernel.halt()
        world.run_for(100.0)
        assert received == []
