"""In-process realnet tests: one fabric dialling its own listener.

Everything here runs on a single asyncio loop — the node and the
client share the fabric, and ``run_until_true`` pumps both sides, so
the tests exercise real sockets without spawning processes.
"""

import socket

import pytest

from repro.realnet.fabric import AsyncioFabric
from repro.realnet.node import RealNode
from repro.realnet.pmd import RealPmd
from repro.realnet.registry import HostRegistry
from repro.unixsim.inetd import INETD_SERVICE, PPM_SERVICE


def _loopback_available() -> bool:
    try:
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.bind(("127.0.0.1", 0))
        probe.close()
        return True
    except OSError:
        return False


pytestmark = pytest.mark.skipif(not _loopback_available(),
                                reason="loopback sockets unavailable")


@pytest.fixture
def fabric(tmp_path):
    registry = HostRegistry(str(tmp_path / "reg.json"))
    fabric = AsyncioFabric(registry, local_host="alpha")
    yield fabric
    fabric.close()


@pytest.fixture
def node(fabric):
    node = RealNode(fabric, "alpha", fabric.registry)
    node.start()
    yield node
    node.close()


def test_port_zero_discovery_and_publication(fabric, node):
    """Binding port 0 discovers the kernel's choice and publishes it."""
    assert node.port is not None and node.port > 0
    assert fabric.registry.lookup("alpha") == ("127.0.0.1", node.port)


def test_connect_delivers_messages_both_ways(fabric, node):
    server_log, client_log = [], []

    def acceptor(endpoint, payload):
        server_log.append(payload)
        endpoint.on_message = \
            lambda frame, ep: (server_log.append(frame),
                               ep.send({"echo": frame}))
        endpoint.send({"greeting": "hi"})

    node.listen("echo", acceptor)
    holder = {}

    def established(endpoint):
        # Handlers install inside on_established — the contract's
        # guarantee that no frame can slip past them.
        endpoint.on_message = lambda frame, ep: client_log.append(frame)
        holder["ep"] = endpoint

    fabric.connect("tester", "alpha", "echo", payload={"n": 1},
                   on_established=established)
    assert fabric.run_until_true(lambda: "ep" in holder,
                                 timeout_ms=5_000)
    holder["ep"].send({"ping": True})
    assert fabric.run_until_true(
        lambda: len(client_log) >= 2 and len(server_log) >= 2,
        timeout_ms=5_000)
    assert server_log[0] == {"n": 1}
    assert server_log[1] == {"ping": True}
    assert client_log[0] == {"greeting": "hi"}
    assert client_log[1] == {"echo": {"ping": True}}


def test_unknown_service_is_refused(fabric, node):
    failures = []
    fabric.connect("tester", "alpha", "nope",
                   on_established=lambda ep: failures.append("bad"),
                   on_failed=lambda reason: failures.append(reason))
    assert fabric.run_until_true(lambda: bool(failures),
                                 timeout_ms=5_000)
    assert "no such service" in failures[0]


def test_unknown_host_fails_fast(fabric):
    failures = []
    fabric.connect("tester", "ghost", "echo",
                   on_failed=lambda reason: failures.append(reason))
    assert fabric.run_until_true(lambda: bool(failures),
                                 timeout_ms=5_000)
    assert "not in registry" in failures[0]


def test_peer_sees_close_initiator_does_not(fabric, node):
    """netsim close semantics over real sockets: the peer's on_close
    fires via EOF; the initiator's own handler does not."""
    server_side, events = {}, []

    def acceptor(endpoint, payload):
        server_side["ep"] = endpoint
        endpoint.on_close = lambda reason, ep: events.append(
            ("server", reason))

    node.listen("quiet", acceptor)
    holder = {}
    fabric.connect("tester", "alpha", "quiet",
                   on_established=lambda ep: holder.update(ep=ep))
    assert fabric.run_until_true(lambda: "ep" in holder and
                                 "ep" in server_side, timeout_ms=5_000)
    client_ep = holder["ep"]
    client_ep.on_close = lambda reason, ep: events.append(
        ("client", reason))
    client_ep.close()
    assert fabric.run_until_true(
        lambda: ("server", "closed") in events, timeout_ms=5_000)
    assert ("client", "closed") not in events
    assert not client_ep.open


def test_lpm_shutdown_unlistens_accept_service(fabric, node):
    """The orphaned-listener bug: after an LPM shuts down, dialling its
    old accept service must be refused, not half-served."""
    pmd = RealPmd(fabric, node)
    replies = []

    def on_bootstrap(payload, endpoint):
        replies.append(payload)
        endpoint.close()

    fabric.connect(
        "tester", "alpha", INETD_SERVICE,
        payload={"service": PPM_SERVICE, "user": "lfc",
                 "origin_host": "alpha", "origin_user": "lfc"},
        on_established=lambda ep: setattr(ep, "on_message",
                                          on_bootstrap))
    assert fabric.run_until_true(lambda: bool(replies),
                                 timeout_ms=5_000)
    accept_service = replies[0]["accept_service"]
    assert accept_service in node.services

    lpm = pmd.lpms["lfc"]
    lpm.shutdown()
    assert accept_service not in node.services
    failures = []
    fabric.connect("tester", "alpha", accept_service,
                   payload={"role": "tool"},
                   on_established=lambda ep: failures.append("bad"),
                   on_failed=lambda reason: failures.append(reason))
    assert fabric.run_until_true(lambda: bool(failures),
                                 timeout_ms=5_000)
    assert "no such service" in failures[0]
    pmd.shutdown()


def test_node_close_withdraws_registry_entry(fabric):
    node = RealNode(fabric, "alpha", fabric.registry)
    node.start()
    assert fabric.registry.lookup("alpha") is not None
    node.close()
    assert fabric.registry.lookup("alpha") is None
