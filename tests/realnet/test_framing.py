"""Framing unit tests — especially torn reads, the edge the simulator
never exercises."""

import pytest

from repro.core.messages import Message, MsgKind
from repro.perf import PERF
from repro.realnet.framing import (
    MAX_FRAME_BYTES,
    FrameDecoder,
    FramingError,
    encode_frame,
)


def sample_message(req_id=1):
    return Message(kind=MsgKind.TOOL_PING, req_id=req_id, origin="alpha",
                   user="lfc", payload={"n": req_id})


def test_message_round_trip():
    frame = encode_frame(sample_message())
    (decoded,) = FrameDecoder().feed(frame)
    assert isinstance(decoded, Message)
    assert decoded.kind is MsgKind.TOOL_PING
    assert decoded.payload == {"n": 1}


def test_json_round_trip():
    frame = encode_frame({"connect": "inetd", "src": "alpha"})
    (decoded,) = FrameDecoder().feed(frame)
    assert decoded == {"connect": "inetd", "src": "alpha"}


def test_torn_reads_reassemble_byte_by_byte():
    """A frame delivered one byte at a time decodes exactly once."""
    frame = encode_frame(sample_message(7))
    decoder = FrameDecoder()
    frames = []
    for offset in range(len(frame)):
        frames.extend(decoder.feed(frame[offset:offset + 1]))
    assert len(frames) == 1
    assert frames[0].req_id == 7
    assert decoder.pending_bytes == 0


def test_torn_read_across_frame_boundary():
    """Two frames split mid-length-prefix of the second."""
    first = encode_frame(sample_message(1))
    second = encode_frame(sample_message(2))
    blob = first + second
    split = len(first) + 2  # two bytes into the second length prefix
    decoder = FrameDecoder()
    got = decoder.feed(blob[:split])
    assert [m.req_id for m in got] == [1]
    assert decoder.pending_bytes == 2
    got = decoder.feed(blob[split:])
    assert [m.req_id for m in got] == [2]
    assert decoder.pending_bytes == 0


def test_partial_reads_are_counted():
    PERF.reset()
    frame = encode_frame(sample_message())
    decoder = FrameDecoder()
    decoder.feed(frame[:3])
    decoder.feed(frame[3:])
    assert PERF.real_partial_reads == 1
    assert PERF.real_frames_received == 1


def test_many_frames_in_one_read():
    blob = b"".join(encode_frame(sample_message(i)) for i in range(5))
    frames = FrameDecoder().feed(blob)
    assert [m.req_id for m in frames] == [0, 1, 2, 3, 4]


def test_oversized_frame_rejected():
    bogus = (MAX_FRAME_BYTES + 1).to_bytes(4, "big") + b"M"
    with pytest.raises(FramingError):
        FrameDecoder().feed(bogus)


def test_unknown_tag_rejected():
    frame = (1).to_bytes(4, "big") + b"X" + b"?"
    with pytest.raises(FramingError):
        FrameDecoder().feed(frame)
