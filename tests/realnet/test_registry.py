"""Host-registry tests: atomic publication of ephemeral addresses."""

import json
import os
import subprocess
import sys

from repro.realnet.registry import HostRegistry


def test_publish_lookup_withdraw(tmp_path):
    registry = HostRegistry(str(tmp_path / "reg.json"))
    registry.publish("alpha", "127.0.0.1", 4242)
    assert registry.lookup("alpha") == ("127.0.0.1", 4242)
    assert registry.lookup("beta") is None
    registry.withdraw("alpha")
    assert registry.lookup("alpha") is None


def test_publish_merges_across_writers(tmp_path):
    """Two registries on the same file (two serve processes) must not
    clobber each other's entries."""
    path = str(tmp_path / "reg.json")
    HostRegistry(path).publish("alpha", "127.0.0.1", 1000)
    HostRegistry(path).publish("beta", "127.0.0.1", 2000)
    merged = HostRegistry(path).read()
    assert merged == {"alpha": ("127.0.0.1", 1000),
                      "beta": ("127.0.0.1", 2000)}


def test_missing_and_corrupt_files_read_empty(tmp_path):
    registry = HostRegistry(str(tmp_path / "absent.json"))
    assert registry.read() == {}
    corrupt = tmp_path / "corrupt.json"
    corrupt.write_text("{half a json doc")
    assert HostRegistry(str(corrupt)).read() == {}


def test_write_is_atomic_replace(tmp_path):
    """Publishing leaves no temp droppings and the file is always a
    complete JSON document."""
    path = tmp_path / "reg.json"
    registry = HostRegistry(str(path))
    for port in range(20):
        registry.publish("alpha", "127.0.0.1", 5000 + port)
        json.loads(path.read_text())  # never torn
    assert [name for name in os.listdir(str(tmp_path))
            if name.startswith(".registry-")] == []


def test_simultaneous_publishers_lose_no_entries(tmp_path):
    """The lost-update regression: N processes publishing at once must
    all survive — read-merge-write without the flock drops entries when
    every writer starts from the empty file."""
    path = str(tmp_path / "reg.json")
    code = ("import sys; from repro.realnet.registry import "
            "HostRegistry; HostRegistry(sys.argv[1]).publish("
            "sys.argv[2], '127.0.0.1', int(sys.argv[3]))")
    hosts = ["h%d" % i for i in range(8)]
    workers = [subprocess.Popen(
        [sys.executable, "-c", code, path, host, str(7000 + i)],
        env=dict(os.environ, PYTHONPATH=os.pathsep.join(sys.path)))
        for i, host in enumerate(hosts)]
    for worker in workers:
        assert worker.wait(timeout=30) == 0
    merged = HostRegistry(path).read()
    assert sorted(merged) == hosts


def test_remove_files_cleans_lock(tmp_path):
    path = str(tmp_path / "reg.json")
    registry = HostRegistry(path)
    registry.publish("alpha", "127.0.0.1", 1)
    assert os.path.exists(path) and os.path.exists(path + ".lock")
    registry.remove_files()
    assert not os.path.exists(path)
    assert not os.path.exists(path + ".lock")


def test_wait_for_times_out(tmp_path):
    registry = HostRegistry(str(tmp_path / "reg.json"))
    registry.publish("alpha", "127.0.0.1", 1)
    assert registry.wait_for(["alpha"], timeout_s=0.2)
    assert not registry.wait_for(["alpha", "ghost"], timeout_s=0.2,
                                 poll_s=0.01)
