"""Property-based tests for broadcast dedup, routing, load averaging,
and the calibrated latency model."""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.broadcast import BroadcastEngine
from repro.core.routing import RouteCache
from repro.ids import BroadcastId, GlobalPid
from repro.netsim.latency import HostClass, kernel_message_delay_ms, load_factor
from repro.unixsim.loadavg import LoadAverage


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


# ----------------------------------------------------------------------
# Broadcast dedup
# ----------------------------------------------------------------------

@given(st.lists(st.tuples(st.sampled_from(["a", "b", "c"]),
                          st.integers(min_value=0, max_value=5),
                          st.floats(min_value=0, max_value=100)),
                min_size=1, max_size=50))
@settings(max_examples=200, deadline=None)
def test_within_window_each_stamp_accepted_at_most_once(arrivals):
    clock = FakeClock()
    engine = BroadcastEngine("me", 1_000_000.0, clock, lambda: "s")
    accepted = set()
    for origin, seq, t in arrivals:
        clock.now = max(clock.now, t)
        stamp = BroadcastId.make(origin, 0.0, seq, "s")
        if engine.should_accept(stamp):
            assert stamp.key() not in accepted
            accepted.add(stamp.key())


@given(st.text(min_size=1, max_size=8), st.text(min_size=1, max_size=8))
@settings(max_examples=100, deadline=None)
def test_signature_verifies_only_with_signing_secret(secret, other):
    stamp = BroadcastId.make("h", 1.0, 1, secret)
    assert stamp.verify(secret)
    if other != secret:
        assert not stamp.verify(other)


# ----------------------------------------------------------------------
# Route cache
# ----------------------------------------------------------------------

paths = st.lists(st.sampled_from(["h%d" % i for i in range(6)]),
                 min_size=2, max_size=5, unique=True)


@given(st.lists(paths, max_size=20))
@settings(max_examples=200, deadline=None)
def test_route_cache_invariants(learned_paths):
    cache = RouteCache("h0")
    for path in learned_paths:
        cache.learn(list(path))
    for dest in cache.destinations():
        route = cache.route_to(dest)
        assert route[0] == "h0"
        assert route[-1] == dest
        assert dest != "h0"
        # No repeated hops in a stored route.
        assert len(route) == len(set(route))


@given(st.lists(paths, max_size=20), st.sampled_from(
    ["h%d" % i for i in range(6)]))
@settings(max_examples=200, deadline=None)
def test_invalidate_removes_every_route_via_peer(learned_paths, broken):
    cache = RouteCache("h0")
    for path in learned_paths:
        cache.learn(list(path))
    cache.invalidate_via(broken)
    for dest in cache.destinations():
        assert broken not in cache.route_to(dest)[1:]


# ----------------------------------------------------------------------
# Load average
# ----------------------------------------------------------------------

@given(st.lists(st.tuples(st.floats(min_value=0.1, max_value=10_000.0),
                          st.integers(min_value=0, max_value=8)),
                min_size=1, max_size=40))
@settings(max_examples=200, deadline=None)
def test_load_average_bounded_by_extremes(steps):
    clock = FakeClock()
    runnable = [0]
    loadavg = LoadAverage(clock, lambda: runnable[0])
    max_n = 0
    for dt, n in steps:
        clock.now += dt
        runnable[0] = n
        loadavg.note_change()
        max_n = max(max_n, n)
        value = loadavg.value()
        assert -1e-9 <= value <= max_n + 1e-9
        assert not math.isnan(value)


@given(st.integers(min_value=0, max_value=8),
       st.floats(min_value=1.0, max_value=1_000_000.0))
@settings(max_examples=100, deadline=None)
def test_load_average_converges_to_constant_count(n, duration):
    clock = FakeClock()
    loadavg = LoadAverage(clock, lambda: n, tau_ms=1_000.0)
    clock.now = duration
    value = loadavg.value()
    expected = n * (1 - math.exp(-duration / 1_000.0))
    assert abs(value - expected) < 1e-6


# ----------------------------------------------------------------------
# Latency model
# ----------------------------------------------------------------------

@given(st.sampled_from(list(HostClass)),
       st.floats(min_value=0.0, max_value=10.0),
       st.floats(min_value=0.0, max_value=10.0))
@settings(max_examples=200, deadline=None)
def test_kernel_delay_monotone_in_load(host_class, la1, la2):
    lo, hi = sorted((la1, la2))
    assert kernel_message_delay_ms(host_class, lo) <= \
        kernel_message_delay_ms(host_class, hi) + 1e-9


@given(st.sampled_from(list(HostClass)),
       st.floats(min_value=0.0, max_value=10.0),
       st.integers(min_value=1, max_value=4096))
@settings(max_examples=200, deadline=None)
def test_kernel_delay_positive_and_size_monotone(host_class, la, size):
    base = kernel_message_delay_ms(host_class, la, size_bytes=size)
    bigger = kernel_message_delay_ms(host_class, la, size_bytes=size + 64)
    assert base > 0
    assert bigger >= base


@given(st.sampled_from(list(HostClass)),
       st.floats(min_value=0.0, max_value=10.0))
@settings(max_examples=100, deadline=None)
def test_load_factor_at_least_one(host_class, la):
    assert load_factor(host_class, la) >= 1.0 - 1e-9


# ----------------------------------------------------------------------
# GlobalPid
# ----------------------------------------------------------------------

@given(st.text(alphabet=st.characters(blacklist_characters="<>",
                                      blacklist_categories=("Cs",)),
               min_size=1, max_size=20),
       st.integers(min_value=0, max_value=30_000))
@settings(max_examples=200, deadline=None)
def test_global_pid_parse_roundtrip(host, pid):
    assume(host == host.strip())
    gpid = GlobalPid(host, pid)
    assert GlobalPid.parse(str(gpid)) == gpid
