"""Property-based tests for the snapshot forest invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.snapshot import ProcessRecord, SnapshotForest
from repro.ids import GlobalPid

HOSTS = ["a", "b", "c"]


@st.composite
def forests(draw):
    """Random well-formed record sets: each record's parent is either
    None or an earlier record (guaranteeing acyclic genealogy), with a
    random subset marked exited."""
    count = draw(st.integers(min_value=0, max_value=25))
    records = []
    for index in range(count):
        host = draw(st.sampled_from(HOSTS))
        gpid = GlobalPid(host, 100 + index)
        if records and draw(st.booleans()):
            parent = draw(st.sampled_from(records)).gpid
        else:
            parent = None
        state = draw(st.sampled_from(
            ["running", "sleeping", "stopped", "exited"]))
        records.append(ProcessRecord(
            gpid=gpid, parent=parent, user="u", command="c%d" % index,
            state=state, start_ms=float(index)))
    return SnapshotForest(0.0, records=records)


@given(forests())
@settings(max_examples=200, deadline=None)
def test_every_record_reachable_from_exactly_one_root(forest):
    seen = []
    for root in forest.roots():
        seen.append(root)
        seen.extend(forest.descendants(root))
    assert sorted(seen) == sorted(forest.records)
    assert len(seen) == len(set(seen))


@given(forests())
@settings(max_examples=200, deadline=None)
def test_children_are_consistent_with_parents(forest):
    for gpid, record in forest.records.items():
        for child in forest.children(gpid):
            assert forest.records[child].parent == gpid
        if record.parent is not None and record.parent in forest.records:
            assert gpid in forest.children(record.parent)


@given(forests())
@settings(max_examples=200, deadline=None)
def test_prune_keeps_all_alive_and_only_useful_exited(forest):
    pruned = forest.prune_exited_leaves()
    # Every living process survives pruning.
    for gpid, record in forest.records.items():
        if not record.exited:
            assert gpid in pruned
    # Every retained exited process has a living descendant.
    for gpid in pruned.records:
        record = pruned.records[gpid]
        if record.exited:
            descendants = forest.descendants(gpid)
            assert any(not forest.records[d].exited for d in descendants)


@given(forests())
@settings(max_examples=200, deadline=None)
def test_prune_is_idempotent(forest):
    once = forest.prune_exited_leaves()
    twice = once.prune_exited_leaves()
    assert set(once.records) == set(twice.records)


@given(forests())
@settings(max_examples=200, deadline=None)
def test_subtree_hosts_subset_of_forest_hosts(forest):
    for root in forest.roots():
        assert forest.subtree_hosts(root) <= forest.hosts() | {root.host}


@given(forests())
@settings(max_examples=100, deadline=None)
def test_records_roundtrip_through_wire_form(forest):
    for record in forest.records.values():
        assert ProcessRecord.from_dict(record.to_dict()) == record
