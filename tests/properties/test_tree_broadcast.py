"""Property-based tests for per-source broadcast trees.

The tree protocol is exercised here as a pure message-passing
simulation over the real :class:`~repro.core.spantree.SpanTreeTable`
state machine and the real :func:`~repro.core.topology.sparse_neighbors`
graphs — random membership, random degree, random flood arrival order —
checking the invariants the live overlay depends on:

* a flood reaches every host of a connected sparse overlay, and the
  tree it leaves behind (after duplicate-drop pruning) reaches every
  host too;
* steady-state tree broadcasts cross at most ``2 · (n − 1)`` links
  (exactly ``n − 1`` when no state was torn down in between);
* after a tree link is severed and the repair climb reaches the
  source, the fallback flood re-covers the remaining graph and
  rebuilds a complete tree.
"""

import random
from collections import deque

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.spantree import SpanTreeTable
from repro.core.topology import sparse_neighbors


def build_overlay(n, degree):
    hosts = ["h%03d" % i for i in range(n)]
    graph = {host: sparse_neighbors(host, hosts, degree)
             for host in hosts}
    return hosts, graph


def flood(tables, graph, source, epoch, rng):
    """One flood-mode broadcast: FIFO delivery with randomised fanout
    order, reverse-path parents, duplicate-drop prune feedback (the
    wire protocol, minus the wire).  Returns the set of covered
    hosts."""
    covered = {source}
    fanout = sorted(graph[source])
    rng.shuffle(fanout)
    tables[source].on_flood(source, None, epoch, fanout)
    queue = deque((source, peer) for peer in fanout)
    while queue:
        sender, host = queue.popleft()
        if host in covered:
            # Duplicate: the receiver tells the sender this edge is
            # not a tree edge (TREE_PRUNE).
            tables[sender].on_prune(source, epoch, host)
            continue
        covered.add(host)
        targets = sorted(graph[host] - {sender})
        rng.shuffle(targets)
        tables[host].on_flood(source, sender, epoch, targets)
        queue.extend((host, peer) for peer in targets)
    return covered


def tree_broadcast(tables, graph, source):
    """One tree-mode broadcast; returns (covered, forwards, stateless)
    where stateless lists hosts that would have sent TREE_REPAIR."""
    covered = {source}
    forwards = 0
    stateless = []
    stack = [source]
    while stack:
        host = stack.pop()
        children = tables[host].children(source) or set()
        for child in sorted(children & graph[host]):
            forwards += 1
            if not tables[child].has_tree(source):
                stateless.append(child)
                continue
            if child not in covered:
                covered.add(child)
                stack.append(child)
    return covered, forwards, stateless


def repair_climb(tables, source, reporter):
    """Relay TREE_REPAIR parent-by-parent until the source drops its
    tree (the live protocol's _repair_toward loop)."""
    host = reporter
    hops = 0
    while host != source and hops <= len(tables):
        parent = tables[host].parent(source)
        if parent is None:
            return
        host = parent
        hops += 1
    tables[source].drop(source)


@given(n=st.integers(min_value=2, max_value=64),
       degree=st.sampled_from([2, 4, 6]),
       seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=40, deadline=None)
def test_flood_then_tree_covers_every_host(n, degree, seed):
    hosts, graph = build_overlay(n, degree)
    tables = {host: SpanTreeTable(host) for host in hosts}
    rng = random.Random(seed)
    source = rng.choice(hosts)

    assert flood(tables, graph, source, epoch=1, rng=rng) == set(hosts)
    covered, forwards, stateless = tree_broadcast(tables, graph, source)
    assert covered == set(hosts), "pruned tree lost hosts"
    assert stateless == []
    # Steady state: at most 2(n−1) links; with no interleaving churn
    # the pruned tree is exact.
    assert forwards <= 2 * (n - 1)
    assert forwards == n - 1


@given(n=st.integers(min_value=3, max_value=48),
       degree=st.sampled_from([2, 4, 6]),
       seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=40, deadline=None)
def test_severed_tree_link_heals_by_reflood(n, degree, seed):
    hosts, graph = build_overlay(n, degree)
    tables = {host: SpanTreeTable(host) for host in hosts}
    rng = random.Random(seed)
    source = rng.choice(hosts)
    flood(tables, graph, source, epoch=1, rng=rng)

    # Sever a random tree edge (parent -> child).
    child = rng.choice([h for h in hosts
                        if tables[h].parent(source) is not None])
    parent = tables[child].parent(source)
    graph[parent] = graph[parent] - {child}
    graph[child] = graph[child] - {parent}
    for end, lost in ((parent, child), (child, parent)):
        orphaned, severed = tables[end].on_link_lost(lost)
        for src in severed:
            repair_climb(tables, source=src, reporter=end)
    # The ring keeps the remaining graph connected (only one edge is
    # gone), but the tree is now broken: the next broadcast must fall
    # back to a flood...
    assert not tables[source].has_tree(source), \
        "repair climb failed to reach the source"
    covered = flood(tables, graph, source, epoch=2, rng=rng)
    assert covered == set(hosts), "fallback flood lost hosts"
    # ...and that flood rebuilds a complete tree again.
    covered, forwards, stateless = tree_broadcast(tables, graph, source)
    assert covered == set(hosts)
    assert stateless == []
    assert forwards <= 2 * (n - 1)


@given(n=st.integers(min_value=2, max_value=48),
       degree=st.sampled_from([2, 4, 6]),
       seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=30, deadline=None)
def test_stale_prunes_never_break_coverage(n, degree, seed):
    """Prunes from a superseded flood arrive late: the epoch rule must
    ignore them, keeping the newer tree complete."""
    hosts, graph = build_overlay(n, degree)
    tables = {host: SpanTreeTable(host) for host in hosts}
    rng = random.Random(seed)
    source = rng.choice(hosts)
    flood(tables, graph, source, epoch=1, rng=rng)
    # Replay every epoch-1 prune again after the epoch-2 flood: each
    # must be refused (epoch < entry epoch) or harmless.
    flood(tables, graph, source, epoch=2, rng=rng)
    for host in hosts:
        for peer in sorted(graph[host]):
            tables[host].on_prune(source, 1, peer)
    covered, _, stateless = tree_broadcast(tables, graph, source)
    assert covered == set(hosts)
    assert stateless == []
