"""Property-based tests for the datagram ARQ under random loss."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ControlAction, PPMClient, PPMConfig, spinner_spec

from ..core.conftest import build_world


DGRAM = PPMConfig(transport="datagram", datagram_rto_ms=150.0,
                  datagram_max_retries=8)


@given(loss=st.floats(min_value=0.0, max_value=0.4),
       seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=15, deadline=None)
def test_operations_exactly_once_under_loss(loss, seed):
    """For any loss rate up to 40% and any seed, a control sequence
    completes with exactly-once signal semantics."""
    world = build_world(seed=seed, config=DGRAM)
    client = PPMClient(world, "lfc", "alpha").connect()
    gpid = client.create_process("target", host="beta",
                                 program=spinner_spec(None))
    world.datagrams.loss_rate = loss
    proc = world.host("beta").kernel.procs.get(gpid.pid)
    for round_number in range(3):
        client.stop(gpid)
        assert proc.state.value == "stopped"
        client.cont(gpid)
        assert proc.state.value == "running"
    # SIGSTOP/SIGCONT delivered exactly once per request.
    assert proc.rusage.signals_received == 6


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=10, deadline=None)
def test_gather_complete_under_loss(seed):
    world = build_world(seed=seed, config=DGRAM)
    client = PPMClient(world, "lfc", "alpha").connect()
    expected = set()
    for host in ("beta", "gamma"):
        expected.add(client.create_process("job-%s" % host, host=host,
                                           program=spinner_spec(None)))
    world.datagrams.loss_rate = 0.3
    forest = client.snapshot()
    assert set(forest.records) == expected
    assert not forest.missing_hosts
