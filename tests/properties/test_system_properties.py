"""Whole-system property test: random operation sequences against a
live PPM session keep the paper's invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    ControlAction,
    HostClass,
    PPMClient,
    PPMError,
    World,
    install,
    spinner_spec,
    worker_spec,
)

HOSTS = ["h0", "h1", "h2"]

#: One step of the random schedule.
operations = st.sampled_from(
    ["create_local", "create_remote", "stop", "cont", "kill",
     "snapshot", "advance", "crash_h2", "reboot_h2"])


def build():
    world = World(seed=23)
    for name in HOSTS:
        world.add_host(name, HostClass.VAX_780)
    world.ethernet()
    world.add_user("u", 1001)
    install(world)
    world.write_recovery_file("u", ["h0"])
    client = PPMClient(world, "u", "h0").connect()
    return world, client


@given(st.lists(operations, min_size=1, max_size=25),
       st.randoms(use_true_random=False))
@settings(max_examples=25, deadline=None)
def test_random_schedules_preserve_invariants(ops, rng):
    world, client = build()
    created = []
    counter = [0]

    def pick_target():
        return rng.choice(created) if created else None

    for op in ops:
        try:
            if op == "create_local":
                counter[0] += 1
                created.append(client.create_process(
                    "job%d" % counter[0], program=spinner_spec(None)))
            elif op == "create_remote":
                counter[0] += 1
                created.append(client.create_process(
                    "job%d" % counter[0], host=rng.choice(HOSTS[1:]),
                    program=worker_spec(5_000.0)))
            elif op in ("stop", "cont", "kill"):
                target = pick_target()
                if target is not None:
                    action = {"stop": ControlAction.STOP,
                              "cont": ControlAction.CONTINUE,
                              "kill": ControlAction.KILL}[op]
                    client.control(target, action)
            elif op == "snapshot":
                forest = client.snapshot(prune=False)
                # Invariant: every live created process on a live host
                # appears in the snapshot.
                for gpid in created:
                    host = world.host(gpid.host)
                    if not host.up:
                        continue
                    proc = host.kernel.procs.find(gpid.pid)
                    if proc is not None and proc.alive:
                        assert gpid in forest
                # Invariant: no duplicate records (by construction of
                # the dict) and genealogy acyclic.
                seen = []
                for root in forest.roots():
                    seen.append(root)
                    seen.extend(forest.descendants(root))
                assert len(seen) == len(set(seen)) == len(forest)
            elif op == "advance":
                world.run_for(2_000.0)
            elif op == "crash_h2":
                world.host("h2").crash()
            elif op == "reboot_h2":
                world.host("h2").reboot()
        except PPMError:
            # Expected when targets died or hosts are down; the session
            # itself must survive.
            pass
        # Invariant: the home LPM stays alive through everything.
        assert world.lpms[("h0", "u")].alive

    # The session still answers after the whole schedule.
    assert client.ping()["ok"]
