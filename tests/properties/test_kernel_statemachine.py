"""Property-based state-machine test for the simulated kernel.

Random sequences of syscalls (spawn, fork, exit, signals, reap, open,
close) against invariants that must hold after every step:

* parent/child links are mutually consistent;
* the run-queue count equals the number of RUNNING processes;
* no reaped (DEAD) process remains in the table;
* every zombie's resources are finalised;
* descriptor tables only exist on live processes.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NoSuchProcessError, ProcessPermissionError
from repro.netsim import HostClass, Simulator
from repro.unixsim.kernel import INIT_PID, Kernel
from repro.unixsim.process import ProcState
from repro.unixsim.signals import Signal

OPS = st.sampled_from(["spawn", "fork", "exit", "stop", "cont",
                       "kill", "term", "reap", "open", "close",
                       "advance"])


def check_invariants(kernel: Kernel) -> None:
    table = kernel.procs
    running = 0
    for proc in table:
        assert proc.state is not ProcState.DEAD, \
            "reaped process still in table"
        if proc.state is ProcState.RUNNING:
            running += 1
        # Parent/child mutual consistency.
        for child_pid in proc.children:
            child = table.find(child_pid)
            if child is not None:
                assert child.ppid == proc.pid
        parent = table.find(proc.ppid)
        if parent is not None and proc.pid != INIT_PID:
            assert proc.pid in parent.children
        if proc.state is ProcState.ZOMBIE:
            assert proc.end_ms is not None
            assert not proc.fd_table, "zombie with open descriptors"
    assert table.running_count() == running


@given(st.lists(st.tuples(OPS, st.integers(min_value=0, max_value=30)),
                min_size=1, max_size=60))
@settings(max_examples=100, deadline=None)
def test_random_syscall_sequences_preserve_invariants(steps):
    sim = Simulator(seed=5)
    kernel = Kernel(sim, "host", HostClass.VAX_780)
    pids = []
    fds = {}

    def pick(index):
        return pids[index % len(pids)] if pids else None

    for op, index in steps:
        target = pick(index)
        try:
            if op == "spawn":
                proc = kernel.spawn(1001, "job%d" % len(pids))
                pids.append(proc.pid)
            elif op == "fork" and target is not None:
                proc = kernel.fork(target)
                pids.append(proc.pid)
            elif op == "exit" and target is not None:
                kernel.exit(target, status=index % 3)
            elif op == "stop" and target is not None:
                kernel.kill(target, Signal.SIGSTOP, sender_uid=1001)
            elif op == "cont" and target is not None:
                kernel.kill(target, Signal.SIGCONT, sender_uid=1001)
            elif op == "kill" and target is not None:
                kernel.kill(target, Signal.SIGKILL, sender_uid=1001)
            elif op == "term" and target is not None:
                kernel.kill(target, Signal.SIGTERM, sender_uid=1001)
            elif op == "reap" and target is not None:
                kernel.reap(target)
            elif op == "open" and target is not None:
                fd = kernel.open_file(target, "/f%d" % index)
                fds.setdefault(target, []).append(fd)
            elif op == "close" and target is not None:
                open_fds = fds.get(target, [])
                if open_fds:
                    kernel.close_file(target, open_fds.pop())
            elif op == "advance":
                sim.run_for(float(index + 1))
        except (NoSuchProcessError, ProcessPermissionError):
            pass  # racing a dead target is legal; invariants must hold
        check_invariants(kernel)

    # Drain: kill everything, reap through init, table returns to just
    # init (plus nothing else).
    for pid in pids:
        try:
            kernel.kill(pid, Signal.SIGKILL, sender_uid=1001)
        except (NoSuchProcessError, ProcessPermissionError):
            pass
        check_invariants(kernel)
    sim.run_for(1_000.0)
    for pid in pids:
        kernel.reap(pid) if kernel.procs.find(pid) else None
    kernel.reap(INIT_PID)
    check_invariants(kernel)
    survivors = [proc.pid for proc in kernel.procs if proc.alive]
    assert survivors == [INIT_PID]
