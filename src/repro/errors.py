"""Exception hierarchy for the PPM reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch one base class.  The subclasses mirror the failure modes
the paper discusses: authentication failures at channel creation (section 3),
adoption refusal across users (section 4), lost connections and crashed
hosts (section 5), and plain bad requests.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigError(ReproError):
    """A configuration value is out of range or inconsistent."""


class SimulationError(ReproError):
    """The discrete-event simulator was driven incorrectly."""


class NoSuchHostError(ReproError):
    """A named host does not exist in the network."""


class HostDownError(ReproError):
    """The target host has crashed or is unreachable."""


class UnreachableHostError(HostDownError):
    """No network path currently exists to the target host."""


class ConnectionClosedError(ReproError):
    """A stream connection was used after it closed or broke."""


class NoSuchProcessError(ReproError):
    """A pid (or <host, pid> identity) does not name a live process."""


class ProcessPermissionError(ReproError):
    """A signal or control request was denied by uid checks."""


class AdoptionError(ReproError):
    """Adoption failed; the process and the PPM belong to different users."""


class AuthenticationError(ReproError):
    """Channel-creation authentication failed (user-level masquerade)."""


class PPMError(ReproError):
    """A PPM-level request could not be satisfied."""


class NoLPMError(PPMError):
    """No local process manager is available where one was required."""


class RequestTimeoutError(PPMError):
    """A request's handler never received a response (section 6)."""


class RecoveryError(PPMError):
    """Crash recovery could not reach any host on the recovery list."""
