"""Trace-event vocabulary.

Every observable action in the reproduction — kernel events relayed to
an LPM, LPM lifecycle steps, connections, broadcasts, recovery moves —
is recorded as a :class:`TraceEvent`.  The granularity of recording is
user-settable per session (section 2: the LPMs "accept parameters that
determine the amount of process events recorded").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from ..ids import GlobalPid


class TraceEventType(Enum):
    """Everything the recorder knows how to label."""

    # Kernel-originated process events (relayed via the kernel socket).
    FORK = "fork"
    EXEC = "exec"
    EXIT = "exit"
    SIGNAL = "signal"
    STOPPED = "stopped"
    CONTINUED = "continued"
    FILE_OPENED = "file_opened"
    FILE_CLOSED = "file_closed"

    # PPM lifecycle.
    LPM_CREATED = "lpm_created"
    LPM_EXPIRED = "lpm_expired"
    LPM_DIED = "lpm_died"
    ADOPTED = "adopted"
    PROCESS_CREATED = "process_created"

    # The four numbered steps of Figure 2.
    CREATION_STEP = "creation_step"

    # Communication infrastructure.
    CONN_OPEN = "conn_open"
    CONN_CLOSED = "conn_closed"
    TOOL_REQUEST = "tool_request"
    SIBLING_MESSAGE = "sibling_message"
    USER_IPC = "user_ipc"
    BROADCAST_SENT = "broadcast_sent"
    BROADCAST_FORWARDED = "broadcast_forwarded"
    BROADCAST_DUPLICATE = "broadcast_duplicate"
    ROUTE_LEARNED = "route_learned"
    KERNEL_MESSAGE = "kernel_message"

    # Crash recovery (section 5).
    FAILURE_DETECTED = "failure_detected"
    CCS_CONTACTED = "ccs_contacted"
    CCS_SEARCH = "ccs_search"
    CCS_ASSUMED = "ccs_assumed"
    CCS_PROBE = "ccs_probe"
    CCS_RELINQUISHED = "ccs_relinquished"
    TIME_TO_DIE_ARMED = "time_to_die_armed"
    TIME_TO_DIE_FIRED = "time_to_die_fired"
    RECOVERY_RESUMED = "recovery_resumed"

    # Triggers.
    TRIGGER_FIRED = "trigger_fired"

    # Continuous watch (repro.ops.watch): a health check crossed its
    # onset or clear edge between two sweeps.
    WATCH_EDGE = "watch_edge"


class Granularity(Enum):
    """How much the recorder keeps, coarse to fine."""

    OFF = 0
    #: Lifecycle only: LPMs, process creation/exit, recovery.
    COARSE = 1
    #: Plus control events: signals, stops, continues, tool requests.
    MEDIUM = 2
    #: Everything, including per-message communication events.
    FINE = 3


#: The event classes admitted at each granularity.
_COARSE = {
    TraceEventType.FORK, TraceEventType.EXEC, TraceEventType.EXIT,
    TraceEventType.LPM_CREATED, TraceEventType.LPM_EXPIRED,
    TraceEventType.LPM_DIED, TraceEventType.ADOPTED,
    TraceEventType.PROCESS_CREATED, TraceEventType.CREATION_STEP,
    TraceEventType.FAILURE_DETECTED, TraceEventType.CCS_CONTACTED,
    TraceEventType.CCS_SEARCH, TraceEventType.CCS_ASSUMED,
    TraceEventType.CCS_PROBE, TraceEventType.CCS_RELINQUISHED,
    TraceEventType.TIME_TO_DIE_ARMED, TraceEventType.TIME_TO_DIE_FIRED,
    TraceEventType.RECOVERY_RESUMED, TraceEventType.TRIGGER_FIRED,
    TraceEventType.WATCH_EDGE,
}
_MEDIUM_EXTRA = {
    TraceEventType.SIGNAL, TraceEventType.STOPPED, TraceEventType.CONTINUED,
    TraceEventType.FILE_OPENED, TraceEventType.FILE_CLOSED,
    TraceEventType.TOOL_REQUEST, TraceEventType.CONN_OPEN,
    TraceEventType.CONN_CLOSED,
}


def admitted(event_type: TraceEventType, granularity: Granularity) -> bool:
    """Whether an event class is recorded at the given granularity."""
    if granularity is Granularity.OFF:
        return False
    if granularity is Granularity.FINE:
        return True
    if event_type in _COARSE:
        return True
    if granularity is Granularity.MEDIUM and event_type in _MEDIUM_EXTRA:
        return True
    return False


@dataclass(frozen=True)
class TraceEvent:
    """One recorded occurrence."""

    time_ms: float
    event_type: TraceEventType
    host: str
    user: str = ""
    gpid: Optional[GlobalPid] = None
    details: dict = field(default_factory=dict)

    def matches(self, event_type: Optional[TraceEventType] = None,
                host: Optional[str] = None,
                gpid: Optional[GlobalPid] = None) -> bool:
        """Simple conjunctive filter used by history queries."""
        if event_type is not None and self.event_type is not event_type:
            return False
        if host is not None and self.host != host:
            return False
        if gpid is not None and self.gpid != gpid:
            return False
        return True

    def __str__(self) -> str:
        subject = str(self.gpid) if self.gpid is not None else self.host
        return "[%10.1f ms] %-20s %s %s" % (
            self.time_ms, self.event_type.value, subject,
            self.details if self.details else "")
