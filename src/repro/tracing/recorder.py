"""The trace recorder: an append-only event log with granularity control
and live subscribers (the hook the trigger engine attaches to)."""

from __future__ import annotations

from typing import Callable, List, Optional

from ..ids import GlobalPid
from .events import Granularity, TraceEvent, TraceEventType, admitted


class TraceRecorder:
    """Collects :class:`TraceEvent` records for one world or session.

    The recorder is deliberately dumb storage; querying and aggregation
    live in :mod:`repro.tracing.history` and
    :mod:`repro.tracing.reduction`.
    """

    def __init__(self, now_fn: Callable[[], float],
                 granularity: Granularity = Granularity.FINE,
                 capacity: Optional[int] = None) -> None:
        self._now_fn = now_fn
        self.granularity = granularity
        self.capacity = capacity
        self.events: List[TraceEvent] = []
        self.dropped = 0
        self._subscribers: List[Callable[[TraceEvent], None]] = []

    def set_granularity(self, granularity: Granularity) -> None:
        """Adjust how much is recorded from now on."""
        self.granularity = granularity

    def subscribe(self, callback: Callable[[TraceEvent], None]) -> None:
        """Receive every admitted event as it is recorded."""
        self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[TraceEvent], None]) -> None:
        if callback in self._subscribers:
            self._subscribers.remove(callback)

    def record(self, event_type: TraceEventType, host: str,
               user: str = "", gpid: Optional[GlobalPid] = None,
               **details) -> Optional[TraceEvent]:
        """Record one event; returns it, or None when filtered out."""
        if not admitted(event_type, self.granularity):
            self.dropped += 1
            return None
        event = TraceEvent(time_ms=self._now_fn(), event_type=event_type,
                           host=host, user=user, gpid=gpid, details=details)
        if self.capacity is not None and len(self.events) >= self.capacity:
            self.events.pop(0)
        self.events.append(event)
        for subscriber in list(self._subscribers):
            subscriber(event)
        return event

    def select(self, event_type: Optional[TraceEventType] = None,
               host: Optional[str] = None,
               gpid: Optional[GlobalPid] = None,
               since_ms: Optional[float] = None,
               until_ms: Optional[float] = None) -> List[TraceEvent]:
        """Filtered view of the log."""
        result = []
        for event in self.events:
            if not event.matches(event_type, host, gpid):
                continue
            if since_ms is not None and event.time_ms < since_ms:
                continue
            if until_ms is not None and event.time_ms > until_ms:
                continue
            result.append(event)
        return result

    def count(self, event_type: Optional[TraceEventType] = None) -> int:
        return len(self.select(event_type=event_type))

    def clear(self) -> None:
        self.events.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self.events)
