"""Data-reduction tools.

The PPM "interfaces with several data analysis and data representation
tools" (abstract).  These functions are the analysis side: they reduce
raw trace histories into the summaries users act on.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, List, Optional, Tuple

from ..ids import GlobalPid
from .events import TraceEvent, TraceEventType


def event_counts(events: List[TraceEvent]) -> Dict[str, int]:
    """How many events of each type occurred."""
    return dict(Counter(event.event_type.value for event in events))


def process_lifetimes(events: List[TraceEvent],
                      now_ms: Optional[float] = None
                      ) -> Dict[GlobalPid, Tuple[float, Optional[float]]]:
    """Map each process to ``(first_seen_ms, exit_ms_or_None)``."""
    lifetimes: Dict[GlobalPid, Tuple[float, Optional[float]]] = {}
    for event in events:
        if event.gpid is None:
            continue
        start, end = lifetimes.get(event.gpid, (event.time_ms, None))
        start = min(start, event.time_ms)
        if event.event_type is TraceEventType.EXIT:
            end = event.time_ms
        lifetimes[event.gpid] = (start, end)
    return lifetimes


def per_command_usage(records) -> Dict[str, dict]:
    """Aggregate exited-process resource statistics by command name.

    ``records`` is an iterable of objects carrying ``command`` and a
    ``rusage`` dict (the payload of the rstats tool); the result powers
    the paper's "exited process resource consumption statistics" view.
    """
    totals: Dict[str, dict] = defaultdict(
        lambda: {"count": 0, "utime_ms": 0.0, "forks": 0, "signals": 0})
    for record in records:
        rusage = record.rusage if isinstance(record.rusage, dict) else {}
        entry = totals[record.command]
        entry["count"] += 1
        entry["utime_ms"] += rusage.get("utime_ms", 0.0)
        entry["forks"] += rusage.get("forks", 0)
        entry["signals"] += rusage.get("signals", 0)
    return dict(totals)


def message_rate(events: List[TraceEvent], bucket_ms: float
                 ) -> List[Tuple[float, int]]:
    """Communication events per time bucket (IPC activity analysis)."""
    comm_types = {TraceEventType.BROADCAST_SENT,
                  TraceEventType.BROADCAST_FORWARDED,
                  TraceEventType.KERNEL_MESSAGE,
                  TraceEventType.TOOL_REQUEST}
    buckets: Dict[int, int] = defaultdict(int)
    for event in events:
        if event.event_type in comm_types:
            buckets[int(event.time_ms // bucket_ms)] += 1
    return sorted((index * bucket_ms, count)
                  for index, count in buckets.items())


def busiest_hosts(events: List[TraceEvent], top: int = 5
                  ) -> List[Tuple[str, int]]:
    """Hosts ranked by recorded activity."""
    counts = Counter(event.host for event in events)
    return counts.most_common(top)
