"""Structured exporters for graphical front ends.

Section 6: "Work is beginning on graphics interfaces for these tools."
These exporters are that interface: genealogy forests and overlay
topologies as Graphviz DOT, and trace histories as JSON — everything a
display front end needs, without this library prescribing one.
"""

from __future__ import annotations

import json
from typing import Iterable, List, Optional, Sequence

from .events import TraceEvent

#: Fill colours per process state in the DOT rendering.
_STATE_STYLE = {
    "running": ("ellipse", "white"),
    "sleeping": ("ellipse", "lightgrey"),
    "stopped": ("ellipse", "lightyellow"),
    "exited": ("ellipse", "grey80"),
}


def _quote(text: str) -> str:
    return '"%s"' % (str(text).replace('"', r'\"'),)


def forest_to_dot(forest, title: str = "PPM snapshot") -> str:
    """A snapshot forest as a DOT digraph, one cluster per host —
    Figure 1, machine-renderable."""
    lines = ["digraph ppm {",
             "  label=%s;" % _quote(title),
             "  rankdir=TB;",
             "  node [fontsize=10];"]
    for index, host in enumerate(sorted(forest.hosts())):
        lines.append("  subgraph cluster_%d {" % (index,))
        lines.append("    label=%s;" % _quote(host))
        for record in forest.by_host(host):
            shape, fill = _STATE_STYLE.get(record.state,
                                           ("ellipse", "white"))
            lines.append(
                "    %s [label=%s, shape=%s, style=filled, "
                "fillcolor=%s];"
                % (_quote(record.gpid),
                   _quote("%s\\n%s" % (record.command, record.gpid)),
                   shape, fill))
        lines.append("  }")
    for gpid, record in sorted(forest.records.items()):
        if record.parent is not None and record.parent in forest.records:
            lines.append("  %s -> %s;" % (_quote(record.parent),
                                          _quote(gpid)))
    lines.append("}")
    return "\n".join(lines)


def topology_to_dot(hosts: Sequence[str], edges: Iterable[tuple],
                    title: str = "LPM overlay",
                    ccs_host: Optional[str] = None) -> str:
    """The sibling graph as an undirected DOT graph (Figures 3/5); the
    CCS is highlighted when named."""
    lines = ["graph overlay {",
             "  label=%s;" % _quote(title),
             "  node [shape=box, fontsize=10];"]
    for host in hosts:
        attributes = ""
        if host == ccs_host:
            attributes = " [style=filled, fillcolor=lightblue, " \
                         "xlabel=\"CCS\"]"
        lines.append("  %s%s;" % (_quote(host), attributes))
    for a, b in sorted({tuple(sorted(edge)) for edge in edges}):
        lines.append("  %s -- %s;" % (_quote(a), _quote(b)))
    lines.append("}")
    return "\n".join(lines)


def events_to_json(events: List[TraceEvent],
                   indent: Optional[int] = None) -> str:
    """A trace history as JSON records (the historical data gathering
    tool's machine-readable output)."""
    payload = [{
        "time_ms": event.time_ms,
        "type": event.event_type.value,
        "host": event.host,
        "user": event.user,
        "gpid": str(event.gpid) if event.gpid is not None else None,
        "details": event.details,
    } for event in events]
    return json.dumps(payload, indent=indent, sort_keys=True)


def forest_to_json(forest, indent: Optional[int] = None) -> str:
    """A snapshot forest as JSON (records plus structure)."""
    payload = {
        "taken_at_ms": forest.taken_at_ms,
        "missing_hosts": sorted(forest.missing_hosts),
        "roots": [str(root) for root in forest.roots()],
        "records": [forest.records[gpid].to_dict()
                    for gpid in sorted(forest.records)],
    }
    return json.dumps(payload, indent=indent, sort_keys=True)
