"""IPC activity tracing and analysis.

The last tool on section 7's list: "one for IPC activity tracing and
analysis."  At FINE granularity every sibling-LPM message is recorded as
a SIBLING_MESSAGE event (sender host, peer, message kind, size); these
functions reduce that trace into the views an administrator reads —
traffic matrices, per-kind volumes, and hot links.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Tuple

from ..util import format_table
from .events import TraceEvent, TraceEventType


def _sibling_events(events: List[TraceEvent]) -> List[TraceEvent]:
    return [event for event in events
            if event.event_type is TraceEventType.SIBLING_MESSAGE]


def ipc_matrix(events: List[TraceEvent]) -> Dict[Tuple[str, str], dict]:
    """Directed traffic matrix: (sender, peer) -> messages and bytes."""
    matrix: Dict[Tuple[str, str], dict] = defaultdict(
        lambda: {"messages": 0, "bytes": 0, "forwarded": 0})
    for event in _sibling_events(events):
        key = (event.host, event.details.get("peer", "?"))
        cell = matrix[key]
        cell["messages"] += 1
        cell["bytes"] += event.details.get("nbytes", 0)
        if event.details.get("forwarded"):
            cell["forwarded"] += 1
    return dict(matrix)


def ipc_by_kind(events: List[TraceEvent]) -> Dict[str, dict]:
    """Volume per protocol message kind."""
    kinds: Dict[str, dict] = defaultdict(
        lambda: {"messages": 0, "bytes": 0})
    for event in _sibling_events(events):
        cell = kinds[event.details.get("kind", "?")]
        cell["messages"] += 1
        cell["bytes"] += event.details.get("nbytes", 0)
    return dict(kinds)


def hottest_links(events: List[TraceEvent], top: int = 5
                  ) -> List[Tuple[Tuple[str, str], int]]:
    """Undirected link load, busiest first."""
    loads: Dict[Tuple[str, str], int] = defaultdict(int)
    for event in _sibling_events(events):
        pair = tuple(sorted((event.host, event.details.get("peer", "?"))))
        loads[pair] += 1
    return sorted(loads.items(), key=lambda item: (-item[1], item[0]))[:top]


def render_ipc_matrix(events: List[TraceEvent]) -> str:
    """The IPC analysis tool's main view."""
    matrix = ipc_matrix(events)
    if not matrix:
        return "no sibling-LPM traffic recorded (granularity FINE needed)"
    rows = [[src, dst, cell["messages"], cell["bytes"], cell["forwarded"]]
            for (src, dst), cell in sorted(matrix.items())]
    return format_table(
        ["from", "to", "messages", "bytes", "forwards"],
        rows, title="IPC activity between sibling LPMs")


def user_ipc_matrix(events: List[TraceEvent]
                    ) -> Dict[Tuple[str, str], dict]:
    """Traffic between *user processes* (USER_IPC events): sender gpid
    -> peer gpid, messages and bytes.  The conversations the paper
    notes "need not have a common ancestor nor reside in the same
    host" (section 1)."""
    matrix: Dict[Tuple[str, str], dict] = defaultdict(
        lambda: {"messages": 0, "bytes": 0})
    for event in events:
        if event.event_type is not TraceEventType.USER_IPC:
            continue
        key = (str(event.gpid), event.details.get("peer", "?"))
        cell = matrix[key]
        cell["messages"] += 1
        cell["bytes"] += event.details.get("nbytes", 0)
    return dict(matrix)


def render_user_ipc(events: List[TraceEvent]) -> str:
    """The user-process side of the IPC analysis tool."""
    matrix = user_ipc_matrix(events)
    if not matrix:
        return "no user-process IPC recorded (granularity FINE needed)"
    rows = [[src, dst, cell["messages"], cell["bytes"]]
            for (src, dst), cell in sorted(matrix.items())]
    return format_table(["from process", "to process", "messages",
                         "bytes"], rows,
                        title="IPC activity between user processes")


def render_ipc_by_kind(events: List[TraceEvent]) -> str:
    kinds = ipc_by_kind(events)
    if not kinds:
        return "no sibling-LPM traffic recorded (granularity FINE needed)"
    rows = [[kind, cell["messages"], cell["bytes"]]
            for kind, cell in sorted(kinds.items(),
                                     key=lambda item: -item[1]["messages"])]
    return format_table(["message kind", "messages", "bytes"], rows,
                        title="IPC volume by protocol message kind")
