"""Text renderers — the data-representation tools.

The paper's figures are architecture drawings; these renderers
regenerate them from live system state:

* :func:`render_forest` — Figure 1, the genealogical snapshot of a PPM
  spanning hosts (exited processes marked, forests allowed);
* :func:`render_creation_steps` — Figure 2, the four LPM creation steps;
* :func:`render_topology` — Figures 3 and 5, the LPM connection graphs;
* :func:`render_endpoints` — Figure 4, an LPM's communication end points;
* :func:`render_timeline` — a trace-history view for the history tools.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from .events import TraceEvent, TraceEventType


def render_forest(forest) -> str:
    """ASCII genealogy of a snapshot (duck-typed to
    :class:`repro.core.snapshot.SnapshotForest`).

    Processes are identified by ``<host, pid>`` exactly as in Figure 5;
    exited processes whose children live on are marked ``(exited)``
    (section 2: "for the display of a genealogical distributed
    computation snapshot we mark the process as exited").
    """
    lines: List[str] = []
    lines.append("snapshot at %.1f ms" % (forest.taken_at_ms,))
    if forest.missing_hosts:
        lines.append("  (no information from: %s)"
                     % ", ".join(sorted(forest.missing_hosts)))

    def walk(gpid, prefix: str, is_last: bool) -> None:
        record = forest.records[gpid]
        connector = "`-- " if is_last else "|-- "
        marker = ""
        if record.state == "exited":
            marker = " (exited)"
        elif record.state == "stopped":
            marker = " (stopped)"
        lines.append("%s%s%s %s%s" % (prefix, connector, gpid,
                                      record.command, marker))
        children = forest.children(gpid)
        child_prefix = prefix + ("    " if is_last else "|   ")
        for index, child in enumerate(children):
            walk(child, child_prefix, index == len(children) - 1)

    roots = forest.roots()
    for index, root in enumerate(roots):
        walk(root, "", index == len(roots) - 1)
    if not roots:
        lines.append("  (no processes)")
    return "\n".join(lines)


def render_topology(title: str, hosts: Sequence[str],
                    edges: Iterable[tuple]) -> str:
    """Adjacency rendering of an LPM interconnection graph."""
    lines = [title]
    edge_set = {frozenset(edge) for edge in edges}
    for host in hosts:
        neighbors = sorted(other for other in hosts if other != host
                           and frozenset((host, other)) in edge_set)
        lines.append("  %-12s -- %s" % (host,
                                        ", ".join(neighbors) or "(none)"))
    return "\n".join(lines)


def render_endpoints(lpm_description: Dict) -> str:
    """Figure 4: the three groups of LPM communication end points —
    the kernel socket, the accept socket, and the per-peer sockets for
    sibling LPMs and local tools."""
    lines = ["LPM %s@%s communication end points:"
             % (lpm_description["user"], lpm_description["host"])]
    lines.append("  kernel socket : %s" % (lpm_description["kernel_socket"],))
    lines.append("  accept socket : %s" % (lpm_description["accept_socket"],))
    siblings = lpm_description.get("sibling_sockets", [])
    tools = lpm_description.get("tool_sockets", [])
    lines.append("  sibling sockets (%d): %s"
                 % (len(siblings), ", ".join(siblings) or "(none)"))
    lines.append("  tool sockets (%d): %s"
                 % (len(tools), ", ".join(tools) or "(none)"))
    return "\n".join(lines)


def render_creation_steps(events: List[TraceEvent]) -> str:
    """Figure 2: LPM creation steps ab initio, from CREATION_STEP events."""
    lines = ["LPM creation ab initio:"]
    steps = [event for event in events
             if event.event_type is TraceEventType.CREATION_STEP]
    for event in sorted(steps, key=lambda e: (e.time_ms,
                                              e.details.get("step", 0))):
        lines.append("  (%d) [%8.1f ms] %-6s %s"
                     % (event.details.get("step", 0), event.time_ms,
                        event.details.get("actor", "?"),
                        event.details.get("detail", "")))
    return "\n".join(lines)


#: Gantt glyphs per process state.
_GANTT_GLYPHS = {"running": "=", "stopped": ".", "exited": " "}


def state_intervals(events: List[TraceEvent], until_ms: float):
    """Reconstruct per-process state intervals from a trace history.

    Returns ``{gpid: [(start_ms, end_ms, state), ...]}`` where state is
    ``running`` or ``stopped`` (``exited`` ends the list).  Input events
    of interest: FORK/PROCESS_CREATED/ADOPTED (birth), STOPPED,
    CONTINUED, EXIT.
    """
    birth_types = {TraceEventType.FORK, TraceEventType.PROCESS_CREATED,
                   TraceEventType.ADOPTED}
    intervals = {}
    current = {}  # gpid -> (since_ms, state)
    for event in sorted(events, key=lambda e: e.time_ms):
        gpid = event.gpid
        if gpid is None:
            continue
        if event.event_type in birth_types and gpid not in current:
            current[gpid] = (event.time_ms, "running")
            intervals[gpid] = []
        elif gpid in current:
            since, state = current[gpid]
            if event.event_type is TraceEventType.STOPPED:
                intervals[gpid].append((since, event.time_ms, state))
                current[gpid] = (event.time_ms, "stopped")
            elif event.event_type is TraceEventType.CONTINUED:
                intervals[gpid].append((since, event.time_ms, state))
                current[gpid] = (event.time_ms, "running")
            elif event.event_type is TraceEventType.EXIT:
                intervals[gpid].append((since, event.time_ms, state))
                del current[gpid]
    for gpid, (since, state) in current.items():
        intervals[gpid].append((since, max(until_ms, since), state))
    return intervals


def render_gantt(events: List[TraceEvent], until_ms: float,
                 width: int = 60) -> str:
    """The display tool of section 7: a state chart of every process in
    the history (``=`` running, ``.`` stopped)."""
    intervals = state_intervals(events, until_ms)
    if not intervals:
        return "no process history to display"
    start = min(segment[0] for segments in intervals.values()
                for segment in segments)
    span = max(until_ms - start, 1.0)
    scale = width / span
    lines = ["process state chart (%.0f .. %.0f ms; '=' running, "
             "'.' stopped)" % (start, until_ms)]
    for gpid in sorted(intervals):
        row = [" "] * width
        for seg_start, seg_end, state in intervals[gpid]:
            glyph = _GANTT_GLYPHS.get(state, "?")
            lo = int((seg_start - start) * scale)
            hi = max(int((seg_end - start) * scale), lo + 1)
            for column in range(lo, min(hi, width)):
                row[column] = glyph
        lines.append("  %-16s |%s|" % (gpid, "".join(row)))
    return "\n".join(lines)


def render_timeline(events: List[TraceEvent],
                    limit: int = 50) -> str:
    """A compact event timeline (most recent last)."""
    shown = events[-limit:]
    lines = ["timeline (%d of %d events):" % (len(shown), len(events))]
    lines.extend("  %s" % (event,) for event in shown)
    return "\n".join(lines)
