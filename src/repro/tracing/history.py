"""The historical store behind history-dependent management.

Section 1: multiple-process computations need "not only powerful and
flexible mechanisms for process control but also historical processing
information.  In this way history dependent events can be set by users
to trigger process state changes."  The :class:`HistoryStore` keeps
events queryable after the processes (and even the LPMs) that produced
them are gone — "extensive historical information about the processing
that took place while the user was logged off should also be
accessible" (section 4).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..ids import GlobalPid
from .events import TraceEvent, TraceEventType
from .recorder import TraceRecorder


class HistoryStore:
    """Indexes trace events by process and by type.

    Attach to a recorder with :meth:`follow`, or feed events directly
    with :meth:`add`.
    """

    def __init__(self) -> None:
        self._events: List[TraceEvent] = []
        self._by_gpid: Dict[GlobalPid, List[TraceEvent]] = {}
        self._by_type: Dict[TraceEventType, List[TraceEvent]] = {}
        self._recorder: Optional[TraceRecorder] = None

    def follow(self, recorder: TraceRecorder,
               include_existing: bool = True) -> None:
        """Subscribe to a recorder's live feed."""
        if include_existing:
            for event in recorder.events:
                self.add(event)
        recorder.subscribe(self.add)
        self._recorder = recorder

    def unfollow(self) -> None:
        if self._recorder is not None:
            self._recorder.unsubscribe(self.add)
            self._recorder = None

    def add(self, event: TraceEvent) -> None:
        self._events.append(event)
        if event.gpid is not None:
            self._by_gpid.setdefault(event.gpid, []).append(event)
        self._by_type.setdefault(event.event_type, []).append(event)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def all_events(self) -> List[TraceEvent]:
        return list(self._events)

    def events_for(self, gpid: GlobalPid) -> List[TraceEvent]:
        """Full per-process history."""
        return list(self._by_gpid.get(gpid, []))

    def events_of_type(self, event_type: TraceEventType) -> List[TraceEvent]:
        return list(self._by_type.get(event_type, []))

    def in_window(self, now_ms: float, window_ms: float,
                  event_type: Optional[TraceEventType] = None,
                  gpid: Optional[GlobalPid] = None) -> List[TraceEvent]:
        """Events within the trailing window — the raw material of
        history-dependent triggers ("third failure within N seconds")."""
        if event_type is not None:
            pool = self._by_type.get(event_type, [])
        elif gpid is not None:
            pool = self._by_gpid.get(gpid, [])
        else:
            pool = self._events
        floor = now_ms - window_ms
        return [e for e in pool
                if e.time_ms >= floor
                and (gpid is None or e.gpid == gpid)
                and (event_type is None or e.event_type is event_type)]

    def count_in_window(self, now_ms: float, window_ms: float,
                        event_type: Optional[TraceEventType] = None,
                        gpid: Optional[GlobalPid] = None) -> int:
        return len(self.in_window(now_ms, window_ms, event_type, gpid))

    def last_event(self, gpid: GlobalPid) -> Optional[TraceEvent]:
        events = self._by_gpid.get(gpid)
        return events[-1] if events else None

    def first_event(self, gpid: GlobalPid) -> Optional[TraceEvent]:
        events = self._by_gpid.get(gpid)
        return events[0] if events else None

    def known_processes(self) -> List[GlobalPid]:
        return sorted(self._by_gpid)

    def __len__(self) -> int:
        return len(self._events)
