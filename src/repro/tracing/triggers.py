"""History-dependent triggers.

The capability the paper claims over task forces and configuration
languages (section 1): users can set "event driven user defined
actions" (section 8) whose conditions may consult the processing
history.  A :class:`Trigger` pairs a predicate over ``(event, history)``
with an action; the :class:`TriggerEngine` evaluates triggers on every
recorded event.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from .events import TraceEvent, TraceEventType
from .history import HistoryStore
from .recorder import TraceRecorder


@dataclass
class Trigger:
    """One user-defined, possibly history-dependent rule.

    ``predicate(event, history)`` decides whether to fire;
    ``action(event)`` is the user's reaction (typically a PPM control
    call).  ``once`` disarms the trigger after its first firing;
    ``max_firings`` bounds repetition.
    """

    name: str
    action: Callable[[TraceEvent], None]
    event_type: Optional[TraceEventType] = None
    predicate: Optional[Callable[[TraceEvent, HistoryStore], bool]] = None
    once: bool = False
    max_firings: Optional[int] = None
    firings: int = field(default=0)
    armed: bool = field(default=True)

    def should_fire(self, event: TraceEvent, history: HistoryStore) -> bool:
        if not self.armed:
            return False
        if self.event_type is not None and event.event_type is not self.event_type:
            return False
        if self.predicate is not None and not self.predicate(event, history):
            return False
        return True

    def fire(self, event: TraceEvent) -> None:
        self.firings += 1
        if self.once or (self.max_firings is not None
                         and self.firings >= self.max_firings):
            self.armed = False
        self.action(event)


@dataclass(frozen=True)
class TriggerFiring:
    """A record of one firing, kept by the engine for inspection."""

    trigger_name: str
    event: TraceEvent
    time_ms: float


class TriggerEngine:
    """Evaluates triggers against the live event feed."""

    def __init__(self, recorder: TraceRecorder,
                 history: Optional[HistoryStore] = None) -> None:
        self.recorder = recorder
        self.history = history if history is not None else HistoryStore()
        #: Whether the engine created (and must detach) its history.
        self._owns_history = history is None
        if history is None:
            self.history.follow(recorder, include_existing=True)
        self.triggers: List[Trigger] = []
        self.firings: List[TriggerFiring] = []
        self._evaluating = False
        recorder.subscribe(self._on_event)

    def add(self, trigger: Trigger) -> Trigger:
        self.triggers.append(trigger)
        return trigger

    def remove(self, trigger: Trigger) -> None:
        if trigger in self.triggers:
            self.triggers.remove(trigger)

    def _on_event(self, event: TraceEvent) -> None:
        if event.event_type is TraceEventType.TRIGGER_FIRED:
            return  # never trigger on our own bookkeeping
        if self._evaluating:
            return  # actions that record events must not recurse
        self._evaluating = True
        try:
            # Iterate over a snapshot so actions may add/remove triggers
            # (the natural "fire once then remove yourself" ops pattern)
            # without corrupting the walk — but honour removals made by
            # an earlier action during this same event: a trigger struck
            # off the live list must not fire from the stale snapshot.
            for trigger in list(self.triggers):
                if trigger not in self.triggers:
                    continue
                if trigger.should_fire(event, self.history):
                    self.firings.append(TriggerFiring(
                        trigger_name=trigger.name, event=event,
                        time_ms=event.time_ms))
                    self.recorder.record(TraceEventType.TRIGGER_FIRED,
                                         host=event.host, user=event.user,
                                         gpid=event.gpid,
                                         trigger=trigger.name)
                    trigger.fire(event)
        finally:
            self._evaluating = False

    def close(self) -> None:
        """Detach from the recorder.  Also unfollows the history store
        when the engine created it — otherwise the store's ``add`` stays
        subscribed forever and keeps accumulating events after the
        engine is gone (a leak the relogin path used to hit).
        Idempotent."""
        self.recorder.unsubscribe(self._on_event)
        if self._owns_history:
            self.history.unfollow()
