"""Event tracing, history, triggers, and display tools.

The paper stresses that process management needs *historical processing
information* so that "history dependent events can be set by users to
trigger process state changes" (section 1).  This package provides the
trace-event vocabulary, the per-session recorder, the queryable history
store, the trigger engine, the data-reduction tools, and the text
renderers (the paper's "data analysis and data representation tools").
"""

from .events import TraceEvent, TraceEventType, Granularity
from .recorder import TraceRecorder
from .history import HistoryStore
from .triggers import Trigger, TriggerEngine, TriggerFiring
from .reduction import (
    event_counts,
    per_command_usage,
    process_lifetimes,
    message_rate,
)
from .display import (
    render_forest,
    render_topology,
    render_timeline,
    render_endpoints,
    render_creation_steps,
    render_gantt,
    state_intervals,
)
from .export import (
    forest_to_dot,
    topology_to_dot,
    events_to_json,
    forest_to_json,
)
from .ipc import (
    ipc_matrix,
    ipc_by_kind,
    user_ipc_matrix,
    render_ipc_matrix,
    render_ipc_by_kind,
    render_user_ipc,
    hottest_links,
)

__all__ = [
    "TraceEvent",
    "TraceEventType",
    "Granularity",
    "TraceRecorder",
    "HistoryStore",
    "Trigger",
    "TriggerEngine",
    "TriggerFiring",
    "event_counts",
    "per_command_usage",
    "process_lifetimes",
    "message_rate",
    "render_forest",
    "render_topology",
    "render_timeline",
    "render_endpoints",
    "render_creation_steps",
    "render_gantt",
    "state_intervals",
    "forest_to_dot",
    "topology_to_dot",
    "events_to_json",
    "forest_to_json",
    "ipc_matrix",
    "ipc_by_kind",
    "user_ipc_matrix",
    "render_ipc_matrix",
    "render_ipc_by_kind",
    "render_user_ipc",
    "hottest_links",
]
