"""Small shared utilities."""

from __future__ import annotations

from typing import Callable, List, Optional


class Deferred:
    """A single-shot future for callback-style simulation code.

    ``then`` callbacks fire immediately if the value is already set,
    otherwise when :meth:`resolve` runs.  Resolution is idempotent: the
    first value wins (useful when a timeout races a reply).
    """

    def __init__(self) -> None:
        self._value = None
        self._resolved = False
        self._callbacks: List[Callable] = []

    @property
    def resolved(self) -> bool:
        return self._resolved

    @property
    def value(self):
        return self._value

    def resolve(self, value) -> bool:
        """Set the value; returns False if already resolved."""
        if self._resolved:
            return False
        self._resolved = True
        self._value = value
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(value)
        return True

    def then(self, callback: Callable) -> "Deferred":
        """Run ``callback(value)`` now or upon resolution."""
        if self._resolved:
            callback(self._value)
        else:
            self._callbacks.append(callback)
        return self


def format_table(headers: List[str], rows: List[List[str]],
                 title: Optional[str] = None) -> str:
    """Render a simple aligned text table (used by tools and benches)."""
    columns = [headers] + [[str(cell) for cell in row] for row in rows]
    widths = [max(len(row[i]) for row in columns)
              for i in range(len(headers))]

    def line(cells):
        return "  ".join(cell.ljust(width)
                         for cell, width in zip(cells, widths)).rstrip()

    parts = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append(line(["-" * width for width in widths]))
    for row in columns[1:]:
        parts.append(line(row))
    return "\n".join(parts)
