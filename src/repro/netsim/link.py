"""Point-to-point links between hosts.

The paper's testbed was a single Ethernet; the simulator nonetheless
models explicit links so that network partitions (section 5) and
internetworks ("large number of nodes in an internetwork of computers",
section 2) can be expressed.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(slots=True)
class Link:
    """An undirected link with fixed latency and optional bandwidth cap.

    Slotted: full-mesh topologies carry O(n²) of these and the routing
    BFS touches them constantly, so the per-instance dict is pure waste
    (surfaced by the runner's ``--profile`` output).
    """

    a: str
    b: str
    latency_ms: float = 5.0
    #: Bytes transferred per millisecond; 1250 ~= 10 Mb/s Ethernet.
    bandwidth_bytes_per_ms: float = 1250.0
    up: bool = True
    #: Links crossing a partition boundary are forced down independently
    #: of administrative state.
    partitioned: bool = field(default=False, repr=False)

    def endpoints(self) -> frozenset:
        return frozenset((self.a, self.b))

    def connects(self, name: str) -> bool:
        return name == self.a or name == self.b

    def other(self, name: str) -> str:
        if name == self.a:
            return self.b
        if name == self.b:
            return self.a
        raise ValueError("%r is not an endpoint of %r" % (name, self))

    @property
    def usable(self) -> bool:
        """True when traffic can cross: administratively up and not cut
        by a partition."""
        return self.up and not self.partitioned

    def transfer_delay_ms(self, nbytes: int) -> float:
        """Propagation plus serialisation delay for one message."""
        return self.latency_ms + nbytes / self.bandwidth_bytes_per_ms
