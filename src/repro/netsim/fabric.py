"""The default backend: the discrete-event simulator behind the fabric.

:class:`SimFabric` adapts the netsim substrate to the fabric contract
documented in :mod:`repro.core.fabric`.  It holds no state of its own —
every call delegates to the :class:`~repro.netsim.simulator.Simulator`,
:class:`~repro.netsim.network.Network`, or
:class:`~repro.netsim.datagram.DatagramTransport` the world already
built — so wrapping netsim in it changes nothing about event ordering,
wire bytes, or simulated time.  (The byte-identity of BENCH ``sim_ms``
across the fabric refactor is asserted by the perf runner.)

This module is duck-typed against the contract rather than inheriting
it: netsim is the bottom layer of the package and must not import
``repro.core`` (enforced by ``tools/check_layering.py``).
"""

from __future__ import annotations

from typing import Callable, Optional

from .simulator import _INHERIT, Simulator
from .stream import DEFAULT_DETECT_MS, StreamConnection


class SimFabric:
    """Fabric over one simulated world (see :mod:`repro.core.fabric`)."""

    backend_name = "netsim"

    def __init__(self, sim: Simulator, network,
                 datagrams=None,
                 tool_delay_fn: Optional[Callable[[str], float]] = None
                 ) -> None:
        self.sim = sim
        self.network = network
        self.datagrams = datagrams
        #: Injected by the world: host name -> sender-side tool IPC
        #: cost under current load (Table 2's ``T`` scaled by
        #: :func:`repro.latency.load_factor`).
        self._tool_delay_fn = tool_delay_fn

    # -- clock and timers ------------------------------------------------

    @property
    def now_ms(self) -> float:
        return self.sim.now_ms

    def schedule(self, delay_ms: float, callback: Callable, *args,
                 label: str = "", owner=_INHERIT):
        return self.sim.schedule(delay_ms, callback, *args,
                                 label=label, owner=owner)

    def cancel(self, handle) -> None:
        self.sim.cancel(handle)

    def run_until_true(self, predicate: Callable[[], bool],
                       timeout_ms: float = 600_000.0) -> bool:
        return self.sim.run_until_true(predicate, timeout_ms=timeout_ms)

    # -- observability ---------------------------------------------------

    @property
    def tracer(self):
        return self.sim.tracer

    # -- connections -----------------------------------------------------

    def connect(self, src: str, dst: str, service: str, payload=None,
                setup_ms: float = 0.0,
                on_established: Optional[Callable] = None,
                on_failed: Optional[Callable] = None,
                detect_ms: float = DEFAULT_DETECT_MS):
        return StreamConnection.connect(
            self.network, src, dst, service, payload=payload,
            setup_ms=setup_ms, on_established=on_established,
            on_failed=on_failed, detect_ms=detect_ms)

    # -- datagram port ---------------------------------------------------

    def datagram_bind(self, host: str, port: str,
                      handler: Callable) -> None:
        self.datagrams.bind(host, port, handler)

    def datagram_unbind(self, host: str, port: str) -> None:
        self.datagrams.unbind(host, port)

    def datagram_send(self, src: str, dst: str, port: str, payload,
                      nbytes: int = 256,
                      extra_delay_ms: float = 0.0) -> None:
        self.datagrams.send(src, dst, port, payload, nbytes=nbytes,
                            extra_delay_ms=extra_delay_ms)

    # -- cost accounting -------------------------------------------------

    def tool_send_delay_ms(self, host_name: str) -> float:
        if self._tool_delay_fn is None:
            return 0.0
        return self._tool_delay_fn(host_name)
