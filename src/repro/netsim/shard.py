"""Lockstep shard workers — conservative parallel discrete-event execution.

The netsim event loop is embarrassingly serial but the *workload* is
not: hosts only influence each other through messages, and every message
crosses at least one link, so nothing a host does at time ``t`` can be
observed elsewhere before ``t + L`` where ``L`` is the minimum link
latency (:meth:`Network.min_link_latency_ms`).  That is the classic
conservative-synchronization *lookahead*, and it makes the following
scheme exact, not approximate:

1. **Replicated construction.**  Every worker process builds the entire
   world with the same seed and runs the same construction events — no
   IPC, perfectly deterministic, so all workers hold byte-identical
   replicas when the measured phase begins.

2. **Partitioned execution.**  At :meth:`ShardHarness.attach` the hosts
   are dealt round-robin (sorted order) across K shards.  Each worker
   then advances time in lockstep windows of length ``L``: inside a
   window it executes only events *owned* by its hosts (ownership is
   inherited along scheduling chains and re-stamped at delivery seams —
   see ``simulator.py``), popping but skipping events owned elsewhere so
   queues and clocks stay aligned with the single-threaded order.

3. **Barrier exchange.**  Sends whose receiving host lives on another
   shard do not schedule locally: the fully computed delivery
   descriptor (exact arrival float, payload) is *shipped* through the
   coordinator at the window barrier and applied before the next window
   runs.  Lookahead guarantees every shipped arrival lies at or beyond
   the next window boundary, so no worker ever receives a message into
   its past.  Shipped batches are applied in a deterministic order —
   sorted by ``(arrival, source host, source sequence)`` — independent
   of how many shards ran.

The result is the same events at the same simulated instants with the
same floats as the single-threaded run; only wall-clock time changes.
``docs/PERF.md`` ("Parallel simulation") documents the protocol and the
two deliberate relaxations (cross-shard teardown and drop notices land
at the next window boundary).

:class:`LocalHarness` drives the same scenario API in-process with no
shard context at all — ``--shards 1`` is literally the single-threaded
simulator — which is what makes the identity check in the benchmark
runner meaningful.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import SimulationError
from ..perf import PERF
from . import stream as _stream
from .network import Network
from .network import remote_service_marker as _remote_service_marker

#: Counters whose values legitimately depend on the shard count and are
#: excluded from 1-shard vs K-shard identity comparison: the shard
#: protocol's own counters, plus two event-queue *internals* that track
#: how work was performed rather than what work happened (the fast-path
#: split and compaction points depend on per-worker queue composition).
VOLATILE_COUNTERS = ("shard_windows", "cross_shard_msgs", "barrier_waits",
                     "events_fastpath", "heap_compactions")

#: Counter pairs whose *split* depends on which OS process executed an
#: event but whose *sum* is exact: every stamp verification either hits
#: the per-process signature memo or recomputes, and the memo's warmth
#: (and its clear-on-overflow point) depends on how many verifications
#: that particular process has seen.  Identity checking compares the
#: group total under the given name instead of the members.
SUMMED_COUNTER_GROUPS = {
    "hmac_verifies": ("hmac_computed", "hmac_cache_hits"),
}


def window_bounds(t0: float, lookahead_ms: float,
                  index: int) -> Tuple[float, float]:
    """The half-open time span ``[start, end)`` of lockstep window
    ``index`` on the grid anchored at ``t0``."""
    return (t0 + index * lookahead_ms, t0 + (index + 1) * lookahead_ms)


def window_index_at(t0: float, lookahead_ms: float, time_ms: float) -> int:
    """Which window a time instant falls in (boundary instants belong to
    the *later* window, matching the half-open execution rule)."""
    if time_ms < t0:
        raise SimulationError(
            "t=%.3f precedes the window grid anchor %.3f" % (time_ms, t0))
    return int((time_ms - t0) // lookahead_ms)


class ShardPlan:
    """The host partition: hosts dealt round-robin, in sorted order,
    across ``n_shards`` — deterministic for any process that knows the
    host set, so every worker computes the identical plan."""

    def __init__(self, hosts, n_shards: int) -> None:
        if n_shards < 1:
            raise SimulationError("n_shards must be >= 1")
        self.hosts: List[str] = sorted(hosts)
        self.n_shards = n_shards
        self._shard_of: Dict[str, int] = {
            name: i % n_shards for i, name in enumerate(self.hosts)}

    def shard_of(self, host: str) -> int:
        try:
            return self._shard_of[host]
        except KeyError:
            raise SimulationError(
                "host %r is not part of the shard plan (hosts added after "
                "attach are not supported)" % (host,)) from None

    def owned(self, index: int) -> List[str]:
        return [h for h in self.hosts if self._shard_of[h] == index]

    def __repr__(self) -> str:
        return "ShardPlan(%d hosts over %d shards)" % (
            len(self.hosts), self.n_shards)


class ShardContext:
    """One worker's view of the partition, installed as ``sim.shard``.

    Decides which events execute here (:meth:`executes`), which count
    toward the merged counters (:meth:`counts` — shared and global
    events must be charged exactly once across the fleet), and collects
    the outbound cross-shard ships for the next barrier.
    """

    __slots__ = ("plan", "index", "outbound", "_ship_seq",
                 "_settle_seq", "_settle_callbacks")

    def __init__(self, plan: ShardPlan, index: int) -> None:
        self.plan = plan
        self.index = index
        #: Pending cross-shard ships: (dst_shard, sort_key, payload).
        self.outbound: List[tuple] = []
        self._ship_seq = 0
        self._settle_seq = 0
        #: token -> (host, on_dropped) for datagrams awaiting a
        #: cross-shard delivery verdict.
        self._settle_callbacks: Dict[tuple, tuple] = {}

    # -- ownership ------------------------------------------------------

    def owns(self, host: str) -> bool:
        return self.plan.shard_of(host) == self.index

    def executes(self, owner) -> bool:
        """Does this worker run an event with this owner stamp?  Global
        events (owner None) run everywhere — they mutate replicated
        world state such as topology.  Shared events (tuples, e.g. a
        circuit setup) run wherever either end lives; the callback
        guards its halves with ``sim.executes_host``."""
        if owner is None:
            return True
        if owner.__class__ is tuple:
            shard_of = self.plan.shard_of
            for host in owner:
                if shard_of(host) == self.index:
                    return True
            return False
        return self.plan.shard_of(owner) == self.index

    def counts(self, owner) -> bool:
        """Should this worker charge the event to the merged counters?
        Exactly one worker answers True for any event: the owner's shard,
        the *first* owner's shard for shared events, shard 0 for global
        events."""
        if owner is None:
            return self.index == 0
        if owner.__class__ is tuple:
            owner = owner[0]
        return self.plan.shard_of(owner) == self.index

    # -- outbound ships -------------------------------------------------

    def _ship(self, dst_shard: int, arrival_ms: float, src_host: str,
              payload: tuple) -> None:
        self._ship_seq += 1
        PERF.cross_shard_msgs += 1
        self.outbound.append(
            (dst_shard, (arrival_ms, src_host, self._ship_seq), payload))

    def take_outbound(self) -> List[tuple]:
        ships, self.outbound = self.outbound, []
        return ships

    def ship_segment(self, gid, side: str, dst_host: str,
                     arrival_ms: float, payload, sent_ms: float,
                     src_host: str) -> None:
        self._ship(self.plan.shard_of(dst_host), arrival_ms, src_host,
                   ("seg", gid, side, arrival_ms, payload, sent_ms))

    def ship_datagram(self, dst: str, port: str, payload,
                      deliver_at: float, src: str, token) -> None:
        settle = None if token is None else (self.index, token)
        self._ship(self.plan.shard_of(dst), deliver_at, src,
                   ("dgram", dst, port, payload, deliver_at, src, settle))

    def ship_connect(self, gid, src: str, dst: str, service: str,
                     payload, complete_at: float, detect_ms: float) -> None:
        self._ship(self.plan.shard_of(dst), complete_at, src,
                   ("connect", gid, src, dst, service, payload,
                    complete_at, detect_ms))

    def ship_listen(self, host: str, service: str, now_ms: float) -> None:
        """Advertise a mid-run service registration to every other
        worker (applied at the next barrier as a presence marker)."""
        for dst_shard in range(self.plan.n_shards):
            if dst_shard != self.index:
                self._ship(dst_shard, now_ms, host,
                           ("listen", host, service))

    def ship_unlisten(self, host: str, service: str,
                      now_ms: float) -> None:
        for dst_shard in range(self.plan.n_shards):
            if dst_shard != self.index:
                self._ship(dst_shard, now_ms, host,
                           ("unlisten", host, service))

    def ship_teardown(self, gid, reason: str, broke: bool,
                      a_host: str, b_host: str, now_ms: float) -> None:
        targets = {self.plan.shard_of(a_host), self.plan.shard_of(b_host)}
        targets.discard(self.index)
        for dst_shard in targets:
            self._ship(dst_shard, now_ms, a_host,
                       ("teardown", gid, reason, broke))

    def register_settle(self, host: str, on_dropped: Callable) -> tuple:
        """Remember a datagram's drop callback until the receiving shard
        reports the delivery verdict; returns the routing token."""
        self._settle_seq += 1
        token = (self.index, self._settle_seq)
        self._settle_callbacks[token] = (host, on_dropped)
        return token

    def ship_settle(self, settle: tuple, reason: Optional[str],
                    now_ms: float, dst_host: str) -> None:
        origin_shard, token = settle
        self._ship(origin_shard, now_ms, dst_host,
                   ("settle", token, reason))

    # -- inbound application -------------------------------------------

    def apply_ships(self, network: Network, batch: List[tuple]) -> None:
        """Apply one barrier's worth of inbound ships.

        ``batch`` arrives sorted by ``(arrival, src_host, seq)`` — a
        total order every shard count produces identically, so the
        events it schedules get consistent tie-break sequence numbers.
        """
        for key, payload in batch:
            kind = payload[0]
            if kind == "seg":
                _stream.apply_remote_segment(network, payload[1],
                                             payload[2], payload[3],
                                             payload[4], payload[5])
            elif kind == "dgram":
                network.datagram_transport.apply_remote_datagram(
                    payload[1], payload[2], payload[3], payload[4],
                    payload[5], payload[6])
            elif kind == "connect":
                _stream.apply_remote_connect(network, payload[1],
                                             payload[2], payload[3],
                                             payload[4], payload[5],
                                             payload[6], payload[7])
            elif kind == "teardown":
                _stream.apply_remote_teardown(network, payload[1],
                                              payload[2], payload[3],
                                              key[0])
            elif kind == "listen":
                # Only mark absent services: when the registration event
                # was global (replicated code ran it here too) the real
                # acceptor is already installed and must stay.
                node = network.nodes[payload[1]]
                if payload[2] not in node.services:
                    node.services[payload[2]] = _remote_service_marker
            elif kind == "unlisten":
                network.nodes[payload[1]].services.pop(payload[2], None)
            elif kind == "settle":
                self._apply_settle(network, payload[1], payload[2], key[0])
            else:  # pragma: no cover - protocol invariant
                raise SimulationError("unknown ship kind %r" % (kind,))

    def _apply_settle(self, network: Network, token, reason,
                      t_ship: float) -> None:
        host, on_dropped = self._settle_callbacks.pop(token)
        if reason is None:
            return  # delivered; nothing to report
        sim = network.sim

        def notify() -> None:
            on_dropped(reason)

        # Next-window relaxation: the sender learns of the drop at the
        # barrier after it happened, never earlier than it would have.
        sim.schedule_at(max(t_ship, sim.now_ms), notify, owner=host,
                        label="dgram-drop-notice %s" % (host,))


# ----------------------------------------------------------------------
# Scenario harnesses
# ----------------------------------------------------------------------

class LocalHarness:
    """The scenario API on the plain single-threaded simulator.

    No shard context is installed, so execution is *exactly* the
    single-threaded event loop — this is what a K-shard run is checked
    against for identity.  The few places where the API is stricter than
    the raw simulator (``call_on`` schedules instead of calling
    directly; a timed-out ``run_until_true`` advances the clock to its
    deadline) apply identically to both harnesses so the two runs stay
    comparable event-for-event.
    """

    shards = 1
    index = 0
    is_authority = True

    def __init__(self) -> None:
        self.network: Optional[Network] = None
        self.sim = None
        self.driver_host: Optional[str] = None
        self.hosts: List[str] = []
        self.measure: Optional[dict] = None
        self._wall_start: Optional[float] = None

    # -- lifecycle ------------------------------------------------------

    def attach(self, network: Network, driver_host: str) -> None:
        self.network = network
        self.sim = network.sim
        self.driver_host = driver_host
        self.hosts = sorted(network.nodes)

    def detach(self) -> None:
        pass

    @property
    def now(self) -> float:
        return self.sim.now_ms

    # -- running --------------------------------------------------------

    def run_for(self, duration_ms: float) -> None:
        self.sim.run_for(duration_ms)

    def run_until_true(self, predicate: Callable[[], bool],
                       timeout_ms: float = 600_000.0) -> bool:
        deadline = self.sim.now_ms + timeout_ms
        found = self.sim.run_until_true(predicate, timeout_ms=timeout_ms)
        if not found and self.sim.now_ms < deadline:
            self.sim.clock.advance_to(deadline)
        return found

    def call_on(self, host: str, fn: Callable[[], None]) -> None:
        """Run ``fn`` on ``host``'s timeline at the current driver
        instant (as one event, so event counts match a worker run)."""
        self.sim.schedule_at(self.sim.now_ms, fn, owner=host,
                             label="call_on %s" % (host,))

    def call_global(self, fn: Callable[[], None]) -> None:
        """Run ``fn`` as a *global* event at the current driver instant.

        For mutations of replicated world state — topology changes
        (crash, partition, link state), cost-model tweaks — which every
        shard worker must apply identically.  Under sharding the event
        is scheduled in every worker and executes in all of them
        (counted once, on shard 0)."""
        self.sim.schedule_at(self.sim.now_ms, fn, owner=None,
                             label="call_global")

    def sum_hosts(self, fn: Callable[[str], int]) -> int:
        """Sum an integer per-host statistic over every host.  Integer
        by contract: float partial sums would regroup differently per
        shard count; use :meth:`gather_hosts` for anything else."""
        return sum(fn(host) for host in self.hosts)

    def gather_hosts(self, fn: Callable[[str], object]) -> dict:
        """Evaluate ``fn`` per host and return ``{host: value}`` —
        exact (no cross-host arithmetic), so safe for floats."""
        return {host: fn(host) for host in self.hosts}

    def on_authority(self, fn: Callable[[], object]):
        """Run ``fn`` only where the driver host's state is live (always
        here).  For side inspections — asserts on driver-local lists —
        whose results must not feed back into the simulation."""
        return fn()

    # -- measurement ----------------------------------------------------

    def begin_measure(self) -> None:
        PERF.reset()
        self._wall_start = time.perf_counter()

    def end_measure(self) -> None:
        wall_s = time.perf_counter() - self._wall_start
        self.measure = {"wall_s": wall_s, "counters": PERF.snapshot()}


class WorkerHarness:
    """The scenario API inside one lockstep worker process.

    Construction calls (anything before :meth:`attach`) run locally and
    identically in every worker.  After attach, the running methods
    coordinate through the parent pipe: lockstep windows with barrier
    ship exchange (:meth:`run_for`, :meth:`run_until_true`), reduction
    ops (:meth:`sum_hosts`, :meth:`gather_hosts`), and a logical
    ``driver_now`` clock that all workers agree on between ops — the
    physical worker clocks may differ by up to one window (a worker may
    legitimately overrun a predicate stop by the rest of its window;
    lookahead makes that safe).

    The scenario's driving predicate is evaluated only by the
    *authority* worker — the one owning ``driver_host`` — because the
    driver's observable state (reply lists, caches) is only live there.
    """

    def __init__(self, shards: int, index: int, conn) -> None:
        self.shards = shards
        self.index = index
        self._conn = conn
        self.network: Optional[Network] = None
        self.sim = None
        self.ctx: Optional[ShardContext] = None
        self.driver_host: Optional[str] = None
        self.is_authority = False
        self.epoch = 0
        self.grid_t0 = 0.0
        self.lookahead = 0.0
        self.window_index = 0
        self.driver_now = 0.0
        self.measure: Optional[dict] = None
        self._wall_start: Optional[float] = None
        self._op_id = 0
        self._round = 0

    # -- lifecycle ------------------------------------------------------

    def attach(self, network: Network, driver_host: str) -> None:
        lookahead = network.min_link_latency_ms()
        if lookahead is None or lookahead <= 0.0:
            raise SimulationError(
                "sharded execution needs a positive minimum link latency "
                "for lookahead; got %r" % (lookahead,))
        plan = ShardPlan(network.nodes, self.shards)
        self.network = network
        self.sim = network.sim
        self.ctx = ShardContext(plan, self.index)
        self.sim.shard = self.ctx
        self.driver_host = driver_host
        self.is_authority = self.ctx.owns(driver_host)
        self.epoch += 1
        self.grid_t0 = self.sim.now_ms
        self.lookahead = lookahead
        self.window_index = 0
        self.driver_now = self.sim.now_ms

    def detach(self) -> None:
        """Leave the lockstep phase.  Outbound ships still pending
        belong to simulated time beyond the end of the run — exactly
        the events a single-threaded run would leave unexecuted in its
        queue — and are dropped."""
        self.sim.shard = None
        self.ctx = None

    @property
    def now(self) -> float:
        return self.driver_now

    # -- the lockstep loop ---------------------------------------------

    def _exchange(self, message: tuple) -> tuple:
        self._conn.send(message)
        return self._conn.recv()

    def _barrier(self, widx: int, target: float, final: bool,
                 stop_t: Optional[float]) -> tuple:
        self._round += 1
        if self.index == 0 and not final:
            PERF.shard_windows += 1
        PERF.barrier_waits += 1
        return self._exchange(("barrier", self._op_id, self._round, {
            "epoch": self.epoch,
            "grid": (self.grid_t0, self.lookahead),
            "widx": widx,
            "target": target,
            "final": final,
            "stop": stop_t,
            "next_time": self.sim.queue.peek_time(),
            "ships": self.ctx.take_outbound(),
        }))

    def _finish_op(self, reply: tuple) -> bool:
        _, end_now, found, inbound = reply
        self.ctx.apply_ships(self.network, inbound)
        self.driver_now = end_now
        if self.sim.now_ms < end_now:
            self.sim.clock.advance_to(end_now)
        # Re-anchor the window cursor to where the op actually ended.
        # The coordinator's fast-forward may have jumped the cursor far
        # past the target (chasing a distant timer); left there, the
        # next op's first window would span that whole gap and let
        # workers run ahead of ships still to be exchanged.  End-of-op
        # state is equivalent to a partially executed current window,
        # which re-running from here handles exactly like a predicate
        # overrun.
        self.window_index = window_index_at(self.grid_t0, self.lookahead,
                                            end_now)
        return found

    def _run_lockstep(self, target: float,
                      predicate: Optional[Callable[[], bool]]) -> bool:
        sim = self.sim
        t0, lookahead = self.grid_t0, self.lookahead
        pred_here = predicate if self.is_authority else None
        self._op_id += 1
        self._round = 0
        stop_t: Optional[float] = None
        if pred_here is not None and pred_here():
            stop_t = self.driver_now
        while True:
            widx = self.window_index
            w_end = t0 + (widx + 1) * lookahead
            if w_end > target:
                break
            # Full window [w_start, w_end): events *at* w_end belong to
            # the next window, after the barrier has applied any ships
            # arriving exactly on the boundary.
            if stop_t is None:
                stop_t = sim.run_window(w_end, pred_here)
            reply = self._barrier(widx, target, False, stop_t)
            if reply[0] == "end":
                return self._finish_op(reply)
            _, next_widx, inbound = reply
            self.ctx.apply_ships(self.network, inbound)
            self.window_index = next_widx
        # Final partial segment: inclusive of the target instant, like
        # the single-threaded run_until/run_until_true.
        if stop_t is None:
            stop_t = sim.run_window(target, pred_here, inclusive=True)
        if predicate is None:
            # run_for is deterministic in time: no agreement round.
            self.driver_now = target
            if sim.now_ms < target:
                sim.clock.advance_to(target)
            self.window_index = window_index_at(t0, lookahead, target)
            return False
        reply = self._barrier(self.window_index, target, True, stop_t)
        if reply[0] != "end":  # pragma: no cover - protocol invariant
            raise SimulationError("expected end-of-op, got %r" % (reply[0],))
        return self._finish_op(reply)

    # -- running --------------------------------------------------------

    def run_for(self, duration_ms: float) -> None:
        self._run_lockstep(self.driver_now + duration_ms, None)

    def run_until_true(self, predicate: Callable[[], bool],
                       timeout_ms: float = 600_000.0) -> bool:
        return self._run_lockstep(self.driver_now + timeout_ms, predicate)

    def call_on(self, host: str, fn: Callable[[], None]) -> None:
        if not self.ctx.owns(host):
            return
        if self.sim.now_ms > self.driver_now:
            raise SimulationError(
                "call_on(%r): this worker overran the driver instant "
                "(%.3f > %.3f); only hosts on the authority shard can be "
                "driven right after a predicate stop" %
                (host, self.sim.now_ms, self.driver_now))
        self.sim.schedule_at(self.driver_now, fn, owner=host,
                             label="call_on %s" % (host,))

    def call_global(self, fn: Callable[[], None]) -> None:
        if self.sim.now_ms > self.driver_now:
            raise SimulationError(
                "call_global: this worker overran the driver instant "
                "(%.3f > %.3f); settle with run_for after a predicate "
                "stop before mutating global state" %
                (self.sim.now_ms, self.driver_now))
        self.sim.schedule_at(self.driver_now, fn, owner=None,
                             label="call_global")

    def sum_hosts(self, fn: Callable[[str], int]) -> int:
        partial = 0
        for host in self.ctx.plan.owned(self.index):
            value = fn(host)
            if value.__class__ is not int:
                raise SimulationError(
                    "sum_hosts is integer-only (float partial sums regroup "
                    "differently per shard count); got %r for %r"
                    % (value, host))
            partial += value
        self._op_id += 1
        reply = self._exchange(("sum", self._op_id, partial))
        return reply[1]

    def gather_hosts(self, fn: Callable[[str], object]) -> dict:
        partial = {host: fn(host)
                   for host in self.ctx.plan.owned(self.index)}
        self._op_id += 1
        reply = self._exchange(("gather", self._op_id, partial))
        return reply[1]

    def on_authority(self, fn: Callable[[], object]):
        if self.is_authority:
            return fn()
        return None

    # -- measurement ----------------------------------------------------

    def begin_measure(self) -> None:
        PERF.reset()
        self._wall_start = time.perf_counter()

    def end_measure(self) -> None:
        wall_s = time.perf_counter() - self._wall_start
        self.measure = {"wall_s": wall_s, "counters": PERF.snapshot()}
