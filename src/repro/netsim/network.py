"""The network: nodes, links, routing, partitions, and failure injection.

A :class:`NetworkNode` is the network-facing face of a simulated host: a
name, a CPU class, an up/down flag, and a registry of listening services
(the equivalent of well-known ports; ``inetd`` registers itself here).

Packets are routed over the shortest usable path (breadth-first by hop
count; the paper notes "no attention is currently devoted to finding
minimum hop routes" for the *overlay*, but the IP substrate under it did
route).  Partitions mark crossing links unusable; crashes mark the node
down.  Open stream connections are re-checked after every topology change
and broken ones notify their endpoints after a detection delay, the way a
TCP keepalive or failed send would.
"""

from __future__ import annotations

import weakref
from collections import deque
from typing import Callable, Dict, Iterable, List, Optional, Set

from ..errors import (
    HostDownError,
    NoSuchHostError,
    SimulationError,
    UnreachableHostError,
)
from .latency import HostClass
from .link import Link
from .simulator import Simulator


class NetworkNode:
    """Network attachment point of one host.

    The service registry models the well-known ports the paper's
    daemons listen on (section 3: ``inetd`` accepts the LPM-creation
    request and hands it to the ``pmd``); ``up`` is the crash-failure
    flag of section 5's recovery discussion.
    """

    def __init__(self, name: str, host_class: HostClass) -> None:
        self.name = name
        self.host_class = host_class
        self.up = True
        #: service name -> acceptor(server_endpoint, payload) callable.
        self.services: Dict[str, Callable] = {}
        #: callable returning the host's current load average; installed
        #: by the unixsim host so the network can expose it to cost hooks.
        self.load_fn: Callable[[], float] = lambda: 0.0
        #: back-reference set by :meth:`Network.add_node`, so dynamic
        #: service registrations can be advertised across shard workers.
        self.sim: Optional[Simulator] = None

    def listen(self, service: str, acceptor: Callable) -> None:
        """Register an acceptor for a named service.

        Under lockstep sharding a registration made mid-run (an LPM
        spawned by a login wave advertises its accept service) exists
        only on the owning worker; the other workers receive a presence
        *marker* at the next barrier so their connect-time service
        checks reach the same verdict.  The marker is never invoked —
        the acceptor half of a cross-shard connect executes on the
        owning worker, against the real registration.
        """
        self.services[service] = acceptor
        sim = self.sim
        if sim is not None and sim.shard is not None:
            sim.shard.ship_listen(self.name, service, sim.now_ms)

    def unlisten(self, service: str) -> None:
        """Remove a service registration; unknown names are ignored."""
        self.services.pop(service, None)
        sim = self.sim
        if sim is not None and sim.shard is not None:
            sim.shard.ship_unlisten(self.name, service, sim.now_ms)

    def __repr__(self) -> str:
        state = "up" if self.up else "DOWN"
        return "NetworkNode(%s, %s, %s)" % (self.name,
                                            self.host_class.value, state)


def remote_service_marker(endpoint, payload) -> None:  # pragma: no cover
    """Placeholder acceptor for a service registered on another shard
    worker.  Its presence makes connect-time service checks succeed; the
    real acceptor runs on the owning worker, so invoking the marker is a
    sharding-protocol violation."""
    raise SimulationError("remote service marker invoked as an acceptor")


class NetworkStats:
    """Counters used by the transport ablations (the paper's section 3
    circuits-vs-datagrams trade-off, ablation A1).

    ``stream_delivery_batches`` counts delivery-timer fires of the
    batched per-circuit-direction scheduler (see ``stream.py``), and
    ``stream_deliveries_suppressed`` counts segments drained but not
    delivered because the circuit closed or the receiving host went
    down while they were in flight.
    """

    def __init__(self) -> None:
        self.connections_opened = 0
        self.connections_broken = 0
        self.stream_messages = 0
        self.stream_bytes = 0
        self.stream_delivery_batches = 0
        self.stream_deliveries_suppressed = 0
        self.datagrams_sent = 0
        self.datagrams_dropped = 0
        self.datagram_bytes = 0

    def snapshot(self) -> Dict[str, int]:
        """The current values as a plain dict."""
        return dict(vars(self))


class Network:
    """Hosts, links, and everything in flight between them."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.nodes: Dict[str, NetworkNode] = {}
        self.links: List[Link] = []
        #: Adjacency index: host name -> the links touching it.  BFS
        #: and ``link_between`` walk this instead of scanning every
        #: link in the network (``find_path`` dominated single-thread
        #: profiles at a few hundred hosts).
        self._adjacency: Dict[str, List[Link]] = {}
        #: ``(src, dst) -> path-or-None`` memo for :meth:`find_path`,
        #: flushed on every topology change.  Entries are exactly what
        #: BFS computed for the same topology, so caching cannot change
        #: simulation outcomes.
        self._path_cache: Dict[tuple, Optional[List[str]]] = {}
        self.stats = NetworkStats()
        #: open stream connections, maintained by stream.py.
        self._connections: List = []
        #: callbacks run after every topology change (crash, heal, ...).
        self._topology_listeners: List[Callable[[], None]] = []
        #: Every circuit ever created, keyed by its global id — how a
        #: shard worker resolves a shipped cross-shard delivery onto its
        #: local replica of the circuit.  Weak values: a circuit nobody
        #: holds any more cannot receive anything.
        self._conns_by_gid: "weakref.WeakValueDictionary" = \
            weakref.WeakValueDictionary()
        #: The datagram transport bound to this network (set by
        #: ``DatagramTransport.__init__``); the shard layer routes
        #: cross-shard datagram ships through it.
        self.datagram_transport = None
        #: Circuit id counters (see ``StreamConnection.__init__``).
        #: Per-network, so one world's sharded phase cannot desync the
        #: ids of a world built later in the same process.
        self._next_conn_id = 0
        self._next_global_conn_id = 0

    def next_conn_id(self) -> int:
        """The next circuit id for replicated-construction or
        shard-local circuits."""
        self._next_conn_id += 1
        return self._next_conn_id

    def next_global_conn_id(self) -> int:
        """The next circuit id for circuits created by *global* events
        during a sharded phase.  Global events execute identically in
        every worker, so this counter stays aligned fleet-wide — which
        is exactly what makes the resulting gids match."""
        self._next_global_conn_id += 1
        return self._next_global_conn_id

    # ------------------------------------------------------------------
    # Topology construction
    # ------------------------------------------------------------------

    def add_node(self, name: str,
                 host_class: HostClass = HostClass.VAX_780) -> NetworkNode:
        """Attach a host to the network (host classes are the paper's
        measured machines, Table 1); names must be unique."""
        if name in self.nodes:
            raise SimulationError("duplicate host name %r" % (name,))
        node = NetworkNode(name, host_class)
        node.sim = self.sim
        self.nodes[name] = node
        return node

    def node(self, name: str) -> NetworkNode:
        """Look a host up by name, raising :class:`NoSuchHostError`."""
        try:
            return self.nodes[name]
        except KeyError:
            raise NoSuchHostError(name) from None

    def add_link(self, a: str, b: str, latency_ms: float = 5.0,
                 bandwidth_bytes_per_ms: float = 1250.0) -> Link:
        """Join two distinct hosts with an undirected link (section 2's
        "internetwork of computers" generalisation of the one-Ethernet
        testbed)."""
        self.node(a)
        self.node(b)
        if a == b:
            raise SimulationError("cannot link %r to itself" % (a,))
        link = Link(a, b, latency_ms=latency_ms,
                    bandwidth_bytes_per_ms=bandwidth_bytes_per_ms)
        self.links.append(link)
        self._adjacency.setdefault(a, []).append(link)
        self._adjacency.setdefault(b, []).append(link)
        self._path_cache.clear()
        return link

    def link_between(self, a: str, b: str) -> Optional[Link]:
        """The direct link joining ``a`` and ``b``, or None."""
        wanted = frozenset((a, b))
        for link in self._adjacency.get(a, ()):
            if link.endpoints() == wanted:
                return link
        return None

    def min_link_latency_ms(self) -> Optional[float]:
        """The smallest link latency in the topology, or None when no
        links exist.

        This is the conservative-synchronization *lookahead*: no message
        sent at time ``t`` can affect any other host before ``t + L``
        (every path crosses at least one link, and serialization and
        processing delays only add).  The lockstep shard scheduler uses
        it as the window length — events inside one window are causally
        independent across shards.  Partitioned or administratively-down
        links still bound the lookahead: they may come back up at any
        event.
        """
        if not self.links:
            return None
        return min(link.latency_ms for link in self.links)

    def ethernet(self, names: Iterable[str], latency_ms: float = 5.0) -> None:
        """Join hosts with a full mesh of links, approximating one shared
        Ethernet segment (the paper's testbed)."""
        names = list(names)
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                if self.link_between(a, b) is None:
                    self.add_link(a, b, latency_ms=latency_ms)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def _usable_neighbors(self, name: str) -> List[str]:
        result = []
        for link in self._adjacency.get(name, ()):
            if link.usable:
                other = link.other(name)
                if self.nodes[other].up:
                    result.append(other)
        return result

    def find_path(self, src: str, dst: str) -> Optional[List[str]]:
        """Shortest usable path as a list of host names, or None.

        Memoised per ``(src, dst)`` until the next topology change;
        the cached value is exactly the BFS result for the current
        topology, and callers get a fresh copy each time.
        """
        if src not in self.nodes or dst not in self.nodes:
            raise NoSuchHostError(src if src not in self.nodes else dst)
        if not self.nodes[src].up or not self.nodes[dst].up:
            return None
        if src == dst:
            return [src]
        key = (src, dst)
        if key in self._path_cache:
            cached = self._path_cache[key]
            return None if cached is None else list(cached)
        path = self._bfs_path(src, dst)
        self._path_cache[key] = path
        return None if path is None else list(path)

    def _bfs_path(self, src: str, dst: str) -> Optional[List[str]]:
        seen: Set[str] = {src}
        frontier = deque([[src]])
        while frontier:
            path = frontier.popleft()
            for neighbor in self._usable_neighbors(path[-1]):
                if neighbor in seen:
                    continue
                extended = path + [neighbor]
                if neighbor == dst:
                    return extended
                seen.add(neighbor)
                frontier.append(extended)
        return None

    def reachable(self, src: str, dst: str) -> bool:
        """True when some usable path joins two up hosts — the
        connectivity predicate behind circuit break detection (§5)."""
        return self.find_path(src, dst) is not None

    def path_delay_ms(self, path: List[str], nbytes: int) -> float:
        """Total transfer delay along an already-found path."""
        delay = 0.0
        for a, b in zip(path, path[1:]):
            link = self.link_between(a, b)
            if link is None or not link.usable:
                raise UnreachableHostError("%s-%s" % (a, b))
            delay += link.transfer_delay_ms(nbytes)
        return delay

    def transit_delay_ms(self, src: str, dst: str, nbytes: int) -> float:
        """Delay for one message src -> dst, or raise if unreachable."""
        path = self.find_path(src, dst)
        if path is None:
            raise UnreachableHostError("%s -> %s" % (src, dst))
        return self.path_delay_ms(path, nbytes)

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------

    def crash_host(self, name: str) -> None:
        """Mark a host down and break connections that relied on it."""
        self.node(name).up = False
        self._topology_changed()

    def revive_host(self, name: str) -> None:
        """Bring a crashed host back (the reboot that lets section 5's
        recovery machinery re-adopt the site)."""
        self.node(name).up = True
        self._topology_changed()

    def set_partition(self, groups: List[Set[str]]) -> None:
        """Cut every link whose endpoints fall in different groups.

        Hosts not named in any group form an implicit final group.
        Overlapping groups are rejected.
        """
        named: Set[str] = set()
        for group in groups:
            overlap = named & group
            if overlap:
                raise SimulationError(
                    "hosts in multiple partition groups: %s" % sorted(overlap))
            named |= group
        remainder = set(self.nodes) - named
        all_groups = [set(g) for g in groups]
        if remainder:
            all_groups.append(remainder)

        def group_of(name: str) -> int:
            for index, group in enumerate(all_groups):
                if name in group:
                    return index
            raise NoSuchHostError(name)

        for link in self.links:
            link.partitioned = group_of(link.a) != group_of(link.b)
        self._topology_changed()

    def heal_partition(self) -> None:
        """Undo :meth:`set_partition`; section 5's partition merge."""
        for link in self.links:
            link.partitioned = False
        self._topology_changed()

    def set_link_state(self, a: str, b: str, up: bool) -> None:
        """Administratively raise or cut one link."""
        link = self.link_between(a, b)
        if link is None:
            raise NoSuchHostError("no link %s-%s" % (a, b))
        link.up = up
        self._topology_changed()

    def add_topology_listener(self, callback: Callable[[], None]) -> None:
        """Run ``callback()`` after every topology change (crash,
        revive, partition, link state) — how higher layers notice the
        failures section 5 requires them to survive."""
        self._topology_listeners.append(callback)

    def _topology_changed(self) -> None:
        self._path_cache.clear()
        for conn in list(self._connections):
            conn.recheck()
        for callback in list(self._topology_listeners):
            callback()

    # ------------------------------------------------------------------
    # Connection registry (used by stream.py)
    # ------------------------------------------------------------------

    def register_connection(self, conn) -> None:
        """Track an established circuit for topology re-checks."""
        self._connections.append(conn)
        self.stats.connections_opened += 1

    def index_connection(self, conn) -> None:
        """Make a circuit resolvable by its global id (shard ships)."""
        self._conns_by_gid[conn.gid] = conn

    def connection_by_gid(self, gid):
        """The local replica of the circuit with this global id, or
        None when it was never created here or already collected."""
        return self._conns_by_gid.get(gid)

    def unregister_connection(self, conn) -> None:
        """Forget a closed or broken circuit; idempotent."""
        if conn in self._connections:
            self._connections.remove(conn)

    def open_connection_count(self) -> int:
        """Established circuits currently registered (the connection
        state the A1 ablation charges circuits for maintaining)."""
        return len(self._connections)

    def require_up(self, name: str) -> NetworkNode:
        """The named node, raising :class:`HostDownError` if crashed."""
        node = self.node(name)
        if not node.up:
            raise HostDownError(name)
        return node
