"""Discrete-event network simulator.

This package is the lowest layer of the reproduction.  It stands in for
the 1986 Berkeley testbed: a simulated clock, an event queue, hosts joined
by links, reliable stream connections (the TCP virtual circuits of
section 3), an alternative datagram transport, and the latency model
calibrated against the paper's measurements (Tables 1-3).
"""

from .clock import SimClock
from .events import Event, EventQueue
from .simulator import Simulator
from .latency import (
    HostClass,
    CostModel,
    DEFAULT_COST_MODEL,
    kernel_message_delay_ms,
    load_factor,
)
from .link import Link
from .network import Network, NetworkNode
from .stream import StreamConnection, StreamEndpoint
from .datagram import DatagramTransport
from .shard import (
    LocalHarness,
    ShardContext,
    ShardPlan,
    WorkerHarness,
    window_bounds,
    window_index_at,
)
from .parallel import (
    ShardedOutcome,
    ShardProtocolError,
    identity_diff,
    run_scenario,
)

__all__ = [
    "SimClock",
    "Event",
    "EventQueue",
    "Simulator",
    "HostClass",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "kernel_message_delay_ms",
    "load_factor",
    "Link",
    "Network",
    "NetworkNode",
    "StreamConnection",
    "StreamEndpoint",
    "DatagramTransport",
    "LocalHarness",
    "ShardContext",
    "ShardPlan",
    "WorkerHarness",
    "window_bounds",
    "window_index_at",
    "ShardedOutcome",
    "ShardProtocolError",
    "identity_diff",
    "run_scenario",
]
