"""The simulated clock.

All timing in the reproduction is expressed in simulated milliseconds so
that the benchmark output reads in the same units as the paper's tables.
"""

from __future__ import annotations

from ..errors import SimulationError


class SimClock:
    """A monotonically advancing clock owned by the simulator."""

    def __init__(self, start_ms: float = 0.0) -> None:
        self._now_ms = float(start_ms)

    @property
    def now_ms(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now_ms

    def advance_to(self, time_ms: float) -> None:
        """Move the clock forward; moving backwards is a bug."""
        if time_ms < self._now_ms:
            raise SimulationError(
                "clock moved backwards: %.3f -> %.3f"
                % (self._now_ms, time_ms))
        self._now_ms = float(time_ms)

    def __repr__(self) -> str:
        return "SimClock(%.3f ms)" % (self._now_ms,)
