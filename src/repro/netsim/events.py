"""Timed events and the event queue.

Events are ordered by ``(time, sequence number)`` so that two events
scheduled for the same instant fire in scheduling order; this keeps every
simulation run deterministic.
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional


class Event:
    """One scheduled callback.

    Instances are handed back by :meth:`Simulator.schedule`; holding the
    reference allows cancellation (the simulator skips cancelled events
    instead of removing them from the heap).
    """

    __slots__ = ("time_ms", "seq", "callback", "args", "cancelled", "label")

    def __init__(self, time_ms: float, seq: int,
                 callback: Callable[..., None], args: tuple,
                 label: str = "") -> None:
        self.time_ms = time_ms
        self.seq = seq
        self.callback: Optional[Callable[..., None]] = callback
        self.args = args
        self.cancelled = False
        self.label = label

    def cancel(self) -> None:
        """Prevent the event from firing; idempotent."""
        self.cancelled = True
        self.callback = None
        self.args = ()

    def __lt__(self, other: "Event") -> bool:
        return (self.time_ms, self.seq) < (other.time_ms, other.seq)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return "Event(t=%.3f, seq=%d, %s%s)" % (
            self.time_ms, self.seq, state,
            ", label=%r" % (self.label,) if self.label else "")


class EventQueue:
    """A heap of :class:`Event` objects with lazy cancellation."""

    def __init__(self) -> None:
        self._heap: list = []
        self._live = 0

    def push(self, event: Event) -> None:
        heapq.heappush(self._heap, event)
        self._live += 1

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or None when empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            return event
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the earliest live event, or None when empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time_ms

    def note_cancelled(self) -> None:
        """Bookkeeping hook called by the simulator on cancellation."""
        self._live -= 1

    def __len__(self) -> int:
        return max(self._live, 0)

    def __bool__(self) -> bool:
        return self.peek_time() is not None
