"""Timed events and the event queue.

Events are ordered by ``(time, sequence number)`` so that two events
scheduled for the same instant fire in scheduling order; this keeps every
simulation run deterministic.

The queue is a heap plus an append-only FIFO fast path: most scheduling
is monotone (timers armed for ever-later instants), and those pushes are
O(1) appends instead of heap sifts.  Cancellation is lazy — a cancelled
event sits where it is until popped — but the queue counts its cancelled
residents and compacts itself when they dominate, so a workload that
arms and cancels millions of timers (retransmission, keepalive) does not
drag a graveyard through every subsequent operation.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable, Optional

from ..perf import PERF

#: Compaction triggers only past this many cancelled residents (small
#: queues never pay the rebuild) and only when they outnumber the live.
COMPACT_MIN_CANCELLED = 64


class Event:
    """One scheduled callback.

    Instances are handed back by :meth:`Simulator.schedule`; holding the
    reference allows cancellation (the simulator skips cancelled events
    instead of removing them from the heap).  ``fired`` marks an event
    that was popped for execution, so owners that re-arm one timer over
    and over (the stream delivery timers) can cancel a stale reference
    without miscounting a live cancellation.
    """

    __slots__ = ("time_ms", "seq", "callback", "args", "cancelled", "fired",
                 "label", "owner", "_queue")

    def __init__(self, time_ms: float, seq: int,
                 callback: Callable[..., None], args: tuple,
                 label: str = "", owner=None) -> None:
        self.time_ms = time_ms
        self.seq = seq
        self.callback: Optional[Callable[..., None]] = callback
        self.args = args
        self.cancelled = False
        #: True once the event has been popped for execution.
        self.fired = False
        self.label = label
        #: Which host's timeline this event belongs to: a host name, a
        #: tuple of host names (an event shared between the two ends of
        #: a circuit), or None for world-global events.  Ownership is
        #: what lets a lockstep shard worker (``netsim.shard``) execute
        #: only its slice of the event stream; single-process runs
        #: never read it.
        self.owner = owner
        #: The queue currently holding this event; cancellation
        #: bookkeeping flows through this single path.
        self._queue: Optional["EventQueue"] = None

    def cancel(self) -> None:
        """Prevent the event from firing; idempotent."""
        if self.cancelled:
            return
        self.cancelled = True
        self.callback = None
        self.args = ()
        queue = self._queue
        if queue is not None:
            queue._note_event_cancelled()

    def __lt__(self, other: "Event") -> bool:
        return (self.time_ms, self.seq) < (other.time_ms, other.seq)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return "Event(t=%.3f, seq=%d, %s%s)" % (
            self.time_ms, self.seq, state,
            ", label=%r" % (self.label,) if self.label else "")


class EventQueue:
    """Lazily-cancelling event queue with a monotone-push fast path.

    Two internal containers, each sorted by the ``(time, seq)`` total
    order: a heap for out-of-order pushes and a FIFO deque that absorbs
    pushes arriving in increasing order.  The global minimum is the
    smaller of the two heads, so pop order is identical to a pure heap —
    bit-for-bit, because the order is strict and total.
    """

    def __init__(self) -> None:
        self._heap: list = []
        self._fifo: "deque[Event]" = deque()
        self._last_pop_ms = float("-inf")
        self._live = 0
        #: Cancelled events still resident in a container.
        self._cancelled = 0
        self.compactions = 0

    def push(self, event: Event) -> None:
        """Insert ``event``, preserving the ``(time, seq)`` total order.

        In-order arrivals (the common monotone-timer case) append to the
        FIFO in O(1); everything else heap-sifts.

        ``events_scheduled`` is charged by :meth:`Simulator.schedule_at`
        (which knows event ownership), not here — a replicated global
        event pushed by every shard worker is one logical schedule.
        """
        event._queue = self
        fifo = self._fifo
        # Same-time fast path: an event due at the instant currently
        # being executed is appended to the "due now" FIFO in O(1).
        # Scheduling into the past is impossible, so such events carry
        # ever-increasing seq values and the FIFO stays sorted; and
        # because every resident at the last-popped time pops before the
        # clock moves on, the FIFO's tail can never hold a far-future
        # event that would divert later same-time pushes to the heap.
        if event.time_ms <= self._last_pop_ms and \
                (not fifo or fifo[-1] < event):
            fifo.append(event)
            PERF.events_fastpath += 1
        else:
            heapq.heappush(self._heap, event)
        self._live += 1

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or None when empty."""
        self._discard_cancelled_heads()
        heap, fifo = self._heap, self._fifo
        if heap and (not fifo or heap[0] < fifo[0]):
            event = heapq.heappop(heap)
        elif fifo:
            event = fifo.popleft()
        else:
            return None
        event._queue = None
        event.fired = True
        self._last_pop_ms = event.time_ms
        self._live -= 1
        return event

    def peek_time(self) -> Optional[float]:
        """Time of the earliest live event, or None when empty."""
        self._discard_cancelled_heads()
        heap, fifo = self._heap, self._fifo
        if heap and (not fifo or heap[0] < fifo[0]):
            return heap[0].time_ms
        if fifo:
            return fifo[0].time_ms
        return None

    def note_cancelled(self) -> None:
        """Deprecated no-op.  :meth:`Event.cancel` is the single
        bookkeeping path now; this hook is kept so older callers that
        pair ``event.cancel()`` with ``queue.note_cancelled()`` stay
        correct rather than double-counting."""

    def _note_event_cancelled(self) -> None:
        """Called by :meth:`Event.cancel` for a resident event."""
        self._live -= 1
        self._cancelled += 1
        if (self._cancelled >= COMPACT_MIN_CANCELLED
                and self._cancelled * 2 >
                len(self._heap) + len(self._fifo)):
            self._compact()

    def _discard_cancelled_heads(self) -> None:
        heap, fifo = self._heap, self._fifo
        while heap and heap[0].cancelled:
            heapq.heappop(heap)._queue = None
            self._cancelled -= 1
        while fifo and fifo[0].cancelled:
            fifo.popleft()._queue = None
            self._cancelled -= 1

    def _compact(self) -> None:
        """Drop every cancelled resident and rebuild.

        Safe for determinism: both containers keep the same strict
        ``(time, seq)`` order over the surviving events, so pop order is
        unchanged.  Triggered only when cancelled residents outnumber
        live ones, which amortises the rebuild against the cancellations
        that caused it.
        """
        for event in self._heap:
            if event.cancelled:
                event._queue = None
        for event in self._fifo:
            if event.cancelled:
                event._queue = None
        self._heap = [e for e in self._heap if not e.cancelled]
        heapq.heapify(self._heap)
        self._fifo = deque(e for e in self._fifo if not e.cancelled)
        self._cancelled = 0
        self.compactions += 1
        PERF.heap_compactions += 1

    def __len__(self) -> int:
        assert self._live >= 0, (
            "event-queue live counter went negative (%d)" % (self._live,))
        return self._live

    def __bool__(self) -> bool:
        return self.peek_time() is not None
