"""Datagram transport — the paper's scalability alternative.

Section 3: "A datagram based scheme would scale much better, but would
require individual authentication for each message."  This transport
exists so the A1 ablation can quantify that trade-off: no connection
state, no setup cost, but a per-message authentication charge and no
delivery guarantee (messages onto dead paths are silently dropped, and
there is no ordering floor).
"""

from __future__ import annotations

from typing import Callable, Optional

from ..errors import UnreachableHostError
from .latency import DEFAULT_COST_MODEL, CostModel
from .network import Network


class DatagramTransport:
    """Connectionless messaging between hosts.

    Receivers register with :meth:`bind`; each delivered datagram invokes
    ``handler(payload, src_name)`` after wire delay plus the per-message
    authentication cost.
    """

    def __init__(self, network: Network,
                 cost_model: CostModel = DEFAULT_COST_MODEL) -> None:
        self.network = network
        self.sim = network.sim
        self.cost_model = cost_model
        self._handlers: dict = {}
        #: Injected loss probability (0..1) for reliability testing;
        #: draws come from the seeded simulation RNG.
        self.loss_rate = 0.0
        self.losses_injected = 0

    def bind(self, host: str, port: str,
             handler: Callable[[object, str], None]) -> None:
        """Attach a datagram handler to ``(host, port)``."""
        self._handlers[(host, port)] = handler

    def unbind(self, host: str, port: str) -> None:
        self._handlers.pop((host, port), None)

    def send(self, src: str, dst: str, port: str, payload,
             nbytes: int = 256,
             extra_delay_ms: float = 0.0,
             on_dropped: Optional[Callable[[str], None]] = None) -> None:
        """Fire one datagram; silently dropped when undeliverable."""
        stats = self.network.stats
        stats.datagrams_sent += 1
        stats.datagram_bytes += nbytes
        if self.loss_rate > 0.0 and self.sim.rng.random() < self.loss_rate:
            self.losses_injected += 1
            stats.datagrams_dropped += 1
            if on_dropped is not None:
                on_dropped("lost")
            return
        try:
            wire = self.network.transit_delay_ms(src, dst, nbytes)
        except UnreachableHostError:
            stats.datagrams_dropped += 1
            if on_dropped is not None:
                on_dropped("unreachable")
            return

        auth = self.cost_model.datagram_auth_ms

        def deliver() -> None:
            node = self.network.nodes.get(dst)
            if node is None or not node.up:
                stats.datagrams_dropped += 1
                if on_dropped is not None:
                    on_dropped("host down")
                return
            handler = self._handlers.get((dst, port))
            if handler is None:
                stats.datagrams_dropped += 1
                if on_dropped is not None:
                    on_dropped("port unreachable")
                return
            handler(payload, src)

        self.sim.schedule(wire + auth + extra_delay_ms, deliver,
                          label="dgram %s->%s/%s" % (src, dst, port))
