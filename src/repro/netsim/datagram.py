"""Datagram transport — the paper's scalability alternative.

Section 3: "A datagram based scheme would scale much better, but would
require individual authentication for each message."  This transport
exists so the A1 ablation can quantify that trade-off: no connection
state, no setup cost, but a per-message authentication charge and no
delivery guarantee (messages onto dead paths are silently dropped, and
there is no ordering floor).
"""

from __future__ import annotations

from typing import Callable, Optional

from ..errors import SimulationError, UnreachableHostError
from .latency import DEFAULT_COST_MODEL, CostModel
from .network import Network


class DatagramTransport:
    """Connectionless messaging between hosts.

    Receivers register with :meth:`bind`; each delivered datagram invokes
    ``handler(payload, src_name)`` after wire delay plus the per-message
    authentication cost.

    Under a lockstep shard context, a datagram whose destination lives
    on another worker ships its fully computed delivery descriptor
    (time, payload, source) to that worker at the window barrier — the
    delivery instant is byte-identical to the single-threaded run.  A
    cross-shard drop notice (``on_dropped`` for a dead destination)
    travels back the same way and is the documented next-window
    relaxation.  Loss injection draws from the per-process RNG and so
    cannot be replicated across workers: sending with a non-zero
    ``loss_rate`` inside a sharded phase raises.
    """

    def __init__(self, network: Network,
                 cost_model: CostModel = DEFAULT_COST_MODEL) -> None:
        self.network = network
        self.sim = network.sim
        self.cost_model = cost_model
        self._handlers: dict = {}
        #: Injected loss probability (0..1) for reliability testing;
        #: draws come from the seeded simulation RNG.
        self.loss_rate = 0.0
        self.losses_injected = 0
        network.datagram_transport = self

    def bind(self, host: str, port: str,
             handler: Callable[[object, str], None]) -> None:
        """Attach a datagram handler to ``(host, port)``."""
        self._handlers[(host, port)] = handler

    def unbind(self, host: str, port: str) -> None:
        self._handlers.pop((host, port), None)

    def send(self, src: str, dst: str, port: str, payload,
             nbytes: int = 256,
             extra_delay_ms: float = 0.0,
             on_dropped: Optional[Callable[[str], None]] = None) -> None:
        """Fire one datagram; silently dropped when undeliverable."""
        stats = self.network.stats
        stats.datagrams_sent += 1
        stats.datagram_bytes += nbytes
        shard = self.sim.shard
        if self.loss_rate > 0.0:
            if shard is not None:
                raise SimulationError(
                    "datagram loss injection draws from a per-process RNG "
                    "and cannot stay deterministic across shard workers; "
                    "set loss_rate to 0 before entering a sharded phase")
            if self.sim.rng.random() < self.loss_rate:
                self.losses_injected += 1
                stats.datagrams_dropped += 1
                if on_dropped is not None:
                    on_dropped("lost")
                return
        try:
            wire = self.network.transit_delay_ms(src, dst, nbytes)
        except UnreachableHostError:
            stats.datagrams_dropped += 1
            if on_dropped is not None:
                on_dropped("unreachable")
            return

        auth = self.cost_model.datagram_auth_ms
        deliver_at = self.sim.now_ms + wire + auth + extra_delay_ms
        if shard is not None and not shard.owns(dst):
            if self.sim.current_owner is None:
                # A send from a *global* event executes in every worker;
                # the destination's owner runs this same code and
                # schedules the delivery locally.  A drop notice cannot
                # route back to a replicated callback deterministically.
                if on_dropped is not None:
                    raise SimulationError(
                        "datagram %s->%s sent from a global event cannot "
                        "carry on_dropped; issue it from a host-owned "
                        "event (harness.call_on) instead" % (src, dst))
                return
            # Owned send: the receiving worker schedules the delivery;
            # if the sender wants drop notices, a settle token routes
            # the verdict back.
            token = None
            if on_dropped is not None:
                token = shard.register_settle(src, on_dropped)
            shard.ship_datagram(dst, port, payload, deliver_at, src, token)
            return
        self._schedule_delivery(dst, port, payload, deliver_at, src,
                                on_dropped, None)

    def _schedule_delivery(self, dst: str, port: str, payload,
                           deliver_at: float, src: str,
                           on_dropped: Optional[Callable[[str], None]],
                           settle) -> None:
        """Schedule the delivery event on the destination's timeline.

        ``settle`` is ``(origin_shard, token)`` for a delivery applied
        from another worker's ship: the outcome (delivered, or dropped
        with a reason) is shipped back so the sender's shard can retire
        or fire its ``on_dropped`` callback.
        """
        stats = self.network.stats

        def deliver() -> None:
            reason = None
            node = self.network.nodes.get(dst)
            if node is None or not node.up:
                reason = "host down"
            else:
                handler = self._handlers.get((dst, port))
                if handler is None:
                    reason = "port unreachable"
                else:
                    handler(payload, src)
            if reason is not None:
                stats.datagrams_dropped += 1
            if settle is not None:
                shard = self.sim.shard
                if shard is not None:
                    shard.ship_settle(settle, reason, self.sim.now_ms, dst)
            elif reason is not None and on_dropped is not None:
                on_dropped(reason)

        self.sim.schedule_at(deliver_at, deliver, owner=dst,
                             label="dgram %s->%s/%s" % (src, dst, port))

    def apply_remote_datagram(self, dst: str, port: str, payload,
                              deliver_at: float, src: str,
                              settle) -> None:
        """Apply a shipped cross-shard datagram: schedule its delivery
        here, at the exact instant the sender computed."""
        self._schedule_delivery(dst, port, payload, deliver_at, src,
                                None, settle)
