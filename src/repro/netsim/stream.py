"""Reliable stream connections — the paper's TCP virtual circuits.

Sibling LPMs, tool connections, and daemon conversations all run over
these (section 3: "communication between sibling LPMs is done by reliable
virtual circuits provided by TCP connections").  A connection delivers
messages in order with the wire delay of its current network path, breaks
when the path disappears (crash, partition, link down), and notifies the
surviving endpoints after a detection delay, like a failed send or
keepalive would.

Establishing a connection costs a configurable setup time covering the
three-way handshake plus the channel authentication of section 3
("The LPMs are able to perform authentication when channels are created,
rather than upon every request").
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..errors import ConnectionClosedError, UnreachableHostError
from .network import Network

#: Default detection delay for a silently broken circuit.
DEFAULT_DETECT_MS = 2_000.0


class StreamEndpoint:
    """One end of a stream connection.

    Owners install ``on_message(payload, endpoint)`` and
    ``on_close(reason, endpoint)`` callbacks.  ``peer_name`` is the host
    at the other end, and ``context`` is free for the owner's use.
    """

    def __init__(self, conn: "StreamConnection", local: str,
                 peer: str) -> None:
        self.conn = conn
        self.local_name = local
        self.peer_name = peer
        self.on_message: Optional[Callable] = None
        self.on_close: Optional[Callable] = None
        self.context = None
        self._closed = False

    @property
    def open(self) -> bool:
        return not self._closed and self.conn.established

    def send(self, payload, nbytes: int = 256,
             extra_delay_ms: float = 0.0) -> None:
        """Queue ``payload`` for in-order delivery to the peer.

        ``extra_delay_ms`` lets the caller add endpoint processing time
        computed at a higher layer (e.g. load-scaled LPM protocol costs).
        Raises :class:`ConnectionClosedError` if the circuit is known to
        be down, and breaks the circuit immediately if the send discovers
        the path is gone (TCP RST semantics).
        """
        if not self.open:
            raise ConnectionClosedError(
                "%s -> %s" % (self.local_name, self.peer_name))
        self.conn.transmit(self, payload, nbytes, extra_delay_ms)

    def close(self) -> None:
        """Orderly shutdown of the whole connection; idempotent."""
        if not self._closed:
            self.conn.close(initiator=self)

    def _mark_closed(self) -> None:
        self._closed = True

    def __repr__(self) -> str:
        return "StreamEndpoint(%s <-> %s, %s)" % (
            self.local_name, self.peer_name,
            "open" if self.open else "closed")


class StreamConnection:
    """A reliable, ordered, authenticated-at-setup virtual circuit."""

    _next_id = 1

    def __init__(self, network: Network, a_name: str, b_name: str,
                 detect_ms: float = DEFAULT_DETECT_MS) -> None:
        self.network = network
        self.sim = network.sim
        self.conn_id = StreamConnection._next_id
        StreamConnection._next_id += 1
        self.a = StreamEndpoint(self, a_name, b_name)
        self.b = StreamEndpoint(self, b_name, a_name)
        self.detect_ms = detect_ms
        self.established = False
        self._last_delivery_ms = {id(self.a): 0.0, id(self.b): 0.0}
        self._break_scheduled = False

    # ------------------------------------------------------------------
    # Establishment
    # ------------------------------------------------------------------

    @classmethod
    def connect(cls, network: Network, src: str, dst: str, service: str,
                payload=None, setup_ms: float = 0.0,
                on_established: Optional[Callable] = None,
                on_failed: Optional[Callable] = None,
                detect_ms: float = DEFAULT_DETECT_MS) -> "StreamConnection":
        """Open a circuit from ``src`` to the named service on ``dst``.

        Asynchronous: after the setup delay (handshake round trip plus
        ``setup_ms`` for authentication), the destination's acceptor is
        called with the server-side endpoint and ``payload``, then
        ``on_established(client_endpoint)`` fires.  If the destination is
        unreachable or not listening, ``on_failed(reason)`` fires instead
        (after one round-trip-worth of delay, as a refused TCP connect
        would).
        """
        conn = cls(network, src, dst, detect_ms=detect_ms)
        sim = network.sim

        def fail(reason: str, delay_ms: float) -> None:
            def deliver_failure() -> None:
                if on_failed is not None:
                    on_failed(reason)
            sim.schedule(delay_ms, deliver_failure,
                         label="connect-fail %s->%s" % (src, dst))

        try:
            one_way = network.transit_delay_ms(src, dst, 64)
        except UnreachableHostError:
            fail("unreachable", detect_ms)
            return conn

        node = network.nodes[dst]
        acceptor = node.services.get(service)
        if acceptor is None:
            fail("connection refused: no %r service on %s" % (service, dst),
                 2 * one_way)
            return conn

        def complete() -> None:
            # The path may have vanished during the handshake.
            if not network.reachable(src, dst):
                fail("unreachable", 0.0)
                return
            current_acceptor = network.nodes[dst].services.get(service)
            if current_acceptor is None:
                fail("connection refused: %r vanished on %s" % (service, dst),
                     0.0)
                return
            conn.established = True
            network.register_connection(conn)
            current_acceptor(conn.b, payload)
            if on_established is not None:
                on_established(conn.a)

        sim.schedule(2 * one_way + setup_ms, complete,
                     label="connect %s->%s/%s" % (src, dst, service))
        return conn

    # ------------------------------------------------------------------
    # Data transfer
    # ------------------------------------------------------------------

    def _peer_of(self, endpoint: StreamEndpoint) -> StreamEndpoint:
        return self.b if endpoint is self.a else self.a

    def transmit(self, sender: StreamEndpoint, payload, nbytes: int,
                 extra_delay_ms: float) -> None:
        peer = self._peer_of(sender)
        try:
            wire = self.network.transit_delay_ms(sender.local_name,
                                                 peer.local_name, nbytes)
        except UnreachableHostError:
            # A send onto a dead path discovers the break immediately.
            self._break("connection reset", immediate=True)
            raise ConnectionClosedError(
                "%s -> %s" % (sender.local_name, peer.local_name)) from None
        self.network.stats.stream_messages += 1
        self.network.stats.stream_bytes += nbytes
        # In-order delivery: never deliver before an earlier message.
        arrival = self.sim.now_ms + wire + extra_delay_ms
        floor = self._last_delivery_ms[id(peer)]
        arrival = max(arrival, floor)
        self._last_delivery_ms[id(peer)] = arrival

        def deliver() -> None:
            if not self.established or not peer.open:
                return
            node = self.network.nodes.get(peer.local_name)
            if node is None or not node.up:
                return  # the packet arrives at a dead host
            if peer.on_message is not None:
                peer.on_message(payload, peer)

        self.sim.schedule_at(arrival, deliver,
                             label="stream %s->%s" % (sender.local_name,
                                                      peer.local_name))

    # ------------------------------------------------------------------
    # Teardown and failure
    # ------------------------------------------------------------------

    def close(self, initiator: Optional[StreamEndpoint] = None) -> None:
        """Orderly close: both endpoints see on_close('closed')."""
        if not self.established:
            return
        self.established = False
        self.network.unregister_connection(self)
        for endpoint in (self.a, self.b):
            if endpoint._closed:
                continue
            endpoint._mark_closed()
            if endpoint is initiator:
                continue
            if endpoint.on_close is not None:
                endpoint.on_close("closed", endpoint)

    def recheck(self) -> None:
        """Called by the network after topology changes; breaks the
        circuit (after the detection delay) if its path is gone."""
        if not self.established or self._break_scheduled:
            return
        if self.network.reachable(self.a.local_name, self.b.local_name):
            return
        self._break_scheduled = True
        self.sim.schedule(self.detect_ms, self._break, "connection timed out",
                          label="detect-break %s-%s" % (self.a.local_name,
                                                        self.b.local_name))

    def _break(self, reason: str, immediate: bool = False) -> None:
        if not self.established:
            return
        # The path may have healed before detection fired.
        if not immediate and self.network.reachable(self.a.local_name,
                                                    self.b.local_name):
            self._break_scheduled = False
            return
        self.established = False
        self.network.unregister_connection(self)
        self.network.stats.connections_broken += 1
        for endpoint in (self.a, self.b):
            if endpoint._closed:
                continue
            endpoint._mark_closed()
            node = self.network.nodes.get(endpoint.local_name)
            if node is not None and not node.up:
                continue  # a crashed host hears nothing
            if endpoint.on_close is not None:
                endpoint.on_close(reason, endpoint)

    def endpoints(self) -> List[StreamEndpoint]:
        return [self.a, self.b]

    def __repr__(self) -> str:
        return "StreamConnection(#%d %s <-> %s, %s)" % (
            self.conn_id, self.a.local_name, self.b.local_name,
            "up" if self.established else "down")
