"""Reliable stream connections — the paper's TCP virtual circuits.

Sibling LPMs, tool connections, and daemon conversations all run over
these (section 3: "communication between sibling LPMs is done by reliable
virtual circuits provided by TCP connections").  A connection delivers
messages in order with the wire delay of its current network path, breaks
when the path disappears (crash, partition, link down), and notifies the
surviving endpoints after a detection delay, like a failed send or
keepalive would.

Establishing a connection costs a configurable setup time covering the
three-way handshake plus the channel authentication of section 3
("The LPMs are able to perform authentication when channels are created,
rather than upon every request").

Delivery scheduling is batched per circuit direction.  Each direction
keeps a sorted in-flight queue (arrival times are non-decreasing thanks
to the in-order floor, so appends keep it sorted) and at most **one**
armed simulator timer.  When the timer fires it drains every segment
whose arrival time has been reached, then re-arms for the next pending
arrival.  Arrival times are byte-identical to scheduling one event per
segment — only the event volume changes, which is what keeps chatty
circuits (gather storms, broadcast replies, history streaming) from
flooding the event queue.  See ``docs/NETSIM.md``.

Sharding seams.  Under a lockstep shard context (``netsim.shard``) a
circuit whose two ends live in different worker processes exists as a
replica in both.  The sender computes each segment's arrival time
exactly as it would single-threaded (same floor, same floats) and
*ships* the ``(arrival, payload)`` descriptor instead of scheduling
locally; the receiving worker applies it at the next window barrier and
arms its own delivery timer.  Circuit setup is one event owned by *both*
ends: each worker executes its half (acceptor on the server's shard,
``on_established`` on the client's).  Orderly close and break are the
one relaxation: they notify the remote end at the next window boundary
instead of the same instant (see ``docs/PERF.md``).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional, Tuple

from ..errors import (
    ConnectionClosedError,
    SimulationError,
    UnreachableHostError,
)
from ..perf import PERF
from .network import Network

#: Default detection delay for a silently broken circuit.
DEFAULT_DETECT_MS = 2_000.0


class StreamEndpoint:
    """One end of a stream connection.

    Owners install ``on_message(payload, endpoint)`` and
    ``on_close(reason, endpoint)`` callbacks.  ``peer_name`` is the host
    at the other end, and ``context`` is free for the owner's use.
    Slotted: every sibling pair holds two of these for the lifetime of
    the session, and the tool/daemon fabrics churn through many more.
    """

    __slots__ = ("conn", "local_name", "peer_name", "on_message",
                 "on_close", "context", "_closed")

    def __init__(self, conn: "StreamConnection", local: str,
                 peer: str) -> None:
        self.conn = conn
        self.local_name = local
        self.peer_name = peer
        self.on_message: Optional[Callable] = None
        self.on_close: Optional[Callable] = None
        self.context = None
        self._closed = False

    @property
    def open(self) -> bool:
        return not self._closed and self.conn.established

    def send(self, payload, nbytes: int = 256,
             extra_delay_ms: float = 0.0) -> None:
        """Queue ``payload`` for in-order delivery to the peer.

        The segment joins the direction's in-flight queue with an
        arrival time of now + wire delay + ``extra_delay_ms``, floored
        so it never arrives before an earlier message; the direction's
        single delivery timer (armed only when the queue was empty)
        drains it when that time is reached.  ``extra_delay_ms`` lets
        the caller add endpoint processing time computed at a higher
        layer (e.g. load-scaled LPM protocol costs).  Raises
        :class:`ConnectionClosedError` if the circuit is known to be
        down, and breaks the circuit immediately if the send discovers
        the path is gone (TCP RST semantics).
        """
        if not self.open:
            raise ConnectionClosedError(
                "%s -> %s" % (self.local_name, self.peer_name))
        self.conn.transmit(self, payload, nbytes, extra_delay_ms)

    def close(self) -> None:
        """Orderly shutdown of the whole connection; idempotent."""
        if not self._closed:
            self.conn.close(initiator=self)

    def _mark_closed(self) -> None:
        self._closed = True

    def __repr__(self) -> str:
        return "StreamEndpoint(%s <-> %s, %s)" % (
            self.local_name, self.peer_name,
            "open" if self.open else "closed")


class StreamConnection:
    """A reliable, ordered, authenticated-at-setup virtual circuit."""

    __slots__ = ("network", "sim", "conn_id", "gid", "a", "b",
                 "detect_ms", "established", "_last_delivery_ms",
                 "_inflight", "_delivery_timer", "_detect_timer",
                 "_break_scheduled", "__weakref__")

    def __init__(self, network: Network, a_name: str, b_name: str,
                 detect_ms: float = DEFAULT_DETECT_MS, _gid=None) -> None:
        self.network = network
        self.sim = network.sim
        #: Global circuit id, stable across shard workers.  Circuits
        #: created during replicated construction carry tag -1 and the
        #: same per-network conn_id everywhere; circuits created by a
        #: *global* event inside a lockstep phase (every worker runs the
        #: constructor) carry tag -2 and a separate replicated counter;
        #: circuits created by an owned event are tagged with the
        #: creating shard's index, so ids never collide between workers.
        #: A replica built from a shipped connect reuses the shipped id
        #: (``_gid``) and consumes no counter.
        shard = self.sim.shard
        if _gid is not None:
            self.gid = _gid
            self.conn_id = _gid[1]
        elif shard is None:
            self.conn_id = network.next_conn_id()
            self.gid = (-1, self.conn_id)
        elif self.sim.current_owner is None:
            self.conn_id = network.next_global_conn_id()
            self.gid = (-2, self.conn_id)
        else:
            self.conn_id = network.next_conn_id()
            self.gid = (shard.index, self.conn_id)
        network.index_connection(self)
        self.a = StreamEndpoint(self, a_name, b_name)
        self.b = StreamEndpoint(self, b_name, a_name)
        self.detect_ms = detect_ms
        self.established = False
        #: Per-direction in-order floor: no segment may arrive before a
        #: previously queued one (keyed by receiving endpoint).
        self._last_delivery_ms = {id(self.a): 0.0, id(self.b): 0.0}
        #: Per-direction sorted in-flight queue of (arrival_ms, payload).
        #: Appends preserve the sort because the floor above makes
        #: arrival times non-decreasing within a direction.
        self._inflight: dict = {id(self.a): deque(), id(self.b): deque()}
        #: Per-direction armed delivery timer (at most one each).
        self._delivery_timer: dict = {id(self.a): None, id(self.b): None}
        #: The pending detect-break timer armed by :meth:`recheck`.
        self._detect_timer = None
        self._break_scheduled = False

    # ------------------------------------------------------------------
    # Establishment
    # ------------------------------------------------------------------

    @classmethod
    def connect(cls, network: Network, src: str, dst: str, service: str,
                payload=None, setup_ms: float = 0.0,
                on_established: Optional[Callable] = None,
                on_failed: Optional[Callable] = None,
                detect_ms: float = DEFAULT_DETECT_MS) -> "StreamConnection":
        """Open a circuit from ``src`` to the named service on ``dst``.

        Asynchronous: after the setup delay (handshake round trip plus
        ``setup_ms`` for authentication), the destination's acceptor is
        called with the server-side endpoint and ``payload``, then
        ``on_established(client_endpoint)`` fires.  If the destination is
        unreachable or not listening, ``on_failed(reason)`` fires instead
        (after one round-trip-worth of delay, as a refused TCP connect
        would).

        The completion event is owned by *both* hosts: under sharding
        each worker executes its own half of it.  When the server lives
        on another shard, a connect descriptor is shipped so that shard
        can build its replica and schedule the same completion.
        """
        conn = cls(network, src, dst, detect_ms=detect_ms)
        sim = network.sim

        try:
            one_way = network.transit_delay_ms(src, dst, 64)
        except UnreachableHostError:
            conn._connect_fail("unreachable", detect_ms, on_failed)
            return conn

        node = network.nodes[dst]
        acceptor = node.services.get(service)
        if acceptor is None:
            conn._connect_fail(
                "connection refused: no %r service on %s" % (service, dst),
                2 * one_way, on_failed)
            return conn

        complete_at = sim.now_ms + 2 * one_way + setup_ms
        shard = sim.shard
        if shard is not None and sim.current_owner is not None:
            # An owned connect executes in exactly one worker.  The
            # client half (``on_established`` closure) can only ever run
            # here, so that worker must own the client host; the server
            # shard gets a shipped descriptor to build its replica.  A
            # *global* connect (current_owner is None) runs this very
            # code in every worker — the replica already exists
            # everywhere and nothing must be shipped.
            if not shard.owns(src):
                raise SimulationError(
                    "connect %s->%s issued on shard %d, which does not "
                    "own the client host" % (src, dst, shard.index))
            if not shard.owns(dst):
                shard.ship_connect(conn.gid, src, dst, service, payload,
                                   complete_at, detect_ms)
        sim.schedule_at(complete_at, conn._complete, service, payload,
                        on_established, on_failed, owner=(src, dst),
                        label="connect %s->%s/%s" % (src, dst, service))
        return conn

    def _connect_fail(self, reason: str, delay_ms: float,
                      on_failed: Optional[Callable]) -> None:
        """Deliver a connect failure to the client side after a delay.

        Scheduled only where the client's half executes, so a server
        shard replaying the shared completion event neither runs nor
        counts the client's failure delivery.
        """
        sim = self.sim
        src = self.a.local_name
        if not sim.executes_host(src):
            return

        def deliver_failure() -> None:
            if on_failed is not None:
                on_failed(reason)

        sim.schedule(delay_ms, deliver_failure, owner=src,
                     label="connect-fail %s->%s" % (src, self.b.local_name))

    def _complete(self, service: str, payload,
                  on_established: Optional[Callable],
                  on_failed: Optional[Callable]) -> None:
        """The handshake finished: establish, accept, notify.

        Runs once single-threaded; under sharding it runs in every
        worker owning either end, each executing only its own half
        (``executes_host`` guards) while shared state — established
        flag, registries — is replicated identically.
        """
        network, sim = self.network, self.sim
        src, dst = self.a.local_name, self.b.local_name
        # The path may have vanished during the handshake.
        if not network.reachable(src, dst):
            self._connect_fail("unreachable", 0.0, on_failed)
            return
        current_acceptor = network.nodes[dst].services.get(service)
        if current_acceptor is None:
            self._connect_fail(
                "connection refused: %r vanished on %s" % (service, dst),
                0.0, on_failed)
            return
        self.established = True
        network.register_connection(self)
        if sim.executes_host(dst):
            prev = sim.current_owner
            sim.current_owner = dst
            current_acceptor(self.b, payload)
            sim.current_owner = prev
        if on_established is not None and sim.executes_host(src):
            prev = sim.current_owner
            sim.current_owner = src
            on_established(self.a)
            sim.current_owner = prev

    # ------------------------------------------------------------------
    # Data transfer
    # ------------------------------------------------------------------

    def _peer_of(self, endpoint: StreamEndpoint) -> StreamEndpoint:
        return self.b if endpoint is self.a else self.a

    def transmit(self, sender: StreamEndpoint, payload, nbytes: int,
                 extra_delay_ms: float) -> None:
        """Queue one segment toward ``sender``'s peer.

        Computes the arrival time exactly as the per-segment scheduler
        did (wire delay of the current path, plus the caller's extra
        delay, floored by the in-order guarantee), appends it to the
        direction's in-flight queue, and arms the direction's delivery
        timer if it was idle.  A timer armed for an earlier segment
        already covers this one: arrival times within a direction are
        non-decreasing, so the head of the queue is always the next due
        arrival and no re-arm is needed on send.

        When the receiving end lives on another shard, the fully
        computed ``(arrival, payload)`` descriptor is shipped instead —
        the receiver applies it at the next window barrier, so the
        arrival float is byte-identical to the single-threaded run.
        """
        peer = self._peer_of(sender)
        try:
            wire = self.network.transit_delay_ms(sender.local_name,
                                                 peer.local_name, nbytes)
        except UnreachableHostError:
            # A send onto a dead path discovers the break immediately.
            self._break("connection reset", immediate=True)
            raise ConnectionClosedError(
                "%s -> %s" % (sender.local_name, peer.local_name)) from None
        self.network.stats.stream_messages += 1
        self.network.stats.stream_bytes += nbytes
        # In-order delivery: never deliver before an earlier message.
        arrival = self.sim.now_ms + wire + extra_delay_ms
        key = id(peer)
        floor = self._last_delivery_ms[key]
        arrival = max(arrival, floor)
        self._last_delivery_ms[key] = arrival
        shard = self.sim.shard
        if shard is not None and not shard.owns(peer.local_name):
            if self.sim.current_owner is not None:
                # Owned send: exactly one worker executes it, so it
                # ships the computed descriptor to the receiver's shard.
                shard.ship_segment(self.gid,
                                   "a" if peer is self.a else "b",
                                   peer.local_name, arrival, payload,
                                   self.sim.now_ms, sender.local_name)
            # A send from a *global* event executes in every worker;
            # the receiver's owner runs this same code and schedules
            # the delivery locally below, so nobody ships anything.
            return
        self._inflight[key].append((arrival, payload, self.sim.now_ms))
        if self._delivery_timer[key] is None:
            self._delivery_timer[key] = self.sim.schedule_at(
                arrival, self._deliver_due, peer,
                owner=peer.local_name,
                label="stream %s->%s" % (sender.local_name,
                                         peer.local_name))

    def _accept_remote_segment(self, side: str, arrival_ms: float,
                               payload, sent_ms: float) -> None:
        """A shipped segment reached the worker owning this direction's
        receiving end: enqueue it exactly as the sender-side
        :meth:`transmit` would have, arrival time already final."""
        peer = self.a if side == "a" else self.b
        key = id(peer)
        if arrival_ms > self._last_delivery_ms[key]:
            self._last_delivery_ms[key] = arrival_ms
        self._inflight[key].append((arrival_ms, payload, sent_ms))
        if self._delivery_timer[key] is None:
            self._delivery_timer[key] = self.sim.schedule_at(
                arrival_ms, self._deliver_due, peer,
                owner=peer.local_name,
                label="stream %s->%s" % (peer.peer_name, peer.local_name))

    def _deliver_due(self, peer: StreamEndpoint) -> None:
        """The delivery timer for ``peer``'s direction fired: drain
        every in-flight segment whose arrival time has been reached (in
        queue order, which is arrival order), then re-arm for the next
        pending arrival if any segments remain.

        Each drained segment is checked against the same suppression
        rules the per-segment scheduler applied at its own delivery
        event — circuit still up, endpoint still open, receiving host
        still up — because an ``on_message`` callback may close the
        circuit or crash the host mid-drain.
        """
        key = id(peer)
        self._delivery_timer[key] = None
        queue: Deque[Tuple[float, object, float]] = self._inflight[key]
        now = self.sim.now_ms
        stats = self.network.stats
        tracer = self.sim.tracer
        PERF.stream_batched_deliveries += 1
        stats.stream_delivery_batches += 1
        while queue and queue[0][0] <= now:
            _, payload, sent_ms = queue.popleft()
            PERF.stream_segments_drained += 1
            if not self.established or not peer.open:
                stats.stream_deliveries_suppressed += 1
                continue
            node = self.network.nodes.get(peer.local_name)
            if node is None or not node.up:
                # The segment arrives at a dead host.
                stats.stream_deliveries_suppressed += 1
                continue
            if tracer is not None:
                # Send-to-delivery lag: queueing + wire + in-order floor.
                tracer.record("stream_lag", now - sent_ms)
            if peer.on_message is not None:
                peer.on_message(payload, peer)
        # A callback may have closed the circuit (queue cleared) or sent
        # more data on this direction (timer re-armed by transmit).
        if queue and self.established and self._delivery_timer[key] is None:
            PERF.stream_timer_rearms += 1
            self._delivery_timer[key] = self.sim.schedule_at(
                queue[0][0], self._deliver_due, peer,
                label="stream %s->%s" % (peer.peer_name, peer.local_name))

    # ------------------------------------------------------------------
    # Teardown and failure
    # ------------------------------------------------------------------

    def _flush_timers(self) -> None:
        """Cancel every pending timer and drop the in-flight queues.

        Called on orderly close and on break: segments still in flight
        are lost (exactly as the per-segment scheduler dropped them at
        their individual delivery events), the delivery timers must not
        fire on a dead circuit, and a pending detect-break timer is
        dead bookkeeping once the circuit is already down.
        """
        for key, timer in self._delivery_timer.items():
            if timer is not None:
                self.sim.cancel(timer)
                self._delivery_timer[key] = None
            self._inflight[key].clear()
        if self._detect_timer is not None:
            self.sim.cancel(self._detect_timer)
            self._detect_timer = None
        self._break_scheduled = False

    def _ship_teardown(self, reason: str, broke: bool,
                       _from_remote: bool) -> None:
        """Tell every other shard holding a replica of this circuit to
        tear its copy down too.  No-op single-process, and suppressed
        when this teardown *is* the application of a remote one."""
        shard = self.sim.shard
        if shard is None or _from_remote:
            return
        if self.sim.current_owner is None:
            # A teardown inside a global event (crash, partition, heal)
            # executes in every worker against its own replica; there is
            # no remote copy left to notify.
            return
        shard.ship_teardown(self.gid, reason, broke,
                            self.a.local_name, self.b.local_name,
                            self.sim.now_ms)

    def _notify_closed(self, endpoint: StreamEndpoint, reason: str) -> None:
        """Run one endpoint's ``on_close`` under that host's ownership."""
        if endpoint.on_close is None:
            return
        sim = self.sim
        prev = sim.current_owner
        sim.current_owner = endpoint.local_name
        endpoint.on_close(reason, endpoint)
        sim.current_owner = prev

    def close(self, initiator: Optional[StreamEndpoint] = None,
              _from_remote: bool = False) -> None:
        """Orderly close: both endpoints see on_close('closed')."""
        if not self.established:
            return
        self.established = False
        self._flush_timers()
        self.network.unregister_connection(self)
        self._ship_teardown("closed", False, _from_remote)
        for endpoint in (self.a, self.b):
            if endpoint._closed:
                continue
            endpoint._mark_closed()
            if endpoint is initiator:
                continue
            if not self.sim.executes_host(endpoint.local_name):
                continue
            self._notify_closed(endpoint, "closed")

    def recheck(self) -> None:
        """Called by the network after topology changes; breaks the
        circuit (after the detection delay) if its path is gone."""
        if not self.established or self._break_scheduled:
            return
        if self.network.reachable(self.a.local_name, self.b.local_name):
            return
        self._break_scheduled = True
        self._detect_timer = self.sim.schedule(
            self.detect_ms, self._detect_break_fired,
            label="detect-break %s-%s" % (self.a.local_name,
                                          self.b.local_name))

    def _detect_break_fired(self) -> None:
        """The detection delay elapsed; break unless the path healed."""
        self._detect_timer = None
        self._break_scheduled = False
        if not self.established:
            return
        # The path may have healed before detection fired.
        if self.network.reachable(self.a.local_name, self.b.local_name):
            return
        self._break("connection timed out", immediate=True)

    def _break(self, reason: str, immediate: bool = False,
               _from_remote: bool = False) -> None:
        """Tear the circuit down.

        ``immediate`` skips the heal re-check (the caller has already
        established the path is gone: a reset send, or a detect timer
        that just verified unreachability).  Any pending detect-break
        timer is cancelled and ``_break_scheduled`` cleared, so an
        immediate break racing an armed detection cannot leave stale
        bookkeeping behind.
        """
        if not self.established:
            return
        if not immediate and self.network.reachable(self.a.local_name,
                                                    self.b.local_name):
            self._break_scheduled = False
            return
        self.established = False
        self._flush_timers()
        self.network.unregister_connection(self)
        self.network.stats.connections_broken += 1
        self._ship_teardown(reason, True, _from_remote)
        for endpoint in (self.a, self.b):
            if endpoint._closed:
                continue
            endpoint._mark_closed()
            node = self.network.nodes.get(endpoint.local_name)
            if node is not None and not node.up:
                continue  # a crashed host hears nothing
            if not self.sim.executes_host(endpoint.local_name):
                continue
            self._notify_closed(endpoint, reason)

    def endpoints(self) -> List[StreamEndpoint]:
        return [self.a, self.b]

    def __repr__(self) -> str:
        return "StreamConnection(#%d %s <-> %s, %s)" % (
            self.conn_id, self.a.local_name, self.b.local_name,
            "up" if self.established else "down")


# ----------------------------------------------------------------------
# Cross-shard ship application (called by netsim.shard at barriers)
# ----------------------------------------------------------------------

def apply_remote_segment(network: Network, gid, side: str,
                         arrival_ms: float, payload,
                         sent_ms: float) -> None:
    """Apply one shipped stream segment to the local circuit replica.

    A missing or torn-down replica means the circuit closed while the
    segment was in flight; single-threaded, the close would have flushed
    the segment from the in-flight queue, so it is dropped silently.
    """
    conn = network.connection_by_gid(gid)
    if conn is None or not conn.established:
        return
    conn._accept_remote_segment(side, arrival_ms, payload, sent_ms)


def apply_remote_connect(network: Network, gid, src: str, dst: str,
                         service: str, payload, complete_at: float,
                         detect_ms: float) -> None:
    """Build the server shard's replica of a circuit being opened from
    another shard, and schedule the shared completion event.  The
    replica re-runs the same reachability/service checks at the same
    instant against replicated topology, so both sides reach the same
    verdict; only the server half (the acceptor call) executes here."""
    conn = StreamConnection(network, src, dst, detect_ms=detect_ms,
                            _gid=gid)
    network.sim.schedule_at(complete_at, conn._complete, service, payload,
                            None, None, owner=(src, dst),
                            label="connect %s->%s/%s" % (src, dst, service))


def apply_remote_teardown(network: Network, gid, reason: str,
                          broke: bool, t_ship: float) -> None:
    """Tear down the local replica of a circuit closed on another shard.

    The documented relaxation: the remote end learns of a close/break at
    the next window boundary rather than the same instant (the event is
    scheduled at the shipped time, floored by this worker's clock).
    """
    conn = network.connection_by_gid(gid)
    if conn is None or not conn.established:
        return
    sim = network.sim
    owner = (conn.a.local_name, conn.b.local_name)

    def teardown() -> None:
        if broke:
            conn._break(reason, immediate=True, _from_remote=True)
        else:
            conn.close(_from_remote=True)

    sim.schedule_at(max(t_ship, sim.now_ms), teardown, owner=owner,
                    label="remote-teardown %s-%s" % owner)
