"""Reliable stream connections — the paper's TCP virtual circuits.

Sibling LPMs, tool connections, and daemon conversations all run over
these (section 3: "communication between sibling LPMs is done by reliable
virtual circuits provided by TCP connections").  A connection delivers
messages in order with the wire delay of its current network path, breaks
when the path disappears (crash, partition, link down), and notifies the
surviving endpoints after a detection delay, like a failed send or
keepalive would.

Establishing a connection costs a configurable setup time covering the
three-way handshake plus the channel authentication of section 3
("The LPMs are able to perform authentication when channels are created,
rather than upon every request").

Delivery scheduling is batched per circuit direction.  Each direction
keeps a sorted in-flight queue (arrival times are non-decreasing thanks
to the in-order floor, so appends keep it sorted) and at most **one**
armed simulator timer.  When the timer fires it drains every segment
whose arrival time has been reached, then re-arms for the next pending
arrival.  Arrival times are byte-identical to scheduling one event per
segment — only the event volume changes, which is what keeps chatty
circuits (gather storms, broadcast replies, history streaming) from
flooding the event queue.  See ``docs/NETSIM.md``.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional, Tuple

from ..errors import ConnectionClosedError, UnreachableHostError
from ..perf import PERF
from .network import Network

#: Default detection delay for a silently broken circuit.
DEFAULT_DETECT_MS = 2_000.0


class StreamEndpoint:
    """One end of a stream connection.

    Owners install ``on_message(payload, endpoint)`` and
    ``on_close(reason, endpoint)`` callbacks.  ``peer_name`` is the host
    at the other end, and ``context`` is free for the owner's use.
    """

    def __init__(self, conn: "StreamConnection", local: str,
                 peer: str) -> None:
        self.conn = conn
        self.local_name = local
        self.peer_name = peer
        self.on_message: Optional[Callable] = None
        self.on_close: Optional[Callable] = None
        self.context = None
        self._closed = False

    @property
    def open(self) -> bool:
        return not self._closed and self.conn.established

    def send(self, payload, nbytes: int = 256,
             extra_delay_ms: float = 0.0) -> None:
        """Queue ``payload`` for in-order delivery to the peer.

        The segment joins the direction's in-flight queue with an
        arrival time of now + wire delay + ``extra_delay_ms``, floored
        so it never arrives before an earlier message; the direction's
        single delivery timer (armed only when the queue was empty)
        drains it when that time is reached.  ``extra_delay_ms`` lets
        the caller add endpoint processing time computed at a higher
        layer (e.g. load-scaled LPM protocol costs).  Raises
        :class:`ConnectionClosedError` if the circuit is known to be
        down, and breaks the circuit immediately if the send discovers
        the path is gone (TCP RST semantics).
        """
        if not self.open:
            raise ConnectionClosedError(
                "%s -> %s" % (self.local_name, self.peer_name))
        self.conn.transmit(self, payload, nbytes, extra_delay_ms)

    def close(self) -> None:
        """Orderly shutdown of the whole connection; idempotent."""
        if not self._closed:
            self.conn.close(initiator=self)

    def _mark_closed(self) -> None:
        self._closed = True

    def __repr__(self) -> str:
        return "StreamEndpoint(%s <-> %s, %s)" % (
            self.local_name, self.peer_name,
            "open" if self.open else "closed")


class StreamConnection:
    """A reliable, ordered, authenticated-at-setup virtual circuit."""

    _next_id = 1

    def __init__(self, network: Network, a_name: str, b_name: str,
                 detect_ms: float = DEFAULT_DETECT_MS) -> None:
        self.network = network
        self.sim = network.sim
        self.conn_id = StreamConnection._next_id
        StreamConnection._next_id += 1
        self.a = StreamEndpoint(self, a_name, b_name)
        self.b = StreamEndpoint(self, b_name, a_name)
        self.detect_ms = detect_ms
        self.established = False
        #: Per-direction in-order floor: no segment may arrive before a
        #: previously queued one (keyed by receiving endpoint).
        self._last_delivery_ms = {id(self.a): 0.0, id(self.b): 0.0}
        #: Per-direction sorted in-flight queue of (arrival_ms, payload).
        #: Appends preserve the sort because the floor above makes
        #: arrival times non-decreasing within a direction.
        self._inflight: dict = {id(self.a): deque(), id(self.b): deque()}
        #: Per-direction armed delivery timer (at most one each).
        self._delivery_timer: dict = {id(self.a): None, id(self.b): None}
        #: The pending detect-break timer armed by :meth:`recheck`.
        self._detect_timer = None
        self._break_scheduled = False

    # ------------------------------------------------------------------
    # Establishment
    # ------------------------------------------------------------------

    @classmethod
    def connect(cls, network: Network, src: str, dst: str, service: str,
                payload=None, setup_ms: float = 0.0,
                on_established: Optional[Callable] = None,
                on_failed: Optional[Callable] = None,
                detect_ms: float = DEFAULT_DETECT_MS) -> "StreamConnection":
        """Open a circuit from ``src`` to the named service on ``dst``.

        Asynchronous: after the setup delay (handshake round trip plus
        ``setup_ms`` for authentication), the destination's acceptor is
        called with the server-side endpoint and ``payload``, then
        ``on_established(client_endpoint)`` fires.  If the destination is
        unreachable or not listening, ``on_failed(reason)`` fires instead
        (after one round-trip-worth of delay, as a refused TCP connect
        would).
        """
        conn = cls(network, src, dst, detect_ms=detect_ms)
        sim = network.sim

        def fail(reason: str, delay_ms: float) -> None:
            def deliver_failure() -> None:
                if on_failed is not None:
                    on_failed(reason)
            sim.schedule(delay_ms, deliver_failure,
                         label="connect-fail %s->%s" % (src, dst))

        try:
            one_way = network.transit_delay_ms(src, dst, 64)
        except UnreachableHostError:
            fail("unreachable", detect_ms)
            return conn

        node = network.nodes[dst]
        acceptor = node.services.get(service)
        if acceptor is None:
            fail("connection refused: no %r service on %s" % (service, dst),
                 2 * one_way)
            return conn

        def complete() -> None:
            # The path may have vanished during the handshake.
            if not network.reachable(src, dst):
                fail("unreachable", 0.0)
                return
            current_acceptor = network.nodes[dst].services.get(service)
            if current_acceptor is None:
                fail("connection refused: %r vanished on %s" % (service, dst),
                     0.0)
                return
            conn.established = True
            network.register_connection(conn)
            current_acceptor(conn.b, payload)
            if on_established is not None:
                on_established(conn.a)

        sim.schedule(2 * one_way + setup_ms, complete,
                     label="connect %s->%s/%s" % (src, dst, service))
        return conn

    # ------------------------------------------------------------------
    # Data transfer
    # ------------------------------------------------------------------

    def _peer_of(self, endpoint: StreamEndpoint) -> StreamEndpoint:
        return self.b if endpoint is self.a else self.a

    def transmit(self, sender: StreamEndpoint, payload, nbytes: int,
                 extra_delay_ms: float) -> None:
        """Queue one segment toward ``sender``'s peer.

        Computes the arrival time exactly as the per-segment scheduler
        did (wire delay of the current path, plus the caller's extra
        delay, floored by the in-order guarantee), appends it to the
        direction's in-flight queue, and arms the direction's delivery
        timer if it was idle.  A timer armed for an earlier segment
        already covers this one: arrival times within a direction are
        non-decreasing, so the head of the queue is always the next due
        arrival and no re-arm is needed on send.
        """
        peer = self._peer_of(sender)
        try:
            wire = self.network.transit_delay_ms(sender.local_name,
                                                 peer.local_name, nbytes)
        except UnreachableHostError:
            # A send onto a dead path discovers the break immediately.
            self._break("connection reset", immediate=True)
            raise ConnectionClosedError(
                "%s -> %s" % (sender.local_name, peer.local_name)) from None
        self.network.stats.stream_messages += 1
        self.network.stats.stream_bytes += nbytes
        # In-order delivery: never deliver before an earlier message.
        arrival = self.sim.now_ms + wire + extra_delay_ms
        key = id(peer)
        floor = self._last_delivery_ms[key]
        arrival = max(arrival, floor)
        self._last_delivery_ms[key] = arrival
        self._inflight[key].append((arrival, payload, self.sim.now_ms))
        if self._delivery_timer[key] is None:
            self._delivery_timer[key] = self.sim.schedule_at(
                arrival, self._deliver_due, peer,
                label="stream %s->%s" % (sender.local_name,
                                         peer.local_name))

    def _deliver_due(self, peer: StreamEndpoint) -> None:
        """The delivery timer for ``peer``'s direction fired: drain
        every in-flight segment whose arrival time has been reached (in
        queue order, which is arrival order), then re-arm for the next
        pending arrival if any segments remain.

        Each drained segment is checked against the same suppression
        rules the per-segment scheduler applied at its own delivery
        event — circuit still up, endpoint still open, receiving host
        still up — because an ``on_message`` callback may close the
        circuit or crash the host mid-drain.
        """
        key = id(peer)
        self._delivery_timer[key] = None
        queue: Deque[Tuple[float, object, float]] = self._inflight[key]
        now = self.sim.now_ms
        stats = self.network.stats
        tracer = self.sim.tracer
        PERF.stream_batched_deliveries += 1
        stats.stream_delivery_batches += 1
        while queue and queue[0][0] <= now:
            _, payload, sent_ms = queue.popleft()
            PERF.stream_segments_drained += 1
            if not self.established or not peer.open:
                stats.stream_deliveries_suppressed += 1
                continue
            node = self.network.nodes.get(peer.local_name)
            if node is None or not node.up:
                # The segment arrives at a dead host.
                stats.stream_deliveries_suppressed += 1
                continue
            if tracer is not None:
                # Send-to-delivery lag: queueing + wire + in-order floor.
                tracer.record("stream_lag", now - sent_ms)
            if peer.on_message is not None:
                peer.on_message(payload, peer)
        # A callback may have closed the circuit (queue cleared) or sent
        # more data on this direction (timer re-armed by transmit).
        if queue and self.established and self._delivery_timer[key] is None:
            PERF.stream_timer_rearms += 1
            self._delivery_timer[key] = self.sim.schedule_at(
                queue[0][0], self._deliver_due, peer,
                label="stream %s->%s" % (peer.peer_name, peer.local_name))

    # ------------------------------------------------------------------
    # Teardown and failure
    # ------------------------------------------------------------------

    def _flush_timers(self) -> None:
        """Cancel every pending timer and drop the in-flight queues.

        Called on orderly close and on break: segments still in flight
        are lost (exactly as the per-segment scheduler dropped them at
        their individual delivery events), the delivery timers must not
        fire on a dead circuit, and a pending detect-break timer is
        dead bookkeeping once the circuit is already down.
        """
        for key, timer in self._delivery_timer.items():
            if timer is not None:
                self.sim.cancel(timer)
                self._delivery_timer[key] = None
            self._inflight[key].clear()
        if self._detect_timer is not None:
            self.sim.cancel(self._detect_timer)
            self._detect_timer = None
        self._break_scheduled = False

    def close(self, initiator: Optional[StreamEndpoint] = None) -> None:
        """Orderly close: both endpoints see on_close('closed')."""
        if not self.established:
            return
        self.established = False
        self._flush_timers()
        self.network.unregister_connection(self)
        for endpoint in (self.a, self.b):
            if endpoint._closed:
                continue
            endpoint._mark_closed()
            if endpoint is initiator:
                continue
            if endpoint.on_close is not None:
                endpoint.on_close("closed", endpoint)

    def recheck(self) -> None:
        """Called by the network after topology changes; breaks the
        circuit (after the detection delay) if its path is gone."""
        if not self.established or self._break_scheduled:
            return
        if self.network.reachable(self.a.local_name, self.b.local_name):
            return
        self._break_scheduled = True
        self._detect_timer = self.sim.schedule(
            self.detect_ms, self._detect_break_fired,
            label="detect-break %s-%s" % (self.a.local_name,
                                          self.b.local_name))

    def _detect_break_fired(self) -> None:
        """The detection delay elapsed; break unless the path healed."""
        self._detect_timer = None
        self._break_scheduled = False
        if not self.established:
            return
        # The path may have healed before detection fired.
        if self.network.reachable(self.a.local_name, self.b.local_name):
            return
        self._break("connection timed out", immediate=True)

    def _break(self, reason: str, immediate: bool = False) -> None:
        """Tear the circuit down.

        ``immediate`` skips the heal re-check (the caller has already
        established the path is gone: a reset send, or a detect timer
        that just verified unreachability).  Any pending detect-break
        timer is cancelled and ``_break_scheduled`` cleared, so an
        immediate break racing an armed detection cannot leave stale
        bookkeeping behind.
        """
        if not self.established:
            return
        if not immediate and self.network.reachable(self.a.local_name,
                                                    self.b.local_name):
            self._break_scheduled = False
            return
        self.established = False
        self._flush_timers()
        self.network.unregister_connection(self)
        self.network.stats.connections_broken += 1
        for endpoint in (self.a, self.b):
            if endpoint._closed:
                continue
            endpoint._mark_closed()
            node = self.network.nodes.get(endpoint.local_name)
            if node is not None and not node.up:
                continue  # a crashed host hears nothing
            if endpoint.on_close is not None:
                endpoint.on_close(reason, endpoint)

    def endpoints(self) -> List[StreamEndpoint]:
        return [self.a, self.b]

    def __repr__(self) -> str:
        return "StreamConnection(#%d %s <-> %s, %s)" % (
            self.conn_id, self.a.local_name, self.b.local_name,
            "up" if self.established else "down")
