"""The discrete-event simulation driver.

The :class:`Simulator` owns the clock and the event queue.  All higher
layers (hosts, daemons, LPMs, tools) are callback-driven state machines:
they never block, they only schedule future work.  Given a seed, a run is
fully deterministic.

Every event carries an *owner* — the host whose timeline it belongs to.
Owners propagate implicitly: while an event executes, anything it
schedules inherits its owner, so a whole causal chain rooted at one host
stays stamped with that host.  The netsim delivery seams (stream
segments, datagrams, circuit setup) re-stamp the owner at every
cross-host hop.  Single-process runs never look at owners; the lockstep
shard workers of :mod:`repro.netsim.shard` use them to execute only
their partition of the event stream (see ``docs/PERF.md``,
"Parallel simulation").
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from ..errors import SimulationError
from ..perf import PERF
from .clock import SimClock
from .events import Event, EventQueue

#: Sentinel: "inherit the owner of the currently-executing event".
_INHERIT = object()


class Simulator:
    """Clock plus event queue plus a seeded random source."""

    def __init__(self, seed: int = 0, start_ms: float = 0.0) -> None:
        self.clock = SimClock(start_ms)
        self.queue = EventQueue()
        self.rng = random.Random(seed)
        self._seq = 0
        self._events_run = 0
        self._running = False
        #: Optional :class:`repro.perf.spans.SpanTracer`; None keeps
        #: every instrumentation site zero-cost.
        self.tracer = None
        #: Owner of the event currently executing (None at top level);
        #: newly scheduled events inherit it.
        self.current_owner = None
        #: Optional :class:`repro.netsim.shard.ShardContext`.  When set,
        #: this simulator is one lockstep worker: it executes only events
        #: owned by its shard (plus global events) and ships cross-shard
        #: deliveries at window barriers.  None everywhere else.
        self.shard = None

    @property
    def now_ms(self) -> float:
        """Current simulated time in milliseconds."""
        return self.clock.now_ms

    @property
    def events_run(self) -> int:
        """Total number of events executed so far."""
        return self._events_run

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def schedule(self, delay_ms: float, callback: Callable[..., None],
                 *args, label: str = "", owner=_INHERIT) -> Event:
        """Run ``callback(*args)`` after ``delay_ms`` simulated ms."""
        if delay_ms < 0:
            raise SimulationError("cannot schedule into the past "
                                  "(delay_ms=%r)" % (delay_ms,))
        return self.schedule_at(self.now_ms + delay_ms, callback, *args,
                                label=label, owner=owner)

    def schedule_at(self, time_ms: float, callback: Callable[..., None],
                    *args, label: str = "", owner=_INHERIT) -> Event:
        """Run ``callback(*args)`` at absolute simulated time ``time_ms``.

        ``owner`` stamps the event's host timeline; by default it
        inherits the owner of the event currently executing, so causal
        chains stay on their host without every call site knowing about
        sharding.  Cross-host seams pass the receiving host explicitly.
        """
        if time_ms < self.now_ms:
            raise SimulationError(
                "cannot schedule into the past (t=%.3f, now=%.3f)"
                % (time_ms, self.now_ms))
        if owner is _INHERIT:
            owner = self.current_owner
        shard = self.shard
        if shard is None or shard.counts(owner):
            PERF.events_scheduled += 1
        self._seq += 1
        event = Event(time_ms, self._seq, callback, args, label=label,
                      owner=owner)
        self.queue.push(event)
        return event

    def cancel(self, event: Optional[Event]) -> None:
        """Cancel a scheduled event; safe on None, already-cancelled,
        and already-fired events.

        All queue bookkeeping happens inside :meth:`Event.cancel`, and
        an event that was already popped for execution is a no-op here
        (``events_cancelled`` counts only events genuinely prevented
        from firing) — so re-arming timer owners may cancel a stale
        reference without drifting any counter.
        """
        if event is None or event.cancelled or event.fired:
            return
        shard = self.shard
        if shard is None or shard.counts(event.owner):
            PERF.events_cancelled += 1
        event.cancel()

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    def executes_host(self, host: str) -> bool:
        """True when this process runs ``host``'s side of shared events
        (always true single-process; shard workers own a subset)."""
        shard = self.shard
        return shard is None or shard.owns(host)

    def step(self) -> bool:
        """Execute the next event.  Returns False when the queue is empty.

        Under a shard context, events owned by other shards are popped
        (they keep the clock and queue bit-identical to the replicated
        construction) but not executed and not counted: their owning
        worker runs them.  ``current_owner`` is restored by assignment,
        not try/finally — an exception out of a callback abandons the
        run anyway, and this is the hottest loop in the repo.
        """
        event = self.queue.pop()
        if event is None:
            return False
        self.clock.advance_to(event.time_ms)
        callback, args = event.callback, event.args
        event.callback, event.args = None, ()
        shard = self.shard
        if shard is None:
            self._events_run += 1
            PERF.events_run += 1
            if callback is not None:
                prev = self.current_owner
                self.current_owner = event.owner
                callback(*args)
                self.current_owner = prev
            return True
        owner = event.owner
        if shard.executes(owner):
            if shard.counts(owner):
                self._events_run += 1
                PERF.events_run += 1
            if callback is not None:
                prev = self.current_owner
                self.current_owner = owner
                callback(*args)
                self.current_owner = prev
        return True

    def run_window(self, end_ms: float,
                   predicate: Optional[Callable[[], bool]] = None,
                   max_events: int = 10_000_000,
                   inclusive: bool = False) -> Optional[float]:
        """Execute every event strictly before ``end_ms``.

        The lockstep inner loop: a shard worker runs one lookahead
        window with this, then exchanges cross-shard deliveries at the
        barrier.  Events *at* ``end_ms`` belong to the next window (a
        message sent inside this window arrives no earlier than the
        window's end, so running [start, end) is conservative-safe).
        The clock is left at the last executed event; the caller decides
        whether to advance it to the boundary.  ``inclusive`` also runs
        events exactly at ``end_ms`` — used for the final partial
        segment of a lockstep op, whose target instant is inclusive just
        like :meth:`run_until` / :meth:`run_until_true`.

        With a ``predicate``, it is checked after every executed event
        (exactly like :meth:`run_until_true`); the first time it holds,
        execution stops and the stop time is returned.  Returns None
        when the window completed without a predicate stop.
        """
        executed = 0
        queue = self.queue
        while True:
            next_time = queue.peek_time()
            if next_time is None or (next_time > end_ms if inclusive
                                     else next_time >= end_ms):
                return None
            if executed >= max_events:
                raise SimulationError(
                    "run_window(%.3f) exceeded %d events; likely a "
                    "scheduling loop" % (end_ms, max_events))
            self.step()
            executed += 1
            if predicate is not None and predicate():
                return self.now_ms

    def run_until(self, time_ms: float, max_events: int = 10_000_000) -> None:
        """Run every event scheduled at or before ``time_ms``.

        The clock ends exactly at ``time_ms`` even if the queue drains
        early, so timers keep a consistent reference point.
        """
        executed = 0
        while True:
            next_time = self.queue.peek_time()
            if next_time is None or next_time > time_ms:
                break
            if executed >= max_events:
                raise SimulationError(
                    "run_until(%.3f) exceeded %d events; likely a scheduling "
                    "loop" % (time_ms, max_events))
            self.step()
            executed += 1
        if time_ms > self.now_ms:
            self.clock.advance_to(time_ms)

    def run_for(self, duration_ms: float, max_events: int = 10_000_000) -> None:
        """Run the next ``duration_ms`` of simulated time."""
        self.run_until(self.now_ms + duration_ms, max_events=max_events)

    def run_until_idle(self, max_events: int = 10_000_000) -> None:
        """Run until no events remain.  Unsafe with recurring timers."""
        executed = 0
        while self.step():
            executed += 1
            if executed >= max_events:
                raise SimulationError(
                    "run_until_idle exceeded %d events; a recurring timer is "
                    "probably still armed" % (max_events,))

    def run_until_true(self, predicate: Callable[[], bool],
                       timeout_ms: float = 600_000.0,
                       max_events: int = 10_000_000) -> bool:
        """Run until ``predicate()`` holds or ``timeout_ms`` passes.

        Returns True if the predicate became true.  The predicate is
        checked after every executed event.
        """
        deadline = self.now_ms + timeout_ms
        executed = 0
        if predicate():
            return True
        while True:
            next_time = self.queue.peek_time()
            if next_time is None or next_time > deadline:
                return False
            if executed >= max_events:
                raise SimulationError(
                    "run_until_true exceeded %d events" % (max_events,))
            self.step()
            executed += 1
            if predicate():
                return True

    def jitter_ms(self, magnitude_ms: float) -> float:
        """A small deterministic random delay in [0, magnitude_ms)."""
        if magnitude_ms <= 0:
            return 0.0
        return self.rng.random() * magnitude_ms

    def __repr__(self) -> str:
        return "Simulator(now=%.3f ms, pending=%d, run=%d)" % (
            self.now_ms, len(self.queue), self._events_run)
