"""The discrete-event simulation driver.

The :class:`Simulator` owns the clock and the event queue.  All higher
layers (hosts, daemons, LPMs, tools) are callback-driven state machines:
they never block, they only schedule future work.  Given a seed, a run is
fully deterministic.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from ..errors import SimulationError
from ..perf import PERF
from .clock import SimClock
from .events import Event, EventQueue


class Simulator:
    """Clock plus event queue plus a seeded random source."""

    def __init__(self, seed: int = 0, start_ms: float = 0.0) -> None:
        self.clock = SimClock(start_ms)
        self.queue = EventQueue()
        self.rng = random.Random(seed)
        self._seq = 0
        self._events_run = 0
        self._running = False
        #: Optional :class:`repro.perf.spans.SpanTracer`; None keeps
        #: every instrumentation site zero-cost.
        self.tracer = None

    @property
    def now_ms(self) -> float:
        """Current simulated time in milliseconds."""
        return self.clock.now_ms

    @property
    def events_run(self) -> int:
        """Total number of events executed so far."""
        return self._events_run

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def schedule(self, delay_ms: float, callback: Callable[..., None],
                 *args, label: str = "") -> Event:
        """Run ``callback(*args)`` after ``delay_ms`` simulated ms."""
        if delay_ms < 0:
            raise SimulationError("cannot schedule into the past "
                                  "(delay_ms=%r)" % (delay_ms,))
        return self.schedule_at(self.now_ms + delay_ms, callback, *args,
                                label=label)

    def schedule_at(self, time_ms: float, callback: Callable[..., None],
                    *args, label: str = "") -> Event:
        """Run ``callback(*args)`` at absolute simulated time ``time_ms``."""
        if time_ms < self.now_ms:
            raise SimulationError(
                "cannot schedule into the past (t=%.3f, now=%.3f)"
                % (time_ms, self.now_ms))
        self._seq += 1
        event = Event(time_ms, self._seq, callback, args, label=label)
        self.queue.push(event)
        return event

    def cancel(self, event: Optional[Event]) -> None:
        """Cancel a scheduled event; safe on None, already-cancelled,
        and already-fired events.

        All queue bookkeeping happens inside :meth:`Event.cancel`, and
        an event that was already popped for execution is a no-op here
        (``events_cancelled`` counts only events genuinely prevented
        from firing) — so re-arming timer owners may cancel a stale
        reference without drifting any counter.
        """
        if event is None or event.cancelled or event.fired:
            return
        PERF.events_cancelled += 1
        event.cancel()

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    def step(self) -> bool:
        """Execute the next event.  Returns False when the queue is empty."""
        event = self.queue.pop()
        if event is None:
            return False
        self.clock.advance_to(event.time_ms)
        callback, args = event.callback, event.args
        event.callback, event.args = None, ()
        self._events_run += 1
        PERF.events_run += 1
        if callback is not None:
            callback(*args)
        return True

    def run_until(self, time_ms: float, max_events: int = 10_000_000) -> None:
        """Run every event scheduled at or before ``time_ms``.

        The clock ends exactly at ``time_ms`` even if the queue drains
        early, so timers keep a consistent reference point.
        """
        executed = 0
        while True:
            next_time = self.queue.peek_time()
            if next_time is None or next_time > time_ms:
                break
            if executed >= max_events:
                raise SimulationError(
                    "run_until(%.3f) exceeded %d events; likely a scheduling "
                    "loop" % (time_ms, max_events))
            self.step()
            executed += 1
        if time_ms > self.now_ms:
            self.clock.advance_to(time_ms)

    def run_for(self, duration_ms: float, max_events: int = 10_000_000) -> None:
        """Run the next ``duration_ms`` of simulated time."""
        self.run_until(self.now_ms + duration_ms, max_events=max_events)

    def run_until_idle(self, max_events: int = 10_000_000) -> None:
        """Run until no events remain.  Unsafe with recurring timers."""
        executed = 0
        while self.step():
            executed += 1
            if executed >= max_events:
                raise SimulationError(
                    "run_until_idle exceeded %d events; a recurring timer is "
                    "probably still armed" % (max_events,))

    def run_until_true(self, predicate: Callable[[], bool],
                       timeout_ms: float = 600_000.0,
                       max_events: int = 10_000_000) -> bool:
        """Run until ``predicate()`` holds or ``timeout_ms`` passes.

        Returns True if the predicate became true.  The predicate is
        checked after every executed event.
        """
        deadline = self.now_ms + timeout_ms
        executed = 0
        if predicate():
            return True
        while True:
            next_time = self.queue.peek_time()
            if next_time is None or next_time > deadline:
                return False
            if executed >= max_events:
                raise SimulationError(
                    "run_until_true exceeded %d events" % (max_events,))
            self.step()
            executed += 1
            if predicate():
                return True

    def jitter_ms(self, magnitude_ms: float) -> float:
        """A small deterministic random delay in [0, magnitude_ms)."""
        if magnitude_ms <= 0:
            return 0.0
        return self.rng.random() * magnitude_ms

    def __repr__(self) -> str:
        return "Simulator(now=%.3f ms, pending=%d, run=%d)" % (
            self.now_ms, len(self.queue), self._events_run)
