"""Compatibility shim: the latency model moved to :mod:`repro.latency`.

The model is pure arithmetic (host classes, Table 1/2/3 calibration,
:class:`CostModel`) and is consumed both below the backend seam (netsim
links and kernels) and above it (core LPM CPU costs, the CLI, bench
scenarios).  It therefore lives at the package root, outside any one
backend.  This module re-exports the public names so existing imports
of ``repro.netsim.latency`` keep working.
"""

from __future__ import annotations

from ..latency import (  # noqa: F401
    DEFAULT_COST_MODEL,
    CostModel,
    HostClass,
    kernel_message_delay_ms,
    load_factor,
)

__all__ = [
    "DEFAULT_COST_MODEL",
    "CostModel",
    "HostClass",
    "kernel_message_delay_ms",
    "load_factor",
]
