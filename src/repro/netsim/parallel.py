"""The lockstep coordinator — fans a scenario out across shard workers.

:func:`run_scenario` is the single entry point: given a *scenario*
callable (``scenario(harness, **kwargs) -> dict``) it either runs it
in-process on a :class:`~repro.netsim.shard.LocalHarness` (``shards=1``)
or forks ``shards`` worker processes, each running the identical
scenario on a :class:`~repro.netsim.shard.WorkerHarness`, and plays
coordinator for their barrier protocol.

The coordinator is deliberately dumb: it never inspects simulation
state.  Per round it (a) asserts every worker reported the same op,
round, window grid and target — any disagreement means the scenario
broke the replicated-construction contract and is raised loudly rather
than silently diverging; (b) buckets the round's cross-shard ships by
destination and sorts each bucket into the canonical
``(arrival, src_host, seq)`` order; (c) decides the next window index,
fast-forwarding over windows in which no worker has anything scheduled
(idle phases cost one round, not one round per window); and (d) ends
the op when the authority worker reports a predicate stop or every
worker reaches the target.

Workers are forked, not spawned: scenarios may close over arbitrary
local state (cost models, topology builders) and fork inherits it all
without pickling.  Each worker talks over its own duplex pipe and
exits with ``os._exit`` so no interpreter teardown runs twice.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, Dict, List, Optional

from ..errors import SimulationError
from .shard import (
    SUMMED_COUNTER_GROUPS,
    VOLATILE_COUNTERS,
    LocalHarness,
    WorkerHarness,
    window_index_at,
)

#: Seconds the coordinator waits on any single worker message before
#: declaring the fleet wedged.  Generous: the first message only arrives
#: after the worker finishes replicated construction.
DEFAULT_TIMEOUT_S = 3600.0


class ShardProtocolError(SimulationError):
    """A worker broke the lockstep contract (diverging rounds, mixed
    message kinds, death mid-protocol) — determinism can no longer be
    guaranteed, so the run is abandoned."""


class ShardedOutcome:
    """What a scenario run produced, merged across the fleet.

    ``result`` is the scenario's return value (asserted identical in
    every worker).  ``measure`` merges the workers' measured phases:
    counters summed (each event is counted by exactly one worker),
    wall clock taken as the maximum (the fleet is done when its slowest
    member is).  ``worker_measures`` keeps the per-worker dicts for
    inspection, and ``barrier_rounds`` / ``ships`` summarise protocol
    traffic.
    """

    def __init__(self, result, shards: int, measure: Optional[dict],
                 worker_measures: List[Optional[dict]],
                 barrier_rounds: int = 0, ships: int = 0) -> None:
        self.result = result
        self.shards = shards
        self.measure = measure
        self.worker_measures = worker_measures
        self.barrier_rounds = barrier_rounds
        self.ships = ships

    def __repr__(self) -> str:
        return "ShardedOutcome(shards=%d, rounds=%d, ships=%d)" % (
            self.shards, self.barrier_rounds, self.ships)


def run_scenario(scenario: Callable, kwargs: Optional[dict] = None,
                 shards: int = 1,
                 timeout_s: float = DEFAULT_TIMEOUT_S) -> ShardedOutcome:
    """Run a scenario on ``shards`` lockstep workers (1 = in-process).

    The scenario must follow the harness contract (see
    ``docs/PERF.md``): build the world deterministically, drive it only
    through the harness's running/reduction methods after ``attach``,
    and return a picklable result computed from coordinated reads.
    """
    kwargs = dict(kwargs or {})
    if shards < 1:
        raise SimulationError("shards must be >= 1, got %d" % (shards,))
    if shards == 1:
        harness = LocalHarness()
        result = scenario(harness, **kwargs)
        return ShardedOutcome(result, 1, harness.measure, [harness.measure])

    ctx = multiprocessing.get_context("fork")
    pipes = [ctx.Pipe() for _ in range(shards)]
    child_conns = [child for _, child in pipes]
    parent_conns = [parent for parent, _ in pipes]
    procs = []
    for index in range(shards):
        proc = ctx.Process(
            target=_worker_main,
            args=(scenario, kwargs, shards, index, child_conns,
                  parent_conns),
            name="netsim-shard-%d" % index)
        proc.daemon = True
        proc.start()
        procs.append(proc)
    for child in child_conns:
        child.close()
    try:
        return _coordinate(parent_conns, shards, timeout_s)
    finally:
        for conn in parent_conns:
            conn.close()
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
            proc.join(timeout=5.0)


def _worker_main(scenario: Callable, kwargs: dict, shards: int,
                 index: int, child_conns, parent_conns) -> None:
    """Entry point of one forked shard worker."""
    conn = child_conns[index]
    for i, other in enumerate(child_conns):
        if i != index:
            other.close()
    for other in parent_conns:
        other.close()
    try:
        harness = WorkerHarness(shards, index, conn)
        result = scenario(harness, **kwargs)
        conn.send(("done", result, harness.measure))
    except BaseException as exc:  # noqa: BLE001 - forwarded to coordinator
        try:
            conn.send(("error", "%s: %s" % (type(exc).__name__, exc)))
        except OSError:
            pass
        os._exit(1)
    os._exit(0)


def _recv(conn, worker: int, timeout_s: float) -> tuple:
    if not conn.poll(timeout_s):
        raise ShardProtocolError(
            "shard worker %d sent nothing for %.0fs; fleet wedged"
            % (worker, timeout_s))
    try:
        return conn.recv()
    except EOFError:
        raise ShardProtocolError(
            "shard worker %d died mid-protocol" % (worker,)) from None


def _assert_agreement(values: list, what: str) -> None:
    first = values[0]
    for index, value in enumerate(values[1:], start=1):
        if value != first:
            raise ShardProtocolError(
                "shard workers disagree on %s: worker 0 says %r, "
                "worker %d says %r — the scenario broke replicated "
                "construction" % (what, first, index, value))


def _merge_measures(measures: List[Optional[dict]]) -> Optional[dict]:
    live = [m for m in measures if m is not None]
    if not live:
        return None
    if len(live) != len(measures):
        raise ShardProtocolError(
            "only some workers ran begin/end_measure")
    counters: Dict[str, int] = {}
    for measure in live:
        for name, value in measure["counters"].items():
            counters[name] = counters.get(name, 0) + value
    return {"wall_s": max(m["wall_s"] for m in live),
            "counters": counters}


def _coordinate(conns, shards: int, timeout_s: float) -> ShardedOutcome:
    debug = bool(os.environ.get("NETSIM_SHARD_DEBUG"))
    rounds = 0
    ships_total = 0
    while True:
        messages = [_recv(conn, i, timeout_s)
                    for i, conn in enumerate(conns)]
        kinds = {message[0] for message in messages}
        if "error" in kinds:
            texts = [m[1] for m in messages if m[0] == "error"]
            raise ShardProtocolError(
                "shard worker failed: %s" % (texts[0],))
        if len(kinds) != 1:
            raise ShardProtocolError(
                "mixed message kinds in one round: %s" % (sorted(kinds),))
        kind = messages[0][0]

        if kind == "done":
            results = [m[1] for m in messages]
            _assert_agreement(results, "the scenario result")
            measures = [m[2] for m in messages]
            return ShardedOutcome(results[0], shards,
                                  _merge_measures(measures), measures,
                                  barrier_rounds=rounds,
                                  ships=ships_total)

        if kind == "sum":
            _assert_agreement([m[1] for m in messages], "the op id")
            total = sum(m[2] for m in messages)
            for conn in conns:
                conn.send(("sum_result", total))
            continue

        if kind == "gather":
            _assert_agreement([m[1] for m in messages], "the op id")
            merged: dict = {}
            expected = 0
            for message in messages:
                expected += len(message[2])
                merged.update(message[2])
            if len(merged) != expected:
                raise ShardProtocolError(
                    "gather_hosts keys overlap across shards")
            for conn in conns:
                conn.send(("gather_result", merged))
            continue

        if kind != "barrier":
            raise ShardProtocolError("unknown message kind %r" % (kind,))

        rounds += 1
        _assert_agreement([(m[1], m[2]) for m in messages],
                          "the op/round position")
        payloads = [m[3] for m in messages]
        for field in ("epoch", "grid", "widx", "target", "final"):
            _assert_agreement([p[field] for p in payloads],
                              "barrier field %r" % (field,))
        grid_t0, lookahead = payloads[0]["grid"]
        widx = payloads[0]["widx"]
        target = payloads[0]["target"]

        buckets: List[list] = [[] for _ in range(shards)]
        for payload in payloads:
            for dst_shard, key, ship in payload["ships"]:
                buckets[dst_shard].append((key, ship))
                ships_total += 1
        for bucket in buckets:
            bucket.sort(key=lambda item: item[0])

        if debug:
            print("[coord] op=%s round=%s widx=%s target=%.1f final=%s "
                  "stops=%s next=%s ships=%s"
                  % (messages[0][1], messages[0][2], widx, target,
                     payloads[0]["final"],
                     [p["stop"] for p in payloads],
                     [p["next_time"] for p in payloads],
                     [len(p["ships"]) for p in payloads]), flush=True)
        stops = [p["stop"] for p in payloads if p["stop"] is not None]
        if stops:
            # Only the authority evaluates the predicate, so at most one
            # worker can stop; its stop time becomes the fleet's op end.
            if len(stops) != 1:
                raise ShardProtocolError(
                    "%d workers reported a predicate stop; exactly one "
                    "worker may hold the authority" % (len(stops),))
            for index, conn in enumerate(conns):
                conn.send(("end", stops[0], True, buckets[index]))
            continue
        if payloads[0]["final"]:
            # Timed out (predicate op reached its target): the logical
            # clock lands exactly on the deadline everywhere.
            for index, conn in enumerate(conns):
                conn.send(("end", target, False, buckets[index]))
            continue

        # Fast-forward: jump to the earliest window in which anything at
        # all is scheduled — a pending local event on any worker or a
        # ship about to be applied.  Quiet stretches cost one round.
        candidates = [p["next_time"] for p in payloads
                      if p["next_time"] is not None]
        candidates.extend(key[0] for bucket in buckets
                          for key, _ in bucket)
        if candidates:
            soonest = min(candidates)
            next_widx = max(widx + 1,
                            window_index_at(grid_t0, lookahead, soonest))
        else:
            # Nothing scheduled anywhere: skip past the op target; the
            # workers run their (empty) final segments and finish.
            next_widx = window_index_at(grid_t0, lookahead, target) + 1
        for index, conn in enumerate(conns):
            conn.send(("resume", next_widx, buckets[index]))


# ----------------------------------------------------------------------
# Identity checking
# ----------------------------------------------------------------------

def identity_diff(local: ShardedOutcome, sharded: ShardedOutcome,
                  ignore_counters=VOLATILE_COUNTERS) -> List[str]:
    """Differences between a 1-shard and a K-shard run of the same
    scenario — empty when the sharded run is exact.

    Compares the scenario results key-by-key and the merged measured
    counters, skipping wall clock and the counters that legitimately
    depend on the shard count (:data:`VOLATILE_COUNTERS`).  Counter
    pairs in :data:`SUMMED_COUNTER_GROUPS` are compared by their total
    — the cache-hit/recompute split moves with execution placement, the
    sum cannot.
    """
    diffs: List[str] = []
    a, b = local.result, sharded.result
    if isinstance(a, dict) and isinstance(b, dict):
        for key in sorted(set(a) | set(b)):
            if key not in a:
                diffs.append("result[%r]: missing single-threaded" % (key,))
            elif key not in b:
                diffs.append("result[%r]: missing sharded" % (key,))
            elif a[key] != b[key]:
                diffs.append("result[%r]: %r != %r" % (key, a[key], b[key]))
    elif a != b:
        diffs.append("result: %r != %r" % (a, b))
    if (local.measure is None) != (sharded.measure is None):
        diffs.append("measure: present in one run only")
    elif local.measure is not None:
        ca = local.measure["counters"]
        cb = sharded.measure["counters"]
        grouped = {member: total_name
                   for total_name, members in SUMMED_COUNTER_GROUPS.items()
                   for member in members}
        for name in sorted(set(ca) | set(cb)):
            if name in ignore_counters or name in grouped:
                continue
            va, vb = ca.get(name, 0), cb.get(name, 0)
            if va != vb:
                diffs.append("counter %s: %d != %d" % (name, va, vb))
        for total_name, members in sorted(SUMMED_COUNTER_GROUPS.items()):
            va = sum(ca.get(m, 0) for m in members)
            vb = sum(cb.get(m, 0) for m in members)
            if va != vb:
                diffs.append("counter %s (%s): %d != %d"
                             % (total_name, "+".join(members), va, vb))
    return diffs


# ----------------------------------------------------------------------
# Demo scenario (exercised by ``repro shards`` and the shard tests)
# ----------------------------------------------------------------------

def demo_scenario(harness, n_hosts: int = 12, chats: int = 40) -> dict:
    """A small self-contained workload crossing every seam: circuits
    with bidirectional chatter, datagram pings with drop notices, and a
    crash mid-run.  Returns enough state to make identity violations
    visible."""
    from .latency import HostClass
    from .network import Network
    from .simulator import Simulator
    from .datagram import DatagramTransport
    from .stream import StreamConnection

    sim = Simulator(seed=7)
    network = Network(sim)
    names = ["h%02d" % i for i in range(n_hosts)]
    for name in names:
        network.add_node(name, HostClass.VAX_750)
    network.ethernet(names, latency_ms=5.0)
    datagrams = DatagramTransport(network)

    inbox: Dict[str, list] = {name: [] for name in names}
    drops: List[str] = []

    def receiver(host):
        def on_message(payload, endpoint):
            inbox[host].append(payload)
            if payload[0] == "ping" and payload[1] < chats:
                endpoint.send(("ping", payload[1] + 1), nbytes=128)
        return on_message

    def acceptor(endpoint, payload):
        endpoint.on_message = receiver(endpoint.local_name)

    for name in names:
        network.nodes[name].listen("chat", acceptor)
        datagrams.bind(name, "udp-echo",
                       lambda payload, src, _n=name: inbox[_n].append(
                           ("dgram", payload, src)))

    def opened(endpoint):
        endpoint.on_message = receiver(endpoint.local_name)
        endpoint.send(("ping", 0), nbytes=128)

    for i in range(n_hosts):
        StreamConnection.connect(network, names[i],
                                 names[(i + 1) % n_hosts], "chat",
                                 setup_ms=30.0, on_established=opened)
    sim.run_for(50.0)  # replicated construction: circuits up

    harness.attach(network, names[0])
    harness.begin_measure()
    harness.run_for(2_000.0)
    for i in range(n_hosts):
        src, dst = names[i], names[(i + 3) % n_hosts]
        harness.call_on(src, lambda s=src, d=dst: datagrams.send(
            s, d, "udp-echo", "hello-%s" % s,
            on_dropped=lambda reason, s=s: drops.append((s, reason))))
    harness.run_for(1_000.0)
    # Topology changes are global state: every worker must apply them.
    victim = names[n_hosts - 1]
    harness.call_global(lambda: network.crash_host(victim))
    harness.run_for(5_000.0)
    # A datagram into the crash: the drop notice crosses shards back to
    # the sender (the settle path).
    harness.call_on(names[0], lambda: datagrams.send(
        names[0], victim, "udp-echo", "into-the-void",
        on_dropped=lambda reason: drops.append(reason)))
    harness.run_for(1_000.0)
    # ``drops`` is populated only on the sender's shard; results must
    # come from coordinated reads:
    total_msgs = harness.sum_hosts(lambda host: len(inbox[host]))
    per_host = harness.gather_hosts(lambda host: len(inbox[host]))
    dropped = harness.sum_hosts(
        lambda host: len(drops) if host == names[0] else 0)
    harness.end_measure()
    harness.detach()
    return {
        "sim_ms": harness.now,
        "messages": total_msgs,
        "per_host": per_host,
        "open_circuits": network.open_connection_count(),
        "broken": network.stats.connections_broken,
        "drop_notices": dropped,
    }
