"""The load estimator of Table 1: a time-averaged CPU run-queue length.

The paper's ``la`` is the classic UNIX exponentially damped average of
the run-queue length.  We integrate it exactly in continuous time: the
average decays toward the instantaneous runnable count ``n`` with time
constant ``tau``, so over an interval of length ``dt`` with constant
``n``::

    la' = n + (la - n) * exp(-dt / tau)

Updates happen lazily whenever the runnable count changes or the value
is read, which keeps the estimator exact and free of periodic timers.
"""

from __future__ import annotations

import math
from typing import Callable

from ..perf import PERF


class LoadAverage:
    """Exponentially damped run-queue average."""

    def __init__(self, now_fn: Callable[[], float],
                 runnable_fn: Callable[[], int],
                 tau_ms: float = 60_000.0) -> None:
        self._now_fn = now_fn
        self._runnable_fn = runnable_fn
        self.tau_ms = tau_ms
        self._value = 0.0
        self._last_ms = now_fn()
        self._last_n = runnable_fn()

    def _integrate_to(self, now_ms: float) -> None:
        dt = now_ms - self._last_ms
        if dt > 0:
            if self._value == self._last_n:
                # Steady state — an idle host (la == n == 0) or one that
                # fully converged: la' = n + (la - n)*decay = la exactly,
                # so skip the exp() instead of recomputing a no-op.
                PERF.loadavg_idle_skips += 1
                self._last_ms = now_ms
                return
            decay = math.exp(-dt / self.tau_ms)
            self._value = self._last_n + (self._value - self._last_n) * decay
            self._last_ms = now_ms

    def note_change(self) -> None:
        """Call when the runnable count may have changed."""
        self._integrate_to(self._now_fn())
        self._last_n = self._runnable_fn()

    def value(self) -> float:
        """Current ``la``."""
        self._integrate_to(self._now_fn())
        self._last_n = self._runnable_fn()
        return self._value

    def force(self, value: float) -> None:
        """Pin the average (used by calibration tests)."""
        self._value = value
        self._last_ms = self._now_fn()
        self._last_n = self._runnable_fn()

    def __repr__(self) -> str:
        return "LoadAverage(la=%.2f, n=%d)" % (self._value, self._last_n)
