"""Software interrupts (signals), 4.3BSD numbering.

The PPM's control tools ultimately act by delivering signals — "stop a
process, execute it in the foreground, execute it in the background, kill
it" (section 4) — so the simulated kernel implements the relevant subset
with BSD default actions.
"""

from __future__ import annotations

from enum import Enum, IntEnum


class Signal(IntEnum):
    """Signal numbers as in 4.3BSD."""

    SIGHUP = 1
    SIGINT = 2
    SIGQUIT = 3
    SIGKILL = 9
    SIGTERM = 15
    SIGSTOP = 17
    SIGTSTP = 18
    SIGCONT = 19
    SIGCHLD = 20
    SIGUSR1 = 30
    SIGUSR2 = 31


class SignalAction(Enum):
    """What the kernel does by default on delivery."""

    TERMINATE = "terminate"
    STOP = "stop"
    CONTINUE = "continue"
    IGNORE = "ignore"


_DEFAULT_ACTIONS = {
    Signal.SIGHUP: SignalAction.TERMINATE,
    Signal.SIGINT: SignalAction.TERMINATE,
    Signal.SIGQUIT: SignalAction.TERMINATE,
    Signal.SIGKILL: SignalAction.TERMINATE,
    Signal.SIGTERM: SignalAction.TERMINATE,
    Signal.SIGSTOP: SignalAction.STOP,
    Signal.SIGTSTP: SignalAction.STOP,
    Signal.SIGCONT: SignalAction.CONTINUE,
    Signal.SIGCHLD: SignalAction.IGNORE,
    Signal.SIGUSR1: SignalAction.TERMINATE,
    Signal.SIGUSR2: SignalAction.TERMINATE,
}

#: Signals whose action cannot be blocked or handled, as in UNIX.
UNCATCHABLE = frozenset({Signal.SIGKILL, Signal.SIGSTOP})


def default_action(signal: Signal) -> SignalAction:
    """The BSD default disposition for ``signal``."""
    return _DEFAULT_ACTIONS[signal]
