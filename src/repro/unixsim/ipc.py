"""User-level interprocess communication (4.3BSD sockets).

Section 1: "In Berkeley UNIX 4.3BSD interprocess communication can be
accomplished using different addressing families and styles of
communication.  Two processes wishing to communicate need not have a
common ancestor nor reside in the same host."  The PPM does not manage
these conversations — but they are why arbitrary genealogies arise, and
the IPC activity tracing tool (section 7) analyses them.

A process listens on its ``<host, pid>`` identity; any other process of
any user on any host may connect and exchange messages over a reliable
stream.  Traffic is recorded as USER_IPC trace events and counted in
the sender's rusage.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..errors import NoSuchProcessError
from ..ids import GlobalPid
from ..netsim.stream import StreamConnection
from ..tracing.events import TraceEventType
from ..util import Deferred


def _service_name(pid: int) -> str:
    return "uipc:%d" % (pid,)


class UserChannel:
    """One end of a user-level stream conversation."""

    def __init__(self, ipc: "UserIpc", endpoint, local: GlobalPid,
                 peer: GlobalPid) -> None:
        self._ipc = ipc
        self._endpoint = endpoint
        self.local = local
        self.peer = peer
        self.sent = 0
        self.received = 0
        #: Installed by the owner: ``on_message(data, channel)``.
        self.on_message: Optional[Callable] = None
        self.on_close: Optional[Callable] = None
        endpoint.on_message = self._deliver
        endpoint.on_close = self._closed

    @property
    def open(self) -> bool:
        return self._endpoint.open

    def send(self, data, nbytes: int = 128) -> None:
        """Send one message; counted against the sender's rusage and
        traced for the IPC analysis tool."""
        host = self._ipc.world.hosts.get(self.local.host)
        if host is not None and host.up:
            proc = host.kernel.procs.find(self.local.pid)
            if proc is not None:
                proc.rusage.messages_sent += 1
            host.trace(TraceEventType.USER_IPC, gpid=self.local,
                       peer=str(self.peer), nbytes=nbytes)
        self.sent += 1
        self._endpoint.send(data, nbytes=nbytes)

    def close(self) -> None:
        if self._endpoint.open:
            self._endpoint.close()

    def _deliver(self, data, endpoint) -> None:
        self.received += 1
        if self.on_message is not None:
            self.on_message(data, self)

    def _closed(self, reason, endpoint) -> None:
        if self.on_close is not None:
            self.on_close(reason, self)

    def __repr__(self) -> str:
        return "UserChannel(%s <-> %s, %s)" % (
            self.local, self.peer, "open" if self.open else "closed")


class UserIpc:
    """The world's user-level IPC fabric."""

    def __init__(self, world) -> None:
        self.world = world
        #: gpid -> acceptor(channel) for listening processes.
        self._listeners: Dict[GlobalPid, Callable] = {}
        self.connections_made = 0

    # ------------------------------------------------------------------
    # Listening
    # ------------------------------------------------------------------

    def listen(self, gpid: GlobalPid,
               acceptor: Callable[[UserChannel], None]) -> None:
        """A process starts accepting connections on its identity."""
        host = self.world.host(gpid.host)
        proc = host.kernel.procs.find(gpid.pid)
        if proc is None or not proc.alive:
            raise NoSuchProcessError(str(gpid))
        self._listeners[gpid] = acceptor

        def accept(endpoint, payload) -> None:
            src = GlobalPid(payload["src"][0], payload["src"][1])
            channel = UserChannel(self, endpoint, local=gpid, peer=src)
            current = self._listeners.get(gpid)
            target = host.kernel.procs.find(gpid.pid)
            if current is None or target is None or not target.alive:
                endpoint.close()
                return
            current(channel)

        host.node.listen(_service_name(gpid.pid), accept)

    def unlisten(self, gpid: GlobalPid) -> None:
        self._listeners.pop(gpid, None)
        host = self.world.hosts.get(gpid.host)
        if host is not None:
            host.node.unlisten(_service_name(gpid.pid))

    # ------------------------------------------------------------------
    # Connecting
    # ------------------------------------------------------------------

    def connect(self, src: GlobalPid, dst: GlobalPid,
                setup_ms: float = 10.0) -> Deferred:
        """Open a conversation; resolves to a :class:`UserChannel` or
        None on failure.  No common ancestor, no same-host requirement —
        exactly the 4.3BSD property the paper highlights."""
        done = Deferred()

        def established(endpoint) -> None:
            channel = UserChannel(self, endpoint, local=src, peer=dst)
            self.connections_made += 1
            done.resolve(channel)

        StreamConnection.connect(
            self.world.network, src.host, dst.host,
            _service_name(dst.pid),
            payload={"src": [src.host, src.pid]},
            setup_ms=setup_ms,
            on_established=established,
            on_failed=lambda reason: done.resolve(None))
        return done
