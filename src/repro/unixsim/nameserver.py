"""A network name server for CCS assignment.

Section 5's closing alternative: "The existence of name servers in the
network could be used to aid in crash recovery.  LPMs would query the
name server for a CCS.  The mechanism based on .recovery files would
not be needed.  In this approach the assignment of the CCS could be
better coordinated by network administrators to avoid possible
bottlenecks."

The daemon keeps, per user, the administrator's priority list and the
current assignment.  LPMs query it (``{op: "query", user}``) and report
unreachable coordinators (``{op: "report_down", user, host}``), which
advances the assignment down the list; when a higher-priority host's
LPM re-registers (``{op: "register", user, host}``) the assignment
climbs back.  The server is, deliberately, a single point of failure —
the trade-off ablation A7 measures.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .process import ProcState

#: The well-known service the name server listens on.
NAME_SERVICE = "ccsns"


class CcsNameServer:
    """The per-network CCS name server daemon."""

    def __init__(self, host) -> None:
        self.host = host
        self.proc = host.kernel.spawn(0, "ccsnsd",
                                      state=ProcState.SLEEPING)
        #: user -> administrator's priority list.
        self._priority: Dict[str, List[str]] = {}
        #: user -> index into the priority list currently assigned.
        self._assigned: Dict[str, int] = {}
        self.queries = 0
        self.reports = 0
        host.node.listen(NAME_SERVICE, self._accept)

    # ------------------------------------------------------------------
    # Administration
    # ------------------------------------------------------------------

    def administer(self, user: str, priority_hosts: List[str]) -> None:
        """The network administrator's coordination (section 5)."""
        self._priority[user] = list(priority_hosts)
        self._assigned[user] = 0

    def current_ccs(self, user: str) -> Optional[str]:
        hosts = self._priority.get(user)
        if not hosts:
            return None
        return hosts[self._assigned[user] % len(hosts)]

    # ------------------------------------------------------------------
    # Service
    # ------------------------------------------------------------------

    def _accept(self, endpoint, payload) -> None:
        endpoint.on_message = self._serve
        if isinstance(payload, dict) and payload.get("op"):
            self._serve(payload, endpoint)

    def _serve(self, payload, endpoint) -> None:
        if not isinstance(payload, dict):
            return
        op = payload.get("op")
        user = payload.get("user", "")
        if op == "query":
            self.queries += 1
            self._reply(endpoint, {"ok": True,
                                   "ccs_host": self.current_ccs(user)})
        elif op == "report_down":
            self.reports += 1
            self._advance_past(user, payload.get("host"))
            self._reply(endpoint, {"ok": True,
                                   "ccs_host": self.current_ccs(user)})
        elif op == "register":
            # A host's LPM announces itself; if it ranks higher than the
            # current assignment, the assignment climbs back up.
            self._climb_to(user, payload.get("host"))
            self._reply(endpoint, {"ok": True,
                                   "ccs_host": self.current_ccs(user)})
        else:
            self._reply(endpoint, {"ok": False, "error": "bad op"})

    def _reply(self, endpoint, payload: dict) -> None:
        if endpoint.open:
            endpoint.send(payload, nbytes=96)

    def _advance_past(self, user: str, down_host: Optional[str]) -> None:
        hosts = self._priority.get(user)
        if not hosts or down_host is None:
            return
        if self.current_ccs(user) == down_host:
            self._assigned[user] = (self._assigned[user] + 1) % len(hosts)

    def _climb_to(self, user: str, up_host: Optional[str]) -> None:
        hosts = self._priority.get(user)
        if not hosts or up_host is None or up_host not in hosts:
            return
        candidate = hosts.index(up_host)
        if candidate < self._assigned[user] % len(hosts):
            self._assigned[user] = candidate
