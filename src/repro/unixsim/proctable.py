"""The per-host process table: pid allocation and lookups."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from ..errors import NoSuchProcessError, SimulationError
from .process import Process, ProcState

#: pids wrap at this bound, as in classic UNIX.
PID_MAX = 30_000


class ProcessTable:
    """All processes on one host, keyed by pid."""

    def __init__(self) -> None:
        self._procs: Dict[int, Process] = {}
        self._next_pid = 1

    def allocate_pid(self) -> int:
        """Smallest-effort allocator: increments and wraps, skipping
        pids still in use."""
        for _ in range(PID_MAX):
            pid = self._next_pid
            self._next_pid += 1
            if self._next_pid > PID_MAX:
                self._next_pid = 2  # pid 1 is init, never recycled
            if pid not in self._procs:
                return pid
        raise SimulationError("process table full")

    def insert(self, proc: Process) -> None:
        if proc.pid in self._procs:
            raise SimulationError("pid %d already in table" % (proc.pid,))
        self._procs[proc.pid] = proc

    def get(self, pid: int) -> Process:
        try:
            return self._procs[pid]
        except KeyError:
            raise NoSuchProcessError(str(pid)) from None

    def find(self, pid: int) -> Optional[Process]:
        return self._procs.get(pid)

    def remove(self, pid: int) -> None:
        self._procs.pop(pid, None)

    def __contains__(self, pid: int) -> bool:
        return pid in self._procs

    def __len__(self) -> int:
        return len(self._procs)

    def __iter__(self) -> Iterator[Process]:
        return iter(list(self._procs.values()))

    def by_uid(self, uid: int) -> List[Process]:
        return [p for p in self._procs.values() if p.uid == uid]

    def alive_by_uid(self, uid: int) -> List[Process]:
        return [p for p in self._procs.values()
                if p.uid == uid and p.alive]

    def running_count(self) -> int:
        """Size of the run queue (RUNNING processes)."""
        return sum(1 for p in self._procs.values()
                   if p.state is ProcState.RUNNING)

    def children_of(self, pid: int) -> List[Process]:
        parent = self.find(pid)
        if parent is None:
            return []
        return [self._procs[c] for c in parent.children if c in self._procs]

    def zombies_of(self, pid: int) -> List[Process]:
        return [p for p in self.children_of(pid)
                if p.state is ProcState.ZOMBIE]
