"""The process manager daemon (pmd).

"The process manager daemon is present in an installation as long as
there is any LPM present.  It serves as a trusted name server for the
creation of LPMs" (section 3).  It guarantees at most one LPM per user
per host, hands out accept addresses (with the per-session token that
authenticated channels verify), and — optionally — persists its registry
to stable storage, the improvement section 5 describes but the authors
did not implement: "if the process manager daemon loses information
about a LPM currently active in the host, then the process management
mechanism does not operate correctly."  Both modes exist here so the
failure and the fix can be demonstrated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..errors import AuthenticationError
from ..perf import PERF
from ..tracing.events import TraceEventType
from ..util import Deferred
from .process import ProcState
from .users import rhosts_permits

#: Stable-storage path for the registry.
STATE_PATH = "/etc/pmd.state"


@dataclass
class LpmRecord:
    """One registry entry: where a user's LPM accepts connections."""

    user: str
    pid: int
    accept_service: str
    token: str

    def to_line(self) -> str:
        return "%s %d %s %s" % (self.user, self.pid, self.accept_service,
                                self.token)

    @classmethod
    def from_line(cls, line: str) -> Optional["LpmRecord"]:
        parts = line.split()
        if len(parts) != 4:
            return None
        return cls(user=parts[0], pid=int(parts[1]), accept_service=parts[2],
                   token=parts[3])


class ProcessManagerDaemon:
    """Trusted name server for LPM creation on one host."""

    def __init__(self, host, stable_storage: Optional[bool] = None) -> None:
        self.host = host
        if stable_storage is None:
            stable_storage = host.world.config.pmd_stable_storage
        self.stable_storage = stable_storage
        self.proc = host.kernel.spawn(0, "pmd", state=ProcState.SLEEPING)
        self._registry: Dict[str, LpmRecord] = {}
        self.creations = 0
        self.lookups = 0
        #: Positive-result authentication cache, ``(user, origin_host,
        #: origin_user) -> incarnation``.  A login wave dials every
        #: sibling pair through this daemon; without the cache each
        #: dial re-reads ``.rhosts`` and re-compares password files.
        #: The incarnation key (local fs + password-file versions, plus
        #: the origin host's password-file version) invalidates the
        #: entry the moment any input to the decision can have changed.
        #: In-memory only: it dies with the daemon, like the registry.
        self._auth_cache: Dict[tuple, tuple] = {}
        if self.stable_storage:
            self._reload_registry()

    # ------------------------------------------------------------------
    # The name-server interface
    # ------------------------------------------------------------------

    def get_or_create_lpm(self, user: str, origin_host: str,
                          origin_user: str) -> Deferred:
        """Steps (3)/(4) of Figure 2.

        Verifies "that there is no LPM for that user in that host"; if one
        exists its accept address is returned, otherwise an LPM is
        created.  Resolves to the reply dict sent back by inetd.
        """
        self._authenticate(user, origin_host, origin_user)
        done = Deferred()
        record = self._live_record(user)
        if record is not None:
            self.lookups += 1
            done.resolve({"ok": True, "created": False, "user": user,
                          "lpm_host": self.host.name,
                          "accept_service": record.accept_service,
                          "token": record.token})
            return done
        # Create the LPM: expensive "in terms of message exchanges and in
        # local processing" (section 3), plus the optional stable write.
        cost = self.host.cpu_cost(self.host.world.cost_model.lpm_spawn_ms)
        if self.stable_storage:
            cost += self.host.world.config.pmd_stable_storage_write_ms
        self.host.sim.schedule(cost, self._create_lpm, user, done,
                               owner=self.host.name,
                               label="pmd create lpm %s@%s"
                                     % (user, self.host.name))
        return done

    def _create_lpm(self, user: str, done: Deferred) -> None:
        if not self.host.up:
            return
        existing = self._live_record(user)
        if existing is not None:  # lost a race with a concurrent request
            done.resolve({"ok": True, "created": False, "user": user,
                          "lpm_host": self.host.name,
                          "accept_service": existing.accept_service,
                          "token": existing.token})
            return
        factory = self.host.world.lpm_factory
        if factory is None:
            done.resolve({"ok": False,
                          "error": "no LPM implementation installed"})
            return
        # Deterministic token drawn from the seeded simulation RNG.
        token = "%016x" % self.host.sim.rng.getrandbits(64)
        lpm = factory(self.host, user, token)
        record = LpmRecord(user=user, pid=lpm.proc.pid,
                           accept_service=lpm.accept_service, token=token)
        self._registry[user] = record
        self.creations += 1
        if self.stable_storage:
            self._persist_registry()
        self.host.trace(TraceEventType.CREATION_STEP, step=3, actor="pmd",
                        detail="LPM created (pid %d)" % (lpm.proc.pid,),
                        user=user)
        done.resolve({"ok": True, "created": True, "user": user,
                      "lpm_host": self.host.name,
                      "accept_service": record.accept_service,
                      "token": token})

    def forget(self, user: str) -> None:
        """Remove a user's record (called when their LPM exits)."""
        if user in self._registry:
            del self._registry[user]
            if self.stable_storage:
                self._persist_registry()

    def knows(self, user: str) -> bool:
        return self._live_record(user) is not None

    def record_for(self, user: str) -> Optional[LpmRecord]:
        return self._live_record(user)

    # ------------------------------------------------------------------
    # Authentication (user level only; host masquerade is out of scope,
    # exactly as in the paper)
    # ------------------------------------------------------------------

    def _auth_incarnation(self, origin_host: str) -> tuple:
        """Versions of everything :meth:`_authenticate` consults."""
        origin = self.host.world.hosts.get(origin_host)
        return (self.host.fs.version, self.host.users.version,
                None if origin is None else origin.users.version)

    def _authenticate(self, user: str, origin_host: str,
                      origin_user: str) -> None:
        key = (user, origin_host, origin_user)
        incarnation = self._auth_incarnation(origin_host)
        if self._auth_cache.get(key) == incarnation:
            PERF.auth_cache_hits += 1
            return
        self._authenticate_uncached(user, origin_host, origin_user)
        # Only positive verdicts are memoised; failures stay cheap to
        # retry and must never mask a just-granted permission.
        self._auth_cache[key] = incarnation

    def _authenticate_uncached(self, user: str, origin_host: str,
                               origin_user: str) -> None:
        account = self.host.users.lookup(user)
        if account is None:
            raise AuthenticationError(
                "no account for %r on %s" % (user, self.host.name))
        if origin_host == self.host.name and origin_user == user:
            return  # local request by the user personally
        if origin_user == user:
            origin = self.host.world.hosts.get(origin_host)
            if origin is not None and self.host.users.consistent_with(
                    origin.users, user):
                return  # consistent password files across trusting hosts
        entries = self.host.fs.read_rhosts(user)
        if rhosts_permits(entries, origin_host, origin_user, user):
            return
        raise AuthenticationError(
            "%s@%s may not act as %s on %s"
            % (origin_user, origin_host, user, self.host.name))

    # ------------------------------------------------------------------
    # Failure modes and stable storage (section 5)
    # ------------------------------------------------------------------

    def crash(self) -> None:
        """The daemon dies.  Without stable storage its knowledge of the
        live LPMs dies with it; the host notices and restarts it empty."""
        if self.proc.alive:
            self.host.kernel.exit(self.proc.pid, status=1)
        self.host.pmd_daemon = None

    def _persist_registry(self) -> None:
        lines = [record.to_line() for record in self._registry.values()]
        self.host.fs.write(STATE_PATH, "\n".join(lines) + "\n")

    def _reload_registry(self) -> None:
        content = self.host.fs.read(STATE_PATH)
        if content is None:
            return
        for line in content.splitlines():
            record = LpmRecord.from_line(line)
            if record is None:
                continue
            # Only resurrect entries whose LPM process is still alive.
            proc = self.host.kernel.procs.find(record.pid)
            if proc is not None and proc.alive and proc.command == "lpm":
                self._registry[record.user] = record

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _live_record(self, user: str) -> Optional[LpmRecord]:
        record = self._registry.get(user)
        if record is None:
            return None
        proc = self.host.kernel.procs.find(record.pid)
        if proc is None or not proc.alive:
            del self._registry[user]
            if self.stable_storage:
                self._persist_registry()
            return None
        return record
