"""The inet daemon.

LPM creation requests are "directed to the inet daemon, inetd, which
then passes the request to the process manager daemon, pmd, creating it
if necessary" (section 3, Figure 2).  Using inetd "is an alternative to
having a well known communications port" for the pmd itself.

The four numbered steps of Figure 2 are recorded as CREATION_STEP trace
events so the architecture benchmark can regenerate the figure.
"""

from __future__ import annotations

from ..errors import AuthenticationError
from ..tracing.events import TraceEventType
from .process import ProcState

#: The well-known service inetd listens on.
INETD_SERVICE = "inetd"
#: The sub-service tools and remote LPMs request for PPM bootstrap.
PPM_SERVICE = "ppm"


class InetDaemon:
    """Per-host inetd; forwards PPM bootstrap requests to the pmd."""

    def __init__(self, host) -> None:
        self.host = host
        self.proc = host.kernel.spawn(0, "inetd", state=ProcState.SLEEPING)
        host.node.listen(INETD_SERVICE, self._accept)
        self.requests_served = 0

    def _accept(self, endpoint, payload) -> None:
        """Step (1): a creation request arrives."""
        if not isinstance(payload, dict) or "service" not in payload:
            self._reply(endpoint, {"ok": False, "error": "bad request"})
            return
        self.requests_served += 1
        self.host.trace(TraceEventType.CREATION_STEP, step=1,
                        actor="inetd", detail="request received",
                        user=payload.get("user", ""))
        if payload["service"] != PPM_SERVICE:
            self._reply(endpoint, {
                "ok": False,
                "error": "unknown service %r" % (payload["service"],)})
            return
        # Step (2): pass the request to the pmd, creating it if necessary.
        delay = self.host.cpu_cost(self.host.world.cost_model.pmd_step_ms)
        self.host.sim.schedule(delay, self._forward_to_pmd, endpoint,
                               payload, owner=self.host.name,
                               label="inetd->pmd %s" % payload.get(
                                   "user", "?"))

    def _forward_to_pmd(self, endpoint, payload) -> None:
        if not self.host.up:
            return
        pmd_created = self.host.pmd_daemon is None
        pmd = self.host.ensure_pmd()
        self.host.trace(TraceEventType.CREATION_STEP, step=2, actor="inetd",
                        detail="forwarded to pmd%s"
                               % (" (created)" if pmd_created else ""),
                        user=payload.get("user", ""))
        try:
            result = pmd.get_or_create_lpm(
                user=payload.get("user", ""),
                origin_host=payload.get("origin_host", self.host.name),
                origin_user=payload.get("origin_user",
                                        payload.get("user", "")))
        except AuthenticationError as exc:
            self._reply(endpoint, {"ok": False, "error": str(exc)})
            return
        # Step (4) happens when the pmd's work completes.
        result.then(lambda reply: self._finish(endpoint, reply))

    def _finish(self, endpoint, reply) -> None:
        if reply.get("ok"):
            self.host.trace(TraceEventType.CREATION_STEP, step=4,
                            actor="pmd", detail="accept address returned",
                            user=reply.get("user", ""))
        self._reply(endpoint, reply)

    def _reply(self, endpoint, reply) -> None:
        if endpoint.open:
            endpoint.send(reply, nbytes=160)
