"""The world: simulator + network + hosts + shared configuration.

A :class:`World` is the top-level container every test, example, and
benchmark builds first.  It owns the simulated clock, the network, the
trace recorder, and the administrative actions the paper assigns to
"network system administrators": creating consistent accounts across
trusting machines and writing ``.recovery`` files.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..config import DEFAULT_CONFIG, PPMConfig
from ..errors import NoSuchHostError
from ..latency import DEFAULT_COST_MODEL, CostModel, HostClass
from ..netsim.datagram import DatagramTransport
from ..netsim.fabric import SimFabric
from ..netsim.network import Network
from ..netsim.simulator import Simulator
from ..tracing.events import Granularity
from ..tracing.recorder import TraceRecorder
from .host import Host
from .ipc import UserIpc
from .users import UserAccount


class World:
    """Everything that exists in one simulation run."""

    def __init__(self, seed: int = 0,
                 config: PPMConfig = DEFAULT_CONFIG,
                 cost_model: CostModel = DEFAULT_COST_MODEL,
                 granularity: Granularity = Granularity.FINE) -> None:
        self.sim = Simulator(seed=seed)
        self.network = Network(self.sim)
        self.datagrams = DatagramTransport(self.network, cost_model)
        self.config = config
        self.cost_model = cost_model
        self.hosts: Dict[str, Host] = {}
        #: The backend seam (see :mod:`repro.core.fabric`): the protocol
        #: stack reaches the simulator only through this adapter.
        self.fabric = SimFabric(
            self.sim, self.network, self.datagrams,
            tool_delay_fn=lambda host_name: self.hosts[host_name]
            .cpu_cost(self.cost_model.tool_ipc_ms))
        self.recorder = TraceRecorder(lambda: self.sim.now_ms,
                                      granularity=granularity)
        #: User-level IPC fabric (4.3BSD sockets between processes).
        self.ipc = UserIpc(self)
        #: Installed by :func:`repro.core.install`; the pmd calls it to
        #: create LPM instances without unixsim importing the core layer.
        self.lpm_factory: Optional[Callable] = None
        #: Registry of live LPM objects, ``(host, user) -> LPM``,
        #: maintained by the installed factory.
        self.lpms: Dict[tuple, object] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_host(self, name: str,
                 host_class: HostClass = HostClass.VAX_780) -> Host:
        host = Host(self, name, host_class)
        self.hosts[name] = host
        return host

    def host(self, name: str) -> Host:
        try:
            return self.hosts[name]
        except KeyError:
            raise NoSuchHostError(name) from None

    def ethernet(self, names: Optional[List[str]] = None,
                 latency_ms: Optional[float] = None) -> None:
        """Join hosts on one shared segment (the Berkeley testbed)."""
        if names is None:
            names = list(self.hosts)
        if latency_ms is None:
            latency_ms = self.cost_model.wire_ms
        self.network.ethernet(names, latency_ms=latency_ms)

    def add_user(self, name: str, uid: int, password: str = "secret",
                 hosts: Optional[List[str]] = None) -> UserAccount:
        """Create a consistent account across trusting machines."""
        account = UserAccount.create(name, uid, password)
        targets = hosts if hosts is not None else list(self.hosts)
        for host_name in targets:
            self.host(host_name).add_account(account)
        return account

    def install_name_server(self, host_name: str):
        """Start the CCS name server daemon (section 5's alternative to
        ``.recovery`` files) on the named host."""
        from .nameserver import CcsNameServer
        self.name_server = CcsNameServer(self.host(host_name))
        return self.name_server

    def write_recovery_file(self, user: str, priority_hosts: List[str],
                            hosts: Optional[List[str]] = None) -> None:
        """Install the user's ``.recovery`` list (section 5) — it is
        assumed to "exist in all hosts where a user normally executes
        processes"."""
        targets = hosts if hosts is not None else list(self.hosts)
        for host_name in targets:
            self.host(host_name).fs.write_recovery_file(user, priority_hosts)

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    @property
    def now_ms(self) -> float:
        return self.sim.now_ms

    def run_for(self, duration_ms: float) -> None:
        self.sim.run_for(duration_ms)

    def run_until_true(self, predicate: Callable[[], bool],
                       timeout_ms: float = 600_000.0) -> bool:
        return self.sim.run_until_true(predicate, timeout_ms=timeout_ms)

    def doctor(self, alerts=None, engines=(), baseline=None):
        """Health-check this world: probe it and run every ops check.

        Read-only and opt-in (no messages, no RNG use, no events
        scheduled) — see :mod:`repro.ops`.  Returns a
        :class:`~repro.ops.checks.DoctorReport`.
        """
        from ..ops.doctor import probe_world, run_doctor
        view = probe_world(self, alerts=alerts, engines=engines)
        return run_doctor(view, baseline=baseline)

    def __repr__(self) -> str:
        return "World(%d hosts, t=%.1f ms)" % (len(self.hosts), self.now_ms)
