"""User accounts and user-level authentication.

Section 4: "It is the responsibility of network system administrators to
have consistent password files across machines that trust each other.
Authentication at the user level is done using the existing 4.3BSD
facilities, including the use of .rhosts files."  We model exactly that:
a per-host password file (:class:`UserRegistry`) and an ``.rhosts`` check
that grants a remote ``user@host`` access to the local account.

Host-level masquerade is *not* defended against, as in the paper.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import AuthenticationError


def _hash_password(password: str) -> str:
    return hashlib.sha256(password.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class UserAccount:
    """One line of the simulated password file."""

    name: str
    uid: int
    password_hash: str
    home: str

    @classmethod
    def create(cls, name: str, uid: int, password: str) -> "UserAccount":
        return cls(name=name, uid=uid,
                   password_hash=_hash_password(password),
                   home="/usr/%s" % (name,))


class UserRegistry:
    """The password file of one host."""

    def __init__(self) -> None:
        self._by_name: Dict[str, UserAccount] = {}
        #: Bumped on every password-file change; part of the pmd auth
        #: cache's incarnation key.
        self.version = 0

    def add(self, account: UserAccount) -> None:
        self._by_name[account.name] = account
        self.version += 1

    def lookup(self, name: str) -> Optional[UserAccount]:
        return self._by_name.get(name)

    def require(self, name: str) -> UserAccount:
        account = self.lookup(name)
        if account is None:
            raise AuthenticationError("no account for %r" % (name,))
        return account

    def names(self) -> List[str]:
        return sorted(self._by_name)

    def check_password(self, name: str, password: str) -> bool:
        account = self.lookup(name)
        return (account is not None
                and account.password_hash == _hash_password(password))

    def consistent_with(self, other: "UserRegistry", name: str) -> bool:
        """Do both password files agree on this user?  Trusting hosts are
        required to keep them consistent (section 4)."""
        mine = self.lookup(name)
        theirs = other.lookup(name)
        return (mine is not None and theirs is not None
                and mine.uid == theirs.uid
                and mine.password_hash == theirs.password_hash)


def rhosts_permits(entries: List[str], remote_host: str,
                   remote_user: str, local_user: str) -> bool:
    """Evaluate ``.rhosts`` lines for an incoming ``remote_user@remote_host``
    wanting to act as ``local_user``.

    A line is either ``host`` (grants the same user name only) or
    ``host user``.
    """
    for entry in entries:
        parts = entry.split()
        if not parts:
            continue
        host = parts[0]
        user = parts[1] if len(parts) > 1 else local_user
        if host == remote_host and user == remote_user:
            return True
    return False
