"""Simulated 4.3BSD substrate.

The paper's PPM runs on enhanced Berkeley UNIX hosts: it adopts processes
through an extended ``ptrace``, receives kernel event messages from
modified system calls, and is bootstrapped by the ``inetd`` and ``pmd``
system daemons.  This package simulates exactly that surface — process
tables, fork/exec/exit/signals, run-queue load averages, home-directory
files (``.recovery``, ``.rhosts``), user accounts, and the two daemons —
on top of :mod:`repro.netsim`.
"""

from .signals import Signal, default_action, SignalAction
from .process import Process, ProcState, Rusage, TraceFlag
from .proctable import ProcessTable
from .loadavg import LoadAverage
from .filesystem import SimFilesystem
from .users import UserAccount, UserRegistry
from .kernel import Kernel, KernelMessage, KernelEvent
from .ipc import UserChannel, UserIpc
from .programs import (
    Program,
    SpinnerProgram,
    SleeperProgram,
    WorkerProgram,
    FileWorkerProgram,
    ForkTreeProgram,
    EchoProgram,
    TalkerProgram,
)
from .inetd import InetDaemon
from .nameserver import CcsNameServer
from .pmd import ProcessManagerDaemon
from .host import Host
from .world import World

__all__ = [
    "Signal",
    "SignalAction",
    "default_action",
    "Process",
    "ProcState",
    "Rusage",
    "TraceFlag",
    "ProcessTable",
    "LoadAverage",
    "SimFilesystem",
    "UserAccount",
    "UserRegistry",
    "Kernel",
    "KernelMessage",
    "KernelEvent",
    "Program",
    "SpinnerProgram",
    "SleeperProgram",
    "WorkerProgram",
    "FileWorkerProgram",
    "ForkTreeProgram",
    "EchoProgram",
    "TalkerProgram",
    "UserChannel",
    "UserIpc",
    "InetDaemon",
    "CcsNameServer",
    "ProcessManagerDaemon",
    "Host",
    "World",
]
