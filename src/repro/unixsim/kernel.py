"""The simulated 4.3BSD kernel of one host.

Implements the system-call surface the PPM depends on: fork / exec /
exit / kill / wait, the extended ``ptrace`` used for adoption (granting
the LPM write access to the process control block, section 4), and the
modified system calls that post event messages to a registered LPM's
kernel socket.

The paper's efficiency claims are preserved structurally:

* "The runtime overhead for the users not requiring the PPM is
  negligible, as it only involves comparing to zero the value of a
  variable" (section 6) — :meth:`Kernel._post_event` begins with exactly
  such a check (no registered hooks, untraced process) before any work.

* "The code added to the system calls typically amounts to a 40 line
  message delivery function" — :meth:`Kernel._deliver_kernel_message` is
  that function; its cost is Table 1's load- and CPU-class-dependent
  delivery time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, List, Optional, Tuple

from ..config import KERNEL_MESSAGE_BYTES
from ..errors import (
    AdoptionError,
    NoSuchProcessError,
    ProcessPermissionError,
    SimulationError,
)
from ..latency import kernel_message_delay_ms
from .loadavg import LoadAverage
from .process import (
    CLOSED_FILE_HISTORY_LIMIT,
    ClosedFile,
    OpenFile,
    Process,
    ProcState,
    TraceFlag,
)
from .proctable import ProcessTable
from .signals import Signal, SignalAction, default_action

#: uid of the superuser.
ROOT_UID = 0
#: pid of init, the adopter of orphans.
INIT_PID = 1


class KernelEvent(Enum):
    """Event classes posted to an LPM's kernel socket."""

    FORK = "fork"
    EXEC = "exec"
    EXIT = "exit"
    SIGNAL = "signal"
    STOPPED = "stopped"
    CONTINUED = "continued"
    FILE_OPENED = "file_opened"
    FILE_CLOSED = "file_closed"


#: Which tracing flag gates each event class.
_EVENT_FLAG = {
    KernelEvent.FORK: TraceFlag.FORK,
    KernelEvent.EXEC: TraceFlag.EXEC,
    KernelEvent.EXIT: TraceFlag.EXIT,
    KernelEvent.SIGNAL: TraceFlag.SIGNAL,
    KernelEvent.STOPPED: TraceFlag.STATE,
    KernelEvent.CONTINUED: TraceFlag.STATE,
    KernelEvent.FILE_OPENED: TraceFlag.FILES,
    KernelEvent.FILE_CLOSED: TraceFlag.FILES,
}


@dataclass
class KernelMessage:
    """The 112-byte message deposited on the LPM's kernel socket."""

    event: KernelEvent
    host: str
    pid: int
    ppid: int
    uid: int
    command: str
    timestamp_ms: float
    details: dict = field(default_factory=dict)
    size_bytes: int = KERNEL_MESSAGE_BYTES


class Kernel:
    """Process management syscalls for one simulated host."""

    def __init__(self, sim, host_name: str, host_class) -> None:
        self.sim = sim
        self.host_name = host_name
        self.host_class = host_class
        #: Back-reference set by the owning Host (None in bare tests).
        self.host = None
        self.procs = ProcessTable()
        self.loadavg = LoadAverage(lambda: sim.now_ms,
                                   self.procs.running_count)
        #: uid -> callable(KernelMessage); the per-user LPM kernel socket.
        self._lpm_hooks: Dict[int, Callable[[KernelMessage], None]] = {}
        self.halted = False
        self.messages_posted = 0
        self.messages_suppressed = 0
        self._boot_init()

    def _boot_init(self) -> None:
        init = Process(pid=INIT_PID, ppid=0, uid=ROOT_UID, command="init",
                       state=ProcState.SLEEPING, start_ms=self.sim.now_ms)
        init._state_since_ms = self.sim.now_ms
        self.procs.insert(init)

    # ------------------------------------------------------------------
    # Creation
    # ------------------------------------------------------------------

    def spawn(self, uid: int, command: str, args: Tuple[str, ...] = (),
              program=None, ppid: int = INIT_PID,
              state: ProcState = ProcState.RUNNING,
              foreground: bool = True) -> Process:
        """fork+exec in one step, the common path for daemons and logins."""
        self._check_running()
        parent = self.procs.get(ppid)
        pid = self.procs.allocate_pid()
        proc = Process(pid=pid, ppid=ppid, uid=uid, command=command,
                       args=tuple(args), state=state,
                       start_ms=self.sim.now_ms, foreground=foreground,
                       program=program)
        proc._state_since_ms = self.sim.now_ms
        # Children of an adopted parent inherit adoption and flags, which
        # is how the LPM tracks "a process and its descendants".
        if parent.traced and parent.uid == uid:
            proc.adopted_by_uid = parent.adopted_by_uid
            proc.trace_flags = parent.trace_flags
        self.procs.insert(proc)
        parent.children.append(pid)
        parent.rusage.forks += 1
        self.loadavg.note_change()
        self._post_event(proc, KernelEvent.FORK,
                         {"parent": ppid, "command": command})
        if program is not None:
            program.start(self, proc)
        return proc

    def fork(self, parent_pid: int) -> Process:
        """Plain fork: the child runs the parent's image."""
        parent = self.procs.get(parent_pid)
        return self.spawn(parent.uid, parent.command, parent.args,
                          ppid=parent_pid, state=ProcState.RUNNING,
                          foreground=parent.foreground)

    def exec(self, pid: int, command: str, args: Tuple[str, ...] = (),
             program=None) -> None:
        """Replace the image of a live process."""
        self._check_running()
        proc = self._require_alive(pid)
        proc.command = command
        proc.args = tuple(args)
        if program is not None:
            # The old image ceases to exist: its timers must not
            # outlive it (exec(2) semantics).
            if proc.program is not None:
                proc.program.on_exit(self, proc)
            proc.program = program
            program.start(self, proc)
        self._post_event(proc, KernelEvent.EXEC, {"command": command})

    # ------------------------------------------------------------------
    # Files (the section 7 open/closed-files and descriptor tools read
    # what these syscalls maintain)
    # ------------------------------------------------------------------

    def open_file(self, pid: int, path: str, mode: str = "r") -> int:
        """open(2): allocate a descriptor for ``path``."""
        self._check_running()
        proc = self._require_alive(pid)
        fd = proc.next_fd
        proc.next_fd += 1
        proc.fd_table[fd] = OpenFile(fd=fd, path=path, mode=mode,
                                     opened_ms=self.sim.now_ms)
        self._post_event(proc, KernelEvent.FILE_OPENED,
                         {"fd": fd, "path": path, "mode": mode})
        return fd

    def close_file(self, pid: int, fd: int) -> None:
        """close(2)."""
        self._check_running()
        proc = self._require_alive(pid)
        entry = proc.fd_table.pop(fd, None)
        if entry is None:
            raise NoSuchProcessError("pid %d has no fd %d" % (pid, fd))
        self._record_closed(proc, entry)
        self._post_event(proc, KernelEvent.FILE_CLOSED,
                         {"fd": fd, "path": entry.path})

    def dup_file(self, pid: int, fd: int) -> int:
        """dup(2): a second descriptor for the same open file."""
        self._check_running()
        proc = self._require_alive(pid)
        entry = proc.fd_table.get(fd)
        if entry is None:
            raise NoSuchProcessError("pid %d has no fd %d" % (pid, fd))
        new_fd = proc.next_fd
        proc.next_fd += 1
        proc.fd_table[new_fd] = OpenFile(fd=new_fd, path=entry.path,
                                         mode=entry.mode,
                                         opened_ms=self.sim.now_ms)
        self._post_event(proc, KernelEvent.FILE_OPENED,
                         {"fd": new_fd, "path": entry.path,
                          "mode": entry.mode, "dup_of": fd})
        return new_fd

    def _record_closed(self, proc: Process, entry: OpenFile) -> None:
        proc.closed_files.append(ClosedFile(
            path=entry.path, mode=entry.mode, opened_ms=entry.opened_ms,
            closed_ms=self.sim.now_ms))
        if len(proc.closed_files) > CLOSED_FILE_HISTORY_LIMIT:
            del proc.closed_files[0]

    def _close_all_files(self, proc: Process) -> None:
        """Exit closes every descriptor, as the kernel does."""
        for entry in list(proc.fd_table.values()):
            self._record_closed(proc, entry)
        proc.fd_table.clear()

    # ------------------------------------------------------------------
    # Termination
    # ------------------------------------------------------------------

    def exit(self, pid: int, status: int = 0,
             term_signal: Optional[Signal] = None) -> None:
        """Voluntary or signal-forced termination."""
        self._check_running()
        proc = self.procs.find(pid)
        if proc is None or not proc.alive:
            return
        if proc.program is not None:
            proc.program.on_exit(self, proc)
        self._close_all_files(proc)
        proc.set_state(ProcState.ZOMBIE, self.sim.now_ms)
        proc.end_ms = self.sim.now_ms
        proc.exit_status = status
        proc.term_signal = int(term_signal) if term_signal else None
        self.loadavg.note_change()
        details = {"status": status}
        if term_signal is not None:
            details["signal"] = int(term_signal)
        if proc.wants(TraceFlag.RESOURCE):
            details["rusage"] = {
                "utime_ms": proc.rusage.utime_ms,
                "forks": proc.rusage.forks,
                "signals": proc.rusage.signals_received,
            }
        self._post_event(proc, KernelEvent.EXIT, details)
        # Orphaned children go to init; zombie children of the dead
        # process are reaped by init immediately.
        for child in self.procs.children_of(pid):
            child.ppid = INIT_PID
            init = self.procs.get(INIT_PID)
            if child.pid not in init.children:
                init.children.append(child.pid)
            if child.state is ProcState.ZOMBIE:
                self._reap_one(child)
        proc.children.clear()
        # init reaps what nobody will wait for.
        parent = self.procs.find(proc.ppid)
        if parent is None or not parent.alive or proc.ppid == INIT_PID:
            self._reap_one(proc)

    def reap(self, parent_pid: int) -> List[Process]:
        """wait(2): collect the caller's zombie children."""
        self._check_running()
        collected = []
        for zombie in self.procs.zombies_of(parent_pid):
            self._reap_one(zombie)
            collected.append(zombie)
        return collected

    def _reap_one(self, proc: Process) -> None:
        proc.state = ProcState.DEAD
        parent = self.procs.find(proc.ppid)
        if parent is not None and proc.pid in parent.children:
            parent.children.remove(proc.pid)
        self.procs.remove(proc.pid)

    # ------------------------------------------------------------------
    # Signals
    # ------------------------------------------------------------------

    def kill(self, pid: int, signal: Signal, sender_uid: int) -> None:
        """Deliver a software interrupt, with uid permission checks."""
        self._check_running()
        proc = self.procs.find(pid)
        if proc is None or proc.state is ProcState.DEAD:
            raise NoSuchProcessError(str(pid))
        if sender_uid != ROOT_UID and sender_uid != proc.uid:
            raise ProcessPermissionError(
                "uid %d may not signal pid %d (uid %d)"
                % (sender_uid, pid, proc.uid))
        if proc.state is ProcState.ZOMBIE:
            return  # accepted and discarded, as in UNIX
        proc.rusage.signals_received += 1
        self._post_event(proc, KernelEvent.SIGNAL, {"signal": int(signal)})
        action = default_action(signal)
        if action is SignalAction.IGNORE:
            return
        if action is SignalAction.TERMINATE:
            self.exit(pid, status=128 + int(signal), term_signal=signal)
        elif action is SignalAction.STOP:
            self._stop(proc)
        elif action is SignalAction.CONTINUE:
            self._continue(proc)

    def _stop(self, proc: Process) -> None:
        if proc.state is ProcState.STOPPED:
            return
        was = proc.state
        proc.set_state(ProcState.STOPPED, self.sim.now_ms)
        proc.resumed_state = was
        if proc.program is not None:
            proc.program.on_stop(self, proc)
        self.loadavg.note_change()
        self._post_event(proc, KernelEvent.STOPPED, {})

    def _continue(self, proc: Process) -> None:
        if proc.state is not ProcState.STOPPED:
            return
        resumed = getattr(proc, "resumed_state", ProcState.RUNNING)
        proc.set_state(resumed, self.sim.now_ms)
        if proc.program is not None:
            proc.program.on_continue(self, proc)
        self.loadavg.note_change()
        self._post_event(proc, KernelEvent.CONTINUED, {})

    def set_foreground(self, pid: int, foreground: bool,
                       sender_uid: int) -> None:
        """Move a process between foreground and background execution."""
        proc = self._require_alive(pid)
        if sender_uid != ROOT_UID and sender_uid != proc.uid:
            raise ProcessPermissionError(
                "uid %d may not control pid %d" % (sender_uid, pid))
        proc.foreground = foreground

    # ------------------------------------------------------------------
    # Adoption (the extended ptrace of section 4)
    # ------------------------------------------------------------------

    def adopt(self, lpm_uid: int, pid: int,
              flags: TraceFlag = TraceFlag.ALL) -> Process:
        """Grant the user's LPM write access to the PCB and install
        tracing flags.  Fails across users."""
        self._check_running()
        proc = self._require_alive(pid)
        if proc.uid != lpm_uid:
            raise AdoptionError(
                "process %d belongs to uid %d, not uid %d"
                % (pid, proc.uid, lpm_uid))
        proc.adopted_by_uid = lpm_uid
        proc.trace_flags = flags
        return proc

    def set_trace_flags(self, lpm_uid: int, pid: int,
                        flags: TraceFlag) -> None:
        """Adjust the amount of event recording for one process."""
        proc = self._require_alive(pid)
        if proc.adopted_by_uid != lpm_uid:
            raise AdoptionError("process %d is not adopted by uid %d"
                                % (pid, lpm_uid))
        proc.trace_flags = flags

    # ------------------------------------------------------------------
    # The kernel socket (Table 1's measured path)
    # ------------------------------------------------------------------

    def register_lpm(self, uid: int,
                     deliver: Callable[[KernelMessage], None]) -> None:
        """Attach the LPM's kernel socket for one user."""
        self._lpm_hooks[uid] = deliver

    def unregister_lpm(self, uid: int) -> None:
        self._lpm_hooks.pop(uid, None)

    def has_lpm(self, uid: int) -> bool:
        return uid in self._lpm_hooks

    def _post_event(self, proc: Process, event: KernelEvent,
                    details: dict) -> None:
        # The negligible-overhead fast path: nothing registered, or the
        # process carries no tracing flags.
        if not self._lpm_hooks:
            return
        if not proc.wants(_EVENT_FLAG[event]):
            self.messages_suppressed += 1
            return
        hook = self._lpm_hooks.get(proc.adopted_by_uid)
        if hook is None:
            self.messages_suppressed += 1
            return
        message = KernelMessage(event=event, host=self.host_name,
                                pid=proc.pid, ppid=proc.ppid, uid=proc.uid,
                                command=proc.command,
                                timestamp_ms=self.sim.now_ms,
                                details=dict(details))
        self._deliver_kernel_message(hook, message)

    def _deliver_kernel_message(self, hook: Callable[[KernelMessage], None],
                                message: KernelMessage) -> None:
        """The "40 line message delivery function" added to the system
        calls; its latency is Table 1's calibrated cost."""
        delay = kernel_message_delay_ms(self.host_class,
                                        self.loadavg.value(),
                                        message.size_bytes)
        self.messages_posted += 1

        def deliver() -> None:
            if self.halted:
                return
            hook(message)

        self.sim.schedule(delay, deliver, owner=self.host_name,
                          label="kmsg %s pid=%d" % (message.event.value,
                                                    message.pid))

    # ------------------------------------------------------------------
    # Host failure
    # ------------------------------------------------------------------

    def halt(self) -> None:
        """Host crash: every process ceases instantly; nothing is saved."""
        self.halted = True
        for proc in self.procs:
            if proc.program is not None:
                proc.program.on_halt(self, proc)
            proc.state = ProcState.DEAD
        self._lpm_hooks.clear()

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _check_running(self) -> None:
        if self.halted:
            raise SimulationError("kernel on %s is halted" % (self.host_name,))

    def _require_alive(self, pid: int) -> Process:
        proc = self.procs.find(pid)
        if proc is None or not proc.alive:
            raise NoSuchProcessError(str(pid))
        return proc
