"""One simulated machine: kernel + filesystem + accounts + daemons."""

from __future__ import annotations

from typing import Optional, Tuple

from ..latency import HostClass, load_factor
from ..tracing.events import TraceEventType
from .filesystem import SimFilesystem
from .inetd import InetDaemon
from .kernel import Kernel
from .pmd import ProcessManagerDaemon
from .process import Process
from .users import UserAccount, UserRegistry


class Host:
    """A machine with explicit boundaries, as the paper assumes.

    The disk (:attr:`fs`) and the password file (:attr:`users`) survive
    crashes; the kernel, every process, and the daemons do not.
    """

    def __init__(self, world, name: str, host_class: HostClass) -> None:
        self.world = world
        self.sim = world.sim
        self.name = name
        self.host_class = host_class
        self.node = world.network.add_node(name, host_class)
        self.fs = SimFilesystem()
        self.users = UserRegistry()
        self.kernel = Kernel(self.sim, name, host_class)
        self.kernel.host = self
        self.node.load_fn = self.load_average
        self.inetd = InetDaemon(self)
        self.pmd_daemon: Optional[ProcessManagerDaemon] = None
        self.crash_count = 0

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------

    @property
    def up(self) -> bool:
        return self.node.up

    def load_average(self) -> float:
        if not self.up:
            return 0.0
        return self.kernel.loadavg.value()

    def cpu_cost(self, base_ms: float) -> float:
        """Scale a CPU-bound cost by this host's class and current load."""
        return base_ms * load_factor(self.host_class, self.load_average())

    def trace(self, event_type: TraceEventType, user: str = "",
              gpid=None, **details) -> None:
        """Record into the world's trace log with this host's identity."""
        self.world.recorder.record(event_type, host=self.name, user=user,
                                   gpid=gpid, **details)

    # ------------------------------------------------------------------
    # Accounts
    # ------------------------------------------------------------------

    def add_account(self, account: UserAccount) -> None:
        self.users.add(account)
        home = self.fs.home_of(account.name)
        if not self.fs.exists(home):
            self.fs.write(home, "")  # directory marker

    def uid_of(self, user: str) -> int:
        return self.users.require(user).uid

    # ------------------------------------------------------------------
    # Daemons
    # ------------------------------------------------------------------

    def ensure_pmd(self) -> ProcessManagerDaemon:
        """The pmd is created on demand and stays while LPMs exist."""
        if self.pmd_daemon is None or not self.pmd_daemon.proc.alive:
            self.pmd_daemon = ProcessManagerDaemon(self)
        return self.pmd_daemon

    # ------------------------------------------------------------------
    # User processes
    # ------------------------------------------------------------------

    def spawn_user_process(self, user: str, command: str,
                           args: Tuple[str, ...] = (), program=None,
                           ppid: Optional[int] = None,
                           foreground: bool = True) -> Process:
        """Start a process for a named account (a login shell's child)."""
        uid = self.uid_of(user)
        return self.kernel.spawn(uid, command, args, program=program,
                                 ppid=ppid if ppid is not None else 1,
                                 foreground=foreground)

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------

    def crash(self) -> None:
        """Power failure: processes vanish, the network notices, the disk
        survives."""
        if not self.up:
            return
        self.crash_count += 1
        self.kernel.halt()
        self.pmd_daemon = None
        self.node.services.clear()
        self.world.network.crash_host(self.name)

    def reboot(self) -> None:
        """Bring the machine back with a fresh kernel and daemons."""
        if self.up:
            return
        self.kernel = Kernel(self.sim, self.name, self.host_class)
        self.kernel.host = self
        self.node.load_fn = self.load_average
        self.world.network.revive_host(self.name)
        self.inetd = InetDaemon(self)
        self.pmd_daemon = None

    def __repr__(self) -> str:
        return "Host(%s, %s, %s)" % (self.name, self.host_class.value,
                                     "up" if self.up else "DOWN")
