"""Process control blocks.

A :class:`Process` is the simulated PCB: identity, state, genealogy,
resource usage, and the *tracing flags* that adoption installs
("user processes are modified to contain specific tracing flags used
thereafter by the kernel for event detection", section 4 — the mechanism
the paper likens to its METRIC-derived monitor).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, IntFlag
from typing import List, Optional, Tuple


class ProcState(Enum):
    """Scheduling states.  Only RUNNING processes sit on the run queue
    and therefore contribute to the load average."""

    RUNNING = "running"
    SLEEPING = "sleeping"
    STOPPED = "stopped"
    ZOMBIE = "zombie"
    #: Reaped and gone from the process table; kept on the record the LPM
    #: retains ("we chose to retain exit information while there are
    #: children alive", section 2).
    DEAD = "dead"

    @property
    def alive(self) -> bool:
        return self not in (ProcState.ZOMBIE, ProcState.DEAD)


class TraceFlag(IntFlag):
    """Event classes an adopted process reports to its LPM.

    The amount of recording is user-settable (section 2: LPMs "accept
    parameters that determine the amount of process events recorded").
    """

    NONE = 0
    FORK = 1
    EXEC = 2
    EXIT = 4
    SIGNAL = 8
    STATE = 16  # stop/continue transitions
    RESOURCE = 32  # rusage samples at exit
    FILES = 64  # file open/close activity (the section 7 files tool)
    ALL = FORK | EXEC | EXIT | SIGNAL | STATE | RESOURCE | FILES


#: Mapping between config-file flag names and TraceFlag bits.
TRACE_FLAG_NAMES = {
    "fork": TraceFlag.FORK,
    "exec": TraceFlag.EXEC,
    "exit": TraceFlag.EXIT,
    "signal": TraceFlag.SIGNAL,
    "state": TraceFlag.STATE,
    "resource": TraceFlag.RESOURCE,
    "files": TraceFlag.FILES,
    "all": TraceFlag.ALL,
}


@dataclass(frozen=True)
class OpenFile:
    """One file-descriptor-table entry."""

    fd: int
    path: str
    mode: str
    opened_ms: float


@dataclass(frozen=True)
class ClosedFile:
    """History entry for a file the process no longer holds open."""

    path: str
    mode: str
    opened_ms: float
    closed_ms: float


#: Bound on per-process closed-file history kept in the PCB.
CLOSED_FILE_HISTORY_LIMIT = 64


def trace_flags_from_names(names) -> TraceFlag:
    """Combine flag names (as stored in :class:`repro.config.PPMConfig`)."""
    flags = TraceFlag.NONE
    for name in names:
        flags |= TRACE_FLAG_NAMES[name]
    return flags


@dataclass
class Rusage:
    """Resource consumption, the raw material of the paper's
    "exited process resource consumption statistics" tool."""

    utime_ms: float = 0.0
    stime_ms: float = 0.0
    max_rss_kb: int = 0
    signals_received: int = 0
    forks: int = 0
    messages_sent: int = 0

    def merged_with(self, other: "Rusage") -> "Rusage":
        """Sum of two usages (used for per-command aggregation)."""
        return Rusage(
            utime_ms=self.utime_ms + other.utime_ms,
            stime_ms=self.stime_ms + other.stime_ms,
            max_rss_kb=max(self.max_rss_kb, other.max_rss_kb),
            signals_received=self.signals_received + other.signals_received,
            forks=self.forks + other.forks,
            messages_sent=self.messages_sent + other.messages_sent,
        )


@dataclass
class Process:
    """One simulated process control block."""

    pid: int
    ppid: int
    uid: int
    command: str
    args: Tuple[str, ...] = ()
    state: ProcState = ProcState.RUNNING
    start_ms: float = 0.0
    end_ms: Optional[float] = None
    exit_status: Optional[int] = None
    #: Signal that terminated the process, if any.
    term_signal: Optional[int] = None
    children: List[int] = field(default_factory=list)
    trace_flags: TraceFlag = TraceFlag.NONE
    #: uid of the LPM that adopted this process (write access to the PCB
    #: via the extended ptrace of section 4); None when unmanaged.
    adopted_by_uid: Optional[int] = None
    rusage: Rusage = field(default_factory=Rusage)
    foreground: bool = True
    #: Set while the process runs a :class:`repro.unixsim.programs.Program`.
    program: object = None
    #: State to resume into after SIGCONT (RUNNING or SLEEPING).
    resumed_state: Optional[ProcState] = None
    #: File descriptor table: fd -> OpenFile.
    fd_table: dict = field(default_factory=dict)
    #: Recently closed files (bounded history for the files tool).
    closed_files: List[ClosedFile] = field(default_factory=list)
    #: Next descriptor to hand out (0-2 reserved, as in UNIX).
    next_fd: int = 3
    #: Time of the last state transition, for CPU accounting.
    _state_since_ms: float = field(default=0.0, repr=False)

    @property
    def traced(self) -> bool:
        return self.adopted_by_uid is not None

    @property
    def alive(self) -> bool:
        return self.state.alive

    def wants(self, flag: TraceFlag) -> bool:
        """Whether this PCB reports events of the given class."""
        return self.traced and bool(self.trace_flags & flag)

    def charge_cpu(self, now_ms: float) -> None:
        """Accumulate user CPU time for the interval spent RUNNING."""
        if self.state is ProcState.RUNNING:
            self.rusage.utime_ms += now_ms - self._state_since_ms
        self._state_since_ms = now_ms

    def set_state(self, new_state: ProcState, now_ms: float) -> None:
        """Transition with CPU accounting; no-op on same-state."""
        if new_state is self.state:
            return
        self.charge_cpu(now_ms)
        self.state = new_state

    def lifetime_ms(self, now_ms: float) -> float:
        end = self.end_ms if self.end_ms is not None else now_ms
        return end - self.start_ms

    def __repr__(self) -> str:
        return "Process(pid=%d, uid=%d, %s, %s)" % (
            self.pid, self.uid, self.command, self.state.value)
