"""Simulated user programs.

The workloads the paper's evaluation runs against the PPM: CPU spinners
(to raise the run-queue load into Table 1's bands), sleepers, short-lived
workers (the "UNIX reality of many short lived processes", section 3),
and fork trees (the "arbitrary genealogical process structure
relationships" of section 1 that pipelines cannot express).

A program drives its process by scheduling kernel calls; the kernel
invokes the ``on_stop`` / ``on_continue`` / ``on_exit`` / ``on_halt``
hooks so that timers pause while the process is stopped and vanish when
it dies.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple


class Program:
    """Base class: a process image that does nothing until killed."""

    def start(self, kernel, proc) -> None:
        """Called when the process begins executing this image."""

    def on_stop(self, kernel, proc) -> None:
        """SIGSTOP delivered: pause internal timers."""

    def on_continue(self, kernel, proc) -> None:
        """SIGCONT delivered: resume internal timers."""

    def on_exit(self, kernel, proc) -> None:
        """The process is terminating (voluntarily or by signal)."""

    def on_halt(self, kernel, proc) -> None:
        """The host crashed underneath the process."""


class _TimedProgram(Program):
    """Shared machinery for programs that run for a duration and exit.

    Stopping the process freezes the remaining run time; continuing
    rearms it.  All timers are cancelled on exit or host crash.
    """

    def __init__(self, duration_ms: Optional[float],
                 exit_status: int = 0) -> None:
        if duration_ms is not None and duration_ms < 0:
            raise ValueError("duration_ms must be >= 0 or None")
        self.duration_ms = duration_ms
        self.exit_status = exit_status
        self._timer = None
        self._remaining_ms: Optional[float] = None
        self._armed_at_ms = 0.0

    def start(self, kernel, proc) -> None:
        self._remaining_ms = self.duration_ms
        self._arm(kernel, proc)

    def _arm(self, kernel, proc) -> None:
        if self._remaining_ms is None:
            return  # runs forever
        self._armed_at_ms = kernel.sim.now_ms
        self._timer = kernel.sim.schedule(
            self._remaining_ms, self._finish, kernel, proc,
            owner=kernel.host_name,
            label="%s pid=%d" % (type(self).__name__, proc.pid))

    def _finish(self, kernel, proc) -> None:
        self._timer = None
        if kernel.halted or not proc.alive:
            return
        kernel.exit(proc.pid, status=self.exit_status)

    def _disarm(self, kernel) -> None:
        if self._timer is not None:
            if self._remaining_ms is not None:
                elapsed = kernel.sim.now_ms - self._armed_at_ms
                self._remaining_ms = max(self._remaining_ms - elapsed, 0.0)
            kernel.sim.cancel(self._timer)
            self._timer = None

    def on_stop(self, kernel, proc) -> None:
        self._disarm(kernel)

    def on_continue(self, kernel, proc) -> None:
        self._arm(kernel, proc)

    def on_exit(self, kernel, proc) -> None:
        self._disarm(kernel)

    def on_halt(self, kernel, proc) -> None:
        if self._timer is not None:
            kernel.sim.cancel(self._timer)
            self._timer = None


class SpinnerProgram(_TimedProgram):
    """Pure CPU burner: RUNNING for ``duration_ms`` (or forever), then
    exits.  Used to push the load average into Table 1's bands."""


class WorkerProgram(_TimedProgram):
    """A short-lived job that computes and exits with a status."""


class FileWorkerProgram(_TimedProgram):
    """A job that opens files while it works.

    Drives the open/close syscalls so the files and file-descriptor
    tools (the section 7 tool list) have something to display.  Files
    in ``files`` are opened at start; each entry of ``close_after_ms``
    (path, delay) closes that path's descriptor before exit; anything
    still open is closed by the kernel at exit.
    """

    def __init__(self, duration_ms, files, close_after_ms=(),
                 exit_status: int = 0) -> None:
        super().__init__(duration_ms, exit_status)
        self.files = list(files)
        self.close_after_ms = list(close_after_ms)
        self._fds = {}
        self._close_timers = []

    def start(self, kernel, proc) -> None:
        for path in self.files:
            self._fds[path] = kernel.open_file(proc.pid, path)
        for path, delay_ms in self.close_after_ms:
            timer = kernel.sim.schedule(
                delay_ms, self._close_one, kernel, proc, path,
                owner=kernel.host_name,
                label="close %s pid=%d" % (path, proc.pid))
            self._close_timers.append(timer)
        super().start(kernel, proc)

    def _close_one(self, kernel, proc, path) -> None:
        if kernel.halted or not proc.alive:
            return
        fd = self._fds.pop(path, None)
        if fd is not None and fd in proc.fd_table:
            kernel.close_file(proc.pid, fd)

    def on_exit(self, kernel, proc) -> None:
        super().on_exit(kernel, proc)
        for timer in self._close_timers:
            kernel.sim.cancel(timer)
        self._close_timers.clear()

    def on_halt(self, kernel, proc) -> None:
        super().on_halt(kernel, proc)
        for timer in self._close_timers:
            kernel.sim.cancel(timer)
        self._close_timers.clear()


class SleeperProgram(_TimedProgram):
    """Blocked on I/O: SLEEPING, so it never contributes to the run
    queue, then exits."""

    def start(self, kernel, proc) -> None:
        from .process import ProcState
        proc.set_state(ProcState.SLEEPING, kernel.sim.now_ms)
        kernel.loadavg.note_change()
        super().start(kernel, proc)


class EchoProgram(_TimedProgram):
    """A server process: accepts user-IPC connections and echoes every
    message back.  Listens on its own ``<host, pid>`` identity."""

    def __init__(self, duration_ms=None, exit_status: int = 0) -> None:
        super().__init__(duration_ms, exit_status)
        self.channels = []
        self.messages_echoed = 0

    def start(self, kernel, proc) -> None:
        from ..ids import GlobalPid
        world = kernel.host.world

        def accept(channel) -> None:
            self.channels.append(channel)
            channel.on_message = self._echo

        world.ipc.listen(GlobalPid(kernel.host_name, proc.pid), accept)
        super().start(kernel, proc)

    def _echo(self, data, channel) -> None:
        self.messages_echoed += 1
        if channel.open:
            channel.send(("echo", data))

    def on_exit(self, kernel, proc) -> None:
        super().on_exit(kernel, proc)
        from ..ids import GlobalPid
        if kernel.host is not None:
            kernel.host.world.ipc.unlisten(
                GlobalPid(kernel.host_name, proc.pid))
        for channel in self.channels:
            channel.close()
        self.channels.clear()


class TalkerProgram(_TimedProgram):
    """A client process: connects to a peer by ``<host, pid>`` and sends
    periodic messages — no common ancestor or shared host needed."""

    def __init__(self, peer, interval_ms: float = 500.0,
                 count: int = 10, duration_ms=None,
                 exit_status: int = 0) -> None:
        super().__init__(duration_ms, exit_status)
        self.peer = peer
        self.interval_ms = interval_ms
        self.count = count
        self.channel = None
        self.replies_seen = 0
        self._send_timer = None
        self._sent = 0

    def start(self, kernel, proc) -> None:
        from ..ids import GlobalPid
        world = kernel.host.world
        me = GlobalPid(kernel.host_name, proc.pid)

        def connected(channel) -> None:
            if channel is None or kernel.halted or not proc.alive:
                return
            self.channel = channel
            channel.on_message = self._on_reply
            self._schedule_send(kernel, proc)

        world.ipc.connect(me, self.peer).then(connected)
        super().start(kernel, proc)

    def _schedule_send(self, kernel, proc) -> None:
        if self._sent >= self.count:
            return
        self._send_timer = kernel.sim.schedule(
            self.interval_ms, self._send_one, kernel, proc,
            owner=kernel.host_name,
            label="talker pid=%d" % (proc.pid,))

    def _send_one(self, kernel, proc) -> None:
        from ..errors import ConnectionClosedError
        self._send_timer = None
        if kernel.halted or not proc.alive or self.channel is None \
                or not self.channel.open:
            return
        try:
            self.channel.send(("msg", self._sent + 1))
        except ConnectionClosedError:
            return  # the peer (or its host) is gone; stop talking
        self._sent += 1
        self._schedule_send(kernel, proc)

    def _on_reply(self, data, channel) -> None:
        self.replies_seen += 1

    def _teardown(self, kernel) -> None:
        if self._send_timer is not None:
            kernel.sim.cancel(self._send_timer)
            self._send_timer = None
        if self.channel is not None:
            self.channel.close()

    def on_exit(self, kernel, proc) -> None:
        super().on_exit(kernel, proc)
        self._teardown(kernel)

    def on_halt(self, kernel, proc) -> None:
        super().on_halt(kernel, proc)
        self._teardown(kernel)


class ForkTreeProgram(Program):
    """Forks a subtree of children according to a spec.

    The spec is a sequence of ``(command, delay_ms, child_program)``
    tuples; each child is spawned after its delay.  This builds the
    arbitrary genealogies the PPM exists to manage.
    """

    def __init__(self, children: Sequence[Tuple[str, float, Program]],
                 duration_ms: Optional[float] = None,
                 exit_status: int = 0) -> None:
        self.children_spec = list(children)
        self._body = _TimedProgram(duration_ms, exit_status)
        self._spawn_timers: List = []

    def start(self, kernel, proc) -> None:
        self._body.start(kernel, proc)
        for command, delay_ms, child_program in self.children_spec:
            timer = kernel.sim.schedule(
                delay_ms, self._spawn_child, kernel, proc, command,
                child_program, owner=kernel.host_name,
                label="forktree spawn %s" % (command,))
            self._spawn_timers.append(timer)

    def _spawn_child(self, kernel, proc, command, child_program) -> None:
        if kernel.halted or not proc.alive:
            return
        kernel.spawn(proc.uid, command, ppid=proc.pid,
                     program=child_program, foreground=proc.foreground)

    def on_stop(self, kernel, proc) -> None:
        self._body.on_stop(kernel, proc)

    def on_continue(self, kernel, proc) -> None:
        self._body.on_continue(kernel, proc)

    def on_exit(self, kernel, proc) -> None:
        self._body.on_exit(kernel, proc)
        for timer in self._spawn_timers:
            kernel.sim.cancel(timer)
        self._spawn_timers.clear()

    def on_halt(self, kernel, proc) -> None:
        self._body.on_halt(kernel, proc)
        for timer in self._spawn_timers:
            kernel.sim.cancel(timer)
        self._spawn_timers.clear()
