"""A minimal simulated filesystem.

Only what the PPM needs from disk: home directories holding the
``.recovery`` file (the CCS priority list of section 5) and ``.rhosts``
(the 4.3BSD remote-access flexibility of section 4), plus the optional
stable-storage file of the process manager daemon.
"""

from __future__ import annotations

from typing import Dict, List, Optional


class SimFilesystem:
    """Path -> text content, per host."""

    def __init__(self) -> None:
        self._files: Dict[str, str] = {}
        #: Bumped on every mutation; caches keyed on filesystem content
        #: (the pmd auth cache) fold this into their incarnation key.
        self.version = 0

    def write(self, path: str, content: str) -> None:
        self._files[path] = content
        self.version += 1

    def read(self, path: str) -> Optional[str]:
        return self._files.get(path)

    def exists(self, path: str) -> bool:
        return path in self._files

    def remove(self, path: str) -> None:
        if self._files.pop(path, None) is not None:
            self.version += 1

    def paths(self) -> List[str]:
        return sorted(self._files)

    # ------------------------------------------------------------------
    # Home-directory conventions
    # ------------------------------------------------------------------

    @staticmethod
    def home_of(user: str) -> str:
        return "/usr/%s" % (user,)

    def write_recovery_file(self, user: str, hosts: List[str]) -> None:
        """``.recovery``: hosts in decreasing order of CCS priority."""
        self.write("%s/.recovery" % (self.home_of(user),),
                   "\n".join(hosts) + ("\n" if hosts else ""))

    def read_recovery_file(self, user: str) -> List[str]:
        content = self.read("%s/.recovery" % (self.home_of(user),))
        if content is None:
            return []
        return [line.strip() for line in content.splitlines()
                if line.strip() and not line.lstrip().startswith("#")]

    def write_rhosts(self, user: str, entries: List[str]) -> None:
        """``.rhosts``: one ``host user`` (or just ``host``) per line."""
        self.write("%s/.rhosts" % (self.home_of(user),),
                   "\n".join(entries) + ("\n" if entries else ""))

    def read_rhosts(self, user: str) -> List[str]:
        content = self.read("%s/.rhosts" % (self.home_of(user),))
        if content is None:
            return []
        return [line.strip() for line in content.splitlines()
                if line.strip()]
