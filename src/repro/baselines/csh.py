"""The C-shell job-control baseline.

A csh job is the set of the shell's *direct children* on the shell's
*own host*; ``stop``/``kill`` on a job signals exactly those processes.
Grandchildren, processes created remotely, and anything adopted later
are invisible — "well suited to the typical multiple-process program in
UNIX, the pipeline of processes", and nothing more (section 1).
"""

from __future__ import annotations

from typing import List, Tuple

from ..errors import NoSuchProcessError, ProcessPermissionError
from ..unixsim.process import ProcState, Process
from ..unixsim.signals import Signal


class CshJobControl:
    """A login shell with classic job control on one host."""

    def __init__(self, host, user: str) -> None:
        self.host = host
        self.user = user
        self.uid = host.uid_of(user)
        self.shell = host.kernel.spawn(self.uid, "csh",
                                       state=ProcState.SLEEPING)
        #: job number -> list of direct-child pids (a pipeline).
        self.jobs: dict = {}
        self._next_job = 1

    # ------------------------------------------------------------------
    # Job creation
    # ------------------------------------------------------------------

    def run_pipeline(self, commands: List[Tuple[str, object]],
                     foreground: bool = True) -> int:
        """Start a pipeline: one direct child per stage.  Returns the
        job number."""
        pids = []
        for command, program in commands:
            proc = self.host.kernel.spawn(self.uid, command,
                                          ppid=self.shell.pid,
                                          program=program,
                                          foreground=foreground)
            pids.append(proc.pid)
        job = self._next_job
        self._next_job += 1
        self.jobs[job] = pids
        return job

    # ------------------------------------------------------------------
    # Job control: direct children only
    # ------------------------------------------------------------------

    def _signal_job(self, job: int, signal: Signal) -> List[int]:
        """Deliver a signal to the job's pipeline members.  This is all
        csh can reach: the shell's own children, on this host."""
        signalled = []
        for pid in self.jobs.get(job, []):
            try:
                self.host.kernel.kill(pid, signal, sender_uid=self.uid)
            except (NoSuchProcessError, ProcessPermissionError):
                continue
            signalled.append(pid)
        return signalled

    def stop(self, job: int) -> List[int]:
        return self._signal_job(job, Signal.SIGSTOP)

    def cont(self, job: int) -> List[int]:
        return self._signal_job(job, Signal.SIGCONT)

    def kill(self, job: int) -> List[int]:
        return self._signal_job(job, Signal.SIGKILL)

    # ------------------------------------------------------------------
    # What the shell can see (for the coverage comparison)
    # ------------------------------------------------------------------

    def visible_processes(self) -> List[Process]:
        """The shell's direct, local children — its whole world."""
        return [proc for proc
                in self.host.kernel.procs.children_of(self.shell.pid)
                if proc.alive]

    def coverage_of(self, all_pids: List[Tuple[str, int]]) -> float:
        """Fraction of a computation's processes this shell could
        signal: direct local children only."""
        if not all_pids:
            return 1.0
        reachable = {(self.host.name, proc.pid)
                     for proc in self.visible_processes()}
        direct = {pid for job in self.jobs.values() for pid in job}
        reachable |= {(self.host.name, pid) for pid in direct
                      if self.host.kernel.procs.find(pid) is not None
                      and self.host.kernel.procs.find(pid).alive}
        return len(reachable & set(all_pids)) / len(all_pids)
