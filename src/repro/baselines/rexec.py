"""The 4.2BSD rexec baseline.

"Rexec allows the creation of remote processes and the delivery of
signals to these processes.  By itself, however, it is insufficient for
starting distributed computations since no provision is made for
flexibly configuring the communication links and open files of the
remote process, or for separately signalling any children of the remote
process.  Moreover, since the rexec call is made directly from a user
process to a remote daemon, the shell's process control facilities do
not affect the remote processes.  Remote processes must therefore be
explicitly hunted for and signalled." (section 6)

Faithfully modelled: a per-host ``rexecd`` authenticating every call
with the user's *password* (no trusted introduction), a fresh
connection per operation (nothing is maintained between calls), signals
addressed only to the pid the caller created (children unreachable),
and no notion of computation state whatsoever.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.progspec import build_program
from ..errors import NoSuchProcessError, PPMError, ProcessPermissionError
from ..ids import GlobalPid
from ..netsim.stream import StreamConnection
from ..unixsim.process import ProcState
from ..unixsim.signals import Signal
from ..util import Deferred

REXEC_SERVICE = "rexecd"


class RexecDaemon:
    """Per-host remote-execution daemon."""

    def __init__(self, host) -> None:
        self.host = host
        self.proc = host.kernel.spawn(0, "rexecd",
                                      state=ProcState.SLEEPING)
        host.node.listen(REXEC_SERVICE, self._accept)
        self.requests = 0

    def _accept(self, endpoint, payload) -> None:
        endpoint.on_message = self._on_message
        if isinstance(payload, dict) and payload.get("request"):
            self._serve(endpoint, payload)

    def _on_message(self, payload, endpoint) -> None:
        if isinstance(payload, dict) and payload.get("request"):
            self._serve(endpoint, payload)

    def _serve(self, endpoint, payload: dict) -> None:
        self.requests += 1
        # A real rexecd waits on its children; reap zombies first.
        self.host.kernel.reap(self.proc.pid)
        # Password authentication on every call — rexec sends the
        # cleartext password each time.
        user = payload.get("user", "")
        if not self.host.users.check_password(user,
                                              payload.get("password", "")):
            self._reply(endpoint, {"ok": False,
                                   "error": "authentication failed"})
            return
        uid = self.host.uid_of(user)
        request = payload["request"]
        cost = self.host.cpu_cost(self.host.world.cost_model.fork_ms
                                  + self.host.world.cost_model.exec_ms) \
            if request == "exec" else \
            self.host.cpu_cost(self.host.world.cost_model.signal_ms)

        # Message processing at the daemon (unmarshalling, checks) costs
        # what any per-message protocol processing costs on this class
        # of machine.
        cost += self.host.cpu_cost(
            self.host.world.cost_model.sibling_recv_ms)

        def act() -> None:
            if not self.host.up:
                return
            if request == "exec":
                program = build_program(payload.get("program"))
                proc = self.host.kernel.spawn(
                    uid, payload.get("command", "a.out"),
                    ppid=self.proc.pid, program=program)
                self._reply(endpoint, {"ok": True, "pid": proc.pid})
            elif request == "signal":
                try:
                    self.host.kernel.kill(payload["pid"],
                                          Signal(payload["signal"]),
                                          sender_uid=uid)
                except (NoSuchProcessError, ProcessPermissionError) as exc:
                    self._reply(endpoint, {"ok": False,
                                           "error": str(exc)})
                    return
                self._reply(endpoint, {"ok": True})
            else:
                self._reply(endpoint, {"ok": False,
                                       "error": "bad request"})

        self.host.sim.schedule(cost, act, owner=self.host.name,
                               label="rexecd %s" % (request,))

    def _reply(self, endpoint, payload: dict) -> None:
        if endpoint.open:
            endpoint.send(payload, nbytes=128,
                          extra_delay_ms=self.host.cpu_cost(
                              self.host.world.cost_model.sibling_send_ms))


def install_rexecd(world) -> None:
    """Start an rexecd on every host."""
    for host in world.hosts.values():
        RexecDaemon(host)


class RexecClient:
    """A user program issuing rexec calls.

    Every call opens a fresh connection, authenticates with the
    password, performs one operation, and closes — the cost structure
    the PPM's maintained, once-authenticated channels eliminate.
    """

    def __init__(self, world, user: str, password: str,
                 home_host: str) -> None:
        self.world = world
        self.user = user
        self.password = password
        self.home_host = home_host
        #: Remote pids this client created — all it can ever signal.
        self.created: List[GlobalPid] = []

    def _call(self, host: str, request: dict,
              timeout_ms: float = 60_000.0) -> dict:
        done = Deferred()

        def established(endpoint) -> None:
            endpoint.on_message = lambda payload, ep: (done.resolve(payload),
                                                       ep.close())

        request = dict(request)
        request.setdefault("user", self.user)
        request.setdefault("password", self.password)
        StreamConnection.connect(
            self.world.network, self.home_host, host, REXEC_SERVICE,
            payload=request,
            setup_ms=self.world.cost_model.connect_ms,
            on_established=established,
            on_failed=lambda reason: done.resolve({"ok": False,
                                                   "error": reason}))
        if not self.world.run_until_true(lambda: done.resolved,
                                         timeout_ms=timeout_ms):
            raise PPMError("rexec call to %s timed out" % (host,))
        return done.value

    def rexec(self, host: str, command: str,
              program: Optional[dict] = None) -> GlobalPid:
        """Create one remote process."""
        reply = self._call(host, {"request": "exec", "command": command,
                                  "program": program})
        if not reply.get("ok"):
            raise PPMError("rexec failed: %s" % (reply.get("error"),))
        gpid = GlobalPid(host, reply["pid"])
        self.created.append(gpid)
        return gpid

    def signal(self, gpid: GlobalPid, signal: Signal) -> bool:
        """Signal one process the caller knows by pid."""
        reply = self._call(gpid.host, {"request": "signal",
                                       "pid": gpid.pid,
                                       "signal": int(signal)})
        return bool(reply.get("ok"))

    def kill_everything_i_know(self) -> List[GlobalPid]:
        """The hunt: signal every pid this client ever created.
        Descendants of those processes are beyond reach."""
        killed = []
        for gpid in self.created:
            if self.signal(gpid, Signal.SIGKILL):
                killed.append(gpid)
        return killed
