"""Baseline mechanisms the paper measures the PPM against.

Section 1: "Controlling a pipeline requires only the ability to control
the shell's direct children, which is all that is provided in the UNIX
C-shell" — :mod:`repro.baselines.csh`.

Section 6: "we learned from the limitations of the rexec facility
present in 4.2BSD ... since the rexec call is made directly from a user
process to a remote daemon, the shell's process control facilities do
not affect the remote processes.  Remote processes must therefore be
explicitly hunted for and signalled" — :mod:`repro.baselines.rexec`.

Both run against the same simulated substrate as the PPM, so the
comparison benchmarks measure exactly the gap the paper claims the PPM
closes: control coverage over arbitrary genealogies, and the cost of
per-operation connections versus maintained channels.
"""

from .csh import CshJobControl
from .rexec import RexecClient, RexecDaemon, install_rexecd

__all__ = [
    "CshJobControl",
    "RexecClient",
    "RexecDaemon",
    "install_rexecd",
]
