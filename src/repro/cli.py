"""Command-line entry point: ``python -m repro``.

Subcommands:

* ``demo``  — build a small simulated network, run a representative
  session, and print the tool output (a self-contained tour).
* ``shell`` — the same world, but interactive: drive the PPM through
  the :class:`repro.core.shell.PPMShell` command interpreter.
* ``stats`` — run the demo session with span tracing enabled and
  pretty-print ``PPM.perf_stats()``: the hot-path counters plus the
  per-operation-class latency percentiles (and any operational
  trigger alerts the session raised).
* ``trace`` — the same session, exported as Chrome trace-event JSON
  (load the file at https://ui.perfetto.dev).
* ``shards`` — run the lockstep-shard demo and verify K-shard
  execution is byte-identical to the single-threaded run.
* ``serve`` — become one *real* PPM host: an asyncio TCP listener in
  this OS process (the realnet backend; see ``docs/BACKENDS.md``).
* ``run-real`` — launch N serve processes and drive the demo session
  over real sockets with the same client code the simulator uses.
* ``doctor`` — health-check a deployment and exit non-zero when it is
  sick: the netsim demo world by default, or a live serve fleet with
  ``--registry`` (see ``docs/OPERATIONS.md``).
* ``watch`` — the doctor, continuously: sweep the deployment on an
  interval, print and journal onset/clear edges between sweeps, and
  exit with the first still-open incident's code (both backends).
* ``incidents`` — render a watch journal back into a timeline plus
  per-check MTTR.
* ``version`` — print the package version.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import __version__
from .core.ppm import PersonalProcessManager
from .core.shell import PPMShell
from .latency import HostClass
from .unixsim.world import World


def build_demo_world(seed: int = 1, trace: bool = False):
    """The standard demo network: three hosts, one user.

    ``trace`` attaches a span tracer before the session starts so the
    bootstrap traffic is captured too.
    """
    world = World(seed=seed)
    world.add_host("ucbvax", HostClass.VAX_780)
    world.add_host("ucbarpa", HostClass.VAX_750)
    world.add_host("ucbernie", HostClass.SUN_2)
    world.ethernet()
    world.add_user("lfc", uid=1001)
    ppm = PersonalProcessManager(world, "lfc", "ucbvax",
                                 recovery_hosts=["ucbvax", "ucbarpa"])
    if trace:
        ppm.enable_span_tracing()
    ppm.start()
    return world, ppm


def cmd_demo(args) -> int:
    world, ppm = build_demo_world(seed=args.seed)
    shell = PPMShell(ppm)
    script = [
        "create ucbvax coordinator spinner",
        "create ucbarpa solver spinner",
        "create ucbernie solver spinner",
        "create ucbarpa preprocessor worker:2500",
        "snapshot",
        "stop <ucbernie,5>",
        "snapshot",
        "session",
        "rstats",
    ]
    # Let the worker finish before rstats.
    for line in script:
        if line == "rstats":
            world.run_for(5_000.0)
        print("ppm> %s" % line)
        output = shell.execute(line)
        if output:
            print(output)
        print()
    return 0


def cmd_shell(args) -> int:
    world, ppm = build_demo_world(seed=args.seed)
    shell = PPMShell(ppm)
    print("PPM interactive shell (simulated network: ucbvax, ucbarpa, "
          "ucbernie; user lfc)")
    print("type 'help' for commands, 'quit' to exit, "
          "'run <ms>' to advance simulated time\n")
    stream = args.input if args.input is not None else sys.stdin
    while True:
        print("ppm> ", end="", flush=True)
        line = stream.readline()
        if not line:
            break
        line = line.strip()
        if line in ("quit", "exit"):
            break
        if line.startswith("run "):
            try:
                duration = float(line.split()[1])
            except (IndexError, ValueError):
                print("usage: run <ms>")
                continue
            world.run_for(duration)
            print("advanced to %.1f ms" % (world.now_ms,))
            continue
        output = shell.execute(line)
        if output:
            print(output)
    return 0


def _run_traced_session(seed: int, baseline=None):
    """The ``demo`` script's workload with span tracing on; returns
    ``(world, ppm, alerts)`` with the session's spans and histograms
    collected and the standard operational triggers armed (``alerts``
    is their shared alert log — see :mod:`repro.ops.triggers`)."""
    from .ops import install_ops_triggers
    from .perf import PERF
    from .tracing.triggers import TriggerEngine
    PERF.reset()
    world, ppm = build_demo_world(seed=seed, trace=True)
    lpm = world.lpms[("ucbvax", "lfc")]
    engine = TriggerEngine(world.recorder)
    alerts = install_ops_triggers(
        engine,
        summary_fn=world.sim.tracer.latency_summary,
        baseline=baseline,
        dedup_size_fn=lpm.broadcast.seen_count)
    coordinator = ppm.create_process("coordinator", host="ucbvax")
    ppm.create_process("solver", host="ucbarpa", parent=coordinator)
    remote = ppm.create_process("solver", host="ucbernie",
                                parent=coordinator)
    ppm.snapshot()
    ppm.rstats_report()
    # Exercise the broadcast path too: a LOCATE flood over the sibling
    # graph (the demo's direct links mean tool requests never need one).
    lpm.locate(remote.host, remote.pid, lambda reply: None)
    world.run_for(2_000.0)
    ppm.snapshot()
    return world, ppm, alerts


def cmd_stats(args) -> int:
    world, ppm, alerts = _run_traced_session(args.seed)
    stats = ppm.perf_stats()
    latency = stats.pop("latency_ms", {})
    from .util import format_table

    counter_rows = [[name, "%d" % value]
                    for name, value in sorted(stats.items())
                    if isinstance(value, int) and value]
    counter_rows += [[name, "%.3f" % stats[name]]
                     for name in ("sim_now_ms",) if name in stats]
    print(format_table(["counter", "value"], counter_rows,
                       title="perf counters (demo session, traced)"))
    print()

    def cell(value):
        return "-" if value is None else "%.3f" % value

    latency_rows = [[op,
                     "%d" % block["count"], cell(block["mean_ms"]),
                     cell(block["p50_ms"]), cell(block["p95_ms"]),
                     cell(block["p99_ms"]), cell(block["max_ms"])]
                    for op, block in sorted(latency.items())]
    print(format_table(
        ["operation", "count", "mean_ms", "p50_ms", "p95_ms", "p99_ms",
         "max_ms"],
        latency_rows, title="latency histograms (simulated ms)"))
    print()
    if alerts:
        alert_rows = [[alert.name, "%.3f" % alert.time_ms, alert.detail]
                      for alert in alerts]
        print(format_table(["trigger", "time_ms", "detail"], alert_rows,
                           title="operational alerts"))
    else:
        print("operational alerts: none "
              "(standard ops triggers were armed; see repro doctor)")
    return 0


def cmd_trace(args) -> int:
    from .perf.chrometrace import write_chrome_trace
    world, ppm, alerts = _run_traced_session(args.seed)
    tracer = world.sim.tracer
    count = write_chrome_trace(tracer, args.out)
    print("wrote %d trace events (%d spans, %d dropped) to %s"
          % (count, len(tracer.spans), tracer.dropped, args.out))
    print("open https://ui.perfetto.dev and load the file "
          "(one process row per simulated host)")
    return 0


def cmd_shards(args) -> int:
    """Run the lockstep-shard demo scenario and check K-shard output
    against the single-threaded run."""
    from .netsim.parallel import demo_scenario, identity_diff, run_scenario

    print("running demo scenario single-threaded ...")
    local = run_scenario(demo_scenario, shards=1)
    print("  sim_ms=%.3f messages=%d wall=%.3fs"
          % (local.result["sim_ms"], local.result["messages"],
             local.measure["wall_s"]))
    print("running demo scenario on %d lockstep shards ..." % args.shards)
    sharded = run_scenario(demo_scenario, shards=args.shards)
    print("  sim_ms=%.3f messages=%d wall=%.3fs "
          "(%d barrier rounds, %d cross-shard ships)"
          % (sharded.result["sim_ms"], sharded.result["messages"],
             sharded.measure["wall_s"], sharded.barrier_rounds,
             sharded.ships))
    diffs = identity_diff(local, sharded)
    if diffs:
        for diff in diffs:
            print("DIVERGED: %s" % diff)
        return 1
    print("byte-identical: results and merged counters match the "
          "single-threaded run")
    return 0


def cmd_serve(args) -> int:
    """Run one real PPM host in this OS process (realnet backend)."""
    from .realnet.serve import serve_host
    return serve_host(args.host, args.registry,
                      bind_address=args.bind, budget_s=args.budget_s,
                      trace_spans=args.trace_spans)


def cmd_run_real(args) -> int:
    """Stand up N real serve processes and run the demo session over
    real TCP — the same client calls the simulator demo makes."""
    from .perf import PERF
    from .realnet.session import RealSession, launch_hosts

    hosts = ["host%d" % i for i in range(args.hosts)]
    PERF.reset()
    print("launching %d serve processes (budget %.0fs each) ..."
          % (len(hosts), args.budget_s))
    with launch_hosts(hosts, budget_s=args.budget_s) as fleet:
        with RealSession(fleet.registry_path, user="lfc",
                         host_name=hosts[0]) as session:
            if args.trace_spans:
                session.fabric.enable_span_tracing()
            client = session.client.connect()
            info = client.session_info()
            print("connected: lpm on %s for %s"
                  % (info["host"], info["user"]))
            local = client.create_process("coordinator")
            print("created %s (real pid %d on %s)"
                  % (local, local.pid, local.host))
            remote = client.create_process("solver", host=hosts[-1],
                                           parent=local)
            print("created %s across the machine boundary" % (remote,))
            print("locate %s -> %s" % (remote, client.locate(remote)))
            print("stop/continue %s -> state %s"
                  % (remote, client.cont(remote)["state"]))
            forest = client.snapshot(prune=False)
            print("snapshot: %d records from %d hosts%s"
                  % (len(forest.records),
                     len({g.host for g in forest.records}),
                     (", missing %s" % sorted(forest.missing_hosts))
                     if forest.missing_hosts else ""))
            for gpid in (remote, local):
                client.kill(gpid)
            client.close()
    print("teardown complete")
    print("perf: %d connects, %d frames sent, %d frames received, "
          "%d partial reads"
          % (PERF.real_connects, PERF.real_frames_sent,
             PERF.real_frames_received, PERF.real_partial_reads))
    return 0


def cmd_doctor(args) -> int:
    """Health-check a deployment; exit 0 healthy, else the exit code
    of the first failing check in triage order (docs/OPERATIONS.md)."""
    import json

    from .ops import (load_baseline, probe_fleet, probe_world,
                      run_doctor, write_baseline)

    baseline = load_baseline(args.baseline) if args.baseline else None
    if args.registry:
        view = probe_fleet(args.registry,
                           expected_hosts=args.hosts or None,
                           timeout_ms=args.timeout_ms)
    else:
        world, ppm, alerts = _run_traced_session(args.seed,
                                                 baseline=baseline)
        if args.inject == "dead-host":
            # Break the world on purpose (CI uses this to prove the
            # doctor notices): crash a host, then run long enough for
            # the failure detector to record FAILURE_DETECTED.
            world.host("ucbernie").crash()
            world.run_for(10_000.0)
        view = probe_world(world, alerts=alerts)
    report = run_doctor(view, baseline=baseline)
    if args.write_baseline:
        p99s = write_baseline(args.write_baseline, view)
        print("wrote baseline (%d operation classes) to %s"
              % (len(p99s), args.write_baseline))
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    return report.exit_code


def _dead_host_drill(world, crash_at: int = 2, reboot_at: int = 5,
                     host: str = "ucbernie"):
    """Break and repair the demo world mid-watch (the CI self-test):
    crash a host after ``crash_at`` sweeps so the next sweep sees the
    onset, reboot it after ``reboot_at`` so a later sweep sees the
    clear."""
    def act(watcher) -> None:
        if watcher.sweeps == crash_at:
            world.host(host).crash()
            print("drill: crashed %s" % host)
        elif watcher.sweeps == reboot_at:
            world.host(host).reboot()
            print("drill: rebooted %s" % host)
    return act


def cmd_watch(args) -> int:
    """Run the continuous watch loop (docs/OPERATIONS.md, "Continuous
    watch"): netsim demo world by default, live fleet with
    --registry.  Exits 0 when every watched check is healthy at the
    end, else with the first open incident's triage code."""
    from .ops import (EXIT_CODES, IncidentJournal, load_baseline,
                      watch_fleet, watch_world)
    from .perf import MetricsSampler

    journal = IncidentJournal(args.journal)
    sampler = MetricsSampler()
    baseline = load_baseline(args.baseline) if args.baseline else None
    checks = args.checks or None

    def narrate(watcher, report, edges) -> None:
        for edge in edges:
            tail = "-> %s" % edge.runbook if edge.edge == "onset" \
                else "recovered in %.1f ms" % edge.duration_ms
            print("[%10.1f ms] %-5s %s (%s) exit %d %s"
                  % (edge.t_ms, edge.edge.upper(), edge.check,
                     ",".join(edge.entities) or "-", edge.exit_code,
                     tail))

    if args.registry:
        print("watching realnet fleet via %s: every %.0f ms, "
              "%d sweeps" % (args.registry, args.interval_ms,
                             args.max_sweeps))
        watcher = watch_fleet(
            args.registry, interval_ms=args.interval_ms,
            max_sweeps=args.max_sweeps,
            expected_hosts=args.hosts or None,
            timeout_ms=args.timeout_ms, journal=journal,
            checks=checks, sampler=sampler, baseline=baseline,
            on_sweep=narrate)
    else:
        world, ppm, alerts = _run_traced_session(args.seed,
                                                 baseline=baseline)
        drill = _dead_host_drill(world) \
            if args.inject == "dead-host" else None
        print("watching netsim demo world (seed %d): every %.0f "
              "virtual ms, %d sweeps" % (args.seed, args.interval_ms,
                                         args.max_sweeps))

        def on_sweep(watcher, report, edges) -> None:
            narrate(watcher, report, edges)
            if drill is not None:
                drill(watcher)

        watcher = watch_world(
            world, interval_ms=args.interval_ms,
            max_sweeps=args.max_sweeps, journal=journal,
            checks=checks, sampler=sampler, alerts=alerts,
            baseline=baseline, on_sweep=on_sweep)

    open_incidents = watcher.open_incidents()
    print("watch complete: %d sweeps, %d edges, %d open incident(s)"
          % (watcher.sweeps, len(watcher.edges), len(open_incidents)))
    if args.journal:
        print("journal: %s (%d records)"
              % (args.journal, len(journal.records)))
    for check in watcher.check_roster():
        if check in open_incidents:
            return EXIT_CODES[check]
    return 0


def cmd_incidents(args) -> int:
    """Render a watch journal: incident timeline plus MTTR per check."""
    import json

    from .ops import mttr_by_check, read_journal, render_incidents

    records = read_journal(args.journal)
    if args.json:
        print(json.dumps({"records": records,
                          "mttr": mttr_by_check(records)},
                         indent=2, sort_keys=True))
    else:
        print(render_incidents(records))
    return 0


def cmd_version(args) -> int:
    print("repro %s — Berkeley PPM reproduction (ICDCS 1986)"
          % (__version__,))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of the Berkeley Personal Process "
                    "Manager (Cabrera, Sechrest, Cáceres; ICDCS 1986).")
    sub = parser.add_subparsers(dest="command")

    demo = sub.add_parser("demo", help="run a scripted demo session")
    demo.add_argument("--seed", type=int, default=1)
    demo.set_defaults(fn=cmd_demo)

    shell = sub.add_parser("shell", help="interactive PPM shell")
    shell.add_argument("--seed", type=int, default=1)
    shell.set_defaults(fn=cmd_shell, input=None)

    stats = sub.add_parser(
        "stats", help="run a traced demo session and print perf stats")
    stats.add_argument("--seed", type=int, default=1)
    stats.set_defaults(fn=cmd_stats)

    trace = sub.add_parser(
        "trace", help="run a traced demo session and export Chrome "
                      "trace-event JSON")
    trace.add_argument("--seed", type=int, default=1)
    trace.add_argument("--out", default="trace.json",
                       help="output path (default: trace.json)")
    trace.set_defaults(fn=cmd_trace)

    shards = sub.add_parser(
        "shards", help="run the lockstep-shard demo and verify K-shard "
                       "execution is byte-identical to single-threaded")
    shards.add_argument("--shards", type=int, default=2,
                        help="number of worker processes (default: 2)")
    shards.set_defaults(fn=cmd_shards)

    serve = sub.add_parser(
        "serve", help="run one real PPM host process (asyncio TCP "
                      "backend)")
    serve.add_argument("--host", required=True,
                       help="overlay host name to serve")
    serve.add_argument("--registry", required=True,
                       help="shared host-registry file")
    serve.add_argument("--bind", default="127.0.0.1",
                       help="address to bind (default 127.0.0.1)")
    serve.add_argument("--budget-s", type=float, default=None,
                       help="exit after this many wall seconds")
    serve.add_argument("--trace-spans", action="store_true",
                       help="enable span tracing in this process")
    serve.set_defaults(fn=cmd_serve)

    run_real = sub.add_parser(
        "run-real", help="launch N real host processes and run the "
                         "demo session over real TCP")
    run_real.add_argument("--hosts", type=int, default=3,
                          help="number of serve processes (default: 3)")
    run_real.add_argument("--budget-s", type=float, default=60.0,
                          help="wall-clock budget per serve process")
    run_real.add_argument("--trace-spans", action="store_true",
                          help="trace client-side spans")
    run_real.set_defaults(fn=cmd_run_real)

    doctor = sub.add_parser(
        "doctor", help="health-check a deployment: netsim demo world "
                       "by default, a live serve fleet with --registry")
    doctor.add_argument("--seed", type=int, default=1)
    doctor.add_argument("--inject", choices=["dead-host"], default=None,
                        help="netsim only: break the world before "
                             "checking (CI self-test)")
    doctor.add_argument("--registry", default=None,
                        help="probe the live fleet sharing this "
                             "registry file instead of netsim")
    doctor.add_argument("--hosts", nargs="*", default=None,
                        help="expected fleet roster (catches hosts "
                             "that never published)")
    doctor.add_argument("--timeout-ms", type=float, default=3000.0,
                        dest="timeout_ms",
                        help="per-host probe timeout (realnet mode)")
    doctor.add_argument("--baseline", default=None,
                        help="JSON p99 baseline for the latency SLO "
                             "check (see --write-baseline)")
    doctor.add_argument("--write-baseline", default=None,
                        dest="write_baseline",
                        help="record this run's p99s as the baseline")
    doctor.add_argument("--json", action="store_true",
                        help="emit the report as JSON")
    doctor.set_defaults(fn=cmd_doctor)

    watch = sub.add_parser(
        "watch", help="run the doctor continuously: sweep on an "
                      "interval, journal onset/clear edges")
    watch.add_argument("--seed", type=int, default=1)
    watch.add_argument("--interval-ms", type=float, default=1000.0,
                       dest="interval_ms",
                       help="sweep interval: virtual ms on netsim, "
                            "wall ms on realnet (default 1000)")
    watch.add_argument("--max-sweeps", type=int, default=8,
                       dest="max_sweeps",
                       help="stop after this many sweeps (default 8)")
    watch.add_argument("--journal", default=None,
                       help="append incident records (JSONL) here; "
                            "render later with `repro incidents`")
    watch.add_argument("--checks", nargs="*", default=None,
                       help="watch only these checks (default: all)")
    watch.add_argument("--inject", choices=["dead-host"], default=None,
                       help="netsim only: crash ucbernie mid-watch "
                            "and reboot it later (CI self-test)")
    watch.add_argument("--registry", default=None,
                       help="watch the live fleet sharing this "
                            "registry file instead of netsim")
    watch.add_argument("--hosts", nargs="*", default=None,
                       help="expected fleet roster (realnet mode)")
    watch.add_argument("--timeout-ms", type=float, default=3000.0,
                       dest="timeout_ms",
                       help="per-host probe timeout (realnet mode)")
    watch.add_argument("--baseline", default=None,
                       help="JSON p99 baseline for the latency SLO "
                            "check")
    watch.set_defaults(fn=cmd_watch)

    incidents = sub.add_parser(
        "incidents", help="render a watch journal: timeline + MTTR "
                          "per check")
    incidents.add_argument("journal", help="JSONL journal written by "
                                           "`repro watch --journal`")
    incidents.add_argument("--json", action="store_true",
                           help="emit records and MTTR stats as JSON")
    incidents.set_defaults(fn=cmd_incidents)

    version = sub.add_parser("version", help="print the version")
    version.set_defaults(fn=cmd_version)

    args = parser.parse_args(argv)
    if not getattr(args, "fn", None):
        parser.print_help()
        return 2
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
