"""Command-line entry point: ``python -m repro``.

Five subcommands:

* ``demo``  — build a small simulated network, run a representative
  session, and print the tool output (a self-contained tour).
* ``shell`` — the same world, but interactive: drive the PPM through
  the :class:`repro.core.shell.PPMShell` command interpreter.
* ``stats`` — run the demo session with span tracing enabled and
  pretty-print ``PPM.perf_stats()``: the hot-path counters plus the
  per-operation-class latency percentiles.
* ``trace`` — the same session, exported as Chrome trace-event JSON
  (load the file at https://ui.perfetto.dev).
* ``version`` — print the package version.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import __version__
from .core.ppm import PersonalProcessManager
from .core.shell import PPMShell
from .netsim.latency import HostClass
from .unixsim.world import World


def build_demo_world(seed: int = 1, trace: bool = False):
    """The standard demo network: three hosts, one user.

    ``trace`` attaches a span tracer before the session starts so the
    bootstrap traffic is captured too.
    """
    world = World(seed=seed)
    world.add_host("ucbvax", HostClass.VAX_780)
    world.add_host("ucbarpa", HostClass.VAX_750)
    world.add_host("ucbernie", HostClass.SUN_2)
    world.ethernet()
    world.add_user("lfc", uid=1001)
    ppm = PersonalProcessManager(world, "lfc", "ucbvax",
                                 recovery_hosts=["ucbvax", "ucbarpa"])
    if trace:
        ppm.enable_span_tracing()
    ppm.start()
    return world, ppm


def cmd_demo(args) -> int:
    world, ppm = build_demo_world(seed=args.seed)
    shell = PPMShell(ppm)
    script = [
        "create ucbvax coordinator spinner",
        "create ucbarpa solver spinner",
        "create ucbernie solver spinner",
        "create ucbarpa preprocessor worker:2500",
        "snapshot",
        "stop <ucbernie,5>",
        "snapshot",
        "session",
        "rstats",
    ]
    # Let the worker finish before rstats.
    for line in script:
        if line == "rstats":
            world.run_for(5_000.0)
        print("ppm> %s" % line)
        output = shell.execute(line)
        if output:
            print(output)
        print()
    return 0


def cmd_shell(args) -> int:
    world, ppm = build_demo_world(seed=args.seed)
    shell = PPMShell(ppm)
    print("PPM interactive shell (simulated network: ucbvax, ucbarpa, "
          "ucbernie; user lfc)")
    print("type 'help' for commands, 'quit' to exit, "
          "'run <ms>' to advance simulated time\n")
    stream = args.input if args.input is not None else sys.stdin
    while True:
        print("ppm> ", end="", flush=True)
        line = stream.readline()
        if not line:
            break
        line = line.strip()
        if line in ("quit", "exit"):
            break
        if line.startswith("run "):
            try:
                duration = float(line.split()[1])
            except (IndexError, ValueError):
                print("usage: run <ms>")
                continue
            world.run_for(duration)
            print("advanced to %.1f ms" % (world.now_ms,))
            continue
        output = shell.execute(line)
        if output:
            print(output)
    return 0


def _run_traced_session(seed: int):
    """The ``demo`` script's workload with span tracing on; returns
    ``(world, ppm)`` with the session's spans and histograms collected."""
    from .perf import PERF
    PERF.reset()
    world, ppm = build_demo_world(seed=seed, trace=True)
    coordinator = ppm.create_process("coordinator", host="ucbvax")
    ppm.create_process("solver", host="ucbarpa", parent=coordinator)
    remote = ppm.create_process("solver", host="ucbernie",
                                parent=coordinator)
    ppm.snapshot()
    ppm.rstats_report()
    # Exercise the broadcast path too: a LOCATE flood over the sibling
    # graph (the demo's direct links mean tool requests never need one).
    lpm = world.lpms[("ucbvax", "lfc")]
    lpm.locate(remote.host, remote.pid, lambda reply: None)
    world.run_for(2_000.0)
    ppm.snapshot()
    return world, ppm


def cmd_stats(args) -> int:
    world, ppm = _run_traced_session(args.seed)
    stats = ppm.perf_stats()
    latency = stats.pop("latency_ms", {})
    from .util import format_table

    counter_rows = [[name, "%d" % value]
                    for name, value in sorted(stats.items())
                    if isinstance(value, int) and value]
    counter_rows += [[name, "%.3f" % stats[name]]
                     for name in ("sim_now_ms",) if name in stats]
    print(format_table(["counter", "value"], counter_rows,
                       title="perf counters (demo session, traced)"))
    print()

    def cell(value):
        return "-" if value is None else "%.3f" % value

    latency_rows = [[op,
                     "%d" % block["count"], cell(block["mean_ms"]),
                     cell(block["p50_ms"]), cell(block["p95_ms"]),
                     cell(block["p99_ms"]), cell(block["max_ms"])]
                    for op, block in sorted(latency.items())]
    print(format_table(
        ["operation", "count", "mean_ms", "p50_ms", "p95_ms", "p99_ms",
         "max_ms"],
        latency_rows, title="latency histograms (simulated ms)"))
    return 0


def cmd_trace(args) -> int:
    from .perf.chrometrace import write_chrome_trace
    world, ppm = _run_traced_session(args.seed)
    tracer = world.sim.tracer
    count = write_chrome_trace(tracer, args.out)
    print("wrote %d trace events (%d spans, %d dropped) to %s"
          % (count, len(tracer.spans), tracer.dropped, args.out))
    print("open https://ui.perfetto.dev and load the file "
          "(one process row per simulated host)")
    return 0


def cmd_shards(args) -> int:
    """Run the lockstep-shard demo scenario and check K-shard output
    against the single-threaded run."""
    from .netsim.parallel import demo_scenario, identity_diff, run_scenario

    print("running demo scenario single-threaded ...")
    local = run_scenario(demo_scenario, shards=1)
    print("  sim_ms=%.3f messages=%d wall=%.3fs"
          % (local.result["sim_ms"], local.result["messages"],
             local.measure["wall_s"]))
    print("running demo scenario on %d lockstep shards ..." % args.shards)
    sharded = run_scenario(demo_scenario, shards=args.shards)
    print("  sim_ms=%.3f messages=%d wall=%.3fs "
          "(%d barrier rounds, %d cross-shard ships)"
          % (sharded.result["sim_ms"], sharded.result["messages"],
             sharded.measure["wall_s"], sharded.barrier_rounds,
             sharded.ships))
    diffs = identity_diff(local, sharded)
    if diffs:
        for diff in diffs:
            print("DIVERGED: %s" % diff)
        return 1
    print("byte-identical: results and merged counters match the "
          "single-threaded run")
    return 0


def cmd_version(args) -> int:
    print("repro %s — Berkeley PPM reproduction (ICDCS 1986)"
          % (__version__,))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of the Berkeley Personal Process "
                    "Manager (Cabrera, Sechrest, Cáceres; ICDCS 1986).")
    sub = parser.add_subparsers(dest="command")

    demo = sub.add_parser("demo", help="run a scripted demo session")
    demo.add_argument("--seed", type=int, default=1)
    demo.set_defaults(fn=cmd_demo)

    shell = sub.add_parser("shell", help="interactive PPM shell")
    shell.add_argument("--seed", type=int, default=1)
    shell.set_defaults(fn=cmd_shell, input=None)

    stats = sub.add_parser(
        "stats", help="run a traced demo session and print perf stats")
    stats.add_argument("--seed", type=int, default=1)
    stats.set_defaults(fn=cmd_stats)

    trace = sub.add_parser(
        "trace", help="run a traced demo session and export Chrome "
                      "trace-event JSON")
    trace.add_argument("--seed", type=int, default=1)
    trace.add_argument("--out", default="trace.json",
                       help="output path (default: trace.json)")
    trace.set_defaults(fn=cmd_trace)

    shards = sub.add_parser(
        "shards", help="run the lockstep-shard demo and verify K-shard "
                       "execution is byte-identical to single-threaded")
    shards.add_argument("--shards", type=int, default=2,
                        help="number of worker processes (default: 2)")
    shards.set_defaults(fn=cmd_shards)

    version = sub.add_parser("version", help="print the version")
    version.set_defaults(fn=cmd_version)

    args = parser.parse_args(argv)
    if not getattr(args, "fn", None):
        parser.print_help()
        return 2
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
