"""Command-line entry point: ``python -m repro``.

Three subcommands:

* ``demo``  — build a small simulated network, run a representative
  session, and print the tool output (a self-contained tour).
* ``shell`` — the same world, but interactive: drive the PPM through
  the :class:`repro.core.shell.PPMShell` command interpreter.
* ``version`` — print the package version.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import __version__
from .core.ppm import PersonalProcessManager
from .core.shell import PPMShell
from .netsim.latency import HostClass
from .unixsim.world import World


def build_demo_world(seed: int = 1):
    """The standard demo network: three hosts, one user."""
    world = World(seed=seed)
    world.add_host("ucbvax", HostClass.VAX_780)
    world.add_host("ucbarpa", HostClass.VAX_750)
    world.add_host("ucbernie", HostClass.SUN_2)
    world.ethernet()
    world.add_user("lfc", uid=1001)
    ppm = PersonalProcessManager(world, "lfc", "ucbvax",
                                 recovery_hosts=["ucbvax", "ucbarpa"])
    ppm.start()
    return world, ppm


def cmd_demo(args) -> int:
    world, ppm = build_demo_world(seed=args.seed)
    shell = PPMShell(ppm)
    script = [
        "create ucbvax coordinator spinner",
        "create ucbarpa solver spinner",
        "create ucbernie solver spinner",
        "create ucbarpa preprocessor worker:2500",
        "snapshot",
        "stop <ucbernie,5>",
        "snapshot",
        "session",
        "rstats",
    ]
    # Let the worker finish before rstats.
    for line in script:
        if line == "rstats":
            world.run_for(5_000.0)
        print("ppm> %s" % line)
        output = shell.execute(line)
        if output:
            print(output)
        print()
    return 0


def cmd_shell(args) -> int:
    world, ppm = build_demo_world(seed=args.seed)
    shell = PPMShell(ppm)
    print("PPM interactive shell (simulated network: ucbvax, ucbarpa, "
          "ucbernie; user lfc)")
    print("type 'help' for commands, 'quit' to exit, "
          "'run <ms>' to advance simulated time\n")
    stream = args.input if args.input is not None else sys.stdin
    while True:
        print("ppm> ", end="", flush=True)
        line = stream.readline()
        if not line:
            break
        line = line.strip()
        if line in ("quit", "exit"):
            break
        if line.startswith("run "):
            try:
                duration = float(line.split()[1])
            except (IndexError, ValueError):
                print("usage: run <ms>")
                continue
            world.run_for(duration)
            print("advanced to %.1f ms" % (world.now_ms,))
            continue
        output = shell.execute(line)
        if output:
            print(output)
    return 0


def cmd_version(args) -> int:
    print("repro %s — Berkeley PPM reproduction (ICDCS 1986)"
          % (__version__,))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of the Berkeley Personal Process "
                    "Manager (Cabrera, Sechrest, Cáceres; ICDCS 1986).")
    sub = parser.add_subparsers(dest="command")

    demo = sub.add_parser("demo", help="run a scripted demo session")
    demo.add_argument("--seed", type=int, default=1)
    demo.set_defaults(fn=cmd_demo)

    shell = sub.add_parser("shell", help="interactive PPM shell")
    shell.add_argument("--seed", type=int, default=1)
    shell.set_defaults(fn=cmd_shell, input=None)

    version = sub.add_parser("version", help="print the version")
    version.set_defaults(fn=cmd_version)

    args = parser.parse_args(argv)
    if not getattr(args, "fn", None):
        parser.print_help()
        return 2
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
