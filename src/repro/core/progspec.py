"""Declarative program specifications.

Remote process creation sends *what to run* across the wire.  The PPM
cannot ship live Python objects, so tools describe programs as plain
dictionaries; the creating LPM builds the simulated program image with
:func:`build_program`.  This keeps the whole protocol serialisable
(checked by :mod:`repro.core.wire`).
"""

from __future__ import annotations

from typing import Optional

from ..errors import ReproError
from ..unixsim.programs import (
    FileWorkerProgram,
    ForkTreeProgram,
    Program,
    SleeperProgram,
    SpinnerProgram,
    WorkerProgram,
)


def spinner_spec(duration_ms: Optional[float] = None) -> dict:
    """A CPU burner; ``None`` runs forever."""
    return {"type": "spinner", "duration_ms": duration_ms}


def sleeper_spec(duration_ms: Optional[float] = None) -> dict:
    """A blocked process that never joins the run queue."""
    return {"type": "sleeper", "duration_ms": duration_ms}


def worker_spec(duration_ms: float, exit_status: int = 0) -> dict:
    """A short-lived job with an exit status."""
    return {"type": "worker", "duration_ms": duration_ms,
            "exit_status": exit_status}


def file_worker_spec(duration_ms: float, files, close_after_ms=(),
                     exit_status: int = 0) -> dict:
    """A job that opens the named files while it works.

    ``close_after_ms`` is a list of ``(path, delay_ms)`` pairs closed
    before exit; the rest close at exit.
    """
    return {"type": "file_worker", "duration_ms": duration_ms,
            "exit_status": exit_status, "files": list(files),
            "close_after_ms": [[path, delay] for path, delay
                               in close_after_ms]}


def fork_tree_spec(children, duration_ms: Optional[float] = None,
                   exit_status: int = 0) -> dict:
    """A process that forks a subtree.

    ``children`` is a list of ``(command, delay_ms, child_spec)`` tuples
    (child_spec may be None for a plain forever-spinner child).
    """
    return {"type": "fork_tree", "duration_ms": duration_ms,
            "exit_status": exit_status,
            "children": [[command, delay_ms, child_spec]
                         for command, delay_ms, child_spec in children]}


def build_program(spec: Optional[dict]) -> Optional[Program]:
    """Materialise a program image from its wire spec."""
    if spec is None:
        return None
    kind = spec.get("type")
    if kind == "spinner":
        return SpinnerProgram(spec.get("duration_ms"))
    if kind == "sleeper":
        return SleeperProgram(spec.get("duration_ms"))
    if kind == "worker":
        return WorkerProgram(spec["duration_ms"],
                             exit_status=spec.get("exit_status", 0))
    if kind == "file_worker":
        return FileWorkerProgram(
            spec["duration_ms"], spec.get("files", []),
            close_after_ms=[(path, delay) for path, delay
                            in spec.get("close_after_ms", [])],
            exit_status=spec.get("exit_status", 0))
    if kind == "fork_tree":
        children = [(command, delay_ms,
                     build_program(child_spec) if child_spec is not None
                     else SpinnerProgram(None))
                    for command, delay_ms, child_spec
                    in spec.get("children", [])]
        return ForkTreeProgram(children,
                               duration_ms=spec.get("duration_ms"),
                               exit_status=spec.get("exit_status", 0))
    raise ReproError("unknown program spec type %r" % (kind,))
