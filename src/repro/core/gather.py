"""The recursive gather: graph-covering record collection.

Snapshots and rstats both "gather": flood the sibling overlay (with the
section 4 signed-timestamp duplicate suppression), collect every LPM's
local records, and merge child replies on the way back up, assembling
per-host overlay paths that teach the originator routes to distant
hosts.

Merging is a k-way merge keyed on gpid: each LPM emits its local
records as a run sorted by ``(host, pid)``, child replies arrive as
already-sorted runs (inductively), and :func:`heapq.merge` combines
them in one linear pass — replacing the old concatenate-and-rewalk,
which re-traversed the whole accumulated list at every level of the
gather tree.  Record order inside the reply is immaterial to every
consumer (forests and rstats reports are keyed by gpid), and a JSON
list's encoded length is permutation-invariant, so the wire byte counts
— and therefore the simulator's timing — are unchanged.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional

from ..perf import PERF
from ..tracing.events import TraceEventType
from .messages import Message, MsgKind


def _record_key(record: dict):
    return (record["host"], record["pid"])


class GatherOp:
    """State of one in-progress recursive gather."""

    def __init__(self, what: str, reply_fn: Callable) -> None:
        self.what = what
        self.reply_fn = reply_fn
        #: This LPM's own records, one sorted run.
        self.local_run: List[dict] = []
        #: One sorted run per merged child reply.
        self.runs: List[List[dict]] = []
        #: host -> overlay path from here (self's entry inserted first).
        self.paths: dict = {}
        #: Children that never answered (timeout / refusal).
        self.missing: List[str] = []
        #: Hosts reported missing by children, in merge order.
        self.child_missing: List[str] = []
        self.outstanding = 0
        self.merges_pending = 0
        self.finished = False
        #: Open tracing span covering this gather level (None when span
        #: tracing is disabled).
        self.span = None

    @property
    def complete(self) -> bool:
        return self.outstanding == 0 and self.merges_pending == 0


class GatherEngine:
    """Gather state machine for one LPM.

    Uses the LPM's clock and CPU booking for the paper-calibrated
    collect/merge costs, its transport for the sibling fan-out, and its
    router to learn routes from the assembled paths.
    """

    def __init__(self, lpm) -> None:
        self.lpm = lpm

    def start(self, what: str,
              reply_fn: Callable[[dict], None],
              visited: Optional[List[str]] = None,
              broadcast=None, timeout_ms: Optional[float] = None,
              trace_parent=None) -> None:
        """Collect records from this LPM and, recursively, from every
        sibling not yet visited.  ``reply_fn`` receives a dict with
        ``records`` (sorted by gpid), ``paths`` (host -> overlay path
        from here) and ``missing`` (hosts that could not answer)."""
        lpm = self.lpm
        op = GatherOp(what, reply_fn)
        tracer = lpm.sim.tracer
        if tracer is not None:
            op.span = tracer.start("gather:%s" % what, host=lpm.name,
                                   parent=trace_parent, cat="gather")
        op.paths[lpm.name] = [lpm.name]
        if broadcast is None:
            broadcast = lpm.broadcast.stamp()
        visited = list(visited or [])
        if lpm.name not in visited:
            visited.append(lpm.name)
        targets = [peer for peer in lpm.transport.authenticated()
                   if peer not in visited]
        visited_for_children = visited + targets

        collect_cost = lpm._cpu(
            lpm.cost.snapshot_record_ms * max(len(lpm.records), 1))
        if timeout_ms is None:
            timeout_ms = lpm.config.request_timeout_ms

        def collected() -> None:
            op.local_run = lpm.local_records(what)
            op.outstanding = len(targets)
            if not targets:
                self._finish(op)
                return
            child_parent = None if op.span is None else op.span.ctx()
            for peer in targets:
                lpm.send_request(
                    peer, MsgKind.GATHER,
                    {"what": what, "visited": visited_for_children},
                    lambda reply, peer=peer: self._child_reply(
                        op, peer, reply),
                    timeout_ms=timeout_ms, broadcast=broadcast,
                    trace_parent=child_parent)

        lpm.sim.schedule(collect_cost, collected, owner=lpm.name,
                         label="gather collect %s" % (lpm.name,))

    def _child_reply(self, op: GatherOp, peer: str,
                     reply: Optional[Message]) -> None:
        if op.finished:
            return
        op.outstanding -= 1
        if reply is None or not reply.payload.get("ok", True):
            op.missing.append(peer)
        else:
            op.merges_pending += 1
            tracer = self.lpm.sim.tracer
            merge_span = None
            if tracer is not None and op.span is not None:
                merge_span = tracer.start("merge:%s" % peer,
                                          host=self.lpm.name,
                                          parent=op.span.ctx(),
                                          cat="gather")
            merge_cost = self.lpm._cpu_occupy(self.lpm.cost.snapshot_merge_ms)
            self.lpm.sim.schedule(merge_cost, self._merged, op,
                                  reply.payload, merge_span,
                                  owner=self.lpm.name,
                                  label="gather merge %s<-%s" % (
                                      self.lpm.name, peer))
            return
        if op.complete:
            self._finish(op)

    def _merged(self, op: GatherOp, payload: dict,
                merge_span=None) -> None:
        tracer = self.lpm.sim.tracer
        if merge_span is not None and tracer is not None:
            tracer.finish(merge_span,
                          records=len(payload.get("records", [])))
        if op.finished:
            return
        op.merges_pending -= 1
        op.runs.append(payload.get("records", []))
        for host, path in payload.get("paths", {}).items():
            op.paths.setdefault(host, [self.lpm.name] + list(path))
        op.child_missing.extend(payload.get("missing", []))
        if op.complete:
            self._finish(op)

    def _finish(self, op: GatherOp) -> None:
        if op.finished:
            return
        op.finished = True
        # One linear pass over all runs; each run is already sorted by
        # (host, pid), so the result is globally gpid-sorted.
        records = list(heapq.merge(op.local_run, *op.runs,
                                   key=_record_key))
        PERF.gather_merges += 1
        PERF.gather_records_merged += len(records)
        paths = op.paths
        missing = op.missing + op.child_missing
        # The assembled paths teach this LPM routes to distant hosts
        # (section 4: replies carry the source-destination route).
        for path in paths.values():
            self.lpm.router.learn_path(list(path))
        tracer = self.lpm.sim.tracer
        if op.span is not None and tracer is not None:
            tracer.finish(op.span, op="gather_complete",
                          records=len(records), missing=len(missing))
        op.reply_fn({"ok": True, "records": records, "paths": paths,
                     "missing": missing})

    def handle_gather(self, message: Message, from_host: str) -> None:
        """Server side: a sibling's GATHER arrived."""
        lpm = self.lpm
        tracer = lpm.sim.tracer
        # Duplicate-request suppression by signed timestamp (section 4).
        if not lpm.broadcast.should_accept(message.broadcast,
                                           hops=len(message.route)):
            if tracer is not None:
                tracer.instant("dedup:drop", host=lpm.name,
                               parent=message.trace, cat="broadcast",
                               origin=message.origin)
            lpm._trace(TraceEventType.BROADCAST_DUPLICATE,
                       origin=message.origin)
            reply = message.make_reply(MsgKind.GATHER_REPLY, lpm.name,
                                       {"ok": True, "records": [],
                                        "paths": {}, "missing": [],
                                        "duplicate": True})
            lpm.router.route_send(reply)
            return
        if tracer is not None:
            tracer.instant("dedup:accept", host=lpm.name,
                           parent=message.trace, cat="broadcast",
                           origin=message.origin)
        lpm.broadcast.forwards += 1
        lpm._trace(TraceEventType.BROADCAST_FORWARDED,
                   origin=message.origin)

        def finished(result: dict) -> None:
            reply = message.make_reply(MsgKind.GATHER_REPLY, lpm.name,
                                       result)
            lpm.router.route_send(reply)

        self.start(message.payload.get("what", "snapshot"),
                   finished,
                   visited=message.payload.get("visited", []),
                   broadcast=message.broadcast,
                   trace_parent=message.trace)
