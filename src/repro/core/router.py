"""Message forwarding and route maintenance over the LPM overlay.

Section 4: "All data returned to the originator of a broadcast request
includes the message's source-destination route.  This allows quick
routing of messages affecting processes in topologically distant
hosts."  This layer owns the :class:`~repro.core.routing.RouteCache`
and every decision about *which link* an addressed message leaves on:
relaying routed-through traffic at forwarding cost (Table 2's cheap
extra hop), sending replies back along their recorded route, learning
routes from reply routes and gather paths, and invalidating them when a
link is lost.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import ConnectionClosedError
from ..tracing.events import TraceEventType
from .expiry import ExpiryMap
from .messages import Message, MsgKind
from .routing import RouteCache


def ack_kind_for(kind: MsgKind) -> MsgKind:
    """The reply kind a request of ``kind`` is answered with."""
    return {
        MsgKind.CONTROL: MsgKind.CONTROL_ACK,
        MsgKind.CREATE: MsgKind.CREATE_ACK,
        MsgKind.GATHER: MsgKind.GATHER_REPLY,
        MsgKind.LOCATE: MsgKind.LOCATE_ACK,
        MsgKind.CCS_REPORT: MsgKind.CCS_ACK,
        MsgKind.CCS_PROBE: MsgKind.CCS_PROBE_ACK,
    }.get(kind, MsgKind.TOOL_REPLY)


class MessageRouter:
    """Forwarding and route-cache maintenance for one LPM."""

    def __init__(self, lpm) -> None:
        self.lpm = lpm
        self.cache = RouteCache(lpm.name)
        #: Negative LOCATE cache: ``(host, pid)`` lookups the overlay
        #: recently failed to answer, retained for the configured TTL
        #: so repeat lookups are refused locally instead of re-flooding.
        self.locate_misses = ExpiryMap(lpm.config.locate_miss_ttl_ms,
                                       lambda: lpm.sim.now_ms)

    # ------------------------------------------------------------------
    # Relaying
    # ------------------------------------------------------------------

    def forward(self, message: Message, arrived_from: str) -> None:
        """Relay a routed-through message one hop along its route, or
        report failure back toward the origin when no hop is open."""
        lpm = self.lpm
        route = message.route
        try:
            index = route.index(lpm.name)
            next_hop = route[index + 1]
        except (ValueError, IndexError):
            next_hop = None
        links = lpm.transport.links
        if next_hop is None or next_hop not in links or \
                not links[next_hop].endpoint.open:
            if next_hop is not None:
                # The route references a link we no longer have: drop
                # every cached route through that hop now, rather than
                # leaving them to fail the same way on the next send.
                self.invalidate_via(next_hop)
            # Cannot relay: report failure back toward the origin.
            if not message.is_reply:
                failure = message.make_reply(
                    ack_kind_for(message.kind), lpm.name,
                    {"ok": False, "error": "no route at %s" % (lpm.name,)})
                failure.route = list(reversed(route[:route.index(lpm.name) + 1])) \
                    if lpm.name in route else [lpm.name, arrived_from]
                failure.final_dest = message.origin
                self.route_send(failure)
            return
        tracer = lpm.sim.tracer
        if tracer is not None and message.trace is not None:
            tracer.instant("hop:%s" % message.kind.value, host=lpm.name,
                           parent=message.trace, cat="route",
                           next_hop=next_hop)
        try:
            lpm.transport.send_on_link(links[next_hop], message,
                                       forwarding=True)
        except ConnectionClosedError:
            pass

    def route_send(self, message: Message) -> None:
        """Send an already-addressed reply/notice along its route."""
        lpm = self.lpm
        next_hop = None
        route = message.route
        if lpm.name in route:
            index = route.index(lpm.name)
            if index + 1 < len(route):
                next_hop = route[index + 1]
        if next_hop is None:
            next_hop = message.final_dest
        link = lpm.transport.link_to(next_hop)
        if link is None:
            return
        try:
            lpm.transport.send_on_link(link, message)
        except ConnectionClosedError:
            pass

    # ------------------------------------------------------------------
    # Route learning and loss
    # ------------------------------------------------------------------

    def outbound_route(self, dest: str) -> Optional[List[str]]:
        """The route a fresh request to ``dest`` would take: the direct
        link when one is open, else the cached overlay route."""
        lpm = self.lpm
        if lpm.transport.link_to(dest) is not None:
            return [lpm.name, dest]
        return self.cache.route_to(dest)

    def learn_from_reply(self, message: Message) -> None:
        """Route learning from reply routes (section 4)."""
        if len(message.route) > 2 and \
                self.cache.learn_from_reply_route(message.route):
            self.lpm._trace(TraceEventType.ROUTE_LEARNED,
                            dest=message.route[0],
                            route=list(reversed(message.route)))

    def learn_path(self, path: List[str]) -> None:
        """Learn a forward overlay path (gather's assembled paths)."""
        if len(path) > 2 and self.cache.learn(list(path)):
            self.lpm._trace(TraceEventType.ROUTE_LEARNED, dest=path[-1],
                            route=list(path))

    def invalidate_via(self, broken_peer: str) -> None:
        for dest in self.cache.invalidate_via(broken_peer):
            self.lpm._trace(TraceEventType.ROUTE_LEARNED, dest=dest,
                            forgotten=True)
        # Broadcast-tree state through the peer is stale for the same
        # reason the routes are (no-op outside the sparse policy).
        self.lpm.treecast.on_link_lost(broken_peer)

    # ------------------------------------------------------------------
    # LOCATE result caching
    # ------------------------------------------------------------------

    def note_locate_miss(self, host: str, pid: int) -> None:
        self.locate_misses.add((host, pid))

    def locate_miss_fresh(self, host: str, pid: int) -> bool:
        """Whether a LOCATE for ``(host, pid)`` failed within the
        negative-cache TTL (so the flood can be skipped)."""
        return (host, pid) in self.locate_misses
