"""The exited-process resource-consumption statistics tool.

One of the two tools the paper's implementation shipped with
("snapshots with process control, and exited process resource
consumption statistics", section 6).  The raw records come from
:meth:`repro.core.client.PPMClient.rstats`; this module reduces them to
per-command totals and renders the report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..util import format_table
from .snapshot import ProcessRecord


@dataclass
class CommandUsage:
    """Aggregate usage of every exited instance of one command."""

    command: str
    count: int = 0
    total_utime_ms: float = 0.0
    total_lifetime_ms: float = 0.0
    forks: int = 0
    signals: int = 0
    hosts: tuple = ()

    @property
    def mean_utime_ms(self) -> float:
        return self.total_utime_ms / self.count if self.count else 0.0


def build_report(records: List[ProcessRecord]) -> List[CommandUsage]:
    """Aggregate exited-process records by command, busiest first."""
    by_command: Dict[str, CommandUsage] = {}
    host_sets: Dict[str, set] = {}
    for record in records:
        if not record.exited:
            continue
        usage = by_command.setdefault(record.command,
                                      CommandUsage(record.command))
        usage.count += 1
        usage.total_utime_ms += record.rusage.get("utime_ms", 0.0)
        if record.end_ms is not None:
            usage.total_lifetime_ms += record.end_ms - record.start_ms
        usage.forks += record.rusage.get("forks", 0)
        usage.signals += record.rusage.get("signals", 0)
        host_sets.setdefault(record.command, set()).add(record.gpid.host)
    for command, usage in by_command.items():
        usage.hosts = tuple(sorted(host_sets[command]))
    return sorted(by_command.values(),
                  key=lambda usage: (-usage.total_utime_ms, usage.command))


def render_report(usages: List[CommandUsage]) -> str:
    """The user-facing statistics table."""
    rows = [[usage.command, usage.count,
             "%.1f" % (usage.total_utime_ms,),
             "%.1f" % (usage.mean_utime_ms,),
             "%.1f" % (usage.total_lifetime_ms,),
             usage.forks, usage.signals,
             ",".join(usage.hosts)]
            for usage in usages]
    return format_table(
        ["command", "n", "cpu total (ms)", "cpu mean (ms)",
         "lifetime (ms)", "forks", "signals", "hosts"],
        rows, title="Exited process resource consumption")
