"""The Personal Process Manager facade.

Where :class:`repro.core.client.PPMClient` is one tool talking to one
LPM, :class:`PersonalProcessManager` represents the user's whole
distributed session: it installs the LPM implementation into the world,
writes the ``.recovery`` list, bootstraps the home LPM, and offers the
computation-level operations the paper motivates — locate the execution
sites of a computation and broadcast a software interrupt to stop it
(section 1).
"""

from __future__ import annotations

from typing import List, Optional

from ..ids import GlobalPid
from ..perf import PERF
from ..tracing.events import TraceEventType
from ..tracing.triggers import Trigger, TriggerEngine
from .client import PPMClient
from .control import ControlAction
from .lpm import install
from .rstats import CommandUsage, build_report
from .snapshot import SnapshotForest


class PersonalProcessManager:
    """One user's PPM across a simulated network."""

    def __init__(self, world, user: str, home_host: str,
                 recovery_hosts: Optional[List[str]] = None) -> None:
        self.world = world
        self.user = user
        self.home_host = home_host
        if world.lpm_factory is None:
            install(world)
        if recovery_hosts is not None:
            world.write_recovery_file(user, recovery_hosts)
        self.client = PPMClient(world, user, home_host)
        self._trigger_engine: Optional[TriggerEngine] = None

    # ------------------------------------------------------------------
    # Session lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "PersonalProcessManager":
        """Invoke the mechanism: create (or re-attach to) the home LPM."""
        self.client.connect()
        return self

    def logout(self) -> None:
        """Close the tool connection; the PPM outlives the session."""
        self.client.close()

    def relogin(self, host: Optional[str] = None) -> PPMClient:
        """A new login "will yield an existing" LPM (section 4); the new
        tool reconnects and regains knowledge of all managed processes."""
        client = PPMClient(self.world, self.user,
                           host if host is not None else self.home_host)
        client.connect()
        self.client = client
        return client

    # ------------------------------------------------------------------
    # Delegated tool operations
    # ------------------------------------------------------------------

    def create_process(self, command: str, host: Optional[str] = None,
                       args=(), program: Optional[dict] = None,
                       parent: Optional[GlobalPid] = None,
                       foreground: bool = True) -> GlobalPid:
        return self.client.create_process(command, host=host, args=args,
                                          program=program, parent=parent,
                                          foreground=foreground)

    def control(self, gpid: GlobalPid, action) -> dict:
        return self.client.control(gpid, action)

    def snapshot(self, prune: bool = True) -> SnapshotForest:
        return self.client.snapshot(prune=prune)

    def rstats_report(self) -> List[CommandUsage]:
        return build_report(self.client.rstats())

    def adopt(self, pid: int) -> List[int]:
        return self.client.adopt(pid)

    def session_info(self) -> dict:
        return self.client.session_info()

    def perf_stats(self) -> dict:
        """Hot-path performance counters plus simulator totals.

        The counters (see :mod:`repro.perf`) are process-global and
        always on; this is a read-only snapshot for experiments and
        tests that want to assert on redundant work (re-encodes,
        re-hashed stamps, dedup scans, heap compactions) rather than on
        wall-clock noise.

        When span tracing is enabled (:meth:`enable_span_tracing`), a
        ``latency_ms`` section carries the per-operation-class
        histograms — count, mean, extrema, p50/p95/p99 — for rpc
        round-trips, broadcast settles, gather completions, stream
        delivery lag, and tool calls, plus span retention totals.
        """
        stats = PERF.snapshot()
        stats["sim_events_run"] = self.world.sim.events_run
        stats["sim_now_ms"] = self.world.sim.now_ms
        stats["sim_queue_compactions"] = self.world.sim.queue.compactions
        tracer = self.world.sim.tracer
        if tracer is not None:
            stats["latency_ms"] = tracer.latency_summary()
            stats["spans_kept"] = len(tracer.spans)
            stats["spans_dropped"] = tracer.dropped
        return stats

    def enable_span_tracing(self, max_spans: Optional[int] = None):
        """Attach a span tracer to the session's simulator and return
        it (see :mod:`repro.perf.spans`).  Idempotent: an existing
        tracer is returned unchanged."""
        from ..perf.spans import DEFAULT_MAX_SPANS, enable_tracing
        sim = self.world.sim
        if sim.tracer is not None:
            return sim.tracer
        return enable_tracing(
            sim, max_spans=DEFAULT_MAX_SPANS if max_spans is None
            else max_spans)

    # ------------------------------------------------------------------
    # History-dependent triggers (section 1)
    # ------------------------------------------------------------------

    @property
    def triggers(self) -> TriggerEngine:
        """The session's trigger engine, created on first use."""
        if self._trigger_engine is None:
            self._trigger_engine = TriggerEngine(self.world.recorder)
        return self._trigger_engine

    def add_trigger(self, name: str, action,
                    event_type: Optional[TraceEventType] = None,
                    predicate=None, once: bool = False) -> Trigger:
        """Set a (possibly history-dependent) event-driven user action:
        "history dependent events can be set by users to trigger process
        state changes" (section 1).  The trigger fires only for this
        user's events."""
        user = self.user

        def scoped(event, history) -> bool:
            if event.user and event.user != user:
                return False
            if predicate is not None:
                return predicate(event, history)
            return True

        return self.triggers.add(Trigger(name=name, action=action,
                                         event_type=event_type,
                                         predicate=scoped, once=once))

    # ------------------------------------------------------------------
    # Computation-level operations (section 1's motivating facilities)
    # ------------------------------------------------------------------

    def execution_sites(self, root: GlobalPid) -> List[str]:
        """The hosts on which a computation is *currently* executing:
        sites holding live members (retained exit records do not count
        as execution)."""
        forest = self.snapshot(prune=False)
        if root not in forest:
            return []
        members = [root] + forest.descendants(root)
        return sorted({gpid.host for gpid in members
                       if not forest.records[gpid].exited})

    def signal_computation(self, root: GlobalPid,
                           action: ControlAction) -> List[dict]:
        """Broadcast a software interrupt to a whole computation: the
        root and every descendant, wherever each executes — the facility
        the paper says contemporaries lacked (section 1).

        Children are acted on before parents so a KILL cannot orphan
        descendants into unmanageability mid-flight.
        """
        forest = self.snapshot(prune=False)
        targets = [gpid for gpid in forest.descendants(root)
                   if not forest.records[gpid].exited]
        if root in forest and not forest.records[root].exited:
            targets.append(root)
        results = []
        for gpid in targets:
            results.append(self.client.control(gpid, action))
        return results

    def stop_computation(self, root: GlobalPid) -> List[dict]:
        return self.signal_computation(root, ControlAction.STOP)

    def continue_computation(self, root: GlobalPid) -> List[dict]:
        return self.signal_computation(root, ControlAction.CONTINUE)

    def kill_computation(self, root: GlobalPid) -> List[dict]:
        return self.signal_computation(root, ControlAction.KILL)

    def __repr__(self) -> str:
        return "PersonalProcessManager(%s@%s)" % (self.user, self.home_host)
