"""Snapshots: the genealogical state of a distributed computation.

"A computation is considered to be a group of processes that have a
common logical ancestor.  Under the PPM the processes form a (logical)
tree that may span a number of machines.  Under some failure modes this
tree may become a forest." (section 2)

:class:`ProcessRecord` is what each LPM reports for one process —
identified network-wide by ``<host, pid>``; :class:`SnapshotForest`
merges records from every reachable LPM, rebuilds the genealogy, marks
exited processes that still have living descendants, and degrades to a
forest when hosts are missing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..ids import GlobalPid


@dataclass
class ProcessRecord:
    """One process as an LPM knows it.

    ``state`` is a plain string so records serialise: one of
    ``running``, ``sleeping``, ``stopped``, ``exited``.
    """

    gpid: GlobalPid
    parent: Optional[GlobalPid]
    user: str
    command: str
    state: str
    start_ms: float
    end_ms: Optional[float] = None
    exit_status: Optional[int] = None
    foreground: bool = True
    rusage: dict = field(default_factory=dict)
    #: Currently open files: dicts of fd/path/mode/opened_ms (the
    #: section 7 file-descriptor tool reads these).
    open_files: list = field(default_factory=list)
    #: Recently closed files: dicts of path/mode/opened_ms/closed_ms.
    closed_files: list = field(default_factory=list)

    @property
    def exited(self) -> bool:
        return self.state == "exited"

    def to_dict(self) -> dict:
        return {
            "host": self.gpid.host, "pid": self.gpid.pid,
            "parent": [self.parent.host, self.parent.pid]
                      if self.parent is not None else None,
            "user": self.user, "command": self.command, "state": self.state,
            "start_ms": self.start_ms, "end_ms": self.end_ms,
            "exit_status": self.exit_status, "foreground": self.foreground,
            "rusage": self.rusage,
            "open_files": self.open_files,
            "closed_files": self.closed_files,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ProcessRecord":
        parent = data.get("parent")
        return cls(
            gpid=GlobalPid(data["host"], data["pid"]),
            parent=GlobalPid(parent[0], parent[1]) if parent else None,
            user=data["user"], command=data["command"], state=data["state"],
            start_ms=data["start_ms"], end_ms=data.get("end_ms"),
            exit_status=data.get("exit_status"),
            foreground=data.get("foreground", True),
            rusage=data.get("rusage", {}),
            open_files=list(data.get("open_files", [])),
            closed_files=list(data.get("closed_files", [])))


class SnapshotForest:
    """The merged genealogical snapshot presented to the user."""

    def __init__(self, taken_at_ms: float,
                 records: Optional[List[ProcessRecord]] = None,
                 missing_hosts: Optional[Set[str]] = None) -> None:
        self.taken_at_ms = taken_at_ms
        self.records: Dict[GlobalPid, ProcessRecord] = {}
        self.missing_hosts: Set[str] = set(missing_hosts or ())
        self._children: Dict[GlobalPid, List[GlobalPid]] = {}
        for record in records or []:
            self.add(record)

    def add(self, record: ProcessRecord) -> None:
        self.records[record.gpid] = record
        self._children = {}  # invalidate

    def _child_index(self) -> Dict[GlobalPid, List[GlobalPid]]:
        if not self._children and self.records:
            index: Dict[GlobalPid, List[GlobalPid]] = {}
            for gpid, record in self.records.items():
                if record.parent is not None and record.parent in self.records:
                    index.setdefault(record.parent, []).append(gpid)
            for children in index.values():
                children.sort()
            self._children = index
        return self._children

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------

    def roots(self) -> List[GlobalPid]:
        """Processes with no known parent in the snapshot.  More than
        one root means the tree has become a forest."""
        return sorted(gpid for gpid, record in self.records.items()
                      if record.parent is None
                      or record.parent not in self.records)

    def children(self, gpid: GlobalPid) -> List[GlobalPid]:
        return list(self._child_index().get(gpid, []))

    def descendants(self, gpid: GlobalPid) -> List[GlobalPid]:
        result: List[GlobalPid] = []
        stack = self.children(gpid)
        while stack:
            current = stack.pop()
            result.append(current)
            stack.extend(self.children(current))
        return sorted(result)

    def subtree_hosts(self, gpid: GlobalPid) -> Set[str]:
        """Execution sites of a computation rooted at ``gpid`` — the
        "locating the execution sites" facility of section 1."""
        hosts = {gpid.host}
        hosts.update(d.host for d in self.descendants(gpid))
        return hosts

    def is_forest(self) -> bool:
        return len(self.roots()) > 1

    def alive(self) -> List[ProcessRecord]:
        return [r for r in self.records.values() if not r.exited]

    def by_host(self, host: str) -> List[ProcessRecord]:
        return sorted((r for r in self.records.values()
                       if r.gpid.host == host),
                      key=lambda r: r.gpid)

    def hosts(self) -> Set[str]:
        return {gpid.host for gpid in self.records}

    # ------------------------------------------------------------------
    # Exit retention (section 2)
    # ------------------------------------------------------------------

    def prune_exited_leaves(self) -> "SnapshotForest":
        """Drop exited processes with no living descendants, keeping
        exited interior nodes — exactly the paper's retention rule:
        "we chose to retain exit information while there are children
        alive ... we mark the process as exited"."""
        keep: Set[GlobalPid] = set()

        def has_live_descendant(gpid: GlobalPid) -> bool:
            record = self.records[gpid]
            live_here = not record.exited
            for child in self.children(gpid):
                if has_live_descendant(child):
                    live_here = True
            if live_here:
                keep.add(gpid)
            return live_here

        for root in self.roots():
            has_live_descendant(root)
        pruned = SnapshotForest(self.taken_at_ms,
                                missing_hosts=set(self.missing_hosts))
        for gpid in keep:
            pruned.add(self.records[gpid])
        return pruned

    def __len__(self) -> int:
        return len(self.records)

    def __contains__(self, gpid: GlobalPid) -> bool:
        return gpid in self.records

    def __repr__(self) -> str:
        return "SnapshotForest(%d records, %d roots%s)" % (
            len(self.records), len(self.roots()),
            ", missing %s" % sorted(self.missing_hosts)
            if self.missing_hosts else "")
