"""A command-interpreter tool for the PPM.

Section 4: "The PPM mechanism is not integrated with any command
interpreter, and thus its services must be obtained by one of a series
of tools (which may include command interpreters)."  :class:`PPMShell`
is such an interpreter: a line-oriented front end over the subroutine
library, with the snapshot/control built-ins the paper describes plus
the section 7 tools (files, descriptors, IPC analysis).

It is deliberately *not* integrated into the LPM — it is one more tool
speaking the same protocol as everything else.
"""

from __future__ import annotations

import shlex
from typing import Callable, Dict, List

from ..errors import ReproError
from ..ids import GlobalPid
from ..tracing.display import render_forest, render_gantt, render_timeline
from ..tracing.ipc import (
    render_ipc_by_kind,
    render_ipc_matrix,
    render_user_ipc,
)
from .control import ControlAction
from .files_tool import render_fd_table, render_open_files, render_closed_files
from .ppm import PersonalProcessManager
from .progspec import sleeper_spec, spinner_spec, worker_spec
from .rstats import render_report

HELP = """\
PPM shell commands:
  snapshot [-a]              genealogical snapshot (-a: keep exited leaves)
  create <host> <command> [spinner|sleeper|worker:<ms>[:<status>]]
  stop|cont|fg|bg|term|kill <host,pid>
  stopall|contall|killall <host,pid>    act on a whole computation
  sites <host,pid>           execution sites of a computation
  rstats                     exited-process resource statistics
  files [-c]                 open files (-c: closed-file history)
  fds <host,pid>             file descriptors of one process
  ipc [kinds|user]           IPC activity: LPM matrix, per-kind, or
                             user-process conversations
  history [n]                recent trace events
  chart                      process state chart (the display tool)
  session                    session information
  adopt <pid>                adopt a local process and its descendants
  help                       this text
"""

_CONTROL_VERBS = {
    "stop": ControlAction.STOP,
    "cont": ControlAction.CONTINUE,
    "fg": ControlAction.FOREGROUND,
    "bg": ControlAction.BACKGROUND,
    "term": ControlAction.TERMINATE,
    "kill": ControlAction.KILL,
}

_COMPUTATION_VERBS = {
    "stopall": ControlAction.STOP,
    "contall": ControlAction.CONTINUE,
    "killall": ControlAction.KILL,
}


def _parse_gpid(text: str) -> GlobalPid:
    if text.startswith("<"):
        return GlobalPid.parse(text)
    host, sep, pid = text.partition(",")
    if not sep:
        raise ReproError("expected <host,pid>, got %r" % (text,))
    return GlobalPid(host, int(pid))


def _parse_program(text: str):
    """``spinner``, ``sleeper``, ``worker:<ms>`` or ``worker:<ms>:<rc>``."""
    kind, _sep, rest = text.partition(":")
    if kind == "spinner":
        return spinner_spec(None)
    if kind == "sleeper":
        return sleeper_spec(None)
    if kind == "worker":
        duration, _sep, status = rest.partition(":")
        return worker_spec(float(duration or 1000.0),
                           exit_status=int(status or 0))
    raise ReproError("unknown program %r" % (text,))


class PPMShell:
    """Line-oriented interpreter over one PPM session."""

    def __init__(self, ppm: PersonalProcessManager) -> None:
        self.ppm = ppm
        self.world = ppm.world
        self._commands: Dict[str, Callable[[List[str]], str]] = {
            "snapshot": self._cmd_snapshot,
            "create": self._cmd_create,
            "sites": self._cmd_sites,
            "rstats": self._cmd_rstats,
            "files": self._cmd_files,
            "fds": self._cmd_fds,
            "ipc": self._cmd_ipc,
            "history": self._cmd_history,
            "chart": self._cmd_chart,
            "session": self._cmd_session,
            "adopt": self._cmd_adopt,
            "help": lambda args: HELP,
        }

    def execute(self, line: str) -> str:
        """Run one command line; errors come back as text, never as
        exceptions (a shell must survive typos)."""
        try:
            words = shlex.split(line)
        except ValueError as exc:
            return "parse error: %s" % (exc,)
        if not words:
            return ""
        verb, args = words[0], words[1:]
        try:
            if verb in _CONTROL_VERBS:
                return self._control(verb, args)
            if verb in _COMPUTATION_VERBS:
                return self._computation(verb, args)
            handler = self._commands.get(verb)
            if handler is None:
                return "unknown command %r (try: help)" % (verb,)
            return handler(args)
        except (ReproError, ValueError, IndexError) as exc:
            return "error: %s" % (exc,)

    # ------------------------------------------------------------------
    # Command implementations
    # ------------------------------------------------------------------

    def _cmd_snapshot(self, args: List[str]) -> str:
        prune = "-a" not in args
        return render_forest(self.ppm.snapshot(prune=prune))

    def _cmd_create(self, args: List[str]) -> str:
        if len(args) < 2:
            return "usage: create <host> <command> [program]"
        host, command = args[0], args[1]
        program = _parse_program(args[2]) if len(args) > 2 \
            else spinner_spec(None)
        gpid = self.ppm.create_process(command, host=host, program=program)
        return "created %s %s" % (gpid, command)

    def _control(self, verb: str, args: List[str]) -> str:
        gpid = _parse_gpid(args[0])
        result = self.ppm.control(gpid, _CONTROL_VERBS[verb])
        return "%s %s: ok (on %s)" % (verb, gpid, result["host"])

    def _computation(self, verb: str, args: List[str]) -> str:
        gpid = _parse_gpid(args[0])
        results = self.ppm.signal_computation(gpid,
                                              _COMPUTATION_VERBS[verb])
        return "%s %s: %d processes signalled" % (verb, gpid,
                                                  len(results))

    def _cmd_sites(self, args: List[str]) -> str:
        gpid = _parse_gpid(args[0])
        sites = self.ppm.execution_sites(gpid)
        if not sites:
            return "%s: not found" % (gpid,)
        return "%s executes on: %s" % (gpid, ", ".join(sites))

    def _cmd_rstats(self, args: List[str]) -> str:
        return render_report(self.ppm.rstats_report())

    def _cmd_files(self, args: List[str]) -> str:
        forest = self.ppm.snapshot(prune=False)
        if "-c" in args:
            return render_closed_files(forest)
        return render_open_files(forest)

    def _cmd_fds(self, args: List[str]) -> str:
        gpid = _parse_gpid(args[0])
        return render_fd_table(self.ppm.snapshot(prune=False), gpid)

    def _cmd_ipc(self, args: List[str]) -> str:
        events = self.world.recorder.events
        if args and args[0] == "kinds":
            return render_ipc_by_kind(events)
        if args and args[0] == "user":
            return render_user_ipc(events)
        return render_ipc_matrix(events)

    def _cmd_history(self, args: List[str]) -> str:
        limit = int(args[0]) if args else 20
        return render_timeline(self.world.recorder.events, limit=limit)

    def _cmd_chart(self, args: List[str]) -> str:
        return render_gantt(self.world.recorder.events,
                            until_ms=self.world.now_ms)

    def _cmd_session(self, args: List[str]) -> str:
        info = self.ppm.session_info()
        lines = ["session of %s on %s" % (info["user"], info["host"])]
        lines.append("  CCS: %s" % (info["ccs_host"],))
        lines.append("  siblings: %s"
                     % (", ".join(info["siblings"]) or "(none)"))
        lines.append("  recovery state: %s" % (info["recovery_state"],))
        lines.append("  handlers: %d spawned, %d reused, peak %d busy"
                     % (info["handler_stats"]["spawned"],
                        info["handler_stats"]["reused"],
                        info["handler_stats"]["peak_busy"]))
        for dest, route in sorted((info.get("routes") or {}).items()):
            lines.append("  route to %s: %s" % (dest, " -> ".join(route)))
        return "\n".join(lines)

    def _cmd_adopt(self, args: List[str]) -> str:
        pids = self.ppm.adopt(int(args[0]))
        return "adopted %d process(es): %s" % (
            len(pids), ", ".join(str(p) for p in pids))
