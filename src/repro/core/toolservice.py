"""The tool socket's server side: the subroutine library's counterpart.

Section 7's tools (snapshot, rstats, process control, adoption, trace
flags, the command interpreter) all talk to their LPM over a local tool
stream; this module implements the LPM end of every tool verb.  It is a
pure protocol adapter: each handler validates the request, delegates to
the LPM's process table, gather engine, or request channel, and writes
one TOOL_REPLY back at the tool-IPC cost.
"""

from __future__ import annotations

from typing import Optional

from ..errors import ConnectionClosedError, ReproError
from ..ids import GlobalPid
from ..tracing.events import TraceEventType
from ..unixsim.process import trace_flags_from_names
from .messages import Message, MsgKind
from .wire import message_size_bytes


class ToolService:
    """Dispatches tool requests arriving on one LPM's tool streams."""

    def __init__(self, lpm) -> None:
        self.lpm = lpm

    @staticmethod
    def _trace_ctx(message: Message):
        """The serve span's context, for parenting downstream spans."""
        span = getattr(message, "_span", None)
        return None if span is None else span.ctx()

    def on_message(self, message: Message, endpoint) -> None:
        lpm = self.lpm
        if not lpm.is_running():
            return
        tracer = lpm.sim.tracer
        if tracer is not None:
            # The serve span rides the request object (messages travel
            # by reference in-sim) so ``reply`` can close it no matter
            # which asynchronous path produced the answer.
            message._span = tracer.start(
                "serve:%s" % message.kind.value, host=lpm.name,
                parent=message.trace, cat="serve")
        lpm._trace(TraceEventType.TOOL_REQUEST, kind=message.kind.value)
        handler = getattr(self, "_tool_" + message.kind.value, None)
        if handler is None:
            self.reply(endpoint, message,
                       {"ok": False, "error": "unknown request"})
            return
        handler(message, endpoint)

    def reply(self, endpoint, request: Message, payload: dict) -> None:
        lpm = self.lpm
        tracer = lpm.sim.tracer
        if tracer is not None:
            span = getattr(request, "_span", None)
            if span is not None and span.end_ms is None:
                tracer.finish(span, ok=bool(payload.get("ok")))
        if not endpoint.open:
            return
        reply = Message(kind=MsgKind.TOOL_REPLY,
                        req_id=request.req_id, origin=lpm.name,
                        user=lpm.user, payload=payload,
                        reply_to=request.req_id,
                        trace=request.trace)
        try:
            endpoint.send(reply, nbytes=message_size_bytes(reply),
                          extra_delay_ms=lpm._cpu(lpm.cost.tool_ipc_ms))
        except ConnectionClosedError:
            pass

    # ------------------------------------------------------------------
    # The section 7 tool verbs
    # ------------------------------------------------------------------

    def _tool_tool_ping(self, message: Message, endpoint) -> None:
        lpm = self.lpm
        self.reply(endpoint, message,
                   {"ok": True, "host": lpm.name,
                    "time_ms": lpm.sim.now_ms})

    def _tool_tool_session_info(self, message: Message, endpoint) -> None:
        lpm = self.lpm
        routes = lpm.router.cache
        self.reply(endpoint, message, {
            "ok": True,
            "host": lpm.name,
            "user": lpm.user,
            "ccs_host": lpm.ccs_host,
            "siblings": lpm.authenticated_siblings(),
            "routes": {dest: routes.route_to(dest)
                       for dest in routes.destinations()},
            "endpoints": lpm.describe_endpoints(),
            "recovery_state": lpm.recovery.state.value,
            "handler_stats": {"spawned": lpm.pool.spawned,
                              "reused": lpm.pool.reused,
                              "peak_busy": lpm.pool.peak_busy},
            "local_pids": sorted(lpm.records),
        })

    def _tool_tool_locate(self, message: Message, endpoint) -> None:
        """Resolve ``<host, pid>`` over the overlay (the LOCATE verb
        exposed to tools; probes and floods per the session policy)."""
        lpm = self.lpm
        host = message.payload.get("host", lpm.name)
        pid = message.payload.get("pid")

        def on_result(reply) -> None:
            if reply is not None and reply.payload.get("ok"):
                answer = {"ok": True, "found": True,
                          "host": reply.payload.get("host", host),
                          "pid": pid}
                if "state" in reply.payload:
                    answer["state"] = reply.payload["state"]
            else:
                answer = {"ok": True, "found": False,
                          "host": host, "pid": pid}
            self.reply(endpoint, message, answer)

        if host == lpm.name:
            # The named host is us: answer authoritatively, no traffic.
            found = pid in lpm.records
            answer = {"ok": True, "found": found, "host": host,
                      "pid": pid}
            if found:
                answer["state"] = lpm.records[pid].state
            self.reply(endpoint, message, answer)
            return
        lpm.locate(host, pid, on_result,
                   trace_parent=self._trace_ctx(message))

    def _tool_tool_snapshot(self, message: Message, endpoint) -> None:
        self.lpm.gather.start(
            "snapshot",
            lambda result: self.reply(endpoint, message, result),
            trace_parent=self._trace_ctx(message))

    def _tool_tool_rstats(self, message: Message, endpoint) -> None:
        self.lpm.gather.start(
            "rstats",
            lambda result: self.reply(endpoint, message, result),
            trace_parent=self._trace_ctx(message))

    def _tool_tool_create(self, message: Message, endpoint) -> None:
        lpm = self.lpm
        payload = message.payload
        target = payload.get("host", lpm.name)
        if target == lpm.name:
            def created() -> None:
                parent = payload.get("parent")
                parent_gpid = GlobalPid(parent[0], parent[1]) \
                    if parent else None
                try:
                    proc = lpm.create_local_process(
                        payload["command"], tuple(payload.get("args", ())),
                        payload.get("program"), parent=parent_gpid,
                        foreground=payload.get("foreground", True))
                except ReproError as exc:
                    self.reply(endpoint, message,
                               {"ok": False, "error": str(exc)})
                    return
                self.reply(endpoint, message,
                           {"ok": True, "host": lpm.name,
                            "pid": proc.pid})

            cost = lpm._cpu(lpm.cost.fork_ms + lpm.cost.exec_ms
                            + lpm.cost.adopt_ms)
            lpm.sim.schedule(cost, created, owner=lpm.name,
                             label="local create")
            return

        def remote_ready(link) -> None:
            if link is None:
                self.reply(endpoint, message,
                           {"ok": False,
                            "error": "cannot reach %s" % (target,)})
                return
            lpm.send_request(
                target, MsgKind.CREATE,
                {"command": payload["command"],
                 "args": list(payload.get("args", ())),
                 "program": payload.get("program"),
                 "parent": payload.get("parent"),
                 "foreground": payload.get("foreground", True)},
                lambda reply: self.reply(
                    endpoint, message,
                    reply.payload if reply is not None else
                    {"ok": False, "error": "no response from %s"
                                           % (target,)}),
                trace_parent=self._trace_ctx(message))

        lpm.ensure_sibling(target).then(remote_ready)

    def _tool_tool_control(self, message: Message, endpoint) -> None:
        lpm = self.lpm
        payload = message.payload
        target_host = payload["host"]
        pid = payload["pid"]
        action = payload["action"]
        if target_host == lpm.name:
            def acted() -> None:
                self.reply(endpoint, message,
                           lpm._apply_control(pid, action))

            lpm.sim.schedule(lpm._cpu(lpm.cost.signal_ms), acted,
                             owner=lpm.name, label="local control")
            return

        def send_control(allow_retry: bool = True) -> None:
            def on_reply(reply) -> None:
                if reply is None:
                    self.reply(endpoint, message,
                               {"ok": False,
                                "error": "no response from %s"
                                         % (target_host,)})
                    return
                error = reply.payload.get("error", "")
                if not reply.payload.get("ok") and "no route" in error \
                        and allow_retry:
                    # A stale cached route: forget it and fail over to
                    # a direct channel, then retry once.
                    lpm.router.cache.forget(target_host)

                    def retried(link) -> None:
                        if link is None:
                            self.reply(endpoint, message, reply.payload)
                        else:
                            send_control(allow_retry=False)

                    lpm.ensure_sibling(target_host).then(retried)
                    return
                self.reply(endpoint, message, reply.payload)

            lpm.send_request(target_host, MsgKind.CONTROL,
                             {"pid": pid, "action": action}, on_reply,
                             trace_parent=self._trace_ctx(message))

        if target_host in lpm.siblings or \
                lpm.router.cache.route_to(target_host) is not None:
            send_control()
            return

        # Last resort: locate the process by broadcast, learn the route
        # from the reply, then deliver the action.
        def located(found: Optional[Message]) -> None:
            if found is None:
                # Try a direct channel before giving up (the process may
                # be on a host we simply never talked to).
                def fallback(link) -> None:
                    if link is None:
                        self.reply(endpoint, message,
                                   {"ok": False,
                                    "error": "cannot locate %s on %s"
                                             % (pid, target_host)})
                    else:
                        send_control()

                lpm.ensure_sibling(target_host).then(fallback)
                return
            send_control()

        lpm.locate(target_host, pid, located,
                   trace_parent=self._trace_ctx(message))

    def _tool_tool_adopt(self, message: Message, endpoint) -> None:
        lpm = self.lpm
        payload = message.payload
        target_host = payload.get("host", lpm.name)
        if target_host != lpm.name:
            self.reply(endpoint, message,
                       {"ok": False,
                        "error": "adoption is a local operation"})
            return

        def adopted() -> None:
            try:
                pids = lpm.adopt_process(payload["pid"])
            except ReproError as exc:
                self.reply(endpoint, message,
                           {"ok": False, "error": "%s: %s"
                            % (type(exc).__name__, exc)})
                return
            self.reply(endpoint, message, {"ok": True, "adopted": pids})

        lpm.sim.schedule(lpm._cpu(lpm.cost.adopt_ms), adopted,
                         owner=lpm.name, label="adopt")

    def _tool_tool_set_trace(self, message: Message, endpoint) -> None:
        lpm = self.lpm
        payload = message.payload
        try:
            flags = trace_flags_from_names(payload.get("flags", []))
        except KeyError as exc:
            self.reply(endpoint, message,
                       {"ok": False,
                        "error": "unknown trace flag %s" % (exc,)})
            return
        pid = payload.get("pid")
        if pid is None:
            # Session default for future adoptions on this LPM.
            lpm.trace_flags = flags
            self.reply(endpoint, message, {"ok": True, "scope": "lpm"})
            return
        try:
            lpm.host.kernel.set_trace_flags(lpm.uid, pid, flags)
        except ReproError as exc:
            self.reply(endpoint, message,
                       {"ok": False, "error": str(exc)})
            return
        self.reply(endpoint, message, {"ok": True, "scope": pid})
