"""Route caching over the LPM overlay.

"All data returned to the originator of a broadcast request includes the
message's source-destination route.  This allows quick routing of
messages affecting processes in topologically distant hosts.  No
attention is currently devoted to finding minimum hop routes to nodes."
(section 4)

The cache stores, per destination host, the *first* route learned — not
the shortest — faithfully reproducing that design choice.  Routes are
invalidated when a connection they rely on breaks.
"""

from __future__ import annotations

from typing import Dict, List, Optional


class RouteCache:
    """Learned overlay routes from one LPM to distant siblings."""

    def __init__(self, self_host: str) -> None:
        self.self_host = self_host
        self._routes: Dict[str, List[str]] = {}
        self.learned = 0
        self.invalidated = 0

    def learn(self, path: List[str]) -> bool:
        """Record a path (``[self, ..., dest]``).  First route wins, as
        in the paper; returns True when something new was stored."""
        if len(path) < 2 or path[0] != self.self_host:
            return False
        dest = path[-1]
        if dest == self.self_host or dest in self._routes:
            return False
        self._routes[dest] = list(path)
        self.learned += 1
        return True

    def learn_from_reply_route(self, reply_route: List[str]) -> bool:
        """A reply's route runs replier -> ... -> us; reverse to learn
        the forward path."""
        return self.learn(list(reversed(reply_route)))

    def route_to(self, dest: str) -> Optional[List[str]]:
        return list(self._routes[dest]) if dest in self._routes else None

    def next_hop(self, dest: str) -> Optional[str]:
        route = self._routes.get(dest)
        return route[1] if route else None

    def forget(self, dest: str) -> None:
        self._routes.pop(dest, None)

    def invalidate_via(self, broken_peer: str) -> List[str]:
        """Drop every route whose first hop (or any hop) is a peer we
        lost contact with; returns the destinations dropped."""
        dropped = [dest for dest, route in self._routes.items()
                   if broken_peer in route[1:]]
        for dest in dropped:
            del self._routes[dest]
            self.invalidated += 1
        return dropped

    def destinations(self) -> List[str]:
        return sorted(self._routes)

    def __len__(self) -> int:
        return len(self._routes)
