"""Route caching over the LPM overlay.

"All data returned to the originator of a broadcast request includes the
message's source-destination route.  This allows quick routing of
messages affecting processes in topologically distant hosts.  No
attention is currently devoted to finding minimum hop routes to nodes."
(section 4)

The cache stores, per destination host, the *first* route learned — not
the shortest — faithfully reproducing that design choice.  Routes are
invalidated when a connection they rely on breaks; a secondary index
from via-host to the destinations routed through it makes that
invalidation O(routes-through-host) instead of a scan of the whole
cache on every link loss.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..perf import PERF


class RouteCache:
    """Learned overlay routes from one LPM to distant siblings."""

    def __init__(self, self_host: str) -> None:
        self.self_host = self_host
        self._routes: Dict[str, List[str]] = {}
        #: hop host -> {dest: None} for every cached route passing
        #: through (or ending at) that hop; dict-valued for insertion
        #: order, mirroring ``_routes`` order per hop.
        self._via: Dict[str, Dict[str, None]] = {}
        self.learned = 0
        self.invalidated = 0

    def _index(self, dest: str, route: List[str]) -> None:
        for hop in route[1:]:
            self._via.setdefault(hop, {})[dest] = None

    def _unindex(self, dest: str, route: List[str]) -> None:
        for hop in route[1:]:
            entry = self._via.get(hop)
            if entry is not None:
                entry.pop(dest, None)
                if not entry:
                    del self._via[hop]

    def learn(self, path: List[str]) -> bool:
        """Record a path (``[self, ..., dest]``).  First route wins, as
        in the paper; returns True when something new was stored."""
        if len(path) < 2 or path[0] != self.self_host:
            return False
        dest = path[-1]
        if dest == self.self_host or dest in self._routes:
            return False
        route = list(path)
        self._routes[dest] = route
        self._index(dest, route)
        self.learned += 1
        return True

    def learn_from_reply_route(self, reply_route: List[str]) -> bool:
        """A reply's route runs replier -> ... -> us; reverse to learn
        the forward path."""
        return self.learn(list(reversed(reply_route)))

    def route_to(self, dest: str) -> Optional[List[str]]:
        return list(self._routes[dest]) if dest in self._routes else None

    def next_hop(self, dest: str) -> Optional[str]:
        route = self._routes.get(dest)
        return route[1] if route else None

    def forget(self, dest: str) -> None:
        route = self._routes.pop(dest, None)
        if route is not None:
            self._unindex(dest, route)

    def invalidate_via(self, broken_peer: str) -> List[str]:
        """Drop every route whose first hop (or any hop) is a peer we
        lost contact with; returns the destinations dropped.  Only the
        via-indexed routes through ``broken_peer`` are touched, not the
        whole cache."""
        dropped = list(self._via.get(broken_peer, ()))
        for dest in dropped:
            PERF.route_invalidation_scans += 1
            route = self._routes.pop(dest)
            self._unindex(dest, route)
            self.invalidated += 1
        return dropped

    def destinations(self) -> List[str]:
        return sorted(self._routes)

    def __len__(self) -> int:
        return len(self._routes)
