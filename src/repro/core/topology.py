"""The ``sparse`` sibling-graph policy: a bounded-degree overlay.

Section 4 expects "low-connectivity graphs" — the broadcast machinery
pays a graph-covering price precisely so the connection graph can stay
sparse.  The ``full_mesh`` ablation policy goes the other way and opens
O(n²) channels, which is what blocks the overlay from scaling past a
hundred hosts.  This module adds the middle point: a deterministic
ring-plus-chords overlay of degree ≤ k, so the session keeps O(n·k)
channels, stays connected through the ring, and keeps broadcast depth
logarithmic through the chords (the shape MPD's sparse manager ring and
tree-structured launchers use for the same reason).

Two halves live here:

* pure graph arithmetic (:func:`chord_offsets`,
  :func:`sparse_neighbors`) — deterministic, symmetric, and unit-tested
  in isolation;
* :class:`TopologyManager`, the per-LPM driver that accumulates session
  membership from HELLO ``known`` lists and ``TOPO_GOSSIP`` notices,
  and (debounced) opens the channels the computed overlay wants.

Everything is inert unless ``PPMConfig.topology_policy == "sparse"``:
the default ``on_demand`` and the ``full_mesh`` ablation behave
byte-identically to before this module existed.
"""

from __future__ import annotations

from typing import Iterable, List, Set

from ..errors import ConnectionClosedError
from .messages import Message, MsgKind

#: Debounce for membership-driven rewiring and gossip, in simulated ms.
#: Joins arrive in bursts while a session spreads; the timers are
#: trailing-edge — each further growth pushes the deadline back — so a
#: burst of joins produces one rewire/gossip wave at the settled
#: membership rather than one per intermediate size.  That matters
#: doubly because links are grow-only: chord targets shift as the ring
#: grows, and rewiring at every intermediate size would strand a trail
#: of stale links that nothing ever closes.
REWIRE_DEBOUNCE_MS = 2_000.0


def chord_offsets(n: int, degree: int) -> List[int]:
    """Ring offsets of the degree-bounded chord graph over ``n`` hosts.

    Offset 1 (the ring) is always present, keeping the overlay
    connected; the remaining ``degree // 2 - 1`` offsets are powers of a
    stride ``c`` chosen so the largest chord spans about ``n / c`` — the
    base-``c`` positional system over the ring, which bounds hop
    distance by roughly ``c · degree / 2`` (single digits of hops for
    hundreds of hosts at degree 6).
    """
    if n < 2:
        return []
    half = max(1, degree // 2)
    if n <= degree + 1:
        # Small sessions: the chords would wrap into duplicates; the
        # plain ring (plus its short chords) is already near-complete.
        # Offsets past n // 2 alias the other side of the ring.
        return list(range(1, n // 2 + 1))[:half]
    c = 2
    while c ** half < n:
        c += 1
    offsets = []
    for j in range(half):
        offset = min(c ** j, n // 2)
        if offset not in offsets:
            offsets.append(offset)
    return offsets


def sparse_neighbors(host: str, hosts: Iterable[str],
                     degree: int) -> Set[str]:
    """The neighbor set of ``host`` in the ring-plus-chords overlay.

    ``hosts`` is the full membership (any order; sorted internally so
    every LPM computes the same graph).  The relation is symmetric —
    each offset contributes the hosts at ``±offset`` around the sorted
    ring — so both endpoints of every edge agree it should exist, and
    whoever learns the membership first opens it.
    """
    ring = sorted(set(hosts) | {host})
    n = len(ring)
    if n < 2:
        return set()
    rank = ring.index(host)
    neighbors: Set[str] = set()
    for offset in chord_offsets(n, degree):
        neighbors.add(ring[(rank + offset) % n])
        neighbors.add(ring[(rank - offset) % n])
    neighbors.discard(host)
    return neighbors


class TopologyManager:
    """Membership tracking and overlay wiring for one LPM.

    The LPM injects itself for the clock, transport, and config; the
    manager never touches sockets directly (``ensure_sibling`` and
    ``send_on_link`` belong to the transport layer).  Membership is a
    grow-only set: hosts leave the *overlay* by losing links, not by
    being forgotten, mirroring how the paper's sessions wind down
    through time-to-live rather than explicit leaves.
    """

    def __init__(self, lpm) -> None:
        self.lpm = lpm
        self.membership: Set[str] = {lpm.name}
        self._rewire_timer = None
        self._gossip_timer = None
        #: Simulated time of the last membership growth, driving the
        #: trailing-edge debounce: a timer that fires while growth is
        #: more recent than ``REWIRE_DEBOUNCE_MS`` re-arms instead of
        #: acting.
        self._last_growth_ms = float("-inf")
        #: Membership size last gossiped, so a pending gossip that
        #: learned nothing new is skipped when the timer fires.
        self._gossiped_size = 0

    @property
    def active(self) -> bool:
        return self.lpm.config.topology_policy == "sparse"

    # ------------------------------------------------------------------
    # Membership intake
    # ------------------------------------------------------------------

    def note_hosts(self, hosts: Iterable[str]) -> None:
        """Fold newly learned hosts into the membership; schedule a
        (debounced) rewire and gossip round when it grew."""
        if not self.active:
            return
        before = len(self.membership)
        self.membership.update(hosts)
        self.membership.update(self.lpm.transport.links)
        self.membership.discard(None)
        if len(self.membership) > before:
            self._last_growth_ms = self.lpm.sim.now_ms
            self._arm(rewire=True, gossip=True)

    def on_gossip(self, message: Message) -> None:
        """A sibling's ``TOPO_GOSSIP {hosts}`` membership notice."""
        self.note_hosts(message.payload.get("hosts", ()))

    def known_hosts(self) -> List[str]:
        """What this LPM advertises in HELLO ``known`` fields: full
        membership under the sparse policy (membership must propagate
        even though the link graph is sparse), the authenticated link
        list otherwise (the historical wire contents, byte-identical)."""
        if self.active:
            self.membership.update(self.lpm.transport.links)
            return sorted(self.membership)
        return self.lpm.transport.authenticated()

    # ------------------------------------------------------------------
    # Debounced reactions
    # ------------------------------------------------------------------

    def _arm(self, rewire: bool = False, gossip: bool = False) -> None:
        lpm = self.lpm
        if rewire and self._rewire_timer is None:
            self._rewire_timer = lpm.sim.schedule(
                REWIRE_DEBOUNCE_MS, self._rewire, owner=lpm.name,
                label="sparse rewire %s" % (lpm.name,))
        if gossip and self._gossip_timer is None:
            self._gossip_timer = lpm.sim.schedule(
                REWIRE_DEBOUNCE_MS, self._gossip, owner=lpm.name,
                label="sparse gossip %s" % (lpm.name,))

    def _settled(self, rearm) -> bool:
        """Trailing-edge gate: True once membership has been quiet for
        the full debounce window; otherwise calls ``rearm`` (a fresh
        full window — growth is still in flight, precision is moot)."""
        quiet = self.lpm.sim.now_ms - self._last_growth_ms
        if quiet >= REWIRE_DEBOUNCE_MS:
            return True
        rearm()
        return False

    def neighbors(self) -> Set[str]:
        """The overlay neighbors the current membership implies."""
        return sparse_neighbors(self.lpm.name, self.membership,
                                self.lpm.config.sparse_degree)

    def _rewire(self) -> None:
        self._rewire_timer = None
        lpm = self.lpm
        if not self.active or not lpm.is_running():
            return
        if not self._settled(lambda: self._arm(rewire=True)):
            return
        for peer in sorted(self.neighbors()):
            # Deterministic simultaneous-open arbitration: the overlay
            # relation is symmetric and both ends rewire in the same
            # quiet window, so without a tie-break each side opens a
            # link and `accept_sibling` closes the other's — leaving
            # both holding circuits dead at the far end.  The smaller
            # name initiates; the edge still always opens.
            if lpm.name < peer and lpm.transport.link_to(peer) is None:
                lpm.ensure_sibling(peer)

    def _gossip(self) -> None:
        self._gossip_timer = None
        lpm = self.lpm
        if not self.active or not lpm.is_running():
            return
        if not self._settled(lambda: self._arm(gossip=True)):
            return
        if len(self.membership) <= self._gossiped_size:
            return
        self._gossiped_size = len(self.membership)
        hosts = sorted(self.membership)
        for peer in lpm.transport.authenticated():
            link = lpm.transport.link_to(peer)
            if link is None:
                continue
            notice = Message(kind=MsgKind.TOPO_GOSSIP,
                             req_id=lpm.rpc.next_req_id(),
                             origin=lpm.name, user=lpm.user,
                             payload={"hosts": hosts})
            try:
                lpm.transport.send_on_link(link, notice)
            except ConnectionClosedError:
                continue

    def shutdown(self) -> None:
        for timer in (self._rewire_timer, self._gossip_timer):
            if timer is not None:
                self.lpm.sim.cancel(timer)
        self._rewire_timer = self._gossip_timer = None
