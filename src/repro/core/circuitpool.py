"""Shared inter-host circuits for multi-tenant deployments.

The paper's PPM is strictly per-user: every user's LPM dials its own
sibling circuits, so a fleet serving many co-located users pays
O(users x host-pairs) physical connections, each with its own
keepalive and link-loss detection.  With ``circuit_sharing=True`` a
per-host :class:`CircuitPool` multiplexes instead (the MPD shape: one
persistent daemon-level channel per host pair carrying many jobs'
traffic): the first LPM to need ``(host_a, host_b)`` opens the
physical circuit, later co-located LPMs attach a lightweight per-user
*lane* riding the same endpoint, demultiplexed by ``Message.lane``.

Division of labour:

- **per lane** — HELLO authentication (each user still presents the
  token its pmd issued), message dispatch, teardown via
  ``MsgKind.LANE_CLOSE``;
- **per circuit** — connection setup/keepalive, link-loss detection,
  and byte transport.  When the physical circuit breaks, *every*
  lane's ``on_close`` fires so each user's router drops routes through
  the dead peer.

A :class:`LaneEndpoint` honours the endpoint contract (``send``,
``close``, ``open``, ``on_message``, ``on_close``, ``peer_name``,
``local_name``, ``context``), so :class:`~repro.core.transport.
SiblingTransport` uses lanes exactly like private circuits.  The pool
is backend-neutral: it only needs a fabric (``connect``), a node
(``listen``) and a host name, so the same class serves netsim and
realnet.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..perf import PERF
from .messages import Message, MsgKind
from .wire import message_size_bytes

#: The well-known service every pool listens on.  One listener per
#: host regardless of how many users' LPMs live there.
POOL_SERVICE = "circuits"


class LaneEndpoint:
    """One user's lane on a shared circuit; endpoint-contract shaped."""

    def __init__(self, circuit: "_Circuit", lane: str) -> None:
        self.circuit = circuit
        self.lane = lane
        self.on_message: Optional[Callable] = None
        self.on_close: Optional[Callable] = None
        self.context = None
        self._closed = False

    @property
    def open(self) -> bool:
        return (not self._closed and self.circuit.endpoint is not None
                and self.circuit.endpoint.open)

    @property
    def peer_name(self) -> str:
        return self.circuit.peer

    @property
    def local_name(self) -> str:
        return self.circuit.pool.host_name

    def send(self, payload, nbytes: int = 0,
             extra_delay_ms: float = 0.0) -> None:
        if not self.open:
            return
        # Stamp the lane tag so the remote pool can demultiplex.  The
        # transport stamps before sizing (so the tag's bytes are
        # charged); this is the safety net for direct sends.
        if isinstance(payload, Message) and payload.lane != self.lane:
            payload.lane = self.lane
        self.circuit.endpoint.send(payload, nbytes=nbytes,
                                   extra_delay_ms=extra_delay_ms)

    def close(self) -> None:
        """Detach this lane; the circuit survives for its other lanes
        and is torn down only when the last lane detaches."""
        if self._closed:
            return
        self._closed = True
        self.circuit.detach(self, notify_peer=True)

    def __repr__(self) -> str:
        return "LaneEndpoint(%s <-> %s, lane=%s, %s)" % (
            self.local_name, self.peer_name, self.lane,
            "open" if self.open else "closed")


class _Circuit:
    """One physical connection to a peer host, carrying many lanes."""

    def __init__(self, pool: "CircuitPool", peer: str) -> None:
        self.pool = pool
        self.peer = peer
        self.endpoint = None
        self.established = False
        self.failed = False
        self.lanes: Dict[str, LaneEndpoint] = {}
        #: ``(lane, on_established, on_failed)`` queued while dialing.
        self.waiters: List[tuple] = []

    @property
    def open(self) -> bool:
        return self.endpoint is not None and self.endpoint.open

    # -- lifecycle ----------------------------------------------------

    def adopt(self, endpoint) -> None:
        """Bind the physical endpoint (dial completed or inbound
        accept) and flush any attach waiters."""
        self.endpoint = endpoint
        self.established = True
        endpoint.on_message = self._on_message
        endpoint.on_close = self._on_close
        waiters, self.waiters = self.waiters, []
        for lane, on_established, _on_failed in waiters:
            on_established(self._make_lane(lane))

    def fail(self, reason: str) -> None:
        self.failed = True
        self.pool._drop_circuit(self)
        waiters, self.waiters = self.waiters, []
        for _lane, _on_established, on_failed in waiters:
            if on_failed is not None:
                on_failed(reason)

    def _make_lane(self, lane: str) -> LaneEndpoint:
        old = self.lanes.get(lane)
        if old is not None:
            # A re-attach for the same user supersedes the stale lane
            # (e.g. the user's LPM exited and came back): mark the old
            # one closed without notifying the peer.
            old._closed = True
        endpoint = LaneEndpoint(self, lane)
        self.lanes[lane] = endpoint
        PERF.circuit_lanes_attached += 1
        return endpoint

    def detach(self, lane_endpoint: LaneEndpoint,
               notify_peer: bool) -> None:
        current = self.lanes.get(lane_endpoint.lane)
        if current is lane_endpoint:
            del self.lanes[lane_endpoint.lane]
        if not self.lanes and not self.waiters:
            # Last lane out: tear down the physical circuit.  The
            # orderly close (not a LANE_CLOSE, which would be dropped
            # with the in-flight queue) is what tells the peer.
            self.pool._drop_circuit(self)
            if self.open:
                self.endpoint.close()
            return
        if notify_peer and self.open:
            notice = Message(kind=MsgKind.LANE_CLOSE, req_id=0,
                             origin=self.pool.host_name,
                             user=lane_endpoint.lane,
                             lane=lane_endpoint.lane)
            self.endpoint.send(notice,
                               nbytes=message_size_bytes(notice))

    # -- physical-endpoint callbacks ----------------------------------

    def _on_message(self, message, _endpoint) -> None:
        lane = getattr(message, "lane", None)
        kind = getattr(message, "kind", None)
        if lane is None:
            return  # not lane traffic; nothing above us consumes it
        endpoint = self.lanes.get(lane)
        if kind is MsgKind.LANE_CLOSE:
            if endpoint is not None:
                del self.lanes[lane]
                endpoint._closed = True
                if endpoint.on_close is not None:
                    endpoint.on_close("closed", endpoint)
            if not self.lanes and not self.waiters:
                self.pool._drop_circuit(self)
                if self.open:
                    self.endpoint.close()
            return
        if endpoint is not None:
            if endpoint.on_message is not None:
                endpoint.on_message(message, endpoint)
            return
        if kind is MsgKind.HELLO:
            # A new lane introducing itself.  Hand the per-user HELLO
            # payload to that user's registered transport, which
            # authenticates the token exactly as it would a private
            # circuit.
            acceptor = self.pool.users.get(lane)
            endpoint = self._make_lane(lane)
            if acceptor is None:
                endpoint.close()  # no such user here: refuse the lane
                return
            acceptor(endpoint, message.payload)
            return
        # Traffic for a lane that already detached: drop it.

    def _on_close(self, reason: str, _endpoint) -> None:
        """The physical circuit broke (or closed): every lane goes
        down with it, each notifying its own transport so per-user
        routes through the dead peer are invalidated."""
        self.pool._drop_circuit(self)
        lanes, self.lanes = self.lanes, {}
        for endpoint in lanes.values():
            endpoint._closed = True
            if endpoint.on_close is not None:
                endpoint.on_close(reason, endpoint)


class CircuitPool:
    """Per-host registry of shared circuits and the users riding them."""

    def __init__(self, fabric, node, host_name: str) -> None:
        self.fabric = fabric
        self.node = node
        self.host_name = host_name
        #: peer host -> live circuit (dialing or established).
        self.circuits: Dict[str, _Circuit] = {}
        #: Inbound circuits accepted while a keyed one already existed
        #: (crossing dials); they demultiplex independently.
        self.extra_circuits: List[_Circuit] = []
        #: user -> acceptor(lane_endpoint, hello_payload).
        self.users: Dict[str, Callable] = {}

    # -- shared-instance management -----------------------------------

    @classmethod
    def ensure(cls, carrier, fabric, node, host_name: str) -> "CircuitPool":
        """Get or create the host's pool, hung off ``carrier`` (the
        netsim Host or the realnet node — whatever outlives individual
        LPMs), and (re-)register the well-known listener."""
        pool = getattr(carrier, "_circuit_pool", None)
        if pool is None or pool.node is not node:
            pool = cls(fabric, node, host_name)
            carrier._circuit_pool = pool
        pool.ensure_listening()
        return pool

    def ensure_listening(self) -> None:
        """Idempotent; also heals the listener after a host crash
        cleared the node's service table."""
        self.node.listen(POOL_SERVICE, self._accept)

    def register_user(self, user: str, acceptor: Callable) -> None:
        self.users[user] = acceptor

    def unregister_user(self, user: str) -> None:
        self.users.pop(user, None)

    # -- inventory (benchmarks, ops) ----------------------------------

    def open_circuit_count(self) -> int:
        keyed = sum(1 for circuit in self.circuits.values()
                    if circuit.open)
        return keyed + sum(1 for circuit in self.extra_circuits
                           if circuit.open)

    def lane_count(self) -> int:
        total = sum(len(circuit.lanes)
                    for circuit in self.circuits.values())
        return total + sum(len(circuit.lanes)
                           for circuit in self.extra_circuits)

    # -- attaching lanes ----------------------------------------------

    def attach(self, peer: str, user: str, on_established: Callable,
               on_failed: Optional[Callable] = None,
               setup_ms: float = 0.0,
               detect_ms: Optional[float] = None) -> None:
        """Get-or-dial the circuit to ``peer`` and deliver a fresh
        :class:`LaneEndpoint` to ``on_established``.  The first
        attacher's ``setup_ms``/``detect_ms`` govern the dial."""
        circuit = self.circuits.get(peer)
        if circuit is not None and not circuit.open \
                and circuit.established:
            # Stale entry from a broken circuit: replace it.
            self._drop_circuit(circuit)
            circuit = None
        if circuit is not None:
            PERF.circuit_shares += 1
            if circuit.established:
                on_established(circuit._make_lane(user))
            else:
                circuit.waiters.append((user, on_established, on_failed))
            return
        circuit = _Circuit(self, peer)
        circuit.waiters.append((user, on_established, on_failed))
        self.circuits[peer] = circuit

        kwargs = {}
        if detect_ms is not None:
            kwargs["detect_ms"] = detect_ms
        self.fabric.connect(
            self.host_name, peer, POOL_SERVICE,
            payload={"from_host": self.host_name},
            setup_ms=setup_ms,
            on_established=circuit.adopt,
            on_failed=circuit.fail,
            **kwargs)

    # -- server side --------------------------------------------------

    def _accept(self, endpoint, payload) -> None:
        if not isinstance(payload, dict) or "from_host" not in payload:
            endpoint.close()
            return
        peer = payload["from_host"]
        circuit = _Circuit(self, peer)
        circuit.adopt(endpoint)
        if peer in self.circuits:
            # Crossing dials: both sides dialed at once.  Keep both;
            # each demultiplexes its own endpoint.
            self.extra_circuits.append(circuit)
        else:
            self.circuits[peer] = circuit

    def _drop_circuit(self, circuit: _Circuit) -> None:
        if self.circuits.get(circuit.peer) is circuit:
            del self.circuits[circuit.peer]
        elif circuit in self.extra_circuits:
            self.extra_circuits.remove(circuit)
