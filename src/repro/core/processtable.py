"""The LPM's process table: genealogy records and the kernel socket.

Section 4: the LPM tracks "a process and its descendants" through
adoption and the modified syscalls' event messages.  This module owns
the per-LPM record dictionary and every way it changes — kernel event
ingestion, creation as the ready process-creation server, recursive
adoption, and the PCB re-read that keeps snapshots exact — and emits
the serialised, gpid-sorted record runs the gather layer merges.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..ids import GlobalPid
from ..tracing.events import TraceEventType
from ..unixsim.kernel import KernelEvent, KernelMessage
from ..unixsim.process import ProcState
from .progspec import build_program
from .snapshot import ProcessRecord

#: Commands that are PPM infrastructure, never part of the user's
#: computation (excluded from snapshots and TTL liveness checks).
INFRA_COMMANDS = frozenset({"lpm", "lpm-handler"})

_KERNEL_TO_TRACE = {
    KernelEvent.FORK: TraceEventType.FORK,
    KernelEvent.EXEC: TraceEventType.EXEC,
    KernelEvent.EXIT: TraceEventType.EXIT,
    KernelEvent.SIGNAL: TraceEventType.SIGNAL,
    KernelEvent.STOPPED: TraceEventType.STOPPED,
    KernelEvent.CONTINUED: TraceEventType.CONTINUED,
    KernelEvent.FILE_OPENED: TraceEventType.FILE_OPENED,
    KernelEvent.FILE_CLOSED: TraceEventType.FILE_CLOSED,
}

_STATE_NAMES = {
    ProcState.RUNNING: "running",
    ProcState.SLEEPING: "sleeping",
    ProcState.STOPPED: "stopped",
    ProcState.ZOMBIE: "exited",
    ProcState.DEAD: "exited",
}


class ProcessTable:
    """Genealogy records of one LPM's local processes."""

    def __init__(self, lpm) -> None:
        self.lpm = lpm
        self.records: Dict[int, ProcessRecord] = {}

    # ------------------------------------------------------------------
    # The kernel socket
    # ------------------------------------------------------------------

    def on_kernel_message(self, kmsg: KernelMessage) -> None:
        lpm = self.lpm
        if not lpm.is_running():
            return
        gpid = lpm.gpid_of(kmsg.pid)
        lpm._trace(TraceEventType.KERNEL_MESSAGE, gpid=gpid,
                   event=kmsg.event.value)
        trace_type = _KERNEL_TO_TRACE[kmsg.event]
        lpm._trace(trace_type, gpid=gpid, **dict(kmsg.details))
        record = self.records.get(kmsg.pid)
        if kmsg.event is KernelEvent.FORK:
            if kmsg.pid not in self.records and \
                    kmsg.command not in INFRA_COMMANDS:
                parent_gpid = lpm.gpid_of(kmsg.ppid) \
                    if kmsg.ppid in self.records else None
                self.records[kmsg.pid] = ProcessRecord(
                    gpid=gpid, parent=parent_gpid, user=lpm.user,
                    command=kmsg.command, state="running",
                    start_ms=kmsg.timestamp_ms)
        elif record is not None:
            if kmsg.event is KernelEvent.EXEC:
                record.command = kmsg.details.get("command", record.command)
            elif kmsg.event is KernelEvent.EXIT:
                record.state = "exited"
                record.end_ms = kmsg.timestamp_ms
                record.exit_status = kmsg.details.get("status")
                if "rusage" in kmsg.details:
                    record.rusage = dict(kmsg.details["rusage"])
                lpm._arm_ttl()
            elif kmsg.event is KernelEvent.STOPPED:
                record.state = "stopped"
            elif kmsg.event is KernelEvent.CONTINUED:
                record.state = "running"

    # ------------------------------------------------------------------
    # Creation and adoption
    # ------------------------------------------------------------------

    def create_local_process(self, command: str, args=(), program_spec=None,
                             parent: Optional[GlobalPid] = None,
                             foreground: bool = True):
        """Create (and adopt) a user process with this LPM as creation
        server; returns the kernel process."""
        lpm = self.lpm
        program = build_program(program_spec)
        proc = lpm.host.kernel.spawn(lpm.uid, command, tuple(args),
                                     program=program, ppid=lpm.proc.pid,
                                     foreground=foreground)
        lpm.host.kernel.adopt(lpm.uid, proc.pid, lpm.trace_flags)
        self.records[proc.pid] = ProcessRecord(
            gpid=lpm.gpid_of(proc.pid), parent=parent, user=lpm.user,
            command=command, state=_STATE_NAMES[proc.state],
            start_ms=proc.start_ms, foreground=foreground)
        lpm._trace(TraceEventType.PROCESS_CREATED,
                   gpid=lpm.gpid_of(proc.pid), command=command)
        lpm._cancel_ttl()
        return proc

    def adopt_process(self, pid: int) -> List[int]:
        """Adopt an existing process and its live descendants
        ("Adoption allows the LPM to keep track of a process and its
        descendants", section 4).  Returns the pids adopted."""
        lpm = self.lpm
        kernel = lpm.host.kernel
        adopted = []
        stack = [pid]
        while stack:
            current = stack.pop()
            proc = kernel.adopt(lpm.uid, current, lpm.trace_flags)
            if current not in self.records:
                parent_gpid = lpm.gpid_of(proc.ppid) \
                    if proc.ppid in self.records else None
                self.records[current] = ProcessRecord(
                    gpid=lpm.gpid_of(current), parent=parent_gpid,
                    user=lpm.user, command=proc.command,
                    state=_STATE_NAMES[proc.state], start_ms=proc.start_ms,
                    foreground=proc.foreground)
            lpm._trace(TraceEventType.ADOPTED, gpid=lpm.gpid_of(current))
            adopted.append(current)
            stack.extend(child.pid for child in kernel.procs.children_of(
                current) if child.alive)
        lpm._cancel_ttl()
        return adopted

    # ------------------------------------------------------------------
    # Serialisation for gathers
    # ------------------------------------------------------------------

    def refresh_records(self) -> None:
        """Re-read local PCBs (the LPM has ptrace access) so a snapshot
        reflects states the delayed kernel messages have not delivered
        yet."""
        kernel = self.lpm.host.kernel
        for pid, record in self.records.items():
            proc = kernel.procs.find(pid)
            if proc is None:
                if record.state != "exited":
                    record.state = "exited"
                continue
            record.state = _STATE_NAMES[proc.state]
            record.foreground = proc.foreground
            if proc.end_ms is not None:
                record.end_ms = proc.end_ms
                record.exit_status = proc.exit_status
            record.rusage = {"utime_ms": proc.rusage.utime_ms,
                             "forks": proc.rusage.forks,
                             "signals": proc.rusage.signals_received}
            # The LPM reads the descriptor table straight from the PCB
            # (ptrace access), feeding the section 7 files/fd tools.
            record.open_files = [
                {"fd": entry.fd, "path": entry.path, "mode": entry.mode,
                 "opened_ms": entry.opened_ms}
                for entry in sorted(proc.fd_table.values(),
                                    key=lambda e: e.fd)]
            record.closed_files = [
                {"path": entry.path, "mode": entry.mode,
                 "opened_ms": entry.opened_ms,
                 "closed_ms": entry.closed_ms}
                for entry in proc.closed_files]

    def local_records(self, what: str = "snapshot") -> List[dict]:
        """Serialised record list for a gather: one run sorted by
        ``(host, pid)`` — the host is constant here, so pid order — as
        the gather layer's k-way merge requires."""
        self.refresh_records()
        records = [self.records[pid] for pid in sorted(self.records)]
        if what == "rstats":
            records = [r for r in records if r.exited]
        return [record.to_dict() for record in records]
