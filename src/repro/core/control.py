"""Process control actions.

The built-in control functionality of the snapshot tool: "stop a
process, execute it in the foreground, execute it in the background,
kill it" (section 4), plus TERMINATE (the polite SIGTERM).  Actions are
applied "with no interprocess constraints based on creation
dependencies" — any process of the user's, anywhere, by ``<host, pid>``.
"""

from __future__ import annotations

from enum import Enum

from ..unixsim.kernel import Kernel
from ..unixsim.signals import Signal


class ControlAction(Enum):
    """User-visible control verbs."""

    STOP = "stop"
    CONTINUE = "continue"
    FOREGROUND = "foreground"
    BACKGROUND = "background"
    TERMINATE = "terminate"
    KILL = "kill"


def apply_action(kernel: Kernel, pid: int, action: ControlAction,
                 uid: int) -> None:
    """Carry out one action through the local kernel's facilities
    ("LPMs use primarily 4.3BSD mechanisms for intramachine process
    control", section 4)."""
    if action is ControlAction.STOP:
        kernel.kill(pid, Signal.SIGSTOP, sender_uid=uid)
    elif action is ControlAction.CONTINUE:
        kernel.kill(pid, Signal.SIGCONT, sender_uid=uid)
    elif action is ControlAction.FOREGROUND:
        kernel.set_foreground(pid, True, sender_uid=uid)
        kernel.kill(pid, Signal.SIGCONT, sender_uid=uid)
    elif action is ControlAction.BACKGROUND:
        kernel.set_foreground(pid, False, sender_uid=uid)
        kernel.kill(pid, Signal.SIGCONT, sender_uid=uid)
    elif action is ControlAction.TERMINATE:
        kernel.kill(pid, Signal.SIGTERM, sender_uid=uid)
    elif action is ControlAction.KILL:
        kernel.kill(pid, Signal.SIGKILL, sender_uid=uid)
    else:  # pragma: no cover - exhaustive enum
        raise ValueError("unknown action %r" % (action,))
