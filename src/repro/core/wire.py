"""Serialisation and size accounting for protocol messages.

The simulator passes message objects by reference, but the protocol is
kept fully serialisable (program images travel as declarative *specs*,
never as live objects) and this module proves it: :func:`encode` /
:func:`decode` round-trip any :class:`Message`, and
:func:`message_size_bytes` is the size the network charges for.
"""

from __future__ import annotations

import json
from typing import Optional

from ..errors import ReproError
from ..ids import BroadcastId
from ..perf import PERF
from .messages import Message, MsgKind

#: Fixed framing overhead per message (headers, lengths, checksums).
HEADER_BYTES = 48


def _broadcast_to_dict(broadcast: Optional[BroadcastId]) -> Optional[dict]:
    if broadcast is None:
        return None
    return {"origin": broadcast.origin, "ts": broadcast.timestamp_ms,
            "seq": broadcast.seq, "sig": broadcast.signature}


def _broadcast_from_dict(data: Optional[dict]) -> Optional[BroadcastId]:
    if data is None:
        return None
    return BroadcastId(origin=data["origin"], timestamp_ms=data["ts"],
                       seq=data["seq"], signature=data["sig"])


def encode(message: Message) -> bytes:
    """Canonical JSON encoding of a message.

    Encodings are cached on the message object.  The cache key is the
    message's :meth:`~repro.core.messages.Message.wire_fingerprint` —
    the fields that legitimately change while a message is in flight
    (the route grows hop by hop as broadcasts are forwarded).  Payload
    dicts are immutable-by-convention after construction, so a message
    that is sized or transmitted on several links encodes exactly once
    per route extension instead of once per hop.
    """
    cached = message._wire_cache
    fingerprint = message.wire_fingerprint()
    if cached is not None and cached[0] == fingerprint:
        PERF.encode_cache_hits += 1
        return cached[1]
    PERF.encodes_performed += 1
    fields = {
        "kind": message.kind.value,
        "req_id": message.req_id,
        "origin": message.origin,
        "user": message.user,
        "payload": message.payload,
        "route": message.route,
        "reply_to": message.reply_to,
        "broadcast": _broadcast_to_dict(message.broadcast),
        "final_dest": message.final_dest,
    }
    # The span context is genuinely absent (not null) when tracing is
    # off, so untraced runs produce byte-identical encodings — and
    # therefore identical simulated byte charges — to pre-span builds.
    if message.trace is not None:
        fields["trace"] = message.trace
    # Likewise the lane tag: only shared-circuit traffic carries it, so
    # single-tenant runs keep byte-identical encodings and byte charges.
    if message.lane is not None:
        fields["lane"] = message.lane
    try:
        body = json.dumps(fields, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError) as exc:
        raise ReproError(
            "unserialisable payload in %s: %s" % (message.kind, exc)) from exc
    encoded = body.encode("utf-8")
    message._wire_cache = (fingerprint, encoded)
    return encoded


def decode(data: bytes) -> Message:
    """Inverse of :func:`encode`."""
    raw = json.loads(data.decode("utf-8"))
    return Message(kind=MsgKind(raw["kind"]), req_id=raw["req_id"],
                   origin=raw["origin"], user=raw["user"],
                   payload=raw["payload"], route=list(raw["route"]),
                   reply_to=raw["reply_to"],
                   broadcast=_broadcast_from_dict(raw["broadcast"]),
                   final_dest=raw["final_dest"],
                   trace=raw.get("trace"), lane=raw.get("lane"))


def message_size_bytes(message: Message) -> int:
    """The size the network charges when this message is transmitted."""
    PERF.size_calls += 1
    nbytes = HEADER_BYTES + len(encode(message))
    PERF.bytes_charged += nbytes
    return nbytes
