"""The datagram sibling transport.

Section 3: "Virtual circuits, however, limit extensibility.  A datagram
based scheme would scale much better, but would require individual
authentication for each message. ... A reliable datagram protocol and a
scheme based on remote procedure calls, would be promising alternatives
for scalability."

This module is that reliable datagram protocol, selected with
``PPMConfig(transport="datagram")``:

* **No kept connections.**  Each LPM binds one datagram port; peers are
  plain addresses.  The network holds zero circuit state for the
  session.
* **Individual authentication for each message.**  An *intro* datagram
  presents the pmd-issued token (the trusted introduction); every later
  *data* datagram carries a signature over the session secret, sender,
  and sequence number, and the netsim datagram layer charges the
  per-message authentication cost.
* **ARQ reliability.**  Data and intro datagrams are retransmitted on a
  timeout until acknowledged; exhausted retries report the peer lost
  (which feeds the same section 5 recovery machinery the stream
  transport feeds through broken circuits).

The :class:`DatagramEndpoint` mimics the stream endpoint's interface
(`send`, `open`, `close`, `on_message`, `on_close`, `peer_name`), so the
whole LPM protocol runs unchanged over either transport.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict, Optional

from ..errors import ConnectionClosedError
from ..util import Deferred

#: Per-peer window of remembered sequence numbers (duplicate delivery
#: suppression for retransmitted datagrams).
SEEN_WINDOW = 128


def _port_name(user: str) -> str:
    return "lpmdg:%s" % (user,)


def _sign(secret: str, from_host: str, seq: int) -> str:
    digest = hashlib.sha256(("%s|%s|%d" % (secret, from_host,
                                           seq)).encode("utf-8"))
    return digest.hexdigest()[:16]


class DatagramEndpoint:
    """One logical peer relationship over the datagram fabric."""

    def __init__(self, fabric: "DatagramFabric", peer: str) -> None:
        self.fabric = fabric
        self.local_name = fabric.lpm.name
        self.peer_name = peer
        self.on_message: Optional[Callable] = None
        self.on_close: Optional[Callable] = None
        self.context = None
        self._closed = False
        self._next_seq = 0
        #: seq -> (timer, datagram dict, tries) awaiting acks.
        self._unacked: Dict[int, list] = {}
        #: recently delivered sequence numbers from the peer.
        self._seen: list = []
        #: intro_id of the peer incarnation whose seqs ``_seen`` covers.
        self._peer_intro_id: Optional[str] = None

    @property
    def open(self) -> bool:
        return not self._closed and self.fabric.bound

    # ------------------------------------------------------------------
    # Sending with ARQ
    # ------------------------------------------------------------------

    def send(self, payload, nbytes: int = 256,
             extra_delay_ms: float = 0.0) -> None:
        if not self.open:
            raise ConnectionClosedError(
                "%s -> %s (datagram)" % (self.local_name, self.peer_name))
        self._next_seq += 1
        seq = self._next_seq
        datagram = {"kind": "data", "seq": seq,
                    "from_host": self.local_name,
                    "user": self.fabric.lpm.user,
                    "sig": _sign(self.fabric.lpm.secret, self.local_name,
                                 seq),
                    "payload": payload}
        self._transmit(datagram, nbytes, extra_delay_ms, tries=1)

    def send_ping(self) -> None:
        """A keepalive: crosses the ARQ (so retry exhaustion detects a
        dead peer) but is never delivered to the protocol layer."""
        if not self.open:
            return
        self._next_seq += 1
        seq = self._next_seq
        datagram = {"kind": "ping", "seq": seq,
                    "from_host": self.local_name,
                    "user": self.fabric.lpm.user,
                    "sig": _sign(self.fabric.lpm.secret, self.local_name,
                                 seq)}
        self._transmit(datagram, 64, 0.0, tries=1)

    def send_intro(self, token: str, nbytes: int = 200) -> None:
        """The introduction: per-message proof via the pmd token."""
        self._next_seq += 1
        lpm = self.fabric.lpm
        datagram = {"kind": "intro", "seq": self._next_seq,
                    "from_host": self.local_name, "user": lpm.user,
                    "token": token, "secret": lpm.secret,
                    "ccs_host": lpm.ccs_host,
                    "intro_id": self.fabric.next_intro_id(),
                    "known": lpm.topology.known_hosts()}
        self._transmit(datagram, nbytes, 0.0, tries=1)

    def _transmit(self, datagram: dict, nbytes: int,
                  extra_delay_ms: float, tries: int) -> None:
        lpm = self.fabric.lpm
        config = lpm.config
        seq = datagram["seq"]
        lpm.fabric.datagram_send(
            self.local_name, self.peer_name, _port_name(lpm.user),
            datagram, nbytes=nbytes, extra_delay_ms=extra_delay_ms)
        timer = lpm.sim.schedule(
            config.datagram_rto_ms * tries,  # linear backoff
            self._retransmit, seq, nbytes, owner=self.local_name,
            label="dgram rto %s->%s#%d" % (self.local_name,
                                           self.peer_name, seq))
        self._unacked[seq] = [timer, datagram, tries]

    def _retransmit(self, seq: int, nbytes: int) -> None:
        entry = self._unacked.get(seq)
        if entry is None or self._closed:
            return
        _timer, datagram, tries = entry
        if tries >= self.fabric.lpm.config.datagram_max_retries:
            del self._unacked[seq]
            self._fail("datagram timeout")
            return
        self._transmit(datagram, nbytes, 0.0, tries + 1)

    def on_ack(self, seq: int) -> None:
        entry = self._unacked.pop(seq, None)
        if entry is not None:
            self.fabric.lpm.sim.cancel(entry[0])

    def note_peer_alive(self) -> None:
        """Any authenticated arrival proves the peer is up.

        In-flight retry budgets restart, so under message loss an
        endpoint only dies after a full retry window of *mutual*
        silence — matching the stream transport, whose circuits break
        on peer death rather than on lost packets.  A crashed or
        partitioned peer sends nothing, so failure detection
        (`test_retry_exhaustion_closes_endpoint`) is unaffected.
        """
        for entry in self._unacked.values():
            entry[2] = 0

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------

    def deliver(self, datagram: dict) -> None:
        seq = datagram["seq"]
        self.fabric.send_ack(self.peer_name, seq)
        if seq in self._seen:
            return  # a retransmission of something already delivered
        self._seen.append(seq)
        if len(self._seen) > SEEN_WINDOW:
            del self._seen[0]
        if self.on_message is not None:
            self.on_message(datagram["payload"], self)

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for timer, _datagram, _tries in self._unacked.values():
            self.fabric.lpm.sim.cancel(timer)
        self._unacked.clear()
        self.fabric.forget(self.peer_name)

    def _fail(self, reason: str) -> None:
        if self._closed:
            return
        self._closed = True
        for timer, _datagram, _tries in self._unacked.values():
            self.fabric.lpm.sim.cancel(timer)
        self._unacked.clear()
        self.fabric.forget(self.peer_name)
        if self.on_close is not None:
            self.on_close(reason, self)

    def __repr__(self) -> str:
        return "DatagramEndpoint(%s <-> %s, %s)" % (
            self.local_name, self.peer_name,
            "open" if self.open else "closed")


class DatagramFabric:
    """Per-LPM datagram dispatcher: one bound port, many peers."""

    def __init__(self, lpm) -> None:
        self.lpm = lpm
        self.bound = False
        self._endpoints: Dict[str, DatagramEndpoint] = {}
        self._pending_intros: Dict[str, Deferred] = {}
        self._keepalive_timer = None
        self._next_intro_id = 0
        self.rejected = 0
        self.pings_sent = 0

    def next_intro_id(self) -> str:
        """A fresh endpoint-incarnation marker.

        Carried in the intro so the receiver can tell a *new* sender
        endpoint (sequence numbers reset — stale ``_seen`` entries
        would silently swallow its messages) from a mere retransmission
        of an intro it already processed (clearing ``_seen`` there
        could re-deliver data, breaking exactly-once).  Qualified with
        the simulation clock so the marker survives an LPM restart
        (which resets the per-fabric counter).
        """
        self._next_intro_id += 1
        return "%.6f:%d" % (self.lpm.sim.now_ms, self._next_intro_id)

    def bind(self) -> None:
        self.lpm.fabric.datagram_bind(self.lpm.name,
                                      _port_name(self.lpm.user),
                                      self._on_datagram)
        self.bound = True
        self._arm_keepalive()

    def unbind(self) -> None:
        if self.bound:
            self.lpm.fabric.datagram_unbind(self.lpm.name,
                                            _port_name(self.lpm.user))
            self.bound = False
        if self._keepalive_timer is not None:
            self.lpm.sim.cancel(self._keepalive_timer)
            self._keepalive_timer = None
        for endpoint in list(self._endpoints.values()):
            endpoint.close()
        self._endpoints.clear()

    # ------------------------------------------------------------------
    # Keepalive: the datagram substitute for broken-circuit detection
    # ------------------------------------------------------------------

    def _arm_keepalive(self) -> None:
        self._keepalive_timer = self.lpm.sim.schedule(
            self.lpm.config.datagram_keepalive_ms, self._keepalive_tick,
            owner=self.lpm.name,
            label="dgram keepalive %s" % (self.lpm.name,))

    def _keepalive_tick(self) -> None:
        self._keepalive_timer = None
        if not self.bound or not self.lpm.is_running():
            return
        for endpoint in list(self._endpoints.values()):
            if endpoint.open and not endpoint._unacked:
                self.lpm.sim.schedule(
                    self._keepalive_offset_ms(endpoint.peer_name),
                    self._ping_endpoint, endpoint.peer_name,
                    owner=self.lpm.name,
                    label="dgram ping %s->%s" % (self.lpm.name,
                                                 endpoint.peer_name))
        self._arm_keepalive()

    def _ping_endpoint(self, peer: str) -> None:
        if not self.bound or not self.lpm.is_running():
            return
        endpoint = self._endpoints.get(peer)
        if endpoint is not None and endpoint.open \
                and not endpoint._unacked:
            endpoint.send_ping()
            self.pings_sent += 1

    def _keepalive_offset_ms(self, peer: str) -> float:
        """A per-endpoint jitter within the global keepalive period, so
        a large session's pings spread instead of bursting on one tick.

        Derived by hashing stable session identifiers — never from the
        shared simulation RNG, whose draw sequence downstream code
        depends on — so the offset is deterministic for a given seed
        (the session secret is seed-derived) without perturbing any
        other random choice.
        """
        digest = hashlib.sha256(
            ("keepalive|%s|%s|%s" % (self.lpm.secret, self.lpm.name,
                                     peer)).encode("utf-8")).digest()
        fraction = int.from_bytes(digest[:4], "big") / 2.0 ** 32
        return fraction * self.lpm.config.datagram_keepalive_ms

    def endpoint_for(self, peer: str) -> DatagramEndpoint:
        endpoint = self._endpoints.get(peer)
        if endpoint is None or not endpoint.open:
            endpoint = DatagramEndpoint(self, peer)
            self._endpoints[peer] = endpoint
        return endpoint

    def forget(self, peer: str) -> None:
        self._endpoints.pop(peer, None)

    # ------------------------------------------------------------------
    # Introduction handshake (client side)
    # ------------------------------------------------------------------

    def introduce(self, peer: str, token: str) -> Deferred:
        """Send an intro and resolve to the endpoint (or None)."""
        if peer in self._pending_intros:
            return self._pending_intros[peer]
        done = Deferred()
        self._pending_intros[peer] = done
        done.then(lambda _r: self._pending_intros.pop(peer, None))
        endpoint = self.endpoint_for(peer)
        original_close = endpoint.on_close

        def intro_failed(reason, ep) -> None:
            done.resolve(None)
            if original_close is not None:
                original_close(reason, ep)

        endpoint.on_close = intro_failed
        endpoint.context = {"await_intro": done}
        endpoint.send_intro(token)
        return done

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def send_ack(self, peer: str, seq: int) -> None:
        self.lpm.fabric.datagram_send(
            self.lpm.name, peer, _port_name(self.lpm.user),
            {"kind": "ack", "seq": seq, "from_host": self.lpm.name},
            nbytes=48)

    def _on_datagram(self, datagram, src_host: str) -> None:
        if not self.lpm.is_running() or not isinstance(datagram, dict):
            return
        kind = datagram.get("kind")
        sender = datagram.get("from_host", src_host)
        if kind == "ack":
            endpoint = self._endpoints.get(sender)
            if endpoint is not None:
                endpoint.note_peer_alive()
                endpoint.on_ack(datagram["seq"])
        elif kind == "intro":
            self._handle_intro(datagram, sender)
        elif kind == "intro_ack":
            endpoint = self._endpoints.get(sender)
            if endpoint is not None:
                endpoint.note_peer_alive()
                endpoint.on_ack(datagram.get("acked_seq", -1))
                self.lpm.transport.on_datagram_intro_ack(datagram, endpoint)
        elif kind == "data":
            self._handle_data(datagram, sender)
        elif kind == "ping":
            expected = _sign(self.lpm.secret, sender, datagram["seq"])
            if datagram.get("sig") != expected:
                self.rejected += 1
                return
            endpoint = self._endpoints.get(sender)
            if endpoint is not None:
                endpoint.note_peer_alive()
            self.send_ack(sender, datagram["seq"])

    def _handle_intro(self, datagram: dict, sender: str) -> None:
        lpm = self.lpm
        if datagram.get("token") != lpm.token or \
                datagram.get("user") != lpm.user:
            self.rejected += 1
            return  # silently dropped, like a bad packet
        endpoint = self.endpoint_for(sender)
        intro_id = datagram.get("intro_id")
        if intro_id != endpoint._peer_intro_id:
            # A new sender incarnation: its sequence numbers restart,
            # so the old incarnation's delivered-window must not
            # suppress them.  (A retransmitted intro carries the same
            # intro_id and leaves the window alone.)
            endpoint._peer_intro_id = intro_id
            endpoint._seen.clear()
        endpoint.note_peer_alive()
        # Ack the intro itself and let the transport register the
        # sibling link.
        lpm.transport.on_datagram_intro(datagram, endpoint)
        lpm.fabric.datagram_send(
            lpm.name, sender, _port_name(lpm.user),
            {"kind": "intro_ack", "seq": 0,
             "acked_seq": datagram["seq"], "from_host": lpm.name,
             "secret": lpm.secret, "ccs_host": lpm.ccs_host,
             "known": lpm.topology.known_hosts()},
            nbytes=200)

    def _handle_data(self, datagram: dict, sender: str) -> None:
        # Individual authentication for each message (section 3).
        expected = _sign(self.lpm.secret, sender, datagram["seq"])
        if datagram.get("sig") != expected:
            self.rejected += 1
            return
        endpoint = self._endpoints.get(sender)
        if endpoint is None:
            self.rejected += 1  # data from an unintroduced peer
            return
        endpoint.note_peer_alive()
        endpoint.deliver(datagram)
