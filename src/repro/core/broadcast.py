"""Broadcast over the sparse on-demand overlay.

"Because our on-demand communication topology is designed to produce
low-connectivity graphs, we have to pay a price for broadcast requests.
The PPM uses a graph covering algorithm.  A scheme for not
retransmitting old broadcast requests has been implemented using a
signed timestamp in which the name of the originating host appears."
(section 4)

The engine stamps outgoing broadcasts with a :class:`BroadcastId`
(signed with the session secret), keeps seen stamps for the configurable
retention window, and floods unseen requests to every sibling except the
arrival link — flooding over a connected graph is the graph-covering
algorithm.  A hop limit guards the pathological window=0 configuration
the A2 ablation explores.

Under the ``sparse`` topology policy the flood's accept/duplicate
verdicts double as per-source spanning-tree feedback: the link a fresh
stamp arrived on is the reverse-path parent, and every duplicate drop
identifies a non-tree edge for :mod:`repro.core.spantree` to prune, so
repeat broadcasts from the same source traverse ~(n−1) tree links.  The
stamp's monotone ``seq`` doubles as the tree epoch.
"""

from __future__ import annotations

from typing import Optional

from ..ids import BroadcastId
from ..perf import PERF
from .expiry import ExpiryMap

#: Safety bound: a broadcast never crosses more overlay hops than this.
MAX_BROADCAST_HOPS = 32


class BroadcastEngine:
    """Duplicate suppression and stamping for one LPM."""

    def __init__(self, self_host: str, window_ms: float,
                 now_fn, secret_fn) -> None:
        self.self_host = self_host
        self.window_ms = window_ms
        self._now_fn = now_fn
        #: Callable returning the current session secret (it can change
        #: when the LPM joins an existing session).
        self._secret_fn = secret_fn
        #: Seen stamps, expiry-ordered: purge work is amortised O(1)
        #: per arrival instead of a full rescan (the old quadratic
        #: behaviour under a flood).  Window-boundary semantics are
        #: identical — ``expiry < now`` forgets, ``expiry == now`` keeps.
        self._seen = ExpiryMap(window_ms, now_fn)
        self._next_seq = 0
        self.duplicates_dropped = 0
        self.forwards = 0
        self.rejected_signatures = 0
        self.hop_limited = 0

    def stamp(self) -> BroadcastId:
        """Create a signed stamp for a broadcast we originate, and mark
        it seen so reflections are dropped."""
        self._next_seq += 1
        stamp = BroadcastId.make(self.self_host, self._now_fn(),
                                 self._next_seq, self._secret_fn())
        self._remember(stamp)
        return stamp

    def should_accept(self, stamp: Optional[BroadcastId],
                      hops: int = 0) -> bool:
        """Decide whether an arriving broadcast is fresh.

        Verifies the signature, enforces the hop bound, consults (and
        updates) the seen-set.  Returns False for duplicates within the
        retention window.
        """
        PERF.dedup_checks += 1
        if stamp is None:
            return False
        if not stamp.verify(self._secret_fn()):
            self.rejected_signatures += 1
            return False
        if hops > MAX_BROADCAST_HOPS:
            self.hop_limited += 1
            return False
        if stamp.key() in self._seen:  # purges expired entries first
            self.duplicates_dropped += 1
            return False
        self._remember(stamp)
        return True

    def _remember(self, stamp: BroadcastId) -> None:
        self._seen.add(stamp.key())

    def seen_count(self) -> int:
        return len(self._seen)
