"""Resilient computations — the robust layer the paper leaves open.

Section 5: "Were we managing resilient computations, control would have
to be carefully transferred to another host.  This can be achieved with
robust protocols implemented on top of our basic mechanism.  We have
chosen not to do so in our first implementation."

This module is that protocol, built strictly *on top* of the public
tool interface (snapshots and process creation through a
:class:`repro.core.client.PPMClient`): a supervisor describes the units
of a computation, each with a priority list of candidate hosts — the
same shape as a ``.recovery`` list — and re-creates any unit whose
process exited or whose host vanished, on the best available host.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import PPMError
from ..ids import GlobalPid


@dataclass
class UnitSpec:
    """One resilient unit of the computation."""

    name: str
    command: str
    program: Optional[dict]
    #: Hosts in decreasing order of preference.
    candidate_hosts: List[str]
    max_restarts: int = 8


@dataclass
class UnitState:
    """Runtime state of a unit under supervision."""

    spec: UnitSpec
    gpid: Optional[GlobalPid] = None
    restarts: int = 0
    failed_permanently: bool = False
    history: List[str] = field(default_factory=list)

    @property
    def hosting(self) -> Optional[str]:
        return self.gpid.host if self.gpid is not None else None


class ResilientComputation:
    """A supervisor keeping a set of units alive across failures."""

    def __init__(self, client, units: List[UnitSpec],
                 parent: Optional[GlobalPid] = None) -> None:
        self.client = client
        self.world = client.world
        self.parent = parent
        self.units: Dict[str, UnitState] = {
            spec.name: UnitState(spec=spec) for spec in units}
        self.checks = 0
        self.restarts_performed = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "ResilientComputation":
        """Place every unit on its preferred reachable host."""
        for state in self.units.values():
            self._place(state)
        return self

    def _place(self, state: UnitState) -> bool:
        """Try candidate hosts in priority order."""
        for host in state.spec.candidate_hosts:
            world_host = self.world.hosts.get(host)
            if world_host is None or not world_host.up:
                continue
            try:
                state.gpid = self.client.create_process(
                    state.spec.command, host=host,
                    program=state.spec.program, parent=self.parent)
            except PPMError:
                continue
            state.history.append("placed on %s as %s"
                                 % (host, state.gpid))
            return True
        state.gpid = None
        state.history.append("no candidate host available")
        return False

    # ------------------------------------------------------------------
    # Supervision
    # ------------------------------------------------------------------

    def check_once(self) -> List[str]:
        """One supervision pass: restart dead or lost units.

        Returns the names of units acted upon.  Control transfer is the
        paper's phrase made literal: a unit whose host crashed is
        re-created on the next host of its candidate list.
        """
        self.checks += 1
        forest = self.client.snapshot(prune=False)
        acted: List[str] = []
        for state in self.units.values():
            if state.failed_permanently or state.gpid is None:
                continue
            record = forest.records.get(state.gpid)
            host = self.world.hosts.get(state.gpid.host)
            alive = (record is not None and not record.exited
                     and host is not None and host.up)
            if alive:
                continue
            if state.restarts >= state.spec.max_restarts:
                state.failed_permanently = True
                state.history.append("gave up after %d restarts"
                                     % (state.restarts,))
                acted.append(state.spec.name)
                continue
            state.restarts += 1
            self.restarts_performed += 1
            reason = "host down" if (host is None or not host.up) \
                else "process exited"
            state.history.append("restart %d (%s)"
                                 % (state.restarts, reason))
            self._place(state)
            acted.append(state.spec.name)
        return acted

    def run_supervised(self, duration_ms: float,
                       check_interval_ms: float = 5_000.0) -> None:
        """Advance the world, checking units at each interval."""
        deadline = self.world.now_ms + duration_ms
        while self.world.now_ms < deadline:
            step = min(check_interval_ms, deadline - self.world.now_ms)
            self.world.run_for(step)
            self.check_once()

    # ------------------------------------------------------------------
    # Introspection and teardown
    # ------------------------------------------------------------------

    def status(self) -> Dict[str, dict]:
        return {name: {"gpid": str(state.gpid) if state.gpid else None,
                       "host": state.hosting,
                       "restarts": state.restarts,
                       "failed": state.failed_permanently}
                for name, state in sorted(self.units.items())}

    def all_running(self) -> bool:
        forest = self.client.snapshot(prune=False)
        for state in self.units.values():
            if state.gpid is None or state.failed_permanently:
                return False
            record = forest.records.get(state.gpid)
            if record is None or record.exited:
                return False
        return True

    def shutdown(self) -> None:
        """Kill every unit still alive."""
        from .control import ControlAction
        for state in self.units.values():
            if state.gpid is None:
                continue
            try:
                self.client.control(state.gpid, ControlAction.KILL)
            except PPMError:
                pass
