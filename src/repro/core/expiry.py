"""An amortised-constant-time expiring map.

Several PPM caches retain entries for a fixed window of simulated time:
the broadcast dedup seen-set (section 4's "scheme for not retransmitting
old broadcast requests"), and the exactly-once request-dedup cache in
the LPM.  A naive implementation rescans the whole map on every purge —
O(n) per lookup, quadratic over a flood.  :class:`ExpiryMap` keeps a
FIFO of ``(expiry, key)`` pairs alongside the dict; because every entry
is inserted with the same constant window at non-decreasing simulated
times, the FIFO is ordered by expiry and purging pops only the entries
that actually expired — amortised O(1) per operation.

Semantics match the naive scan exactly: an entry whose expiry is
*strictly less than* now is forgotten; an entry expiring exactly at now
is still live (the A2 window-boundary behaviour the ablation tests pin).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Hashable, Optional, Tuple

from ..perf import PERF


class ExpiryMap:
    """Dict-with-TTL whose purge cost is amortised O(1).

    Every ``add`` appends one FIFO record, so a refreshed key may have
    several records queued; only the dict is authoritative.  A popped
    record whose key now carries a later expiry is simply discarded —
    the record matching the live expiry is still queued behind it.  The
    FIFO stays expiry-ordered because the window is constant and the
    clock is monotonic, which is what makes the purge complete: after
    :meth:`purge` returns, *no* expired entry remains in the dict.
    """

    __slots__ = ("window_ms", "_now_fn", "_entries", "_fifo")

    def __init__(self, window_ms: float, now_fn) -> None:
        self.window_ms = window_ms
        self._now_fn = now_fn
        self._entries: Dict[Hashable, Tuple[float, object]] = {}
        self._fifo: Deque[Tuple[float, Hashable]] = deque()

    def add(self, key: Hashable, value: object = None) -> None:
        """Insert ``key`` (or refresh it) with a fresh window."""
        expiry = self._now_fn() + self.window_ms
        self._fifo.append((expiry, key))
        self._entries[key] = (expiry, value)

    def get(self, key: Hashable, default: object = None) -> object:
        """Return the live value for ``key``, or ``default``."""
        self.purge()
        entry = self._entries.get(key)
        if entry is None:
            return default
        return entry[1]

    def __contains__(self, key: Hashable) -> bool:
        self.purge()
        return key in self._entries

    def __len__(self) -> int:
        self.purge()
        return len(self._entries)

    def purge(self) -> int:
        """Drop every entry whose expiry is strictly in the past.

        Returns the number of entries dropped.  Only expired FIFO
        records are touched, so total purge work over a run is bounded
        by total insertions.
        """
        now = self._now_fn()
        dropped = 0
        fifo = self._fifo
        entries = self._entries
        while fifo and fifo[0][0] < now:
            PERF.dedup_entries_scanned += 1
            _, key = fifo.popleft()
            entry = entries.get(key)
            # A missing or later-expiring entry means this record was
            # superseded by a refresh; the live record is behind us.
            if entry is not None and entry[0] < now:
                del entries[key]
                dropped += 1
        PERF.dedup_entries_expired += dropped
        return dropped

    def discard(self, key: Hashable) -> None:
        """Drop ``key`` immediately, if present.  Its queued FIFO
        records are ignored when popped (entry already gone)."""
        self._entries.pop(key, None)

    def clear(self) -> None:
        self._entries.clear()
        self._fifo.clear()

    def __repr__(self) -> str:
        return "ExpiryMap(window_ms=%r, live=%d)" % (
            self.window_ms, len(self._entries))
