"""The LPM's internal concurrency structure.

"The LPM is, itself, a multi-process program.  It consists of a main
dispatcher process, and some number of handler processes. ... These
handler processes may block while waiting for a response from a remote
process without interrupting the service of the LPM.  Since process
creation in UNIX is relatively expensive, processes that have handled a
request may be given further requests, rather than simply creating new
processes." (section 6)

Handlers are real processes in the simulated kernel (command
``lpm-handler``); acquiring one costs ``handler_reuse_ms`` when an idle
handler exists and ``handler_spawn_ms`` when one must be created.
Handlers beyond the configured pool size retire after use.
"""

from __future__ import annotations

from typing import List, Optional

from ..unixsim.process import ProcState


class Handler:
    """One handler process slot."""

    def __init__(self, proc) -> None:
        self.proc = proc
        self.busy = False
        self.served = 0


class HandlerPool:
    """Reusable handler processes owned by one LPM's dispatcher."""

    def __init__(self, lpm) -> None:
        self.lpm = lpm
        self._handlers: List[Handler] = []
        self.spawned = 0
        self.reused = 0
        self.peak_busy = 0

    def acquire(self) -> tuple:
        """Returns ``(handler, cost_ms)`` — reuse an idle handler or
        spawn a fresh process."""
        for handler in self._handlers:
            if not handler.busy and handler.proc.alive:
                handler.busy = True
                handler.served += 1
                self.reused += 1
                self._note_busy()
                return handler, self.lpm.cost.handler_reuse_ms
        proc = self.lpm.host.kernel.spawn(
            self.lpm.uid, "lpm-handler", ppid=self.lpm.proc.pid,
            state=ProcState.SLEEPING)
        handler = Handler(proc)
        handler.busy = True
        handler.served += 1
        self._handlers.append(handler)
        self.spawned += 1
        self._note_busy()
        return handler, self.lpm.cost.handler_spawn_ms

    def release(self, handler: Optional[Handler]) -> None:
        """Return a handler to the pool; surplus handlers exit."""
        if handler is None:
            return
        handler.busy = False
        limit = self.lpm.config.handler_pool_max
        if len(self._handlers) > limit and handler.proc.alive:
            self._handlers.remove(handler)
            if not self.lpm.host.kernel.halted:
                self.lpm.host.kernel.exit(handler.proc.pid)

    def _note_busy(self) -> None:
        busy = sum(1 for handler in self._handlers if handler.busy)
        self.peak_busy = max(self.peak_busy, busy)

    def busy_count(self) -> int:
        return sum(1 for handler in self._handlers if handler.busy)

    def size(self) -> int:
        return len(self._handlers)

    def shutdown(self) -> None:
        """Terminate every handler process (LPM exit path)."""
        for handler in self._handlers:
            if handler.proc.alive and not self.lpm.host.kernel.halted:
                self.lpm.host.kernel.exit(handler.proc.pid)
        self._handlers.clear()
