"""The files and file-descriptor display tools.

Section 7 plans "a tool for displaying the open and closed files of
processes, a tool for displaying file descriptors".  Both read the
per-process file information the LPMs include in their records (pulled
from the PCBs via the LPM's ptrace access), so they work across every
host in the session through an ordinary snapshot.
"""

from __future__ import annotations

from typing import Dict, List

from ..util import format_table
from .snapshot import SnapshotForest


def open_files_by_process(forest: SnapshotForest) -> Dict:
    """Map each live process to its open-file entries."""
    return {gpid: list(record.open_files)
            for gpid, record in sorted(forest.records.items())
            if not record.exited and record.open_files}


def closed_files_by_process(forest: SnapshotForest) -> Dict:
    """Map each process to its recently closed files."""
    return {gpid: list(record.closed_files)
            for gpid, record in sorted(forest.records.items())
            if record.closed_files}


def render_open_files(forest: SnapshotForest) -> str:
    """The open-files tool: one row per (process, descriptor)."""
    rows: List[List] = []
    for gpid, entries in open_files_by_process(forest).items():
        command = forest.records[gpid].command
        for entry in entries:
            rows.append([str(gpid), command, entry["fd"], entry["path"],
                         entry["mode"], "%.1f" % entry["opened_ms"]])
    if not rows:
        return "no open files in the computation"
    return format_table(
        ["process", "command", "fd", "path", "mode", "opened (ms)"],
        rows, title="Open files")


def render_closed_files(forest: SnapshotForest) -> str:
    """The closed-files history view."""
    rows: List[List] = []
    for gpid, entries in closed_files_by_process(forest).items():
        command = forest.records[gpid].command
        for entry in entries:
            rows.append([str(gpid), command, entry["path"],
                         "%.1f" % entry["opened_ms"],
                         "%.1f" % entry["closed_ms"]])
    if not rows:
        return "no closed files recorded"
    return format_table(
        ["process", "command", "path", "opened (ms)", "closed (ms)"],
        rows, title="Closed files")


def render_fd_table(forest: SnapshotForest, gpid) -> str:
    """The file-descriptor tool for one process."""
    record = forest.records.get(gpid)
    if record is None:
        return "%s: no such process in the snapshot" % (gpid,)
    rows = [[entry["fd"], entry["path"], entry["mode"]]
            for entry in record.open_files]
    if not rows:
        return "%s (%s): no open descriptors" % (gpid, record.command)
    return format_table(["fd", "path", "mode"], rows,
                        title="Descriptors of %s (%s)"
                              % (gpid, record.command))


def file_usage_summary(forest: SnapshotForest) -> Dict[str, dict]:
    """Per-path aggregate: how many processes hold each file open."""
    summary: Dict[str, dict] = {}
    for gpid, record in forest.records.items():
        for entry in record.open_files:
            info = summary.setdefault(entry["path"],
                                      {"open_count": 0, "holders": []})
            info["open_count"] += 1
            info["holders"].append(gpid)
    for info in summary.values():
        info["holders"].sort()
    return summary
