"""The sibling transport layer: one interface over both section 3 schemes.

"Communication between sibling LPMs occurs through communication
channels.  ... Channel authentication occurs at channel-creation time."
(section 3)  The paper implements TCP virtual circuits and sketches a
reliable-datagram alternative; this module owns both, presenting the
LPM a single :class:`SiblingTransport` whose links all honour the same
endpoint contract (`send`, `open`, `close`, `on_message`, `on_close`,
`peer_name`) regardless of which scheme carries the bytes.

Everything connection-shaped lives here: accepting sibling HELLOs,
bootstrapping remote LPMs through inetd/pmd (Figure 2), the datagram
introduction handshake, link teardown, and the per-message send cost
accounting.  The LPM above only ever sees authenticated
:class:`SiblingLink` objects.
"""

from __future__ import annotations

from typing import Dict, List

from ..tracing.events import TraceEventType
from ..unixsim.inetd import INETD_SERVICE, PPM_SERVICE
from ..util import Deferred
from .circuitpool import CircuitPool
from .dgram import DatagramFabric
from .messages import Message, MsgKind
from .wire import message_size_bytes


class SiblingLink:
    """An authenticated channel to a sibling LPM (either transport)."""

    def __init__(self, peer: str, endpoint) -> None:
        self.peer = peer
        self.endpoint = endpoint
        self.authenticated = False
        self.opened_ms = 0.0


class SiblingTransport:
    """Owns every sibling channel of one LPM.

    The LPM injects itself as the upward interface: the transport uses
    its clock (``lpm.sim``), identity (``name``/``user``/``token``),
    serialised-CPU booking (``_cpu_occupy``), trace hook, and message
    dispatcher (``_sibling_on_message``); the transport in turn is the
    only layer that touches stream connections or the datagram fabric.
    """

    def __init__(self, lpm) -> None:
        self.lpm = lpm
        self.links: Dict[str, SiblingLink] = {}
        #: Set once this LPM has joined a session (first authenticated
        #: sibling); after that, HELLOs no longer overwrite the session
        #: secret or the CCS identity.
        self.session_established = False
        self._pending_links: Dict[str, Deferred] = {}
        #: Datagram fabric, bound only under the datagram transport
        #: (section 3's scalability alternative).
        self.dgram = DatagramFabric(lpm)
        if lpm.config.transport == "datagram":
            self.dgram.bind()
        #: Shared-circuit pool (multi-tenant mode): one physical
        #: circuit per host pair, this LPM riding a per-user lane.
        self.pool = None
        if lpm.config.circuit_sharing and lpm.config.transport == "stream":
            self.pool = CircuitPool.ensure(lpm.host, lpm.fabric,
                                           lpm.host.node, lpm.name)
            self.pool.register_user(lpm.user, self.accept_sibling)

    # ------------------------------------------------------------------
    # Link inventory
    # ------------------------------------------------------------------

    def authenticated(self) -> List[str]:
        return sorted(peer for peer, link in self.links.items()
                      if link.authenticated and link.endpoint.open)

    def link_to(self, peer: str):
        """The open authenticated link to ``peer``, or None."""
        link = self.links.get(peer)
        if link is not None and link.endpoint.open:
            return link
        return None

    def _join_session(self, info: dict) -> None:
        """Join the sender's session unless we already belong to one."""
        lpm = self.lpm
        if not self.session_established:
            if info.get("secret"):
                lpm.secret = info["secret"]
            if info.get("ccs_host"):
                lpm.ccs_host = info["ccs_host"]
        self.session_established = True

    # ------------------------------------------------------------------
    # Server side: a sibling connected to our accept socket
    # ------------------------------------------------------------------

    def accept_sibling(self, endpoint, payload: dict) -> None:
        # Channel authentication (section 3): the connector must present
        # the token this LPM's pmd issued, proving the introduction came
        # through the trusted name server.
        lpm = self.lpm
        if payload.get("token") != lpm.token or \
                payload.get("user") != lpm.user:
            lpm._trace(TraceEventType.CONN_CLOSED, kind="sibling",
                       reason="authentication failed",
                       peer=payload.get("from_host", "?"))
            endpoint.close()
            return
        peer = payload["from_host"]
        link = SiblingLink(peer, endpoint)
        link.authenticated = True
        link.opened_ms = lpm.sim.now_ms
        old = self.links.get(peer)
        if old is not None and old.endpoint.open:
            old.endpoint.close()
        self.links[peer] = link
        endpoint.on_message = lpm._sibling_on_message
        endpoint.on_close = self.on_link_close
        self._join_session(payload)
        lpm._trace(TraceEventType.CONN_OPEN, kind="sibling", peer=peer)
        ack = Message(kind=MsgKind.HELLO_ACK, req_id=lpm.rpc.next_req_id(),
                      origin=lpm.name, user=lpm.user,
                      payload={"secret": lpm.secret,
                               "ccs_host": lpm.ccs_host,
                               "known": lpm.topology.known_hosts()})
        self.send_on_link(link, ack)
        lpm.recovery.on_contact(peer)
        self.apply_topology_policy(payload.get("known", []))

    def handle_hello_ack(self, message: Message, endpoint) -> None:
        lpm = self.lpm
        peer = endpoint.peer_name
        link = self.links.get(peer)
        if link is None or link.endpoint is not endpoint:
            return
        link.authenticated = True
        # Adopt the established side's session when we are the newcomer.
        self._join_session(message.payload)
        context = endpoint.context or {}
        waiter = context.get("await_ack")
        lpm._trace(TraceEventType.CONN_OPEN, kind="sibling", peer=peer)
        lpm.recovery.on_contact(peer)
        if waiter is not None:
            waiter.resolve(link)
        self.apply_topology_policy(message.payload.get("known", []))

    # ------------------------------------------------------------------
    # Client side: creating links on demand
    # ------------------------------------------------------------------

    def ensure_sibling(self, peer: str) -> Deferred:
        """Resolve to a :class:`SiblingLink` (or None on failure),
        creating the remote LPM through inetd/pmd when necessary.
        "The local LPM will create a remote LPM when one is required"
        (section 3)."""
        lpm = self.lpm
        done = Deferred()
        if peer == lpm.name:
            done.resolve(None)
            return done
        link = self.links.get(peer)
        if link is not None and link.authenticated and link.endpoint.open:
            done.resolve(link)
            return done
        if peer in self._pending_links:
            return self._pending_links[peer]
        self._pending_links[peer] = done
        done.then(lambda _result: self._pending_links.pop(peer, None))

        def bootstrap_replied(payload, endpoint) -> None:
            endpoint.close()
            if not payload.get("ok"):
                done.resolve(None)
                return
            if lpm.config.transport == "datagram":
                self._open_datagram(peer, payload, done)
            else:
                self._open_channel(peer, payload, done)

        def bootstrap_established(endpoint) -> None:
            endpoint.on_message = bootstrap_replied
            endpoint.on_close = lambda reason, ep: done.resolve(None)

        # Figure 2 steps (1)-(4): ask the remote inetd for the user's
        # LPM accept address, creating pmd and LPM as needed.
        lpm.fabric.connect(
            lpm.name, peer, INETD_SERVICE,
            payload={"service": PPM_SERVICE, "user": lpm.user,
                     "origin_host": lpm.name, "origin_user": lpm.user},
            on_established=bootstrap_established,
            on_failed=lambda reason: done.resolve(None),
            detect_ms=lpm.config.connection_detect_ms)
        return done

    def _open_channel(self, peer: str, bootstrap: dict,
                      done: Deferred) -> None:
        lpm = self.lpm
        hello = {"role": "sibling", "user": lpm.user,
                 "from_host": lpm.name, "token": bootstrap["token"],
                 "secret": lpm.secret, "ccs_host": lpm.ccs_host,
                 "known": lpm.topology.known_hosts()}
        if self.pool is not None:
            self._open_lane(peer, hello, done)
            return

        def established(endpoint) -> None:
            link = SiblingLink(peer, endpoint)
            link.opened_ms = lpm.sim.now_ms
            self.links[peer] = link
            endpoint.on_message = lpm._sibling_on_message
            endpoint.on_close = self.on_link_close
            endpoint.context = {"await_ack": done}

        lpm.fabric.connect(
            lpm.name, peer, bootstrap["accept_service"], payload=hello,
            setup_ms=lpm.cost.connect_ms,
            on_established=established,
            on_failed=lambda reason: done.resolve(None),
            detect_ms=lpm.config.connection_detect_ms)

    def _open_lane(self, peer: str, hello: dict, done: Deferred) -> None:
        """Shared-circuit path: attach a lane to the pooled circuit and
        run the HELLO handshake as an in-band message on the lane."""
        lpm = self.lpm

        def lane_ready(endpoint) -> None:
            link = SiblingLink(peer, endpoint)
            link.opened_ms = lpm.sim.now_ms
            self.links[peer] = link
            endpoint.on_message = lpm._sibling_on_message
            endpoint.on_close = self.on_link_close
            endpoint.context = {"await_ack": done}
            greeting = Message(kind=MsgKind.HELLO,
                               req_id=lpm.rpc.next_req_id(),
                               origin=lpm.name, user=lpm.user,
                               payload=hello)
            self.send_on_link(link, greeting)

        self.pool.attach(
            peer, lpm.user, on_established=lane_ready,
            on_failed=lambda reason: done.resolve(None),
            setup_ms=lpm.cost.connect_ms,
            detect_ms=lpm.config.connection_detect_ms)

    def apply_topology_policy(self, known_hosts: List[str]) -> None:
        """Under the ``full_mesh`` ablation policy, eagerly connect to
        every LPM a new sibling knows about; under ``sparse``, fold the
        hosts into the membership (the topology manager rewires toward
        its bounded-degree overlay); the paper's on-demand policy does
        nothing here ("In most operational scenarios we expect to have
        only very few of all the potential connections between sibling
        LPMs in place", section 4)."""
        policy = self.lpm.config.topology_policy
        if policy == "sparse":
            self.lpm.topology.note_hosts(known_hosts)
            return
        if policy != "full_mesh":
            return
        for host in known_hosts:
            if host != self.lpm.name and host not in self.links:
                self.ensure_sibling(host)

    # ------------------------------------------------------------------
    # Datagram transport (section 3's alternative)
    # ------------------------------------------------------------------

    def _open_datagram(self, peer: str, bootstrap: dict,
                       done: Deferred) -> None:
        """No circuit: introduce ourselves with the pmd token; every
        subsequent message authenticates individually."""
        def introduced(result) -> None:
            if result is None:
                done.resolve(None)

        intro = self.dgram.introduce(peer, bootstrap["token"])
        endpoint = self.dgram.endpoint_for(peer)
        endpoint.context = (endpoint.context or {})
        endpoint.context["await_link"] = done
        intro.then(introduced)

    def _register_datagram_sibling(self, peer: str, endpoint,
                                   info: dict) -> SiblingLink:
        lpm = self.lpm
        link = SiblingLink(peer, endpoint)
        link.authenticated = True
        link.opened_ms = lpm.sim.now_ms
        self.links[peer] = link
        endpoint.on_message = lpm._sibling_on_message
        endpoint.on_close = self.on_link_close
        self._join_session(info)
        lpm._trace(TraceEventType.CONN_OPEN, kind="sibling-datagram",
                   peer=peer)
        lpm.recovery.on_contact(peer)
        self.apply_topology_policy(info.get("known", []))
        return link

    def on_datagram_intro(self, datagram: dict, endpoint) -> None:
        """Server side of the datagram introduction."""
        self._register_datagram_sibling(datagram["from_host"], endpoint,
                                        datagram)

    def on_datagram_intro_ack(self, datagram: dict, endpoint) -> None:
        """Client side: the peer accepted our introduction."""
        peer = datagram["from_host"]
        link = self._register_datagram_sibling(peer, endpoint, datagram)
        context = endpoint.context or {}
        waiter = context.get("await_intro")
        if waiter is not None:
            waiter.resolve(endpoint)
        link_waiter = context.get("await_link")
        if link_waiter is not None:
            link_waiter.resolve(link)

    # ------------------------------------------------------------------
    # Sending and teardown
    # ------------------------------------------------------------------

    def send_on_link(self, link: SiblingLink, message: Message,
                     forwarding: bool = False) -> None:
        lpm = self.lpm
        cost = lpm.cost.forward_ms if forwarding else lpm.cost.sibling_send_ms
        # Stamp (or clear) the lane tag before sizing so shared-circuit
        # traffic is charged for the bytes it actually carries.
        lane = getattr(link.endpoint, "lane", None)
        if message.lane != lane:
            message.lane = lane
        nbytes = message_size_bytes(message)
        tracer = lpm.sim.tracer
        if tracer is not None and message.trace is not None:
            tracer.instant("send:%s" % message.kind.value, host=lpm.name,
                           parent=message.trace, cat="xport",
                           peer=link.peer, nbytes=nbytes,
                           forwarded=forwarding)
        lpm._trace(TraceEventType.SIBLING_MESSAGE, peer=link.peer,
                   kind=message.kind.value, nbytes=nbytes,
                   forwarded=forwarding)
        link.endpoint.send(message, nbytes=nbytes,
                           extra_delay_ms=lpm._cpu_occupy(cost))

    def on_link_close(self, reason: str, endpoint) -> None:
        lpm = self.lpm
        peer = endpoint.peer_name
        link = self.links.get(peer)
        if link is not None and link.endpoint is endpoint:
            del self.links[peer]
        # A lane refused before its HELLO_ACK (or a circuit dying
        # mid-handshake) must still fail the pending ensure_sibling.
        context = getattr(endpoint, "context", None) or {}
        waiter = context.get("await_ack")
        if waiter is not None:
            waiter.resolve(None)
        lpm._trace(TraceEventType.CONN_CLOSED, kind="sibling", peer=peer,
                   reason=reason)
        lpm.router.invalidate_via(peer)
        if not lpm.is_running():
            return
        if reason != "closed":
            lpm.recovery.on_connection_lost(peer, reason)

    def shutdown(self) -> None:
        """Close every sibling channel and unbind the datagram port."""
        for link in list(self.links.values()):
            if link.endpoint.open:
                link.endpoint.close()
        self.links.clear()
        self.dgram.unbind()
        if self.pool is not None:
            self.pool.unregister_user(self.lpm.user)
