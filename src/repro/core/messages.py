"""The PPM wire protocol.

Every conversation in the PPM — tool to LPM, LPM to sibling LPM — is a
:class:`Message`.  Replies quote the request id; routed messages carry
the source-destination route ("All data returned to the originator of a
broadcast request includes the message's source-destination route",
section 4); broadcast messages carry the signed timestamp used for
duplicate suppression.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional

from ..ids import BroadcastId


class MsgKind(Enum):
    """Every message type in the protocol."""

    # Tool -> LPM requests (the subroutine library's vocabulary).
    TOOL_SNAPSHOT = "tool_snapshot"
    TOOL_CONTROL = "tool_control"
    TOOL_CREATE = "tool_create"
    TOOL_ADOPT = "tool_adopt"
    TOOL_RSTATS = "tool_rstats"
    TOOL_SET_TRACE = "tool_set_trace"
    TOOL_SESSION_INFO = "tool_session_info"
    TOOL_PING = "tool_ping"
    TOOL_LOCATE = "tool_locate"
    #: Generic reply to a tool.
    TOOL_REPLY = "tool_reply"

    # Sibling LPM conversations.
    HELLO = "hello"              # channel authentication handshake
    HELLO_ACK = "hello_ack"
    GATHER = "gather"            # recursive subtree snapshot request
    GATHER_REPLY = "gather_reply"
    CONTROL = "control"          # deliver a control action to a process
    CONTROL_ACK = "control_ack"
    CREATE = "create"            # remote process creation
    CREATE_ACK = "create_ack"
    RSTATS = "rstats"            # exited-process statistics gather
    RSTATS_REPLY = "rstats_reply"
    LOCATE = "locate"            # broadcast: who owns this process?
    LOCATE_ACK = "locate_ack"
    #: Sparse-overlay maintenance (``topology_policy="sparse"`` only).
    TOPO_GOSSIP = "topo_gossip"  # membership gossip between neighbors
    TREE_PRUNE = "tree_prune"    # duplicate-drop feedback: not a tree edge
    TREE_REPAIR = "tree_repair"  # severed subtree: source must re-flood
    #: Crash recovery (section 5).
    CCS_REPORT = "ccs_report"    # an LPM reports to the CCS after failure
    CCS_ACK = "ccs_ack"
    CCS_PROBE = "ccs_probe"      # stand-in CCS probing higher-priority host
    CCS_PROBE_ACK = "ccs_probe_ack"
    #: Circuit sharing (``circuit_sharing=True`` only): a lane client
    #: detaching from a shared circuit without closing the circuit.
    LANE_CLOSE = "lane_close"


#: Kinds that always flow tool <-> LPM (used for endpoint sanity checks).
TOOL_KINDS = frozenset({
    MsgKind.TOOL_SNAPSHOT, MsgKind.TOOL_CONTROL, MsgKind.TOOL_CREATE,
    MsgKind.TOOL_ADOPT, MsgKind.TOOL_RSTATS, MsgKind.TOOL_SET_TRACE,
    MsgKind.TOOL_SESSION_INFO, MsgKind.TOOL_PING, MsgKind.TOOL_LOCATE,
    MsgKind.TOOL_REPLY,
})


@dataclass
class Message:
    """One protocol message.

    ``route`` accumulates host names as the message moves through the
    overlay; a reply reverses it.  ``final_dest`` is set on routed
    (multi-hop, non-broadcast) messages so intermediate LPMs know to
    forward rather than consume.
    """

    kind: MsgKind
    req_id: int
    origin: str
    user: str
    payload: dict = field(default_factory=dict)
    route: List[str] = field(default_factory=list)
    reply_to: Optional[int] = None
    broadcast: Optional[BroadcastId] = None
    final_dest: Optional[str] = None
    #: Span context ``[trace_id, span_id]`` when span tracing is on;
    #: omitted from the wire encoding when None so disabled runs stay
    #: byte-identical (see :mod:`repro.perf.spans`).
    trace: Optional[List[int]] = None
    #: Lane tag when the message travels on a *shared* inter-host
    #: circuit (``circuit_sharing=True``): the user whose per-user lane
    #: the message belongs to, stamped by the transport at send time
    #: and used by the receiving :class:`~repro.core.circuitpool.
    #: CircuitPool` to demultiplex.  Omitted from the wire encoding
    #: when None so unshared runs stay byte-identical.
    lane: Optional[str] = None
    #: Wire-layer cache slot: ``(fingerprint, encoded bytes)`` managed
    #: by :mod:`repro.core.wire`.  The fingerprint covers the fields
    #: that legitimately change while a message is in flight (the route
    #: grows hop by hop); payload dicts are never mutated after
    #: construction anywhere in the protocol, and must not be.
    _wire_cache: Optional[tuple] = field(default=None, init=False,
                                         repr=False, compare=False)

    def wire_fingerprint(self) -> tuple:
        """The mutation-sensitive identity of this message's encoding."""
        return (tuple(self.route), self.final_dest, self.reply_to,
                None if self.trace is None else tuple(self.trace),
                self.lane)

    def make_reply(self, kind: MsgKind, sender_host: str,
                   payload: Optional[dict] = None) -> "Message":
        """Build the reply, reversing the recorded route."""
        return Message(kind=kind, req_id=self.req_id, origin=sender_host,
                       user=self.user,
                       payload=payload if payload is not None else {},
                       route=list(reversed(self.route)),
                       reply_to=self.req_id,
                       final_dest=self.origin,
                       trace=self.trace)

    @property
    def is_reply(self) -> bool:
        return self.reply_to is not None

    def __str__(self) -> str:
        return "%s#%d %s->%s" % (self.kind.value, self.req_id, self.origin,
                                 self.final_dest or "*")
