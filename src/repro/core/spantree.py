"""Per-source broadcast trees over the sparse overlay.

Flooding is the paper's graph-covering algorithm, and it stays the
cold-start and repair fallback.  But a flood crosses *every* overlay
edge, and under the ``sparse`` topology policy repeat broadcasts from
the same source can do much better: the first flood already computes a
spanning tree implicitly — each host's parent is the link its first
copy arrived on (reverse-path acceptance), and every duplicate arrival
identifies a non-tree edge.  This module makes that tree explicit:

* a duplicate receiver answers the sender with ``TREE_PRUNE``, so the
  sender strikes it from its candidate-children set;
* once pruned, a repeat broadcast from that source is sent in *tree
  mode* (``payload["tree"]``) and traverses only parent→child links —
  about ``n − 1`` forwards instead of one per edge;
* link loss tears the affected tree state down
  (:meth:`SpanTreeTable.on_link_lost`, driven from
  ``MessageRouter.invalidate_via``): the upstream end reports
  ``TREE_REPAIR`` hop-by-hop toward the source, which falls back to a
  fresh flood — rebuilding the tree — on its next broadcast.  A host
  that receives a tree-mode broadcast without tree state (its state was
  invalidated) likewise reports upward, so a silently broken tree heals
  instead of silently shrinking coverage.

Epochs make the prune feedback safe under interleaving: every broadcast
stamp carries the source's monotonically increasing sequence number, a
flood resets a host's tree entry to that epoch, and a prune only
removes a child when it reports an epoch at least as new as the entry
(stale prunes from a superseded flood are ignored).

:class:`SpanTreeTable` is the pure per-host state machine (no sockets,
no clock); :class:`TreeBroadcast` is the driver an LPM injects itself
into, wiring the table to the transport, the broadcast engine, the
counters, and span tracing.  Both are inert unless the session runs
``topology_policy="sparse"``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..errors import ConnectionClosedError
from ..perf import PERF
from .messages import Message, MsgKind


class SourceTree:
    """One host's view of one source's broadcast tree."""

    __slots__ = ("parent", "children", "epoch")

    def __init__(self, parent: Optional[str], children: Set[str],
                 epoch: int) -> None:
        self.parent = parent
        self.children = children
        self.epoch = epoch


class SpanTreeTable:
    """Per-source tree state for one host; a pure state machine."""

    def __init__(self, self_host: str) -> None:
        self.self_host = self_host
        self._trees: Dict[str, SourceTree] = {}

    def on_flood(self, source: str, parent: Optional[str], epoch: int,
                 targets) -> None:
        """A flood-mode broadcast from ``source`` was accepted from
        ``parent`` (None at the source itself) and forwarded to
        ``targets``: (re)build this host's entry at that epoch."""
        self._trees[source] = SourceTree(parent, set(targets), epoch)

    def on_prune(self, source: str, epoch: int, child: str) -> bool:
        """``child`` reported our forward as a duplicate.  Honour it
        when the report is at least as new as the entry (the source's
        stamp sequence is monotone, so an older epoch means the prune
        belongs to a flood this entry has already superseded)."""
        tree = self._trees.get(source)
        if tree is None or epoch < tree.epoch or \
                child not in tree.children:
            return False
        tree.children.discard(child)
        return True

    def children(self, source: str) -> Optional[Set[str]]:
        tree = self._trees.get(source)
        return None if tree is None else tree.children

    def parent(self, source: str) -> Optional[str]:
        tree = self._trees.get(source)
        return None if tree is None else tree.parent

    def has_tree(self, source: str) -> bool:
        return source in self._trees

    def drop(self, source: str) -> None:
        self._trees.pop(source, None)

    def on_link_lost(self, peer: str) -> Tuple[List[str], List[str]]:
        """Tear down every tree the lost ``peer`` participated in.

        Returns ``(orphaned, severed)`` source lists: sources whose
        *parent* was the peer (our whole entry is dropped — we wait to
        be re-attached by the rebuild flood) and sources that lost the
        peer as a *child* (the entry survives minus the child, but the
        subtree behind it is unreachable, so the caller must report
        ``TREE_REPAIR`` toward each source).
        """
        orphaned: List[str] = []
        severed: List[str] = []
        for source, tree in list(self._trees.items()):
            if tree.parent == peer:
                del self._trees[source]
                orphaned.append(source)
            elif peer in tree.children:
                tree.children.discard(peer)
                severed.append(source)
        return orphaned, severed

    def __len__(self) -> int:
        return len(self._trees)


class TreeBroadcast:
    """The LPM-side driver: target selection, prune/repair messaging.

    The LPM injects itself for identity, clock/tracer, transport sends,
    and the broadcast engine; this layer holds no socket code.  Every
    method is a no-op (plain flood semantics) unless the config policy
    is ``sparse``.
    """

    def __init__(self, lpm) -> None:
        self.lpm = lpm
        self.table = SpanTreeTable(lpm.name)

    @property
    def active(self) -> bool:
        return self.lpm.config.topology_policy == "sparse"

    # ------------------------------------------------------------------
    # Target selection
    # ------------------------------------------------------------------

    def origin_targets(self, stamp) -> Tuple[List[str], bool]:
        """Where the source sends its own broadcast: the pruned child
        set in tree mode when a tree is built, every authenticated
        sibling (flood, recording the tree root) otherwise."""
        lpm = self.lpm
        peers = lpm.authenticated_siblings()
        if not self.active:
            return peers, False
        children = self.table.children(lpm.name)
        if children is not None:
            targets = [peer for peer in peers if peer in children]
            if targets:
                PERF.tree_forwards += len(targets)
                return targets, True
            self.table.drop(lpm.name)
        self.table.on_flood(lpm.name, None, stamp.seq, peers)
        self._instant("tree:build", source=lpm.name, fanout=len(peers))
        return peers, False

    def on_found(self, message: Message, from_peer: str) -> None:
        """The broadcast stopped here: this host answered it, so it
        never forwarded.  Record a leaf entry (reverse-path parent, no
        children) so a repeat tree-mode broadcast from this source
        finds state here rather than reading the silence as a severed
        tree and tearing it down with a repair.  An existing entry is
        kept — its children were learned by actually forwarding, and
        any stale ones are pruned away by duplicate feedback."""
        if not self.active or message.broadcast is None:
            return
        if not self.table.has_tree(message.origin):
            self.table.on_flood(message.origin, from_peer,
                                message.broadcast.seq, [])

    def forward_targets(self, message: Message,
                        from_peer: str) -> List[str]:
        """Where an accepted broadcast is forwarded onward from here."""
        lpm = self.lpm
        peers = [peer for peer in lpm.authenticated_siblings()
                 if peer != from_peer]
        if not self.active:
            return peers
        source = message.origin
        epoch = message.broadcast.seq
        if message.payload.get("tree"):
            children = self.table.children(source)
            if children is None:
                # Our state was invalidated but upstream still lists us
                # as a child: ask the source (via the arrival link, our
                # de-facto parent) to rebuild with a flood.
                self._send_repair(from_peer, source)
                return []
            targets = [peer for peer in peers if peer in children]
            PERF.tree_forwards += len(targets)
            return targets
        self.table.on_flood(source, from_peer, epoch, peers)
        return peers

    # ------------------------------------------------------------------
    # Prune feedback (duplicate-drop)
    # ------------------------------------------------------------------

    def on_duplicate(self, message: Message, from_peer: str) -> None:
        """A broadcast arriving here was a duplicate: tell the sender
        this edge is not a tree edge for that source."""
        if not self.active or message.broadcast is None:
            return
        link = self.lpm.transport.link_to(from_peer)
        if link is None:
            return
        notice = Message(kind=MsgKind.TREE_PRUNE,
                         req_id=self.lpm.rpc.next_req_id(),
                         origin=self.lpm.name, user=self.lpm.user,
                         payload={"source": message.origin,
                                  "epoch": message.broadcast.seq})
        try:
            self.lpm.transport.send_on_link(link, notice)
        except ConnectionClosedError:
            pass

    def on_prune(self, message: Message, from_peer: str) -> None:
        """A sibling reported our forward as a duplicate."""
        if self.table.on_prune(message.payload.get("source", ""),
                               message.payload.get("epoch", 0),
                               from_peer):
            PERF.tree_prunes += 1
            self._instant("tree:prune",
                          source=message.payload.get("source"),
                          child=from_peer)

    # ------------------------------------------------------------------
    # Repair (link loss and stateless tree arrivals)
    # ------------------------------------------------------------------

    def on_link_lost(self, peer: str) -> None:
        """Invalidate tree state through a lost link; report severed
        subtrees toward their sources so they re-flood."""
        if not self.active:
            return
        orphaned, severed = self.table.on_link_lost(peer)
        for source in severed:
            self._repair_toward(source)
        if orphaned or severed:
            self._instant("tree:invalidate", peer=peer,
                          orphaned=len(orphaned), severed=len(severed))

    def on_repair(self, message: Message, from_peer: str) -> None:
        """A ``TREE_REPAIR {source}`` notice climbing toward the
        source: at the source, drop the tree (the next broadcast
        floods, rebuilding it); elsewhere relay it up our parent link."""
        source = message.payload.get("source", "")
        PERF.tree_repairs += 1
        self._instant("tree:repair", source=source, reporter=from_peer)
        self._repair_toward(source)

    def _repair_toward(self, source: str) -> None:
        lpm = self.lpm
        if source == lpm.name:
            self.table.drop(source)
            return
        parent = self.table.parent(source)
        if parent is not None:
            self._send_repair(parent, source)

    def _send_repair(self, peer: str, source: str) -> None:
        link = self.lpm.transport.link_to(peer)
        if link is None:
            return
        notice = Message(kind=MsgKind.TREE_REPAIR,
                         req_id=self.lpm.rpc.next_req_id(),
                         origin=self.lpm.name, user=self.lpm.user,
                         payload={"source": source})
        try:
            self.lpm.transport.send_on_link(link, notice)
        except ConnectionClosedError:
            pass

    def _instant(self, name: str, **details) -> None:
        tracer = self.lpm.sim.tracer
        if tracer is not None:
            tracer.instant(name, host=self.lpm.name, cat="tree",
                           **details)
